// Tests for the application kernels (LZ, AES, IDCT, k-d tree, BFS, grep)
// and an end-to-end smoke of each app workload on EasyIO.

#include <gtest/gtest.h>

#include <cstring>

#include "src/apps/aes.h"
#include "src/apps/apps.h"
#include "src/apps/graph.h"
#include "src/apps/grep.h"
#include "src/apps/idct.h"
#include "src/apps/kdtree.h"
#include "src/apps/lz.h"
#include "src/common/rng.h"

namespace easyio::apps {
namespace {

TEST(LzTest, RoundTripText) {
  const auto text = SyntheticText(100000, "needle", 0.05, 1);
  const auto compressed = LzCompress(text.data(), text.size());
  EXPECT_LT(compressed.size(), text.size());  // text compresses
  std::vector<uint8_t> back;
  ASSERT_TRUE(LzDecompress(compressed.data(), compressed.size(), &back));
  EXPECT_EQ(back, text);
}

TEST(LzTest, RoundTripRandomData) {
  Rng rng(2);
  std::vector<uint8_t> data(50000);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  const auto compressed = LzCompress(data.data(), data.size());
  std::vector<uint8_t> back;
  ASSERT_TRUE(LzDecompress(compressed.data(), compressed.size(), &back));
  EXPECT_EQ(back, data);
}

TEST(LzTest, RoundTripRunLengths) {
  std::vector<uint8_t> data(10000, 0xAA);  // overlapping matches (RLE)
  const auto compressed = LzCompress(data.data(), data.size());
  EXPECT_LT(compressed.size(), 200u);
  std::vector<uint8_t> back;
  ASSERT_TRUE(LzDecompress(compressed.data(), compressed.size(), &back));
  EXPECT_EQ(back, data);
}

TEST(LzTest, EmptyInput) {
  const auto compressed = LzCompress(nullptr, 0);
  std::vector<uint8_t> back;
  ASSERT_TRUE(LzDecompress(compressed.data(), compressed.size(), &back));
  EXPECT_TRUE(back.empty());
}

TEST(LzTest, RejectsCorruptStream) {
  std::vector<uint8_t> bad = {0x01, 0x10, 0x00, 0xff, 0xff};  // dist > size
  std::vector<uint8_t> back;
  EXPECT_FALSE(LzDecompress(bad.data(), bad.size(), &back));
  std::vector<uint8_t> bad_tag = {0x07};
  EXPECT_FALSE(LzDecompress(bad_tag.data(), bad_tag.size(), &back));
}

TEST(AesTest, Fips197KnownAnswer) {
  // FIPS-197 Appendix B.
  const uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                           0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const uint8_t plain[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                             0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const uint8_t expect[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                              0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  Aes128 aes(key);
  uint8_t out[16];
  aes.EncryptBlock(plain, out);
  EXPECT_EQ(std::memcmp(out, expect, 16), 0);
}

TEST(AesTest, CtrRoundTrip) {
  const uint8_t key[16] = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6};
  Aes128 aes(key);
  Rng rng(3);
  std::vector<uint8_t> plain(10001);  // non-multiple of 16
  for (auto& b : plain) {
    b = static_cast<uint8_t>(rng.Next());
  }
  std::vector<uint8_t> cipher(plain.size());
  aes.CtrCrypt(plain.data(), cipher.data(), plain.size(), 42);
  EXPECT_NE(cipher, plain);
  std::vector<uint8_t> back(plain.size());
  aes.CtrCrypt(cipher.data(), back.data(), cipher.size(), 42);
  EXPECT_EQ(back, plain);
}

TEST(IdctTest, DcOnlyBlockIsFlat) {
  float coeffs[64] = {0};
  coeffs[0] = 64.0f;  // pure DC
  float out[64];
  Idct8x8(coeffs, out);
  // DC scale: sqrt(1/8)*sqrt(1/8)*64 = 8 in every pixel.
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(out[i], 8.0f, 1e-3);
  }
}

TEST(IdctTest, DecodeSyntheticStream) {
  std::vector<uint8_t> stream;
  for (int b = 0; b < 10; ++b) {
    const auto blk = EncodeSyntheticBlock(1000 + b);
    stream.insert(stream.end(), blk.begin(), blk.end());
  }
  std::vector<uint8_t> rgb;
  size_t off = 0;
  int blocks = 0;
  while (off < stream.size()) {
    ASSERT_TRUE(DecodeBlock(stream.data(), stream.size(), &off, &rgb));
    blocks++;
  }
  EXPECT_EQ(blocks, 10);
  EXPECT_EQ(rgb.size(), 10 * kBlockOutBytes);
  // RGB888 grey: triplets equal.
  for (size_t i = 0; i + 2 < rgb.size(); i += 3) {
    EXPECT_EQ(rgb[i], rgb[i + 1]);
    EXPECT_EQ(rgb[i], rgb[i + 2]);
  }
}

TEST(IdctTest, RejectsTruncatedStream) {
  std::vector<uint8_t> stream = {5, 0, 1};  // claims 5 coeffs, has <1
  size_t off = 0;
  std::vector<uint8_t> rgb;
  EXPECT_FALSE(DecodeBlock(stream.data(), stream.size(), &off, &rgb));
}

TEST(KdTreeTest, NearestMatchesBruteForce) {
  Rng rng(4);
  std::vector<KdPoint> points(2000);
  for (auto& p : points) {
    for (float& c : p) {
      c = static_cast<float>(rng.NextDouble());
    }
  }
  KdTree tree(points);
  EXPECT_EQ(tree.size(), points.size());
  for (int q = 0; q < 50; ++q) {
    KdPoint query;
    for (float& c : query) {
      c = static_cast<float>(rng.NextDouble());
    }
    float best = 1e30f;
    for (const auto& p : points) {
      best = std::min(best, Dist2(p, query));
    }
    EXPECT_NEAR(tree.Nearest(query).dist2, best, 1e-6);
  }
}

TEST(KdTreeTest, KNearestSortedAndCorrectCount) {
  Rng rng(5);
  std::vector<KdPoint> points(500);
  for (auto& p : points) {
    for (float& c : p) {
      c = static_cast<float>(rng.NextDouble());
    }
  }
  KdTree tree(points);
  KdPoint query{0.5f, 0.5f, 0.5f, 0.5f};
  const auto knn = tree.KNearest(query, 8);
  ASSERT_EQ(knn.size(), 8u);
  for (size_t i = 1; i < knn.size(); ++i) {
    EXPECT_LE(knn[i - 1].dist2, knn[i].dist2);
  }
}

TEST(GraphTest, SerializeRoundTripAndBfs) {
  // 0-1-2-3 path plus 0->3 chord.
  std::vector<std::pair<uint32_t, uint32_t>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {0, 3}};
  const auto blob = SerializeEdges(4, edges);
  CsrGraph g;
  ASSERT_TRUE(DeserializeToCsr(blob.data(), blob.size(), &g));
  EXPECT_EQ(g.num_vertices, 4u);
  std::vector<int32_t> dist;
  EXPECT_EQ(Bfs(g, 0, &dist), 4u);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[3], 1);  // via the chord
  EXPECT_EQ(dist[2], 2);
}

TEST(GraphTest, RingGraphFullyReachable) {
  const auto edges = RandomEdges(1000, 3000, 6);
  const auto blob = SerializeEdges(1000, edges);
  CsrGraph g;
  ASSERT_TRUE(DeserializeToCsr(blob.data(), blob.size(), &g));
  std::vector<int32_t> dist;
  EXPECT_EQ(Bfs(g, 0, &dist), 1000u);  // the ring guarantees connectivity
}

TEST(GraphTest, RejectsMalformed) {
  std::vector<uint8_t> bad = {1, 0, 0, 0, 200, 0, 0, 0};  // 200 edges, no data
  CsrGraph g;
  EXPECT_FALSE(DeserializeToCsr(bad.data(), bad.size(), &g));
}

TEST(GrepTest, CountsMatchingLines) {
  const std::string text = "foo bar\nneedle here\nnope\nneedle needle\n";
  EXPECT_EQ(CountMatchingLines(text, "needle"), 2u);
  EXPECT_EQ(CountMatchingLines(text, "absent"), 0u);
  EXPECT_EQ(CountMatchingLines("", "x"), 0u);
}

TEST(GrepTest, SyntheticTextHasExpectedFrequency) {
  const auto text = SyntheticText(500000, "MAGIC", 0.10, 7);
  const auto matches = CountMatchingLines(
      std::string_view(reinterpret_cast<const char*>(text.data()),
                       text.size()),
      "MAGIC");
  // ~80 byte lines => ~6250 lines; ~10% carry the needle.
  EXPECT_GT(matches, 300u);
  EXPECT_LT(matches, 1300u);
}

// ---- end-to-end smokes: every app runs on EasyIO and makes progress ----

class AppSmoke : public ::testing::TestWithParam<AppKind> {};

TEST_P(AppSmoke, RunsOnEasyIo) {
  AppRunConfig cfg;
  cfg.app = GetParam();
  cfg.fs = harness::FsKind::kEasy;
  cfg.cores = 2;
  cfg.warmup_ns = 1_ms;
  cfg.measure_ns = 30_ms;  // heavy apps (JPG/KNN) need several ms per op
  const AppResult r = RunApp(cfg);
  EXPECT_GT(r.ops, 0u) << AppName(GetParam());
  EXPECT_GT(r.checksum, 0u) << AppName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppSmoke,
    ::testing::Values(AppKind::kSnappy, AppKind::kJpgDecoder, AppKind::kAes,
                      AppKind::kGrep, AppKind::kKnn, AppKind::kBfs,
                      AppKind::kFileserver, AppKind::kWebserver),
    [](const ::testing::TestParamInfo<AppKind>& info) {
      return AppName(info.param);
    });

TEST(AppCompare, IoHeavyAppGainsOnEasyIo) {
  // Grep (I/O-compute balanced) should speed up on EasyIO vs NOVA once
  // several cores contend for read bandwidth (the paper's Fig 10 regime).
  AppRunConfig cfg;
  cfg.app = AppKind::kGrep;
  cfg.cores = 8;
  cfg.warmup_ns = 2_ms;
  cfg.measure_ns = 40_ms;
  cfg.fs = harness::FsKind::kNova;
  const double nova = RunApp(cfg).ops_per_sec;
  cfg.fs = harness::FsKind::kEasy;
  const double easy = RunApp(cfg).ops_per_sec;
  EXPECT_GT(easy, nova * 1.1);
}

}  // namespace
}  // namespace easyio::apps
