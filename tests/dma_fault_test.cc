// DMA fault injection and graceful degradation: the FaultPlan/FaultInjector
// determinism contract, the channel's error/stall/torn-record machinery and
// its recovery waits, the SN hardening (Pack saturation, cross-channel
// hard-fail), the channel manager's quarantine, and the filesystem-level
// recovery paths (retry, CPU fallback, striped multi-channel waits).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/dma/dma_engine.h"
#include "src/dma/fault_plan.h"
#include "src/harness/testbed.h"
#include "src/pmem/slow_memory.h"
#include "src/sim/simulation.h"

namespace easyio::dma {
namespace {

using core::ChannelManager;
using harness::FsKind;
using harness::Testbed;
using harness::TestbedConfig;
using pmem::MediaParams;
using pmem::SlowMemory;
using sim::Simulation;

constexpr uint64_t kRecordOff = 0;
constexpr uint64_t kDataOff = 4_KB;

std::vector<std::byte> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> buf(n);
  for (auto& b : buf) {
    b = static_cast<std::byte>(rng.Next());
  }
  return buf;
}

struct Fixture {
  Simulation sim{{.num_cores = 2}};
  SlowMemory mem;
  FaultInjector injector;
  DmaEngine engine;

  explicit Fixture(FaultPlan plan, int channels = 4,
                   MediaParams params = MediaParams::OneNode())
      : mem(&sim, params, 64_MB),
        injector(std::move(plan)),
        engine(&mem, kRecordOff, channels) {
    engine.AttachFaultInjector(&injector);
  }

  Descriptor Write(uint64_t pmem_off, const void* src, uint32_t size) {
    Descriptor d;
    d.dir = Descriptor::Dir::kWrite;
    d.pmem_off = pmem_off;
    d.dram = const_cast<void*>(src);
    d.size = size;
    return d;
  }
};

// ---------------------------------------------------------------- injector

TEST(FaultInjectorTest, EachScheduledFaultFiresOnce) {
  FaultPlan plan;
  plan.errors.push_back({/*channel=*/2, /*ordinal=*/5, /*count=*/3});
  plan.stalls.push_back({2, 6, 1000});
  plan.torn.push_back({2, 7});
  FaultInjector inj(plan);

  EXPECT_EQ(inj.TakeTransferError(2, 4), 0);
  EXPECT_EQ(inj.TakeTransferError(2, 5), 3);
  EXPECT_EQ(inj.TakeTransferError(2, 5), 0);  // consumed
  EXPECT_EQ(inj.TakeStall(2, 6), 1000u);
  EXPECT_EQ(inj.TakeStall(2, 6), 0u);
  EXPECT_TRUE(inj.TakeTornRecord(2, 7));
  EXPECT_FALSE(inj.TakeTornRecord(2, 7));
  EXPECT_EQ(inj.errors_armed(), 1u);
  EXPECT_EQ(inj.stalls_armed(), 1u);
  EXPECT_EQ(inj.torn_armed(), 1u);
}

TEST(FaultPlanTest, RandomIsDeterministicInSeed) {
  const FaultPlan a = FaultPlan::Random(99, 8, 4, 3, 2, 64);
  const FaultPlan b = FaultPlan::Random(99, 8, 4, 3, 2, 64);
  ASSERT_EQ(a.errors.size(), b.errors.size());
  for (size_t i = 0; i < a.errors.size(); ++i) {
    EXPECT_EQ(a.errors[i].channel, b.errors[i].channel);
    EXPECT_EQ(a.errors[i].ordinal, b.errors[i].ordinal);
  }
  ASSERT_EQ(a.stalls.size(), b.stalls.size());
  for (size_t i = 0; i < a.stalls.size(); ++i) {
    EXPECT_EQ(a.stalls[i].channel, b.stalls[i].channel);
    EXPECT_EQ(a.stalls[i].ordinal, b.stalls[i].ordinal);
  }
  ASSERT_EQ(a.torn.size(), b.torn.size());
  for (size_t i = 0; i < a.torn.size(); ++i) {
    EXPECT_EQ(a.torn[i].channel, b.torn[i].channel);
    EXPECT_EQ(a.torn[i].ordinal, b.torn[i].ordinal);
  }
  // A different seed lands somewhere else (overwhelmingly likely with 9
  // faults over an 8x64 grid).
  const FaultPlan c = FaultPlan::Random(100, 8, 4, 3, 2, 64);
  bool same = a.errors.size() == c.errors.size();
  for (size_t i = 0; same && i < a.errors.size(); ++i) {
    same = a.errors[i].channel == c.errors[i].channel &&
           a.errors[i].ordinal == c.errors[i].ordinal;
  }
  EXPECT_FALSE(same);
}

// --------------------------------------------------------- transfer errors

TEST(TransferErrorTest, RetrySucceedsAndDataLands) {
  FaultPlan plan;
  plan.errors.push_back({0, 0, 1});  // first execution fails, retry succeeds
  Fixture f(std::move(plan));
  const auto src = Pattern(16_KB, 1);
  f.sim.Spawn(0, [&] {
    Channel& ch = f.engine.channel(0);
    const Sn sn = ch.Submit(f.Write(kDataOff, src.data(), 16_KB));
    EXPECT_EQ(ch.WaitSnRecover(sn), DmaResult::kOk);
    EXPECT_TRUE(ch.IsComplete(sn));
  });
  f.sim.Run();
  const Channel& ch = f.engine.channel(0);
  EXPECT_EQ(ch.transfer_errors(), 1u);
  EXPECT_EQ(ch.retries(), 1u);
  EXPECT_EQ(ch.software_completions(), 0u);
  EXPECT_FALSE(ch.halted());
  EXPECT_EQ(std::memcmp(f.mem.raw() + kDataOff, src.data(), 16_KB), 0);
}

TEST(TransferErrorTest, ExhaustedRetriesFallBackToCpuCopy) {
  FaultPlan plan;
  plan.errors.push_back({0, 0, 100});  // never succeeds in hardware
  Fixture f(std::move(plan));
  const auto src = Pattern(16_KB, 2);
  f.sim.Spawn(0, [&] {
    Channel& ch = f.engine.channel(0);
    const Sn sn = ch.Submit(f.Write(kDataOff, src.data(), 16_KB));
    EXPECT_EQ(ch.WaitSnRecover(sn), DmaResult::kOk);  // always recovers
    EXPECT_TRUE(ch.IsComplete(sn));
  });
  f.sim.Run();
  const Channel& ch = f.engine.channel(0);
  // Initial execution + 3 retries all failed, then software moved the bytes.
  EXPECT_EQ(ch.transfer_errors(), 4u);
  EXPECT_EQ(ch.retries(), 3u);
  EXPECT_EQ(ch.software_completions(), 1u);
  EXPECT_FALSE(ch.halted());
  EXPECT_EQ(std::memcmp(f.mem.raw() + kDataOff, src.data(), 16_KB), 0);
}

TEST(TransferErrorTest, PlainWaitReportsErrorAndRollsBackDestination) {
  FaultPlan plan;
  plan.errors.push_back({0, 0, 1});
  Fixture f(std::move(plan));
  std::memset(f.mem.raw() + kDataOff, 0xAA, 16_KB);
  const auto src = Pattern(16_KB, 3);
  f.sim.Spawn(0, [&] {
    Channel& ch = f.engine.channel(0);
    const Sn sn = ch.Submit(f.Write(kDataOff, src.data(), 16_KB));
    EXPECT_EQ(ch.WaitSn(sn), DmaResult::kError);
    EXPECT_TRUE(ch.halted());
    EXPECT_EQ(ch.StateOf(sn), SnState::kError);
    // The persistent record carries the error status while halted.
    EXPECT_TRUE(f.mem.As<CompletionRecord>(kRecordOff)->error());
    // An aborted transfer leaves nothing of itself behind.
    for (size_t i = 0; i < 16_KB; ++i) {
      ASSERT_EQ(f.mem.raw()[kDataOff + i], std::byte{0xAA}) << "at byte " << i;
    }
    // Recovery clears the halt and the error status.
    EXPECT_EQ(ch.WaitSnRecover(sn), DmaResult::kOk);
    EXPECT_FALSE(f.mem.As<CompletionRecord>(kRecordOff)->error());
  });
  f.sim.Run();
  EXPECT_EQ(std::memcmp(f.mem.raw() + kDataOff, src.data(), 16_KB), 0);
}

TEST(TransferErrorTest, QuarantinedPolicySkipsStraightToFallback) {
  FaultPlan plan;
  plan.errors.push_back({0, 0, 100});
  Fixture f(std::move(plan));
  const auto src = Pattern(8_KB, 4);
  f.sim.Spawn(0, [&] {
    Channel& ch = f.engine.channel(0);
    const Sn sn = ch.Submit(f.Write(kDataOff, src.data(), 8_KB));
    RetryPolicy p;
    p.max_attempts = 0;
    EXPECT_EQ(ch.WaitSnRecover(sn, p), DmaResult::kOk);
  });
  f.sim.Run();
  const Channel& ch = f.engine.channel(0);
  EXPECT_EQ(ch.retries(), 0u);
  EXPECT_EQ(ch.software_completions(), 1u);
  EXPECT_EQ(std::memcmp(f.mem.raw() + kDataOff, src.data(), 8_KB), 0);
}

// ------------------------------------------------------------------ stalls

TEST(StallTest, StallDelaysCompletionByItsDuration) {
  const auto src = Pattern(16_KB, 5);
  sim::SimTime done_plain = 0;
  sim::SimTime done_stalled = 0;
  {
    Fixture f(FaultPlan{});
    f.sim.Spawn(0, [&] {
      Channel& ch = f.engine.channel(0);
      const Sn sn = ch.Submit(f.Write(kDataOff, src.data(), 16_KB));
      ch.WaitSnRecover(sn);
      done_plain = f.sim.now();
    });
    f.sim.Run();
  }
  {
    FaultPlan plan;
    plan.stalls.push_back({0, 0, 500'000});
    Fixture f(std::move(plan));
    f.sim.Spawn(0, [&] {
      Channel& ch = f.engine.channel(0);
      const Sn sn = ch.Submit(f.Write(kDataOff, src.data(), 16_KB));
      ch.WaitSnRecover(sn);
      done_stalled = f.sim.now();
    });
    f.sim.Run();
    EXPECT_EQ(f.engine.channel(0).stalls_injected(), 1u);
  }
  EXPECT_EQ(done_stalled, done_plain + 500'000);
}

// ------------------------------------------------------------ torn records

TEST(TornRecordTest, WaiterWakesOnlyAfterScrubRepairsTheRecord) {
  const auto src = Pattern(16_KB, 6);
  sim::SimTime done_plain = 0;
  {
    Fixture f(FaultPlan{});
    f.sim.Spawn(0, [&] {
      Channel& ch = f.engine.channel(0);
      const Sn sn = ch.Submit(f.Write(kDataOff, src.data(), 16_KB));
      ch.WaitSn(sn);
      done_plain = f.sim.now();
    });
    f.sim.Run();
  }
  FaultPlan plan;
  plan.torn.push_back({0, 0});
  plan.torn_repair_ns = 80'000;
  Fixture f(std::move(plan));
  sim::SimTime done_torn = 0;
  f.sim.Spawn(0, [&] {
    Channel& ch = f.engine.channel(0);
    const Sn sn = ch.Submit(f.Write(kDataOff, src.data(), 16_KB));
    // The persistent record stays stale until the scrub, and the waiter
    // must not wake from the in-DRAM shadow — durability only.
    EXPECT_EQ(ch.WaitSn(sn), DmaResult::kOk);
    EXPECT_TRUE(ch.IsComplete(sn));
    done_torn = f.sim.now();
  });
  f.sim.Run();
  const Channel& ch = f.engine.channel(0);
  EXPECT_EQ(ch.torn_records(), 1u);
  EXPECT_EQ(ch.record_repairs(), 1u);
  EXPECT_GE(done_torn, done_plain + 80'000 - 1);
  EXPECT_EQ(std::memcmp(f.mem.raw() + kDataOff, src.data(), 16_KB), 0);
}

TEST(TornRecordTest, NextCompletionHealsWithoutScrub) {
  FaultPlan plan;
  plan.torn.push_back({0, 0});
  plan.torn_repair_ns = 10'000'000;  // scrub far in the future
  Fixture f(std::move(plan));
  const auto src = Pattern(8_KB, 7);
  f.sim.Spawn(0, [&] {
    Channel& ch = f.engine.channel(0);
    const Sn s1 = ch.Submit(f.Write(kDataOff, src.data(), 8_KB));
    const Sn s2 = ch.Submit(f.Write(kDataOff + 8_KB, src.data(), 8_KB));
    // The second completion re-persists the watermark, covering both.
    EXPECT_EQ(ch.WaitSn(s2), DmaResult::kOk);
    EXPECT_TRUE(ch.IsComplete(s1));
  });
  f.sim.Run();
  EXPECT_EQ(f.engine.channel(0).torn_records(), 1u);
  // The scrub found nothing to do (it may not even have fired yet).
  EXPECT_EQ(f.engine.channel(0).record_repairs(), 0u);
}

// ----------------------------------------------------------- determinism

TEST(FaultDeterminismTest, SameSeedSameTrace) {
  auto run = [](std::vector<sim::SimTime>* completions) {
    FaultPlan plan = FaultPlan::Random(/*seed=*/1234, /*num_channels=*/2,
                                       /*n_errors=*/2, /*n_stalls=*/2,
                                       /*n_torn=*/2, /*ordinal_range=*/6,
                                       /*stall_ns=*/30'000);
    Fixture f(std::move(plan), /*channels=*/2);
    const auto src = Pattern(8_KB, 8);
    f.sim.Spawn(0, [&] {
      for (int i = 0; i < 6; ++i) {
        Channel& ch = f.engine.channel(i % 2);
        const Sn sn = ch.Submit(
            f.Write(kDataOff + static_cast<uint64_t>(i) * 8_KB, src.data(),
                    8_KB));
        ch.WaitSnRecover(sn);
        completions->push_back(f.sim.now());
      }
    });
    f.sim.Run();
  };
  std::vector<sim::SimTime> first;
  std::vector<sim::SimTime> second;
  run(&first);
  run(&second);
  ASSERT_EQ(first.size(), 6u);
  EXPECT_EQ(first, second);
}

// ----------------------------------------------------- SN hardening (sn.h)

TEST(SnHardeningTest, NearMaxSeqRoundTripsThroughPack) {
  const uint64_t max_cnt = (Sn::kMaxSeq - kRingSlots) / (kRingSlots + 1);
  const Sn sn = Sn::Make(3, max_cnt, kRingSlots);
  ASSERT_LE(sn.seq, Sn::kMaxSeq);
  const Sn back = Sn::Unpack(sn.Pack());
  EXPECT_EQ(back.channel, 3);
  EXPECT_EQ(back.seq, sn.seq);
  // A completion record at the same watermark still covers it.
  const CompletionRecord rec{kRingSlots, max_cnt};
  EXPECT_GE(rec.CompletedSeq(), back.seq);
}

TEST(SnHardeningDeathTest, OverflowingSeqFailsLoudlyNotSilently) {
  // Beyond 56 bits the packed form cannot represent the seq. Debug builds
  // assert; release builds saturate to kMaxSeq, which no genuine record can
  // cover — the entry reads as not-durable (safe discard), never as an
  // older, wrongly-durable SN.
  Sn sn;
  sn.channel = 1;
  sn.seq = Sn::kMaxSeq + 12345;
  EXPECT_DEBUG_DEATH(
      {
        const uint64_t packed = sn.Pack();
        EXPECT_EQ(Sn::Unpack(packed).seq, Sn::kMaxSeq);
        EXPECT_EQ(Sn::Unpack(packed).channel, 1);
      },
      "seq <= kMaxSeq");
}

TEST(SnHardeningTest, ErrorBitDoesNotPerturbWatermark) {
  CompletionRecord rec{17, 5};
  const uint64_t clean = rec.CompletedSeq();
  rec.addr |= CompletionRecord::kErrorBit;
  EXPECT_TRUE(rec.error());
  EXPECT_EQ(rec.CompletedSeq(), clean);
}

// ------------------------------------- cross-channel lookups (hard-fail)

using ChannelDeathTest = ::testing::Test;

TEST(ChannelDeathTest, CrossChannelIsCompleteAborts) {
  Simulation sim{{.num_cores = 2}};
  SlowMemory mem(&sim, MediaParams::OneNode(), 64_MB);
  DmaEngine engine(&mem, kRecordOff, 4);
  const Sn foreign = Sn::Make(0, 1, 1);
  EXPECT_DEATH(static_cast<void>(engine.channel(1).IsComplete(foreign)),
               "checked against channel");
}

TEST(ChannelDeathTest, EngineRejectsOutOfRangeChannel) {
  Simulation sim{{.num_cores = 2}};
  SlowMemory mem(&sim, MediaParams::OneNode(), 64_MB);
  DmaEngine engine(&mem, kRecordOff, 4);
  const Sn bogus = Sn::Make(9, 1, 1);  // only channels 0..3 exist
  EXPECT_DEATH(static_cast<void>(engine.IsComplete(bogus)),
               "outside this engine");
}

TEST(ChannelTest, EngineRoutesCrossChannelLookupCorrectly) {
  Simulation sim{{.num_cores = 2}};
  SlowMemory mem(&sim, MediaParams::OneNode(), 64_MB);
  DmaEngine engine(&mem, kRecordOff, 4);
  const auto src = Pattern(8_KB, 9);
  sim.Spawn(0, [&] {
    Descriptor d;
    d.dir = Descriptor::Dir::kWrite;
    d.pmem_off = kDataOff;
    d.dram = const_cast<std::byte*>(src.data());
    d.size = 8_KB;
    const Sn sn = engine.channel(2).Submit(std::move(d));
    engine.channel(2).WaitSn(sn);
    // Engine-level lookup works from any context, for any channel's SN.
    EXPECT_TRUE(engine.IsComplete(sn));
    EXPECT_TRUE(engine.IsComplete(Sn::None()));
  });
  sim.Run();
}

// -------------------------------------------------------------- quarantine

TEST(QuarantineTest, FaultStrikesQuarantineThenProbationReleases) {
  Simulation sim{{.num_cores = 2}};
  SlowMemory mem(&sim, MediaParams::TwoNode(), 64_MB);
  DmaEngine engine(&mem, kRecordOff, 6);
  ChannelManager cm(&sim, &engine, ChannelManager::Options{});
  Channel& ch0 = engine.channel(0);

  cm.ReportChannelFault(ch0);
  EXPECT_FALSE(cm.quarantined(ch0));  // one strike is not enough
  cm.ReportChannelFault(ch0);
  EXPECT_TRUE(cm.quarantined(ch0));
  EXPECT_EQ(cm.quarantines(), 1u);

  // No placement lands on the quarantined channel.
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(cm.PickWriteChannel(), &ch0);
  }
  std::vector<Channel*> picks;
  cm.PickWriteChannels(4, &picks);
  EXPECT_EQ(picks.size(), 3u);  // 4 L channels minus the quarantined one
  for (Channel* c : picks) {
    EXPECT_NE(c, &ch0);
  }

  // Probation expires after quarantine_ns of virtual time; the channel
  // rejoins the pick set.
  sim.Run();
  EXPECT_FALSE(cm.quarantined(ch0));
  picks.clear();
  cm.PickWriteChannels(4, &picks);
  EXPECT_EQ(picks.size(), 4u);
  EXPECT_NE(std::find(picks.begin(), picks.end(), &ch0), picks.end());
}

TEST(QuarantineTest, AllLChannelsQuarantinedYieldsNullptr) {
  Simulation sim{{.num_cores = 2}};
  SlowMemory mem(&sim, MediaParams::TwoNode(), 64_MB);
  DmaEngine engine(&mem, kRecordOff, 6);
  ChannelManager::Options opts;
  opts.num_l_channels = 2;
  opts.b_channel = 2;
  ChannelManager cm(&sim, &engine, opts);
  for (int c = 0; c < 2; ++c) {
    cm.ReportChannelFault(engine.channel(c));
    cm.ReportChannelFault(engine.channel(c));
  }
  EXPECT_EQ(cm.PickWriteChannel(), nullptr);
  EXPECT_EQ(cm.PickReadChannel(), nullptr);
  std::vector<Channel*> picks;
  cm.PickWriteChannels(2, &picks);
  EXPECT_TRUE(picks.empty());
}

TEST(QuarantineTest, HealthMonitorCatchesHaltedChannel) {
  FaultPlan plan;
  plan.errors.push_back({0, 0, 100});
  Simulation sim{{.num_cores = 2}};
  SlowMemory mem(&sim, MediaParams::TwoNode(), 64_MB);
  FaultInjector injector(plan);
  DmaEngine engine(&mem, kRecordOff, 6);
  engine.AttachFaultInjector(&injector);
  ChannelManager cm(&sim, &engine, ChannelManager::Options{});
  cm.StartHealthMonitor();

  const auto src = Pattern(8_KB, 10);
  sim.Spawn(0, [&] {
    Channel& ch = engine.channel(0);
    Descriptor d;
    d.dir = Descriptor::Dir::kWrite;
    d.pmem_off = kDataOff;
    d.dram = const_cast<std::byte*>(src.data());
    d.size = 8_KB;
    const Sn sn = ch.Submit(std::move(d));
    EXPECT_EQ(ch.WaitSn(sn), DmaResult::kError);  // channel halts
    // Nobody recovers it; the monitor's next scan must quarantine it.
    sim.SleepFor(100'000);
    EXPECT_TRUE(cm.quarantined(ch));
    cm.StopHealthMonitor();
    // Drain the stuck descriptor so the simulation can settle.
    RetryPolicy p;
    p.max_attempts = 0;
    EXPECT_EQ(ch.WaitSnRecover(sn, p), DmaResult::kOk);
  });
  sim.Run();
  EXPECT_GE(cm.quarantines(), 1u);
}

// -------------------------------------------------- filesystem-level paths

TestbedConfig FaultyEasyConfig() {
  TestbedConfig cfg;
  cfg.fs = FsKind::kEasy;
  cfg.machine_cores = 8;
  cfg.device_bytes = 256_MB;
  return cfg;
}

TEST(FsFaultTest, WritesAndReadsSurviveAllThreeFaultClasses) {
  TestbedConfig cfg = FaultyEasyConfig();
  // Sequential single-descriptor writes always land on the least-loaded
  // healthy L channel — channel 0 until its quarantine — so explicit
  // low-ordinal channel-0 entries are guaranteed to fire: a retried error,
  // a stall, a torn record, then a second error that trips quarantine.
  cfg.faults.errors.push_back({0, 0, 1});
  cfg.faults.stalls.push_back({0, 1, 50'000});
  cfg.faults.torn.push_back({0, 2});
  cfg.faults.errors.push_back({0, 4, 1});
  Testbed tb(cfg);
  std::vector<std::vector<std::byte>> datas;
  for (int i = 0; i < 12; ++i) {
    datas.push_back(Pattern(32_KB, 100 + static_cast<uint64_t>(i)));
  }
  tb.sim().Spawn(0, [&] {
    for (int i = 0; i < 12; ++i) {
      const std::string path = "/f" + std::to_string(i);
      int fd = *tb.fs().Create(path);
      ASSERT_TRUE(tb.fs().Write(fd, 0, datas[static_cast<size_t>(i)]).ok());
      ASSERT_TRUE(tb.fs().Close(fd).ok());
    }
    for (int i = 0; i < 12; ++i) {
      const std::string path = "/f" + std::to_string(i);
      int fd = *tb.fs().Open(path);
      std::vector<std::byte> back(32_KB);
      ASSERT_TRUE(tb.fs().Read(fd, 0, back).ok());
      EXPECT_EQ(back, datas[static_cast<size_t>(i)]) << path;
      ASSERT_TRUE(tb.fs().Close(fd).ok());
    }
  });
  tb.sim().Run();
  // The workload hit every injected fault class (not a vacuous pass), and
  // the second error strike quarantined the channel.
  const Channel& ch0 = tb.engine()->channel(0);
  EXPECT_EQ(ch0.transfer_errors(), 2u);
  EXPECT_EQ(ch0.retries(), 2u);
  EXPECT_EQ(ch0.stalls_injected(), 1u);
  EXPECT_EQ(ch0.torn_records(), 1u);
  EXPECT_GE(tb.channel_manager()->quarantines(), 1u);
}

TEST(FsFaultTest, StripedWriteWaitsForEveryChannelsChunk) {
  // Regression for the last-SN-only wait: stripe a write over two channels
  // with heavily skewed latency. The overall last-submitted SN lands on the
  // fast channel; returning when only IT completes would leave the slow
  // channel's chunk in flight — not durable.
  TestbedConfig cfg = FaultyEasyConfig();
  cfg.cm_options.num_l_channels = 2;
  cfg.cm_options.b_channel = 2;
  cfg.easy_options.write_stripe_channels = 2;
  cfg.easy_options.stripe_chunk_bytes = 16_KB;
  Testbed tb(cfg);
  std::vector<std::byte> ballast(2_MB);
  const auto data = Pattern(48_KB, 11);
  tb.sim().Spawn(0, [&] {
    // Channel 1 first digests a 2MB read, so its stripe chunk finishes some
    // hundred microseconds after channel 0's.
    Descriptor d;
    d.dir = Descriptor::Dir::kRead;
    d.pmem_off = 128_MB;
    d.dram = ballast.data();
    d.size = 2_MB;
    tb.engine()->channel(1).Submit(std::move(d));

    int fd = *tb.fs().Create("/striped");
    ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
    // 48KB in 16KB chunks over 2 channels: both carried part of the write,
    // and the write call must not have returned before the slow channel's
    // chunk (queued behind the 2MB transfer) completed.
    EXPECT_EQ(tb.engine()->channel(1).queue_depth(), 0u);
    EXPECT_GT(tb.engine()->channel(1).descriptors_completed(), 1u);
    EXPECT_GT(tb.engine()->channel(0).descriptors_completed(), 0u);

    std::vector<std::byte> back(48_KB);
    ASSERT_TRUE(tb.fs().Read(fd, 0, back).ok());
    EXPECT_EQ(back, data);
    ASSERT_TRUE(tb.fs().Close(fd).ok());
  });
  tb.sim().Run();
  EXPECT_EQ(tb.easy()->writes_offloaded(), 1u);
}

TEST(FsFaultTest, StripedWriteSurvivesTransferErrorOnOneStripe) {
  TestbedConfig cfg = FaultyEasyConfig();
  cfg.cm_options.num_l_channels = 2;
  cfg.cm_options.b_channel = 2;
  cfg.easy_options.write_stripe_channels = 2;
  cfg.easy_options.stripe_chunk_bytes = 16_KB;
  cfg.faults.errors.push_back({1, 0, 1});  // channel 1's first chunk fails
  Testbed tb(cfg);
  const auto data = Pattern(64_KB, 12);
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/striped_err");
    ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
    std::vector<std::byte> back(64_KB);
    ASSERT_TRUE(tb.fs().Read(fd, 0, back).ok());
    EXPECT_EQ(back, data);
    ASSERT_TRUE(tb.fs().Close(fd).ok());
  });
  tb.sim().Run();
  EXPECT_EQ(tb.engine()->channel(1).transfer_errors(), 1u);
  EXPECT_EQ(tb.engine()->channel(1).retries(), 1u);
}

TEST(FsFaultTest, AllChannelsQuarantinedDegradesToMemcpy) {
  TestbedConfig cfg = FaultyEasyConfig();
  cfg.cm_options.num_l_channels = 2;
  cfg.cm_options.b_channel = 2;
  cfg.cm_options.quarantine_ns = 100'000'000;  // stays quarantined all run
  Testbed tb(cfg);
  const auto data = Pattern(32_KB, 13);
  tb.sim().Spawn(0, [&] {
    for (int c = 0; c < 2; ++c) {
      tb.channel_manager()->ReportChannelFault(tb.engine()->channel(c));
      tb.channel_manager()->ReportChannelFault(tb.engine()->channel(c));
    }
    int fd = *tb.fs().Create("/deg");
    ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
    std::vector<std::byte> back(32_KB);
    ASSERT_TRUE(tb.fs().Read(fd, 0, back).ok());
    EXPECT_EQ(back, data);
    ASSERT_TRUE(tb.fs().Close(fd).ok());
  });
  tb.sim().Run();
  // Both directions fell back to the CPU path.
  EXPECT_EQ(tb.easy()->writes_memcpy(), 1u);
  EXPECT_EQ(tb.easy()->writes_offloaded(), 0u);
  EXPECT_EQ(tb.easy()->reads_memcpy(), 1u);
  EXPECT_EQ(tb.engine()->channel(0).descriptors_completed(), 0u);
  EXPECT_EQ(tb.engine()->channel(1).descriptors_completed(), 0u);
}

TEST(FsFaultTest, NovaDmaBaselineRecoversFromTransferError) {
  TestbedConfig cfg;
  cfg.fs = FsKind::kNovaDma;
  cfg.machine_cores = 8;
  cfg.device_bytes = 256_MB;
  cfg.faults.errors.push_back({0, 0, 1});
  Testbed tb(cfg);
  const auto data = Pattern(32_KB, 14);
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/nd");
    ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
    std::vector<std::byte> back(32_KB);
    ASSERT_TRUE(tb.fs().Read(fd, 0, back).ok());
    EXPECT_EQ(back, data);
    ASSERT_TRUE(tb.fs().Close(fd).ok());
  });
  tb.sim().Run();
  uint64_t errors = 0;
  uint64_t retries = 0;
  for (int c = 0; c < tb.engine()->num_channels(); ++c) {
    errors += tb.engine()->channel(c).transfer_errors();
    retries += tb.engine()->channel(c).retries();
  }
  EXPECT_EQ(errors, 1u);
  EXPECT_EQ(retries, 1u);
}

}  // namespace
}  // namespace easyio::dma
