// End-to-end tests of the NOVA baseline filesystem (synchronous CPU mode):
// namespace operations, data paths, CoW semantics, remount recovery.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/nova/nova_fs.h"
#include "src/pmem/slow_memory.h"
#include "src/sim/simulation.h"

namespace easyio::nova {
namespace {

struct Fx {
  sim::Simulation sim{{.num_cores = 4}};
  pmem::SlowMemory mem;
  NovaFs fs;

  explicit Fx(size_t device = 64_MB)
      : mem(&sim, pmem::MediaParams::OneNode(), device), fs(&mem, {}) {
    EASYIO_CHECK_OK(fs.Format());
  }

  // Runs `fn` inside a task and drains the simulation.
  void Run(std::function<void()> fn) {
    sim.Spawn(0, std::move(fn));
    sim.Run();
  }
};

std::vector<std::byte> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> buf(n);
  for (auto& b : buf) {
    b = static_cast<std::byte>(rng.Next());
  }
  return buf;
}

TEST(NovaFsTest, CreateWriteReadBack) {
  Fx fx;
  fx.Run([&] {
    auto fd = fx.fs.Create("/a");
    ASSERT_TRUE(fd.ok());
    auto data = Pattern(10000, 1);
    auto w = fx.fs.Write(*fd, 0, data);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(*w, 10000u);
    std::vector<std::byte> back(10000);
    auto r = fx.fs.Read(*fd, 0, back);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, 10000u);
    EXPECT_EQ(back, data);
  });
}

TEST(NovaFsTest, OpenNonexistentFails) {
  Fx fx;
  fx.Run([&] {
    EXPECT_EQ(fx.fs.Open("/missing").status().code(), ErrorCode::kNotFound);
    EXPECT_EQ(fx.fs.Create("/x").status().code(), ErrorCode::kOk);
    EXPECT_EQ(fx.fs.Create("/x").status().code(), ErrorCode::kExists);
  });
}

TEST(NovaFsTest, ReadBeyondEofClamps) {
  Fx fx;
  fx.Run([&] {
    int fd = *fx.fs.Create("/a");
    auto data = Pattern(100, 2);
    ASSERT_TRUE(fx.fs.Write(fd, 0, data).ok());
    std::vector<std::byte> back(1000);
    auto r = fx.fs.Read(fd, 50, back);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, 50u);
    EXPECT_EQ(std::memcmp(back.data(), data.data() + 50, 50), 0);
    auto past = fx.fs.Read(fd, 100, back);
    ASSERT_TRUE(past.ok());
    EXPECT_EQ(*past, 0u);
  });
}

TEST(NovaFsTest, UnalignedOverwritePreservesNeighbors) {
  Fx fx;
  fx.Run([&] {
    int fd = *fx.fs.Create("/a");
    auto base = Pattern(12_KB, 3);
    ASSERT_TRUE(fx.fs.Write(fd, 0, base).ok());
    // Overwrite an unaligned interior window.
    auto patch = Pattern(5000, 4);
    ASSERT_TRUE(fx.fs.Write(fd, 3000, patch).ok());
    std::vector<std::byte> expect = base;
    std::memcpy(expect.data() + 3000, patch.data(), 5000);
    std::vector<std::byte> back(12_KB);
    ASSERT_TRUE(fx.fs.Read(fd, 0, back).ok());
    EXPECT_EQ(back, expect);
  });
}

TEST(NovaFsTest, SparseWriteReadsZerosInHole) {
  Fx fx;
  fx.Run([&] {
    int fd = *fx.fs.Create("/a");
    auto data = Pattern(4_KB, 5);
    ASSERT_TRUE(fx.fs.Write(fd, 64_KB, data).ok());
    EXPECT_EQ(fx.fs.StatFd(fd)->size, 64_KB + 4_KB);
    std::vector<std::byte> back(8_KB);
    ASSERT_TRUE(fx.fs.Read(fd, 32_KB, back).ok());
    for (std::byte b : back) {
      ASSERT_EQ(b, std::byte{0});
    }
  });
}

TEST(NovaFsTest, ExtendAfterUnalignedWriteReadsZeros) {
  Fx fx;
  fx.Run([&] {
    int fd = *fx.fs.Create("/a");
    auto d1 = Pattern(100, 6);
    ASSERT_TRUE(fx.fs.Write(fd, 0, d1).ok());
    auto d2 = Pattern(100, 7);
    ASSERT_TRUE(fx.fs.Write(fd, 200, d2).ok());
    std::vector<std::byte> back(300);
    ASSERT_TRUE(fx.fs.Read(fd, 0, back).ok());
    EXPECT_EQ(std::memcmp(back.data(), d1.data(), 100), 0);
    for (size_t i = 100; i < 200; ++i) {
      ASSERT_EQ(back[i], std::byte{0}) << i;  // gap must read as zero
    }
    EXPECT_EQ(std::memcmp(back.data() + 200, d2.data(), 100), 0);
  });
}

TEST(NovaFsTest, AppendGrowsFile) {
  Fx fx;
  fx.Run([&] {
    int fd = *fx.fs.Create("/log");
    auto a = Pattern(3000, 8);
    auto b = Pattern(3000, 9);
    ASSERT_TRUE(fx.fs.Append(fd, a).ok());
    ASSERT_TRUE(fx.fs.Append(fd, b).ok());
    EXPECT_EQ(fx.fs.StatFd(fd)->size, 6000u);
    std::vector<std::byte> back(6000);
    ASSERT_TRUE(fx.fs.Read(fd, 0, back).ok());
    EXPECT_EQ(std::memcmp(back.data(), a.data(), 3000), 0);
    EXPECT_EQ(std::memcmp(back.data() + 3000, b.data(), 3000), 0);
  });
}

TEST(NovaFsTest, MkdirAndNestedPaths) {
  Fx fx;
  fx.Run([&] {
    ASSERT_TRUE(fx.fs.Mkdir("/d").ok());
    ASSERT_TRUE(fx.fs.Mkdir("/d/e").ok());
    int fd = *fx.fs.Create("/d/e/f");
    auto data = Pattern(100, 10);
    ASSERT_TRUE(fx.fs.Write(fd, 0, data).ok());
    auto st = fx.fs.StatPath("/d/e/f");
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st->size, 100u);
    EXPECT_FALSE(st->is_dir);
    EXPECT_TRUE(fx.fs.StatPath("/d/e")->is_dir);
    EXPECT_EQ(fx.fs.Mkdir("/missing/x").code(), ErrorCode::kNotFound);
  });
}

TEST(NovaFsTest, UnlinkFreesSpace) {
  Fx fx;
  fx.Run([&] {
    // First round warms the root directory's log page so the baseline below
    // is stable.
    int fd0 = *fx.fs.Create("/warmup");
    ASSERT_TRUE(fx.fs.Close(fd0).ok());
    ASSERT_TRUE(fx.fs.Unlink("/warmup").ok());

    const uint64_t before = fx.fs.free_pages();
    int fd = *fx.fs.Create("/big");
    auto data = Pattern(1_MB, 11);
    ASSERT_TRUE(fx.fs.Write(fd, 0, data).ok());
    ASSERT_TRUE(fx.fs.Close(fd).ok());
    EXPECT_LT(fx.fs.free_pages(), before);
    ASSERT_TRUE(fx.fs.Unlink("/big").ok());
    // All of the file's data and log pages come back (the root log page
    // stays, as it should).
    EXPECT_EQ(fx.fs.free_pages(), before);
    EXPECT_EQ(fx.fs.Open("/big").status().code(), ErrorCode::kNotFound);
  });
}

TEST(NovaFsTest, UnlinkOpenFileDefersFree) {
  Fx fx;
  fx.Run([&] {
    int fd = *fx.fs.Create("/f");
    auto data = Pattern(8_KB, 12);
    ASSERT_TRUE(fx.fs.Write(fd, 0, data).ok());
    ASSERT_TRUE(fx.fs.Unlink("/f").ok());
    // Still readable through the open fd.
    std::vector<std::byte> back(8_KB);
    ASSERT_TRUE(fx.fs.Read(fd, 0, back).ok());
    EXPECT_EQ(back, data);
    ASSERT_TRUE(fx.fs.Close(fd).ok());
    EXPECT_EQ(fx.fs.Open("/f").status().code(), ErrorCode::kNotFound);
  });
}

TEST(NovaFsTest, RenameMovesAndReplacesAtomically) {
  Fx fx;
  fx.Run([&] {
    int a = *fx.fs.Create("/a");
    auto da = Pattern(100, 13);
    ASSERT_TRUE(fx.fs.Write(a, 0, da).ok());
    ASSERT_TRUE(fx.fs.Close(a).ok());
    int b = *fx.fs.Create("/b");
    auto db = Pattern(200, 14);
    ASSERT_TRUE(fx.fs.Write(b, 0, db).ok());
    ASSERT_TRUE(fx.fs.Close(b).ok());

    ASSERT_TRUE(fx.fs.Rename("/a", "/b").ok());  // replaces /b
    EXPECT_EQ(fx.fs.Open("/a").status().code(), ErrorCode::kNotFound);
    auto st = fx.fs.StatPath("/b");
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st->size, 100u);

    ASSERT_TRUE(fx.fs.Mkdir("/dir").ok());
    ASSERT_TRUE(fx.fs.Rename("/b", "/dir/c").ok());
    EXPECT_EQ(fx.fs.StatPath("/dir/c")->size, 100u);
  });
}

TEST(NovaFsTest, HardLinksShareData) {
  Fx fx;
  fx.Run([&] {
    int fd = *fx.fs.Create("/orig");
    auto data = Pattern(5000, 15);
    ASSERT_TRUE(fx.fs.Write(fd, 0, data).ok());
    ASSERT_TRUE(fx.fs.Link("/orig", "/alias").ok());
    EXPECT_EQ(fx.fs.StatPath("/orig")->nlink, 2u);
    int fd2 = *fx.fs.Open("/alias");
    std::vector<std::byte> back(5000);
    ASSERT_TRUE(fx.fs.Read(fd2, 0, back).ok());
    EXPECT_EQ(back, data);
    // Unlink one name: data survives under the other.
    ASSERT_TRUE(fx.fs.Unlink("/orig").ok());
    EXPECT_EQ(fx.fs.StatPath("/alias")->nlink, 1u);
    ASSERT_TRUE(fx.fs.Read(fd2, 0, back).ok());
    EXPECT_EQ(back, data);
  });
}

TEST(NovaFsTest, ManyFilesAndLogPageChaining) {
  Fx fx;
  fx.Run([&] {
    // >63 dentries force the root log onto a second page.
    for (int i = 0; i < 200; ++i) {
      auto fd = fx.fs.Create("/f" + std::to_string(i));
      ASSERT_TRUE(fd.ok()) << i;
      ASSERT_TRUE(fx.fs.Close(*fd).ok());
    }
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(fx.fs.StatPath("/f" + std::to_string(i)).ok()) << i;
    }
  });
}

TEST(NovaFsTest, RemountRestoresEverything) {
  sim::Simulation sim({.num_cores = 2});
  pmem::SlowMemory mem(&sim, pmem::MediaParams::OneNode(), 64_MB);
  auto data = Pattern(100_KB, 16);
  {
    NovaFs fs(&mem, {});
    EASYIO_CHECK_OK(fs.Format());
    sim.Spawn(0, [&] {
      ASSERT_TRUE(fs.Mkdir("/d").ok());
      int fd = *fs.Create("/d/file");
      ASSERT_TRUE(fs.Write(fd, 0, data).ok());
      ASSERT_TRUE(fs.Write(fd, 10_KB, std::span(data).subspan(0, 5_KB)).ok());
      ASSERT_TRUE(fs.Close(fd).ok());
      ASSERT_TRUE(fs.Link("/d/file", "/d/link").ok());
      int fd2 = *fs.Create("/d/gone");
      ASSERT_TRUE(fs.Close(fd2).ok());
      ASSERT_TRUE(fs.Unlink("/d/gone").ok());
    });
    sim.Run();
  }
  // Second incarnation on the same device image.
  NovaFs fs2(&mem, {});
  ASSERT_TRUE(fs2.Mount().ok());
  sim.Spawn(0, [&] {
    auto st = fs2.StatPath("/d/file");
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st->size, 100_KB);
    EXPECT_EQ(st->nlink, 2u);
    EXPECT_EQ(fs2.StatPath("/d/gone").status().code(), ErrorCode::kNotFound);
    int fd = *fs2.Open("/d/link");
    std::vector<std::byte> expect = data;
    std::memcpy(expect.data() + 10_KB, data.data(), 5_KB);
    std::vector<std::byte> back(100_KB);
    ASSERT_TRUE(fs2.Read(fd, 0, back).ok());
    EXPECT_EQ(back, expect);
  });
  sim.Run();
}

TEST(NovaFsTest, RemountPreservesFreeSpaceAccounting) {
  sim::Simulation sim({.num_cores = 1});
  pmem::SlowMemory mem(&sim, pmem::MediaParams::OneNode(), 64_MB);
  uint64_t free_before = 0;
  {
    NovaFs fs(&mem, {});
    EASYIO_CHECK_OK(fs.Format());
    sim.Spawn(0, [&] {
      int fd = *fs.Create("/a");
      auto data = Pattern(256_KB, 17);
      ASSERT_TRUE(fs.Write(fd, 0, data).ok());
      // Overwrite to exercise displaced-block free.
      ASSERT_TRUE(fs.Write(fd, 0, data).ok());
    });
    sim.Run();
    free_before = fs.free_pages();
  }
  NovaFs fs2(&mem, {});
  ASSERT_TRUE(fs2.Mount().ok());
  EXPECT_EQ(fs2.free_pages(), free_before);
}

TEST(NovaFsTest, MountGarbageFails) {
  sim::Simulation sim({.num_cores = 1});
  pmem::SlowMemory mem(&sim, pmem::MediaParams::OneNode(), 16_MB);
  NovaFs fs(&mem, {});
  EXPECT_EQ(fs.Mount().code(), ErrorCode::kCorruption);
}

TEST(NovaFsTest, ConcurrentWritersOnPrivateFiles) {
  Fx fx;
  std::vector<std::vector<std::byte>> datas;
  for (int i = 0; i < 4; ++i) {
    datas.push_back(Pattern(64_KB, 100 + static_cast<uint64_t>(i)));
  }
  for (int i = 0; i < 4; ++i) {
    fx.sim.Spawn(i, [&, i] {
      int fd = *fx.fs.Create("/w" + std::to_string(i));
      ASSERT_TRUE(fx.fs.Write(fd, 0, datas[static_cast<size_t>(i)]).ok());
      std::vector<std::byte> back(64_KB);
      ASSERT_TRUE(fx.fs.Read(fd, 0, back).ok());
      EXPECT_EQ(back, datas[static_cast<size_t>(i)]);
    });
  }
  fx.sim.Run();
}

TEST(NovaFsTest, SharedFileWritersSerialize) {
  Fx fx;
  fx.Run([&] {
    int fd = *fx.fs.Create("/shared");
    auto zero = Pattern(64_KB, 200);
    ASSERT_TRUE(fx.fs.Write(fd, 0, zero).ok());
  });
  // 4 concurrent overwriters of disjoint 16K regions.
  for (int i = 0; i < 4; ++i) {
    fx.sim.Spawn(i, [&, i] {
      int fd = *fx.fs.Open("/shared");
      auto data = Pattern(16_KB, 300 + static_cast<uint64_t>(i));
      ASSERT_TRUE(
          fx.fs.Write(fd, static_cast<uint64_t>(i) * 16_KB, data).ok());
      std::vector<std::byte> back(16_KB);
      ASSERT_TRUE(
          fx.fs.Read(fd, static_cast<uint64_t>(i) * 16_KB, back).ok());
      EXPECT_EQ(back, data);
    });
  }
  fx.sim.Run();
}

TEST(NovaFsTest, OpStatsBreakdownSums) {
  Fx fx;
  fx.Run([&] {
    int fd = *fx.fs.Create("/a");
    auto data = Pattern(64_KB, 18);
    fs::OpStats st;
    ASSERT_TRUE(fx.fs.Write(fd, 0, data, &st).ok());
    EXPECT_GT(st.total_ns, 0u);
    EXPECT_GT(st.syscall_ns, 0u);
    EXPECT_GT(st.index_ns, 0u);
    EXPECT_GT(st.meta_ns, 0u);
    EXPECT_GT(st.data_ns, 0u);
    // Synchronous mode: CPU time equals total and the categories cover most
    // of the operation (locking is the only uncharged slice).
    EXPECT_EQ(st.cpu_ns, st.total_ns);
    EXPECT_GE(st.syscall_ns + st.index_ns + st.meta_ns + st.data_ns,
              st.total_ns * 95 / 100);
    // The paper's Fig 1: memcpy dominates 64K writes.
    EXPECT_GT(st.data_ns, st.total_ns / 2);
  });
}

TEST(NovaFsTest, BadFdRejected) {
  Fx fx;
  fx.Run([&] {
    std::vector<std::byte> buf(10);
    EXPECT_EQ(fx.fs.Read(99, 0, buf).status().code(), ErrorCode::kBadFd);
    EXPECT_EQ(fx.fs.Write(99, 0, buf).status().code(), ErrorCode::kBadFd);
    EXPECT_EQ(fx.fs.Close(99).code(), ErrorCode::kBadFd);
    EXPECT_EQ(fx.fs.Fsync(99).code(), ErrorCode::kBadFd);
  });
}

TEST(NovaFsTest, NameTooLongRejected) {
  Fx fx;
  fx.Run([&] {
    const std::string long_name(kMaxNameLen + 1, 'x');
    EXPECT_EQ(fx.fs.Create("/" + long_name).status().code(),
              ErrorCode::kNameTooLong);
  });
}

}  // namespace
}  // namespace easyio::nova
