// Tests of the NOVA-DMA and OdinFS comparison systems.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/harness/testbed.h"

namespace easyio::baselines {
namespace {

using harness::FsKind;
using harness::Testbed;
using harness::TestbedConfig;

std::vector<std::byte> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> buf(n);
  for (auto& b : buf) {
    b = static_cast<std::byte>(rng.Next());
  }
  return buf;
}

TestbedConfig Config(FsKind kind) {
  TestbedConfig cfg;
  cfg.fs = kind;
  cfg.machine_cores = 36;
  cfg.device_bytes = 256_MB;
  return cfg;
}

TEST(NovaDmaFsTest, RoundTripAndDurability) {
  Testbed tb(Config(FsKind::kNovaDma));
  auto data = Pattern(100_KB, 1);
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/a");
    ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
    std::vector<std::byte> back(100_KB);
    ASSERT_TRUE(tb.fs().Read(fd, 0, back).ok());
    EXPECT_EQ(back, data);
  });
  tb.sim().Run();
}

TEST(NovaDmaFsTest, SynchronousInterfaceHoldsCore) {
  Testbed tb(Config(FsKind::kNovaDma));
  sim::SimTime other_ran_at = sim::kSimTimeMax;
  sim::SimTime write_done_at = 0;
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/a");
    auto data = Pattern(64_KB, 2);
    ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
    write_done_at = tb.sim().now();
  });
  tb.sim().Spawn(0, [&] { other_ran_at = tb.sim().now(); });
  tb.sim().Run();
  // Busy-polling the DMA: no other task ran on the core meanwhile.
  EXPECT_GE(other_ran_at, write_done_at);
}

TEST(NovaDmaFsTest, LargeWriteFasterThanCpuNova) {
  auto wall = [](FsKind kind) {
    Testbed tb(Config(kind));
    tb.sim().Spawn(0, [&] {
      int fd = *tb.fs().Create("/a");
      auto data = Pattern(64_KB, 3);
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
      }
    });
    tb.sim().Run();
    return tb.sim().now();
  };
  // Fig 8: DMA offload shortens single-thread 64K write latency.
  EXPECT_LT(wall(FsKind::kNovaDma), wall(FsKind::kNova));
}

TEST(DelegationPoolTest, MovesDataInChunks) {
  sim::Simulation sim({.num_cores = 6});
  pmem::SlowMemory mem(&sim, pmem::MediaParams::TwoNode(), 64_MB);
  DelegationPool pool(&sim, &mem, {.first_core = 2, .num_threads = 4});
  pool.Start();
  auto data = Pattern(256_KB, 4);
  sim.Spawn(0, [&] {
    pool.Move(/*to_pmem=*/true, 1_MB, data.data(), data.size());
    EXPECT_EQ(std::memcmp(mem.raw() + 1_MB, data.data(), data.size()), 0);
    std::vector<std::byte> back(256_KB);
    pool.Move(/*to_pmem=*/false, 1_MB, back.data(), back.size());
    EXPECT_EQ(back, data);
  });
  sim.Run();
  EXPECT_EQ(pool.requests_processed(), 2 * 256_KB / 32_KB);
}

TEST(DelegationPoolTest, ParallelChunksBeatSingleStream) {
  // One 1MB write through 8 delegation threads vs one CPU stream.
  sim::Simulation sim({.num_cores = 10});
  pmem::SlowMemory mem(&sim, pmem::MediaParams::TwoNode(), 64_MB);
  DelegationPool pool(&sim, &mem, {.first_core = 2, .num_threads = 8});
  pool.Start();
  auto data = Pattern(1_MB, 5);
  sim::SimTime delegated = 0;
  sim.Spawn(0, [&] {
    const sim::SimTime t0 = sim.now();
    pool.Move(true, 1_MB, data.data(), data.size());
    delegated = sim.now() - t0;
  });
  sim.Run();

  sim::Simulation sim2({.num_cores = 1});
  pmem::SlowMemory mem2(&sim2, pmem::MediaParams::TwoNode(), 64_MB);
  sim::SimTime single = 0;
  sim2.Spawn(0, [&] {
    const sim::SimTime t0 = sim2.now();
    mem2.CpuWrite(1_MB, data.data(), data.size());
    single = sim2.now() - t0;
  });
  sim2.Run();
  EXPECT_LT(delegated, single);
}

TEST(OdinFsTest, RoundTrip) {
  Testbed tb(Config(FsKind::kOdin));
  auto data = Pattern(300_KB, 6);
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/a");
    ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
    std::vector<std::byte> back(300_KB);
    ASSERT_TRUE(tb.fs().Read(fd, 0, back).ok());
    EXPECT_EQ(back, data);
  });
  tb.sim().Run();
  EXPECT_GT(tb.delegation()->requests_processed(), 0u);
}

TEST(OdinFsTest, SmallIoSkipsDelegation) {
  Testbed tb(Config(FsKind::kOdin));
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/a");
    auto data = Pattern(4_KB, 7);
    ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
  });
  tb.sim().Run();
  EXPECT_EQ(tb.delegation()->requests_processed(), 0u);
}

TEST(OdinFsTest, ReservedCoresReduceWorkerBudget) {
  Testbed tb(Config(FsKind::kOdin));
  EXPECT_EQ(tb.max_worker_cores(), 12);  // 36 - 24 reserved (§6.1)
}

TEST(OdinFsTest, LargeIoLatencyBeatsNova) {
  auto wall = [](FsKind kind) {
    Testbed tb(Config(kind));
    uint64_t total = 0;
    tb.sim().Spawn(0, [&] {
      int fd = *tb.fs().Create("/a");
      auto data = Pattern(64_KB, 8);
      for (int i = 0; i < 10; ++i) {
        fs::OpStats st;
        ASSERT_TRUE(tb.fs().Write(fd, 0, data, &st).ok());
        total += st.total_ns;
      }
    });
    tb.sim().Run();
    return total;
  };
  // Fig 8: OdinFS shows better latency than NOVA for large I/Os.
  EXPECT_LT(wall(FsKind::kOdin), wall(FsKind::kNova));
}

}  // namespace
}  // namespace easyio::baselines
