#include <gtest/gtest.h>

#include <vector>

#include "src/common/units.h"
#include "src/sim/simulation.h"
#include "src/uthread/scheduler.h"

namespace easyio::uthread {
namespace {

using sim::Simulation;
using sim::Task;

TEST(SchedulerTest, SpawnBalancesAcrossCores) {
  Simulation sim({.num_cores = 4});
  Scheduler sched(&sim, {.first_core = 0, .num_cores = 4});
  std::vector<int> cores;
  for (int i = 0; i < 8; ++i) {
    sched.Spawn([&sim, &cores] {
      cores.push_back(sim.current()->core());
      sim.Advance(10_us);  // keep the core busy so placement spreads
    });
  }
  sim.Run();
  // All four cores must have been used.
  std::vector<int> seen(4, 0);
  for (int c : cores) {
    seen[static_cast<size_t>(c)]++;
  }
  for (int c = 0; c < 4; ++c) {
    EXPECT_GT(seen[static_cast<size_t>(c)], 0) << "core " << c;
  }
}

TEST(SchedulerTest, SubsetOfCores) {
  Simulation sim({.num_cores = 8});
  Scheduler sched(&sim, {.first_core = 4, .num_cores = 2});
  std::vector<int> cores;
  for (int i = 0; i < 6; ++i) {
    sched.Spawn([&sim, &cores] { cores.push_back(sim.current()->core()); });
  }
  sim.Run();
  for (int c : cores) {
    EXPECT_GE(c, 4);
    EXPECT_LE(c, 5);
  }
}

TEST(SchedulerTest, RunWorkersJoinsAll) {
  Simulation sim({.num_cores = 2});
  Scheduler sched(&sim, {.first_core = 0, .num_cores = 2});
  int done = 0;
  sim.Spawn(0, [&] {
    sched.RunWorkers(10, [&](int id) {
      sim.Advance(1_us);
      done++;
    });
    EXPECT_EQ(done, 10);
  });
  sim.Run();
  EXPECT_EQ(done, 10);
}

TEST(SchedulerTest, YieldChargesSwitchCost) {
  Simulation sim({.num_cores = 1});
  Scheduler sched(&sim, {.first_core = 0, .num_cores = 1,
                         .switch_cost_ns = 120});
  sim::SimTime after = 0;
  sched.Spawn([&] {
    sched.Yield();
    after = sim.now();
  });
  sim.Run();
  EXPECT_GE(after, 120u);
}

TEST(SchedulerTest, WorkStealingDrainsBusyCore) {
  Simulation sim({.num_cores = 2});
  Scheduler sched(&sim, {.first_core = 0, .num_cores = 2,
                         .work_stealing = true});
  // Flood core 0; core 1 should steal some of the queued work.
  int ran_on_1 = 0;
  for (int i = 0; i < 10; ++i) {
    sched.SpawnOn(0, [&] {
      if (sim.current()->core() == 1) {
        ran_on_1++;
      }
      sim.Advance(5_us);
    });
  }
  sim.Run();
  EXPECT_GT(ran_on_1, 0);
  // With stealing, wall time is about half the serial time.
  EXPECT_LT(sim.now(), 10 * 5_us);
}

TEST(SchedulerTest, NoStealingAcrossRuntimes) {
  Simulation sim({.num_cores = 2});
  Scheduler a(&sim, {.first_core = 0, .num_cores = 1});
  Scheduler b(&sim, {.first_core = 1, .num_cores = 1});
  std::vector<int> a_cores;
  for (int i = 0; i < 4; ++i) {
    a.Spawn([&] {
      a_cores.push_back(sim.current()->core());
      sim.Advance(1_us);
    });
  }
  b.Spawn([&] { sim.Advance(1_us); });
  sim.Run();
  for (int c : a_cores) {
    EXPECT_EQ(c, 0);  // app A's uthreads never ran on app B's core
  }
}

TEST(MutexTest, MutualExclusion) {
  Simulation sim({.num_cores = 2});
  Mutex mu(&sim);
  int in_critical = 0;
  int max_in_critical = 0;
  for (int i = 0; i < 2; ++i) {
    sim.Spawn(i, [&] {
      for (int k = 0; k < 50; ++k) {
        mu.Lock();
        in_critical++;
        max_in_critical = std::max(max_in_critical, in_critical);
        sim.Advance(100);
        in_critical--;
        mu.Unlock();
      }
    });
  }
  sim.Run();
  EXPECT_EQ(max_in_critical, 1);
}

TEST(MutexTest, FifoHandoff) {
  Simulation sim({.num_cores = 4});
  Mutex mu(&sim);
  std::vector<int> order;
  sim.Spawn(0, [&] {
    mu.Lock();
    sim.Advance(10_us);  // let waiters queue in core order
    mu.Unlock();
  });
  for (int i = 1; i < 4; ++i) {
    sim.ScheduleAt(static_cast<sim::SimTime>(i) * 100, [&sim, &mu, &order, i] {
      sim.Spawn(i, [&mu, &order, i] {
        mu.Lock();
        order.push_back(i);
        mu.Unlock();
      });
    });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(MutexTest, TryLock) {
  Simulation sim({.num_cores = 1});
  Mutex mu(&sim);
  sim.Spawn(0, [&] {
    EXPECT_TRUE(mu.TryLock());
    EXPECT_FALSE(mu.TryLock());
    mu.Unlock();
    EXPECT_TRUE(mu.TryLock());
    mu.Unlock();
  });
  sim.Run();
}

TEST(RwLockTest, ReadersShare) {
  Simulation sim({.num_cores = 4});
  RwLock rw(&sim);
  int concurrent = 0;
  int max_concurrent = 0;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn(i, [&] {
      rw.ReadLock();
      concurrent++;
      max_concurrent = std::max(max_concurrent, concurrent);
      sim.Advance(1_us);
      concurrent--;
      rw.ReadUnlock();
    });
  }
  sim.Run();
  EXPECT_EQ(max_concurrent, 4);
}

TEST(RwLockTest, WriterExcludesReaders) {
  Simulation sim({.num_cores = 3});
  RwLock rw(&sim);
  bool writer_active = false;
  bool overlap = false;
  sim.Spawn(0, [&] {
    rw.WriteLock();
    writer_active = true;
    sim.Advance(5_us);
    writer_active = false;
    rw.WriteUnlock();
  });
  for (int i = 1; i < 3; ++i) {
    sim.Spawn(i, [&] {
      rw.ReadLock();
      overlap |= writer_active;
      rw.ReadUnlock();
    });
  }
  sim.Run();
  EXPECT_FALSE(overlap);
}

TEST(RwLockTest, WriterPreferenceAvoidsStarvation) {
  Simulation sim({.num_cores = 4});
  RwLock rw(&sim);
  sim::SimTime writer_done = 0;
  // A stream of readers; a writer arrives at 1us and must not wait for
  // readers that arrive after it.
  sim.Spawn(0, [&] {
    rw.ReadLock();
    sim.Advance(2_us);
    rw.ReadUnlock();
  });
  sim.ScheduleAt(1_us, [&] {
    sim.Spawn(1, [&] {
      rw.WriteLock();
      writer_done = sim.now();
      rw.WriteUnlock();
    });
  });
  sim.ScheduleAt(1500, [&] {
    sim.Spawn(2, [&] {
      rw.ReadLock();
      // This reader queued behind the writer.
      EXPECT_GE(sim.now(), writer_done);
      rw.ReadUnlock();
    });
  });
  sim.Run();
  EXPECT_EQ(writer_done, 2_us);
}

TEST(CondVarTest, WaitAndNotify) {
  Simulation sim({.num_cores = 2});
  Mutex mu(&sim);
  CondVar cv(&sim);
  bool ready = false;
  sim::SimTime consumer_woke = 0;
  sim.Spawn(0, [&] {
    mu.Lock();
    while (!ready) {
      cv.Wait(&mu);
    }
    consumer_woke = sim.now();
    mu.Unlock();
  });
  sim.Spawn(1, [&] {
    sim.Advance(3_us);
    mu.Lock();
    ready = true;
    cv.NotifyOne();
    mu.Unlock();
  });
  sim.Run();
  EXPECT_GE(consumer_woke, 3_us);
}

TEST(CondVarTest, NotifyAllWakesEveryone) {
  Simulation sim({.num_cores = 4});
  Mutex mu(&sim);
  CondVar cv(&sim);
  bool go = false;
  int woke = 0;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn(i, [&] {
      mu.Lock();
      while (!go) {
        cv.Wait(&mu);
      }
      woke++;
      mu.Unlock();
    });
  }
  sim.Spawn(3, [&] {
    sim.Advance(1_us);
    mu.Lock();
    go = true;
    cv.NotifyAll();
    mu.Unlock();
  });
  sim.Run();
  EXPECT_EQ(woke, 3);
}

}  // namespace
}  // namespace easyio::uthread
