#include <gtest/gtest.h>

#include <cmath>

#include "src/common/units.h"
#include "src/sim/flow_resource.h"
#include "src/sim/simulation.h"

namespace easyio::sim {
namespace {

CapacityModel FlatModel(double total_gbps) {
  CapacityModel m;
  m.cpu_aggregate = [total_gbps](int) { return total_gbps; };
  m.dma_aggregate = [total_gbps](int) { return total_gbps; };
  m.total = total_gbps;
  return m;
}

TEST(FlowResourceTest, SingleFlowTakesExpectedTime) {
  Simulation sim({.num_cores = 1});
  FlowResource res(&sim, "w", FlatModel(1.0));  // 1 GiB/s
  SimTime done_at = 0;
  res.StartFlow(1_GB, 10.0, FlowType::kCpu, [&] { done_at = sim.now(); });
  sim.Run();
  EXPECT_NEAR(static_cast<double>(done_at), 1e9, 1e6);  // ~1 second
}

TEST(FlowResourceTest, PerFlowCapLimitsRate) {
  Simulation sim({.num_cores = 1});
  FlowResource res(&sim, "w", FlatModel(100.0));
  SimTime done_at = 0;
  res.StartFlow(1_GB, 2.0, FlowType::kCpu, [&] { done_at = sim.now(); });
  sim.Run();
  EXPECT_NEAR(static_cast<double>(done_at), 0.5e9, 1e6);  // capped at 2 GiB/s
}

TEST(FlowResourceTest, TwoEqualFlowsShareFairly) {
  Simulation sim({.num_cores = 1});
  FlowResource res(&sim, "w", FlatModel(2.0));
  SimTime a_done = 0;
  SimTime b_done = 0;
  res.StartFlow(1_GB, 10.0, FlowType::kCpu, [&] { a_done = sim.now(); });
  res.StartFlow(1_GB, 10.0, FlowType::kCpu, [&] { b_done = sim.now(); });
  sim.Run();
  // Each gets 1 GiB/s; both finish at ~1s.
  EXPECT_NEAR(static_cast<double>(a_done), 1e9, 2e6);
  EXPECT_NEAR(static_cast<double>(b_done), 1e9, 2e6);
}

TEST(FlowResourceTest, WaterFillingRespectsSmallCap) {
  Simulation sim({.num_cores = 1});
  FlowResource res(&sim, "w", FlatModel(10.0));
  SimTime small_done = 0;
  SimTime big_done = 0;
  // Small flow capped at 1 GiB/s leaves 9 GiB/s for the other.
  res.StartFlow(1_GB, 1.0, FlowType::kCpu, [&] { small_done = sim.now(); });
  res.StartFlow(9_GB, 100.0, FlowType::kCpu, [&] { big_done = sim.now(); });
  sim.Run();
  EXPECT_NEAR(static_cast<double>(small_done), 1e9, 5e6);
  EXPECT_NEAR(static_cast<double>(big_done), 1e9, 5e6);
}

TEST(FlowResourceTest, LateJoinerSlowsExisting) {
  Simulation sim({.num_cores = 1});
  FlowResource res(&sim, "w", FlatModel(2.0));
  SimTime a_done = 0;
  res.StartFlow(2_GB, 10.0, FlowType::kCpu, [&] { a_done = sim.now(); });
  // At t=0.5s, flow A has moved 1 GiB. Then B joins; both run at 1 GiB/s.
  sim.ScheduleAt(500_ms, [&] {
    res.StartFlow(1_GB, 10.0, FlowType::kCpu, [] {});
  });
  sim.Run();
  // A needs another 1 GiB at 1 GiB/s => done at 1.5s.
  EXPECT_NEAR(static_cast<double>(a_done), 1.5e9, 5e6);
}

TEST(FlowResourceTest, CompletionFreesBandwidth) {
  Simulation sim({.num_cores = 1});
  FlowResource res(&sim, "w", FlatModel(2.0));
  SimTime b_done = 0;
  res.StartFlow(1_GB, 10.0, FlowType::kCpu, [] {});
  res.StartFlow(2_GB, 10.0, FlowType::kCpu, [&] { b_done = sim.now(); });
  sim.Run();
  // Both at 1 GiB/s until A finishes at t=1s; B then runs at 2 GiB/s for its
  // remaining 1 GiB => done at 1.5s.
  EXPECT_NEAR(static_cast<double>(b_done), 1.5e9, 5e6);
}

TEST(FlowResourceTest, TypeAggregatesAreSeparate) {
  Simulation sim({.num_cores = 1});
  CapacityModel m;
  m.cpu_aggregate = [](int) { return 1.0; };
  m.dma_aggregate = [](int) { return 3.0; };
  m.total = 10.0;
  FlowResource res(&sim, "w", m);
  SimTime cpu_done = 0;
  SimTime dma_done = 0;
  res.StartFlow(1_GB, 10.0, FlowType::kCpu, [&] { cpu_done = sim.now(); });
  res.StartFlow(3_GB, 10.0, FlowType::kDma, [&] { dma_done = sim.now(); });
  sim.Run();
  EXPECT_NEAR(static_cast<double>(cpu_done), 1e9, 5e6);
  EXPECT_NEAR(static_cast<double>(dma_done), 1e9, 5e6);
}

TEST(FlowResourceTest, TotalCeilingScalesDown) {
  Simulation sim({.num_cores = 1});
  CapacityModel m;
  m.cpu_aggregate = [](int) { return 4.0; };
  m.dma_aggregate = [](int) { return 4.0; };
  m.total = 4.0;  // both types together cannot exceed 4
  FlowResource res(&sim, "w", m);
  SimTime cpu_done = 0;
  res.StartFlow(1_GB, 10.0, FlowType::kCpu, [&] { cpu_done = sim.now(); });
  res.StartFlow(1_GB, 10.0, FlowType::kDma, [] {});
  sim.Run();
  // Each type would get 4; scaled to 2 each.
  EXPECT_NEAR(static_cast<double>(cpu_done), 0.5e9, 5e6);
}

TEST(FlowResourceTest, CompositionDependentCapacity) {
  Simulation sim({.num_cores = 1});
  CapacityModel m;
  // Models Optane CPU-write collapse: 2 writers halve the total.
  m.cpu_aggregate = [](int n) { return n >= 2 ? 1.0 : 2.0; };
  m.dma_aggregate = [](int) { return 0.0; };
  m.total = 100.0;
  FlowResource res(&sim, "w", m);
  SimTime a_done = 0;
  res.StartFlow(1_GB, 10.0, FlowType::kCpu, [&] { a_done = sim.now(); });
  res.StartFlow(10_GB, 10.0, FlowType::kCpu, [] {});
  sim.Run();
  // Total is 1 GiB/s shared by 2 => A moves at 0.5 GiB/s => 2s.
  EXPECT_NEAR(static_cast<double>(a_done), 2e9, 1e7);
}

TEST(FlowResourceTest, ProgressTracksPartialTransfer) {
  Simulation sim({.num_cores = 1});
  FlowResource res(&sim, "w", FlatModel(1.0));
  auto id = res.StartFlow(1_GB, 10.0, FlowType::kCpu, [] {});
  sim.RunUntil(250_ms);
  EXPECT_NEAR(res.Progress(id), 0.25, 0.01);
  sim.RunUntil(750_ms);
  EXPECT_NEAR(res.Progress(id), 0.75, 0.01);
  sim.Run();
  EXPECT_EQ(res.Progress(id), 1.0);  // completed flows report 1.0
}

TEST(FlowResourceTest, CancelReturnsProgressAndFreesBandwidth) {
  Simulation sim({.num_cores = 1});
  FlowResource res(&sim, "w", FlatModel(2.0));
  SimTime b_done = 0;
  auto a = res.StartFlow(4_GB, 10.0, FlowType::kCpu, [] {
    ADD_FAILURE() << "cancelled flow must not complete";
  });
  res.StartFlow(2_GB, 10.0, FlowType::kCpu, [&] { b_done = sim.now(); });
  sim.ScheduleAt(1_s, [&] {
    const double progress = res.CancelFlow(a);
    EXPECT_NEAR(progress, 0.25, 0.01);  // 1 GiB of 4 moved at 1 GiB/s
  });
  sim.Run();
  // B: 1 GiB in the first second, then 1 GiB at full 2 GiB/s => 1.5s.
  EXPECT_NEAR(static_cast<double>(b_done), 1.5e9, 5e6);
}

TEST(FlowResourceTest, ZeroByteFlowCompletesImmediately) {
  Simulation sim({.num_cores = 1});
  FlowResource res(&sim, "w", FlatModel(1.0));
  bool done = false;
  res.StartFlow(0, 10.0, FlowType::kCpu, [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0u);
}

TEST(FlowResourceTest, ChainedFlowsFromCallback) {
  // A DMA channel starts the next descriptor from the completion callback.
  Simulation sim({.num_cores = 1});
  FlowResource res(&sim, "w", FlatModel(1.0));
  SimTime second_done = 0;
  res.StartFlow(1_GB, 10.0, FlowType::kDma, [&] {
    res.StartFlow(1_GB, 10.0, FlowType::kDma,
                  [&] { second_done = sim.now(); });
  });
  sim.Run();
  EXPECT_NEAR(static_cast<double>(second_done), 2e9, 5e6);
}

TEST(FlowResourceTest, ThrottledToZeroStalls) {
  Simulation sim({.num_cores = 1});
  CapacityModel m;
  m.cpu_aggregate = [](int) { return 0.0; };  // fully suspended
  m.dma_aggregate = [](int) { return 0.0; };
  m.total = 10.0;
  FlowResource res(&sim, "w", m);
  bool done = false;
  res.StartFlow(1_KB, 10.0, FlowType::kCpu, [&] { done = true; });
  sim.RunUntil(10_s);
  EXPECT_FALSE(done);
}

TEST(FlowResourceTest, BytesCompletedAccounting) {
  Simulation sim({.num_cores = 1});
  FlowResource res(&sim, "w", FlatModel(1.0));
  res.StartFlow(1_MB, 10.0, FlowType::kCpu, [] {});
  res.StartFlow(2_MB, 10.0, FlowType::kCpu, [] {});
  sim.Run();
  EXPECT_EQ(res.bytes_completed(), 3_MB);
}

TEST(FlowResourceTest, ManySmallFlowsAggregateThroughput) {
  Simulation sim({.num_cores = 1});
  FlowResource res(&sim, "w", FlatModel(6.6));
  int completions = 0;
  // 1000 x 64KB sequentially-chained on 4 "channels".
  std::function<void(int, int)> chain = [&](int chan, int remaining) {
    if (remaining == 0) {
      return;
    }
    res.StartFlow(64_KB, 10.0, FlowType::kDma, [&, chan, remaining] {
      completions++;
      chain(chan, remaining - 1);
    });
  };
  for (int c = 0; c < 4; ++c) {
    chain(c, 250);
  }
  sim.Run();
  EXPECT_EQ(completions, 1000);
  const double secs = static_cast<double>(sim.now()) / 1e9;
  EXPECT_NEAR(GibPerSec(1000 * 64_KB, sim.now()), 6.6, 0.2);
  EXPECT_GT(secs, 0.0);
}

}  // namespace
}  // namespace easyio::sim
