#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/units.h"
#include "src/pmem/media_params.h"
#include "src/pmem/slow_memory.h"
#include "src/sim/simulation.h"

namespace easyio::pmem {
namespace {

using sim::Simulation;

TEST(SizeCurveTest, AnchorsAndClamping) {
  SizeCurve c{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(c.Lookup(4_KB), 1.0);
  EXPECT_DOUBLE_EQ(c.Lookup(16_KB), 3.0);
  EXPECT_DOUBLE_EQ(c.Lookup(64_KB), 5.0);
  EXPECT_DOUBLE_EQ(c.Lookup(1_KB), 1.0);   // clamp below
  EXPECT_DOUBLE_EQ(c.Lookup(1_MB), 5.0);   // clamp above
  // Log-linear between anchors: 2^13.5 sits halfway between 8K and 16K.
  EXPECT_NEAR(c.Lookup(11585), 2.5, 0.01);
}

TEST(MediaParamsTest, WriteAggregateConcaveThenCollapses) {
  MediaParams p = MediaParams::TwoNode();
  // Concave ramp: a single stream sees a fraction of the device total and
  // the aggregate keeps growing (sublinearly) up to the collapse point.
  EXPECT_NEAR(p.CpuWriteAggregate(1), 13.2 / (1 + p.cpu_write_concavity),
              0.01);
  EXPECT_GT(p.CpuWriteAggregate(4), p.CpuWriteAggregate(2));
  EXPECT_GT(p.CpuWriteAggregate(16), p.CpuWriteAggregate(8));
  EXPECT_LT(p.CpuWriteAggregate(16), 13.2);
  // Collapse: beyond degrade_start the total declines.
  EXPECT_LT(p.CpuWriteAggregate(28), p.CpuWriteAggregate(18));
  EXPECT_GT(p.CpuWriteAggregate(64), 0.3 * 13.2);
}

TEST(MediaParamsTest, DmaWriteAggregateDeclinesWithChannels) {
  MediaParams p = MediaParams::OneNode();
  EXPECT_GT(p.DmaWriteAggregate(1), p.DmaWriteAggregate(4));
  EXPECT_GT(p.DmaWriteAggregate(4), p.DmaWriteAggregate(8));
  EXPECT_GE(p.DmaWriteAggregate(8), p.dma_write_agg_floor - 1e-9);
}

TEST(MediaParamsTest, DmaReadAggregateNeverDeclines) {
  MediaParams p = MediaParams::OneNode();
  double prev = 0;
  for (int n = 1; n <= 8; ++n) {
    EXPECT_GE(p.DmaReadAggregate(n), prev);
    prev = p.DmaReadAggregate(n);
  }
}

TEST(MediaParamsTest, TwoNodeDoublesEngines) {
  MediaParams p = MediaParams::TwoNode();
  EXPECT_EQ(p.dma_engines, 2);
  EXPECT_EQ(p.total_channels(), 16);
  // Two engines with one channel each give 2x the single-engine base.
  EXPECT_NEAR(p.DmaWriteAggregate(2), 2 * p.dma_write_agg_base, 1e-9);
}

TEST(SlowMemoryTest, CpuWriteMovesDataAndTakesModeledTime) {
  Simulation sim({.num_cores = 1});
  SlowMemory mem(&sim, MediaParams::OneNode(), 1_MB);
  std::vector<char> src(64_KB, 'x');
  sim::SimTime elapsed = 0;
  sim.Spawn(0, [&] {
    const sim::SimTime start = sim.now();
    mem.CpuWrite(0, src.data(), src.size());
    elapsed = sim.now() - start;
  });
  sim.Run();
  EXPECT_EQ(std::memcmp(mem.raw(), src.data(), src.size()), 0);
  // One stream at the 64K per-stream cap (3.6 GiB/s one-node).
  const double expect_ns = static_cast<double>(TransferNs(64_KB, 3.6));
  EXPECT_NEAR(static_cast<double>(elapsed), expect_ns, expect_ns * 0.05);
}

TEST(SlowMemoryTest, CpuWriteHoldsCore) {
  Simulation sim({.num_cores = 1});
  SlowMemory mem(&sim, MediaParams::OneNode(), 1_MB);
  std::vector<char> src(64_KB, 'x');
  sim::SimTime other_start = 0;
  sim::SimTime write_end = 0;
  sim.Spawn(0, [&] {
    mem.CpuWrite(0, src.data(), src.size());
    write_end = sim.now();
  });
  sim.Spawn(0, [&] { other_start = sim.now(); });
  sim.Run();
  EXPECT_GE(other_start, write_end);  // memcpy burned the core
}

TEST(SlowMemoryTest, ConcurrentCpuWritersContend) {
  Simulation sim({.num_cores = 2});
  SlowMemory mem(&sim, MediaParams::OneNode(), 4_MB);
  std::vector<char> src(1_MB, 'y');
  sim::SimTime solo = 0;
  sim::SimTime pair = 0;
  {
    Simulation s1({.num_cores = 1});
    SlowMemory m1(&s1, MediaParams::OneNode(), 4_MB);
    s1.Spawn(0, [&] { m1.CpuWrite(0, src.data(), src.size()); });
    s1.Run();
    solo = s1.now();
  }
  sim.Spawn(0, [&] { mem.CpuWrite(0, src.data(), src.size()); });
  sim.Spawn(1, [&] { mem.CpuWrite(2_MB, src.data(), src.size()); });
  sim.Run();
  pair = sim.now();
  // Two 1MB writers at per-stream cap 3.6 vs total 6.2: each ~3.1 GiB/s.
  EXPECT_GT(pair, solo);
}

TEST(SlowMemoryTest, CpuReadMovesData) {
  Simulation sim({.num_cores = 1});
  SlowMemory mem(&sim, MediaParams::OneNode(), 1_MB);
  std::memset(mem.raw() + 4096, 0xAB, 4096);
  std::vector<unsigned char> dst(4096, 0);
  sim.Spawn(0, [&] { mem.CpuRead(dst.data(), 4096, 4096); });
  sim.Run();
  EXPECT_EQ(dst[0], 0xAB);
  EXPECT_EQ(dst[4095], 0xAB);
  EXPECT_GT(sim.now(), 0u);
}

TEST(SlowMemoryTest, MetaWriteChargesAndBarriers) {
  Simulation sim({.num_cores = 1});
  SlowMemory mem(&sim, MediaParams::OneNode(), 1_MB);
  const uint64_t before = mem.barrier_count();
  uint64_t value = 0xdeadbeef;
  sim.Spawn(0, [&] { mem.MetaWrite(128, &value, sizeof(value)); });
  sim.Run();
  EXPECT_EQ(*mem.As<uint64_t>(128), 0xdeadbeefu);
  EXPECT_EQ(mem.barrier_count(), before + 1);
  EXPECT_EQ(sim.now(), mem.MetaCostNs(sizeof(value)));
}

TEST(SlowMemoryTest, BarrierHookFires) {
  Simulation sim({.num_cores = 1});
  SlowMemory mem(&sim, MediaParams::OneNode(), 1_MB);
  std::vector<uint64_t> seen;
  mem.set_barrier_hook([&](uint64_t n) { seen.push_back(n); });
  uint64_t v = 1;
  sim.Spawn(0, [&] {
    mem.MetaWrite(0, &v, 8);
    mem.MetaWrite(64, &v, 8);
  });
  sim.Run();
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 2}));
}

TEST(SlowMemoryTest, CrashImageRollsBackInflightWrite) {
  Simulation sim({.num_cores = 1});
  SlowMemory mem(&sim, MediaParams::OneNode(), 1_MB);
  mem.EnableCrashTracking();
  std::memset(mem.raw(), 0x11, 64_KB);  // old contents
  std::vector<char> src(64_KB, 0x22);
  sim.Spawn(0, [&] { mem.CpuWrite(0, src.data(), src.size()); });
  // Stop mid-transfer: the 64K write takes ~17us at 3.6 GiB/s.
  sim.RunUntil(8_us);
  auto image = mem.CrashImage();
  // Roughly half must be new (0x22), the rest rolled back to 0x11, with a
  // clean 64B-aligned cut.
  size_t new_bytes = 0;
  for (size_t i = 0; i < 64_KB; ++i) {
    if (image[i] == std::byte{0x22}) {
      new_bytes++;
    } else {
      EXPECT_EQ(image[i], std::byte{0x11});
    }
  }
  EXPECT_GT(new_bytes, 16_KB);
  EXPECT_LT(new_bytes, 48_KB);
  EXPECT_EQ(new_bytes % 64, 0u);
  // After completion, no rollback remains.
  sim.Run();
  auto final_image = mem.CrashImage();
  EXPECT_EQ(final_image[0], std::byte{0x22});
  EXPECT_EQ(final_image[64_KB - 1], std::byte{0x22});
}

TEST(SlowMemoryTest, LoadImageReplacesContents) {
  Simulation sim({.num_cores = 1});
  SlowMemory mem(&sim, MediaParams::OneNode(), 1_MB);
  std::vector<std::byte> image(1_MB, std::byte{0x7f});
  mem.LoadImage(image);
  EXPECT_EQ(*mem.As<unsigned char>(12345), 0x7fu);
}

}  // namespace
}  // namespace easyio::pmem
