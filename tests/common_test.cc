#include <gtest/gtest.h>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace easyio {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("no such file");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such file");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFound();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgument("odd");
  }
  return x / 2;
}

Status UseHalf(int x, int* out) {
  EASYIO_ASSIGN_OR_RETURN(*out, Half(x));
  return OkStatus();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalf(7, &out).code(), ErrorCode::kInvalidArgument);
}

TEST(UnitsTest, ByteLiterals) {
  EXPECT_EQ(4_KB, 4096u);
  EXPECT_EQ(2_MB, 2u * 1024 * 1024);
  EXPECT_EQ(1_GB, 1024ull * 1024 * 1024);
}

TEST(UnitsTest, TimeLiterals) {
  EXPECT_EQ(5_us, 5000u);
  EXPECT_EQ(3_ms, 3000000u);
  EXPECT_EQ(1_s, 1000000000u);
}

TEST(UnitsTest, TransferNsRoundTrip) {
  // 1 GiB at 1 GiB/s is one second.
  EXPECT_EQ(TransferNs(1_GB, 1.0), 1_s);
  // 64KB at 6.6 GiB/s is ~9.25us.
  const uint64_t ns = TransferNs(64_KB, 6.6);
  EXPECT_NEAR(static_cast<double>(ns), 9251.0, 10.0);
  EXPECT_NEAR(GibPerSec(64_KB, ns), 6.6, 0.01);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.Next() == b.Next());
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.Mean(), 1000.0);
  // Percentile is bucketed; must be within 1.6% above.
  EXPECT_GE(h.Percentile(0.5), 1000u);
  EXPECT_LE(h.Percentile(0.5), 1016u);
}

TEST(HistogramTest, PercentileAccuracy) {
  Histogram h;
  for (uint64_t v = 1; v <= 100000; ++v) {
    h.Record(v);
  }
  const uint64_t p50 = h.Percentile(0.50);
  const uint64_t p99 = h.Percentile(0.99);
  EXPECT_NEAR(static_cast<double>(p50), 50000.0, 50000.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(p99), 99000.0, 99000.0 * 0.02);
  EXPECT_EQ(h.Percentile(1.0), 100000u);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (uint64_t v = 0; v < 64; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(1.0), 63u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(10);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, HugeValueClamped) {
  Histogram h;
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Percentile(1.0), UINT64_MAX);
}

// One bucket holding virtually all the mass ("saturating" bucket): every
// interior percentile must resolve to that bucket's upper bound, percentiles
// must stay monotone in q, and the outliers must still pin min/max.
TEST(HistogramTest, SaturatingBucketPercentiles) {
  Histogram h;
  h.Record(10);  // lone low outlier
  constexpr uint64_t kHot = 1000000;
  for (int i = 0; i < 100000; ++i) {
    h.Record(kHot);
  }
  EXPECT_EQ(h.count(), 100001u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), kHot);
  const uint64_t p50 = h.Percentile(0.50);
  const uint64_t p99 = h.Percentile(0.99);
  const uint64_t p999 = h.Percentile(0.999);
  // All interior percentiles land in the hot bucket: >= the value, within
  // the 1/64-per-decade bucketing error above it.
  for (uint64_t p : {p50, p99, p999}) {
    EXPECT_GE(p, kHot);
    EXPECT_LE(static_cast<double>(p), kHot * 1.016);
  }
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_EQ(h.Percentile(0.0), 10u);   // the outlier's (exact) low bucket
  EXPECT_EQ(h.Percentile(1.0), kHot);  // exact max
}

}  // namespace
}  // namespace easyio
