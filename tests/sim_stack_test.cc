// Task-stack lifecycle: pooling, re-poisoning on recycle, guard pages, and
// the zero-allocation spawn/exit churn guarantee.
//
// The simulator recycles Task objects and stacks so a workload that spawns
// and finishes uthreads continuously (every fxmark op in EasyIO mode) stops
// touching the heap once the pools warm up. These tests pin that contract
// down with the same operator-new hook page_map_test.cc uses, and verify the
// hardening options: a recycled stack is re-filled with the poison byte
// before reuse, and guard pages make an overflow fault instead of silently
// corrupting the neighboring pool entry.

#include "src/sim/stack_allocator.h"

#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "gtest/gtest.h"
#include "src/sim/simulation.h"

// ---- operator-new hook (counts allocations when armed) ----

namespace {
bool g_count_allocs = false;
size_t g_alloc_count = 0;
}  // namespace

void* operator new(size_t n) {
  if (g_count_allocs) {
    g_alloc_count++;
  }
  void* p = std::malloc(n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(size_t n, const std::nothrow_t&) noexcept {
  if (g_count_allocs) {
    g_alloc_count++;
  }
  return std::malloc(n);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace easyio::sim {
namespace {

TEST(StackAllocatorTest, RecycledStackIsRepoisoned) {
  StackAllocator alloc({.stack_size = 16 * 1024, .poison = true});
  std::byte* stack = alloc.Acquire();
  EXPECT_TRUE(alloc.FullyPoisoned(stack));

  // A task ran here and left frames behind.
  std::memset(stack, 0x5A, 16 * 1024);
  EXPECT_FALSE(alloc.FullyPoisoned(stack));
  alloc.Release(stack);

  // The pool hands the same stack back, scrubbed: nothing of the previous
  // task's frames may leak into the next one.
  std::byte* again = alloc.Acquire();
  EXPECT_EQ(again, stack);
  EXPECT_TRUE(alloc.FullyPoisoned(again));
  EXPECT_EQ(alloc.stacks_created(), 1u);
}

TEST(StackAllocatorTest, PoolReusesBeforeCreating) {
  StackAllocator alloc({.stack_size = 16 * 1024});
  std::byte* a = alloc.Acquire();
  std::byte* b = alloc.Acquire();
  EXPECT_NE(a, b);
  EXPECT_EQ(alloc.stacks_created(), 2u);
  alloc.Release(a);
  alloc.Release(b);
  alloc.Acquire();
  alloc.Acquire();
  EXPECT_EQ(alloc.stacks_created(), 2u);
}

TEST(StackAllocatorTest, GuardPageStacksAreUsable) {
  StackAllocator alloc({.stack_size = 16 * 1024, .guard_pages = true,
                        .poison = true});
  std::byte* stack = alloc.Acquire();
  // The whole advertised range is mapped read-write.
  std::memset(stack, 0x11, alloc.stack_size());
  alloc.Release(stack);
  EXPECT_TRUE(alloc.FullyPoisoned(alloc.Acquire()));
}

TEST(StackAllocatorDeathTest, GuardPageCatchesOverflow) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  StackAllocator alloc({.stack_size = 16 * 1024, .guard_pages = true});
  std::byte* stack = alloc.Acquire();
  // One byte below the usable range is the PROT_NONE guard: an overflowing
  // push must fault, not scribble over a neighboring stack.
  EXPECT_DEATH(
      {
        auto* below = const_cast<volatile std::byte*>(stack) - 1;
        *below = std::byte{0xFF};
      },
      "");
}

TEST(SimStackTest, TasksRunOnPoisonedAndGuardedStacks) {
  // Hardening options must not disturb execution: tasks run, block, wake and
  // finish normally on mmap'd guarded, poisoned stacks.
  Simulation sim({.num_cores = 2,
                  .stack_size = 64 * 1024,
                  .stack_guard_pages = true,
                  .poison_stacks = true});
  int finished = 0;
  for (int i = 0; i < 8; ++i) {
    sim.SpawnDetached(i % 2, [&sim, &finished] {
      sim.Advance(100);
      sim.Yield();
      sim.Advance(50);
      finished++;
    });
  }
  sim.Run();
  EXPECT_EQ(finished, 8);
}

TEST(SimStackTest, DetachedSpawnChurnIsAllocationFree) {
  Simulation sim({.num_cores = 2});
  auto spawn_wave = [&sim] {
    for (int i = 0; i < 8; ++i) {
      sim.SpawnDetached(i % 2, [&sim] {
        sim.Advance(100);
        sim.Yield();
        sim.Advance(50);
      });
    }
  };
  // Warm up every pool: Task objects, stacks, event slab, wheel slots, run
  // queues. Two waves so the free lists see a full recycle cycle.
  for (int w = 0; w < 2; ++w) {
    spawn_wave();
    sim.Run();
  }
  const size_t stacks_before = sim.stacks_created();

  g_alloc_count = 0;
  g_count_allocs = true;
  for (int w = 0; w < 50; ++w) {
    spawn_wave();
    sim.Run();
  }
  g_count_allocs = false;

  EXPECT_EQ(g_alloc_count, 0u)
      << "spawn/exit churn allocated in steady state";
  EXPECT_EQ(sim.stacks_created(), stacks_before)
      << "spawn/exit churn mapped new stacks instead of recycling";
}

}  // namespace
}  // namespace easyio::sim
