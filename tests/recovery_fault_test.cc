// Fault-injection tests for mount-time recovery: corrupted superblocks,
// torn log entries, broken log chains and dangling directory entries must be
// detected (kCorruption), never silently accepted.

#include <gtest/gtest.h>

#include <cstring>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/nova/nova_fs.h"
#include "src/pmem/slow_memory.h"
#include "src/sim/simulation.h"

namespace easyio::nova {
namespace {

struct Fx {
  sim::Simulation sim{{.num_cores = 2}};
  pmem::SlowMemory mem{&sim, pmem::MediaParams::OneNode(), 64_MB};

  // Builds a small valid filesystem image and returns its layout.
  Layout Populate() {
    NovaFs fs(&mem, {});
    EASYIO_CHECK_OK(fs.Format());
    sim.Spawn(0, [&] {
      int fd = *fs.Create("/a");
      std::vector<std::byte> data(32_KB, std::byte{0x5c});
      EASYIO_CHECK_OK(fs.Write(fd, 0, data).status());
      EASYIO_CHECK_OK(fs.Close(fd));
      EASYIO_CHECK_OK(fs.Mkdir("/d"));
      int fd2 = *fs.Create("/d/b");
      EASYIO_CHECK_OK(fs.Close(fd2));
    });
    sim.Run();
    return fs.layout();
  }

  Status Mount() {
    NovaFs fs2(&mem, {});
    return fs2.Mount();
  }
};

TEST(RecoveryFaultTest, CleanImageMounts) {
  Fx fx;
  fx.Populate();
  EXPECT_TRUE(fx.Mount().ok());
}

TEST(RecoveryFaultTest, SuperblockMagicCorruption) {
  Fx fx;
  fx.Populate();
  fx.mem.raw()[3] ^= std::byte{0xff};
  EXPECT_EQ(fx.Mount().code(), ErrorCode::kCorruption);
}

TEST(RecoveryFaultTest, SuperblockFieldCorruption) {
  Fx fx;
  const Layout layout = fx.Populate();
  (void)layout;
  // Flip a byte inside the layout fields but leave the magic intact: the
  // checksum must catch it.
  auto* sb = fx.mem.As<Superblock>(0);
  sb->inode_count ^= 1;
  EXPECT_EQ(fx.Mount().code(), ErrorCode::kCorruption);
}

TEST(RecoveryFaultTest, TornCommittedLogEntry) {
  Fx fx;
  const Layout layout = fx.Populate();
  // Root (slot 0) has dentries in its log; flip a byte in the first
  // committed entry's name so the csum fails.
  const auto* root = fx.mem.As<PInode>(layout.inode_table_off);
  ASSERT_NE(root->log_head, 0u);
  const uint64_t entry_off = root->log_head + kLogEntrySize;
  auto* e = fx.mem.As<DentryEntry>(entry_off);
  ASSERT_EQ(static_cast<EntryType>(e->type), EntryType::kDentryAdd);
  e->name[0] ^= 0x7f;
  EXPECT_EQ(fx.Mount().code(), ErrorCode::kCorruption);
}

TEST(RecoveryFaultTest, GarbageEntryTypeBeforeTail) {
  Fx fx;
  const Layout layout = fx.Populate();
  const auto* root = fx.mem.As<PInode>(layout.inode_table_off);
  auto* type = fx.mem.As<uint8_t>(root->log_head + kLogEntrySize);
  *type = 0xEE;  // not a valid EntryType
  EXPECT_EQ(fx.Mount().code(), ErrorCode::kCorruption);
}

TEST(RecoveryFaultTest, BrokenLogChain) {
  Fx fx;
  const Layout layout = fx.Populate();
  // Point the root tail beyond the first page but cut the chain.
  auto* root = fx.mem.As<PInode>(layout.inode_table_off);
  auto* hdr = fx.mem.As<LogPageHeader>(root->log_head);
  // Force a tail in a nonexistent second page.
  root->log_tail = root->log_head + kBlockSize + 5 * kLogEntrySize;
  hdr->next_page = 0;
  EXPECT_EQ(fx.Mount().code(), ErrorCode::kCorruption);
}

TEST(RecoveryFaultTest, UncommittedTailGarbageIsIgnored) {
  // Bytes past the committed tail may be arbitrary trash (a torn in-flight
  // append); mount must succeed and ignore them.
  Fx fx;
  const Layout layout = fx.Populate();
  const auto* root = fx.mem.As<PInode>(layout.inode_table_off);
  Rng rng(3);
  // Scribble over the slots past the tail within the same page.
  const uint64_t page = root->log_tail / kBlockSize * kBlockSize;
  for (uint64_t off = root->log_tail;
       off + kLogEntrySize <= page + kBlockSize; ++off) {
    *fx.mem.As<uint8_t>(off) = static_cast<uint8_t>(rng.Next());
  }
  EXPECT_TRUE(fx.Mount().ok());
}

TEST(RecoveryFaultTest, DanglingDentryDetected) {
  Fx fx;
  const Layout layout = fx.Populate();
  // Invalidate /a's inode while leaving the root dentry in place.
  // Slot 1 holds the first allocated inode (/a, ino 2).
  auto* pi = fx.mem.As<PInode>(layout.inode_table_off + kPInodeSize);
  ASSERT_TRUE(pi->valid());
  ASSERT_FALSE(pi->is_dir());
  pi->flags = 0;
  EXPECT_EQ(fx.Mount().code(), ErrorCode::kCorruption);
}

TEST(RecoveryFaultTest, MountIsRepeatable) {
  // Mounting twice in a row (e.g. after a crash during recovery's
  // normalization writes) must converge to the same state.
  Fx fx;
  fx.Populate();
  {
    NovaFs fs2(&fx.mem, {});
    ASSERT_TRUE(fs2.Mount().ok());
  }
  NovaFs fs3(&fx.mem, {});
  ASSERT_TRUE(fs3.Mount().ok());
  fx.sim.Spawn(0, [&] {
    EXPECT_EQ(fs3.StatPath("/a")->size, 32_KB);
    EXPECT_TRUE(fs3.StatPath("/d/b").ok());
  });
  fx.sim.Run();
}

}  // namespace
}  // namespace easyio::nova
