#include "src/harness/scenario_runner.h"

#include <gtest/gtest.h>
#include <stdlib.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/simulation.h"

namespace easyio::harness {
namespace {

// A small deterministic simulation: two cores' tasks interleave advances and
// fold the event order into a checksum. Any cross-thread interference (shared
// kernel state, reordered events) changes the value.
uint64_t SimChecksum(uint64_t seed) {
  sim::Simulation::Options opts;
  opts.num_cores = 2;
  sim::Simulation sim(opts);
  uint64_t acc = seed;
  for (int c = 0; c < 2; ++c) {
    sim.Spawn(c, [&acc, &sim, seed, c] {
      Rng rng(seed + static_cast<uint64_t>(c));
      for (int i = 0; i < 200; ++i) {
        sim.Advance(1 + rng.Below(50));
        acc = acc * 6364136223846793005ull + sim.now() +
              static_cast<uint64_t>(c);
      }
    });
  }
  sim.ScheduleAfter(500, [&acc, &sim] { acc ^= sim.now(); });
  sim.Run();
  return acc;
}

TEST(ScenarioRunnerTest, ResultsLandInSubmissionOrder) {
  constexpr int kJobs = 4;
  constexpr size_t kN = 16;
  std::vector<int> out(kN, -1);
  ScenarioRunner runner(kJobs);
  for (size_t i = 0; i < kN; ++i) {
    const size_t idx = runner.Submit([&out, i] {
      // Later submissions finish *earlier*, so completion order is roughly
      // the reverse of submission order.
      std::this_thread::sleep_for(std::chrono::milliseconds(kN - i));
      out[i] = static_cast<int>(i);
    });
    EXPECT_EQ(idx, i);
  }
  runner.Wait();
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i)) << "slot " << i;
  }
}

TEST(ScenarioRunnerTest, SerialAndParallelResultsMatch) {
  auto fn = [](size_t i) { return SimChecksum(i + 1); };
  const std::vector<uint64_t> serial = RunIndexed(1, 32, fn);
  const std::vector<uint64_t> parallel = RunIndexed(8, 32, fn);
  EXPECT_EQ(serial, parallel);
}

TEST(ScenarioRunnerTest, ThrowingJobRunsAllAndRethrowsFirstInOrder) {
  for (int jobs : {1, 4}) {
    std::atomic<int> ran{0};
    ScenarioRunner runner(jobs);
    for (size_t i = 0; i < 16; ++i) {
      runner.Submit([&ran, i] {
        ran.fetch_add(1);
        // Job 9 often *completes* before job 3 when parallel; submission
        // order must still decide which exception Wait() surfaces.
        if (i == 9) {
          throw std::runtime_error("job9");
        }
        if (i == 3) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          throw std::runtime_error("job3");
        }
      });
    }
    std::string what;
    try {
      runner.Wait();
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    EXPECT_EQ(what, "job3") << "jobs=" << jobs;
    EXPECT_EQ(ran.load(), 16) << "jobs=" << jobs;

    // The runner stays usable after a throwing Wait().
    bool again = false;
    runner.Submit([&again] { again = true; });
    runner.Wait();
    EXPECT_TRUE(again) << "jobs=" << jobs;
  }
}

TEST(ScenarioRunnerTest, ConcurrentSimulationsMatchSerial) {
  // Thread-compatibility contract (src/sim/simulation.h): distinct
  // Simulation instances on distinct host threads are fully independent.
  const uint64_t want_a = SimChecksum(101);
  const uint64_t want_b = SimChecksum(202);
  for (int round = 0; round < 4; ++round) {
    uint64_t got_a = 0;
    uint64_t got_b = 0;
    std::thread ta([&got_a] { got_a = SimChecksum(101); });
    std::thread tb([&got_b] { got_b = SimChecksum(202); });
    ta.join();
    tb.join();
    EXPECT_EQ(got_a, want_a);
    EXPECT_EQ(got_b, want_b);
  }
}

TEST(ScenarioRunnerTest, DefaultJobsHonorsEnvironment) {
  const char* saved = getenv("EASYIO_JOBS");
  const std::string saved_value = saved != nullptr ? saved : "";
  setenv("EASYIO_JOBS", "3", 1);
  EXPECT_EQ(ScenarioRunner::DefaultJobs(), 3);
  setenv("EASYIO_JOBS", "0", 1);  // invalid: fall back to >= 1
  EXPECT_GE(ScenarioRunner::DefaultJobs(), 1);
  if (saved != nullptr) {
    setenv("EASYIO_JOBS", saved_value.c_str(), 1);
  } else {
    unsetenv("EASYIO_JOBS");
  }
}

TEST(ScenarioRunnerTest, JobsFromArgsParsesFlag) {
  const char* argv_with[] = {"bench", "--trace=/tmp/t", "--jobs=5"};
  EXPECT_EQ(
      ScenarioRunner::JobsFromArgs(3, const_cast<char**>(argv_with)), 5);
  const char* argv_without[] = {"bench", "--smoke"};
  EXPECT_EQ(
      ScenarioRunner::JobsFromArgs(2, const_cast<char**>(argv_without)),
      ScenarioRunner::DefaultJobs());
}

// fig11-style determinism regression: a formatted (io x kind) results table
// built from ordered runner results must be byte-identical at any job count.
std::string FormatFig11LikeGrid(int jobs) {
  const size_t kRows = 5;  // "I/O sizes"
  const std::vector<uint64_t> cells =
      RunIndexed(jobs, kRows * 2, [](size_t i) { return SimChecksum(i); });
  std::string table;
  for (size_t r = 0; r < kRows; ++r) {
    char line[128];
    std::snprintf(line, sizeof(line), "%-8zu %20llu %20llu\n", r,
                  static_cast<unsigned long long>(cells[r]),
                  static_cast<unsigned long long>(cells[kRows + r]));
    table += line;
  }
  return table;
}

TEST(ScenarioRunnerTest, Fig11LikeTableIsJobsInvariant) {
  const std::string serial = FormatFig11LikeGrid(1);
  EXPECT_EQ(serial, FormatFig11LikeGrid(4));
  EXPECT_EQ(serial, FormatFig11LikeGrid(8));
}

}  // namespace
}  // namespace easyio::harness
