#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/units.h"
#include "src/dma/dma_engine.h"
#include "src/pmem/slow_memory.h"
#include "src/sim/simulation.h"

namespace easyio::dma {
namespace {

using pmem::MediaParams;
using pmem::SlowMemory;
using sim::Simulation;

constexpr uint64_t kRecordOff = 0;
constexpr uint64_t kDataOff = 4_KB;

struct Fixture {
  Simulation sim{{.num_cores = 2}};
  SlowMemory mem;
  DmaEngine engine;

  explicit Fixture(int channels = 4,
                   MediaParams params = MediaParams::OneNode())
      : mem(&sim, params, 64_MB), engine(&mem, kRecordOff, channels) {}
};

TEST(SnTest, PackUnpackRoundTrip) {
  const Sn sn = Sn::Make(7, 123, 456);
  const Sn back = Sn::Unpack(sn.Pack());
  EXPECT_EQ(back, sn);
  EXPECT_EQ(back.channel, 7);
}

TEST(SnTest, MonotonicAcrossWraparound) {
  const Sn before = Sn::Make(0, /*cnt=*/1, kRingSlots);  // last slot of era 1
  const Sn after = Sn::Make(0, /*cnt=*/2, 1);            // first slot of era 2
  EXPECT_LT(before.seq, after.seq);
}

TEST(SnTest, NoneIsAlwaysComplete) {
  EXPECT_TRUE(Sn::None().none());
  EXPECT_EQ(Sn::None().seq, Sn::kNoneSeq);
}

TEST(CompletionRecordTest, FreshEraExceedsOldEra) {
  // A record at (cnt=5, addr=0) dominates every SN issued at cnt <= 4.
  CompletionRecord rec{0, 5};
  EXPECT_GT(rec.CompletedSeq(), Sn::Make(0, 4, kRingSlots).seq);
}

TEST(ChannelTest, WriteMovesDataAndCompletes) {
  Fixture f;
  std::vector<char> src(16_KB, 'w');
  Sn sn;
  sim::SimTime done_at = 0;
  f.sim.Spawn(0, [&] {
    Descriptor d;
    d.dir = Descriptor::Dir::kWrite;
    d.pmem_off = kDataOff;
    d.dram = src.data();
    d.size = 16_KB;
    sn = f.engine.channel(0).Submit(std::move(d));
    EXPECT_FALSE(f.engine.channel(0).IsComplete(sn));
    f.engine.channel(0).WaitSn(sn);
    done_at = f.sim.now();
  });
  f.sim.Run();
  EXPECT_TRUE(f.engine.channel(0).IsComplete(sn));
  EXPECT_EQ(std::memcmp(f.mem.raw() + kDataOff, src.data(), 16_KB), 0);
  // submit cost + startup + 16K at ~6.0 GiB/s (one-node 16K channel cap).
  const auto& p = f.mem.params();
  const double expect = static_cast<double>(
      p.dma_submit_ns + p.dma_startup_ns + TransferNs(16_KB, 6.0));
  EXPECT_NEAR(static_cast<double>(done_at), expect, expect * 0.1);
}

TEST(ChannelTest, ReadMovesDataToDram) {
  Fixture f;
  std::memset(f.mem.raw() + kDataOff, 0x5A, 8_KB);
  std::vector<unsigned char> dst(8_KB, 0);
  f.sim.Spawn(0, [&] {
    Descriptor d;
    d.dir = Descriptor::Dir::kRead;
    d.pmem_off = kDataOff;
    d.dram = dst.data();
    d.size = 8_KB;
    Sn sn = f.engine.channel(1).Submit(std::move(d));
    f.engine.channel(1).WaitSn(sn);
  });
  f.sim.Run();
  EXPECT_EQ(dst[0], 0x5A);
  EXPECT_EQ(dst[8_KB - 1], 0x5A);
}

TEST(ChannelTest, FifoHeadOfLineBlocking) {
  Fixture f;
  std::vector<char> big(2_MB, 'b');
  std::vector<char> small(4_KB, 's');
  sim::SimTime small_done = 0;
  f.sim.Spawn(0, [&] {
    Descriptor d1{Descriptor::Dir::kWrite, kDataOff, big.data(), 2_MB, {}};
    Descriptor d2{Descriptor::Dir::kWrite, kDataOff + 2_MB, small.data(),
                  4_KB, {}};
    Channel& ch = f.engine.channel(0);
    Sn s1 = ch.Submit(std::move(d1));
    Sn s2 = ch.Submit(std::move(d2));
    EXPECT_EQ(ch.queue_depth(), 2u);
    ch.WaitSn(s2);
    small_done = f.sim.now();
    EXPECT_TRUE(ch.IsComplete(s1));  // FIFO: s1 finished before s2
  });
  f.sim.Run();
  // The small I/O had to wait for the 2MB transfer (~300us at ~6.8).
  EXPECT_GT(small_done, 250_us);
}

TEST(ChannelTest, SeparateChannelsAvoidHolBlocking) {
  Fixture f;
  std::vector<char> big(2_MB, 'b');
  std::vector<char> small(4_KB, 's');
  sim::SimTime small_done = 0;
  f.sim.Spawn(0, [&] {
    Descriptor d1{Descriptor::Dir::kWrite, kDataOff, big.data(), 2_MB, {}};
    Descriptor d2{Descriptor::Dir::kWrite, kDataOff + 2_MB, small.data(),
                  4_KB, {}};
    f.engine.channel(0).Submit(std::move(d1));
    Sn s2 = f.engine.channel(1).Submit(std::move(d2));
    f.engine.channel(1).WaitSn(s2);
    small_done = f.sim.now();
  });
  f.sim.Run();
  EXPECT_LT(small_done, 30_us);  // no HoL: only contention slowdown
}

TEST(ChannelTest, BatchSubmitAmortizesCpuCost) {
  Fixture f;
  std::vector<char> src(64_KB, 'q');
  sim::SimTime batch_cpu = 0;
  f.sim.Spawn(0, [&] {
    std::vector<Descriptor> batch;
    for (int i = 0; i < 4; ++i) {
      batch.push_back(Descriptor{Descriptor::Dir::kWrite,
                                 kDataOff + static_cast<uint64_t>(i) * 16_KB,
                                 src.data() + i * 16_KB, 16_KB, {}});
    }
    const sim::SimTime start = f.sim.now();
    auto sns = f.engine.channel(0).SubmitBatch(std::move(batch));
    batch_cpu = f.sim.now() - start;
    EXPECT_EQ(sns.size(), 4u);
    f.engine.channel(0).WaitSn(sns.back());
    for (const Sn& sn : sns) {
      EXPECT_TRUE(f.engine.channel(0).IsComplete(sn));
    }
  });
  f.sim.Run();
  const auto& p = f.mem.params();
  EXPECT_EQ(batch_cpu, p.dma_submit_ns + 3 * p.dma_batch_extra_ns);
  EXPECT_LT(batch_cpu, 4 * p.dma_submit_ns);  // cheaper than 4 singles
}

TEST(ChannelTest, SnOrderingWithinChannel) {
  Fixture f;
  std::vector<char> src(4_KB, 'z');
  f.sim.Spawn(0, [&] {
    Channel& ch = f.engine.channel(0);
    Sn prev = Sn::None();
    for (int i = 0; i < 10; ++i) {
      Descriptor d{Descriptor::Dir::kWrite, kDataOff, src.data(), 4_KB, {}};
      Sn sn = ch.Submit(std::move(d));
      EXPECT_GT(sn.seq, prev.seq);
      prev = sn;
    }
    ch.WaitSn(prev);
  });
  f.sim.Run();
  EXPECT_EQ(f.engine.channel(0).descriptors_completed(), 10u);
}

TEST(ChannelTest, RingWraparoundKeepsMonotonicity) {
  Fixture f;
  std::vector<char> src(4_KB, 'r');
  f.sim.Spawn(0, [&] {
    Channel& ch = f.engine.channel(0);
    uint64_t prev_seq = 0;
    // More submissions than ring slots forces a CNT wrap.
    for (uint64_t i = 0; i < kRingSlots + 10; ++i) {
      Descriptor d{Descriptor::Dir::kWrite, kDataOff, src.data(), 4_KB, {}};
      Sn sn = ch.Submit(std::move(d));
      EXPECT_GT(sn.seq, prev_seq);
      prev_seq = sn.seq;
      ch.WaitSn(sn);  // drain to keep queue small
    }
  });
  f.sim.Run();
  EXPECT_EQ(f.engine.channel(0).descriptors_completed(), kRingSlots + 10);
}

TEST(ChannelTest, OnCompleteCallbackFires) {
  Fixture f;
  std::vector<char> src(4_KB, 'c');
  bool fired = false;
  f.sim.Spawn(0, [&] {
    Descriptor d{Descriptor::Dir::kWrite, kDataOff, src.data(), 4_KB,
                 [&] { fired = true; }};
    Sn sn = f.engine.channel(0).Submit(std::move(d));
    f.engine.channel(0).WaitSn(sn);
  });
  f.sim.Run();
  EXPECT_TRUE(fired);
}

TEST(ChannelTest, SuspendHaltsAndResumeRestarts) {
  Fixture f;
  std::vector<char> src(1_MB, 'p');
  Sn sn;
  f.sim.Spawn(0, [&] {
    Descriptor d{Descriptor::Dir::kWrite, kDataOff, src.data(), 1_MB, {}};
    sn = f.engine.channel(0).Submit(std::move(d));
  });
  // Suspend early (below the restart threshold) and resume at 1ms.
  f.sim.ScheduleAt(10_us, [&] { f.engine.channel(0).Suspend(); });
  f.sim.RunUntil(500_us);
  EXPECT_FALSE(f.engine.channel(0).IsComplete(sn));  // stalled while suspended
  f.sim.ScheduleAt(1_ms, [&] { f.engine.channel(0).Resume(); });
  f.sim.Run();
  EXPECT_TRUE(f.engine.channel(0).IsComplete(sn));
  EXPECT_EQ(std::memcmp(f.mem.raw() + kDataOff, src.data(), 1_MB), 0);
}

TEST(ChannelTest, SuspendLateLetsTransferComplete) {
  Fixture f;
  std::vector<char> src(1_MB, 'l');
  Sn sn;
  f.sim.Spawn(0, [&] {
    Descriptor d{Descriptor::Dir::kWrite, kDataOff, src.data(), 1_MB, {}};
    sn = f.engine.channel(0).Submit(std::move(d));
  });
  // 1MB at ~6.8-7.0 GiB/s takes ~145us; suspend at 120us (>50% done).
  f.sim.ScheduleAt(120_us, [&] { f.engine.channel(0).Suspend(); });
  f.sim.RunUntil(2_ms);
  EXPECT_TRUE(f.engine.channel(0).IsComplete(sn));  // ran to completion
  EXPECT_TRUE(f.engine.channel(0).suspended());
  f.engine.channel(0).Resume();
  f.sim.Run();
}

TEST(ChannelTest, EpochByteAccounting) {
  Fixture f;
  std::vector<char> src(64_KB, 'e');
  f.sim.Spawn(0, [&] {
    Channel& ch = f.engine.channel(0);
    Descriptor d{Descriptor::Dir::kWrite, kDataOff, src.data(), 64_KB, {}};
    Sn sn = ch.Submit(std::move(d));
    ch.WaitSn(sn);
  });
  f.sim.Run();
  Channel& ch = f.engine.channel(0);
  EXPECT_EQ(ch.TakeEpochBytes(), 64_KB);
  EXPECT_EQ(ch.TakeEpochBytes(), 0u);  // reset after read
  EXPECT_EQ(ch.bytes_completed(), 64_KB);
}

TEST(ChannelTest, WaitersWakeInSnOrder) {
  Fixture f;
  std::vector<char> src(64_KB, 'o');
  std::vector<int> wake_order;
  f.sim.Spawn(0, [&] {
    Channel& ch = f.engine.channel(0);
    Descriptor d1{Descriptor::Dir::kWrite, kDataOff, src.data(), 64_KB, {}};
    Descriptor d2{Descriptor::Dir::kWrite, kDataOff + 64_KB, src.data(),
                  64_KB, {}};
    Sn s1 = ch.Submit(std::move(d1));
    Sn s2 = ch.Submit(std::move(d2));
    f.sim.Spawn(1, [&, s2] {
      f.engine.channel(0).WaitSn(s2);
      wake_order.push_back(2);
    });
    ch.WaitSn(s1);
    wake_order.push_back(1);
  });
  f.sim.Run();
  EXPECT_EQ(wake_order, (std::vector<int>{1, 2}));
}

TEST(ChannelTest, CrashRollbackOfInflightDma) {
  Fixture f;
  f.mem.EnableCrashTracking();
  std::memset(f.mem.raw() + kDataOff, 0x33, 1_MB);
  std::vector<char> src(1_MB, 0x44);
  f.sim.Spawn(0, [&] {
    Descriptor d{Descriptor::Dir::kWrite, kDataOff, src.data(), 1_MB, {}};
    f.engine.channel(0).Submit(std::move(d));
  });
  f.sim.RunUntil(70_us);  // roughly half of the ~145us transfer
  auto image = f.mem.CrashImage();
  size_t new_bytes = 0;
  for (size_t i = 0; i < 1_MB; ++i) {
    new_bytes += image[kDataOff + i] == std::byte{0x44};
  }
  EXPECT_GT(new_bytes, 100_KB);
  EXPECT_LT(new_bytes, 900_KB);
  // The completion record in the image must NOT cover the in-flight SN.
  const uint64_t completed =
      DmaEngine::CompletedSeqInImage(image, kRecordOff, 0);
  EXPECT_LT(completed, Sn::Make(0, 1, 1).seq + 1);
}

TEST(DmaEngineTest, FreshEngineAfterImagePreservesEra) {
  std::vector<std::byte> image;
  uint64_t old_completed = 0;
  {
    Fixture f;
    std::vector<char> src(4_KB, 'm');
    f.sim.Spawn(0, [&] {
      Descriptor d{Descriptor::Dir::kWrite, kDataOff, src.data(), 4_KB, {}};
      Sn sn = f.engine.channel(0).Submit(std::move(d));
      f.engine.channel(0).WaitSn(sn);
    });
    f.sim.Run();
    old_completed = f.engine.channel(0).CompletedSeq();
    image = f.mem.CrashImage();
  }
  // Remount: the new engine's era must dominate the old completed seq.
  Simulation sim2({.num_cores = 1});
  SlowMemory mem2(&sim2, MediaParams::OneNode(), 64_MB);
  mem2.LoadImage(image);
  DmaEngine engine2(&mem2, kRecordOff, 4);
  EXPECT_GT(engine2.channel(0).CompletedSeq(), old_completed);
}

TEST(DmaEngineTest, RecordRegionSizing) {
  EXPECT_EQ(DmaEngine::RecordRegionSize(16), 16 * sizeof(CompletionRecord));
}

}  // namespace
}  // namespace easyio::dma
