// Crash-consistency tests: the CrashMonkey-style harness itself plus a
// sampled run of each Table 2 workload.

#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/crashmonkey/crash_test.h"

namespace easyio::crashmonkey {
namespace {

TEST(WorkloadBuilderTest, ModelTracksState) {
  WorkloadBuilder b;
  b.Create("/a");
  b.Write("/a", 0, std::vector<std::byte>(100, std::byte{1}));
  b.Link("/a", "/b");
  b.Write("/b", 50, std::vector<std::byte>(100, std::byte{2}));
  b.Rename("/b", "/c");
  b.Unlink("/a");
  auto ops = b.Build();
  ASSERT_EQ(ops.size(), 6u);

  ExpectedState st;
  for (const auto& op : ops) {
    op.model(st);
  }
  // Only /c remains; the hard link means the second write shows in it.
  ASSERT_EQ(st.size(), 1u);
  ASSERT_TRUE(st.contains("/c"));
  EXPECT_EQ(st["/c"]->size(), 150u);
  EXPECT_EQ((*st["/c"])[0], std::byte{1});
  EXPECT_EQ((*st["/c"])[60], std::byte{2});
}

TEST(WorkloadBuilderTest, AppendExtends) {
  WorkloadBuilder b;
  b.Create("/x");
  b.Append("/x", std::vector<std::byte>(10, std::byte{3}));
  b.Append("/x", std::vector<std::byte>(20, std::byte{4}));
  auto ops = b.Build();
  ExpectedState st;
  for (const auto& op : ops) {
    op.model(st);
  }
  EXPECT_EQ(st["/x"]->size(), 30u);
  EXPECT_EQ((*st["/x"])[15], std::byte{4});
}

TEST(StandardWorkloadsTest, FourWorkloadsWithOps) {
  const auto workloads = StandardWorkloads(1);
  ASSERT_EQ(workloads.size(), 4u);
  EXPECT_EQ(workloads[0].name, "create_delete");
  EXPECT_EQ(workloads[1].name, "generic_056");
  EXPECT_EQ(workloads[2].name, "generic_090");
  EXPECT_EQ(workloads[3].name, "generic_322");
  for (const auto& w : workloads) {
    EXPECT_GT(w.ops.size(), 10u) << w.name;
  }
}

// Sampled crash tests (the full 1000-point sweep runs in the table2 bench).
class CrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrashSweep, AllSampledPointsPass) {
  const auto workloads = StandardWorkloads(42);
  const auto& w = workloads[static_cast<size_t>(GetParam())];
  const auto result = RunCrashTest(w, /*max_points=*/40);
  EXPECT_GT(result.total_points, 0) << w.name;
  EXPECT_EQ(result.passed, result.total_points) << w.name;
  for (const auto& f : result.failures) {
    ADD_FAILURE() << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Table2, CrashSweep, ::testing::Values(0, 1, 2, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return StandardWorkloads(42)[static_cast<size_t>(
                                                            info.param)]
                               .name;
                         });

TEST(CrashDuringGcTest, CompactionSwitchIsCrashAtomic) {
  // Enough overwrites on one file to trigger log compaction (threshold
  // lowered to 4 pages); crash points sampled across the whole run must
  // all recover consistently — including points inside the GC's
  // build-new-chain + journaled-switch window.
  WorkloadBuilder b;
  b.Create("/gc_hot");
  Rng rng(77);
  std::vector<std::byte> state(64 * 1024, std::byte{0});
  b.Write("/gc_hot", 0, state);
  for (int i = 0; i < 280; ++i) {
    std::vector<std::byte> blk(8192, static_cast<std::byte>(rng.Next()));
    b.Write("/gc_hot", rng.Below(8) * 8192, blk);
  }
  CrashWorkload w{"log_gc", "overwrite churn across a log compaction",
                  b.Build()};

  auto opts = DefaultCrashFsOptions();
  opts.gc_min_pages = 4;
  const auto result = RunCrashTest(w, /*max_points=*/50, opts);
  EXPECT_GT(result.total_points, 0);
  EXPECT_EQ(result.passed, result.total_points);
  for (const auto& f : result.failures) {
    ADD_FAILURE() << f;
  }
}

// Property-style crash testing: randomized workloads (beyond the paper's
// four fixed ones) must also recover consistently at every sampled point.
class RandomCrashSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomCrashSweep, RandomWorkloadSurvivesCrashes) {
  Rng rng(GetParam());
  WorkloadBuilder b;
  std::map<std::string, int> live;  // path -> size hint
  std::vector<std::string> names;
  for (int i = 0; i < 8; ++i) {
    names.push_back("/r" + std::to_string(i));
  }
  for (int op = 0; op < 40; ++op) {
    const std::string& path = names[rng.Below(names.size())];
    const bool exists = live.contains(path);
    switch (rng.Below(10)) {
      case 0 ... 2:
        if (!exists) {
          b.Create(path);
          live[path] = 0;
        }
        break;
      case 3 ... 6:
        if (exists) {
          std::vector<std::byte> data(1 + rng.Below(40000));
          for (auto& x : data) {
            x = static_cast<std::byte>(rng.Next());
          }
          b.Write(path, rng.Below(16) * 4096, data);
        }
        break;
      case 7:
        if (exists) {
          b.Unlink(path);
          live.erase(path);
        }
        break;
      case 8: {
        const std::string& to = names[rng.Below(names.size())];
        if (exists && !live.contains(to)) {
          b.Link(path, to);
          live[to] = 0;
        }
        break;
      }
      default: {
        const std::string& to = names[rng.Below(names.size())];
        if (exists && to != path && !live.contains(to)) {
          b.Rename(path, to);
          live[to] = live[path];
          live.erase(path);
        }
        break;
      }
    }
  }
  CrashWorkload w{"random_" + std::to_string(GetParam()),
                  "randomized op sequence", b.Build()};
  const auto result = RunCrashTest(w, /*max_points=*/30);
  EXPECT_GT(result.total_points, 0);
  EXPECT_EQ(result.passed, result.total_points);
  for (const auto& f : result.failures) {
    ADD_FAILURE() << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCrashSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace easyio::crashmonkey
