// BlockAllocator stress: fragmentation churn against the flat-run shards.
//
// The allocator was rewritten from per-shard std::map free lists to sorted
// flat vectors with a cached largest-run bound; these tests hammer the
// split/coalesce logic with deterministic random churn and check the
// invariants the filesystem depends on: page conservation, no overlapping
// extents, and full coalescing back to one run per shard after everything
// is freed.

#include "src/nova/allocator.h"

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/units.h"
#include "src/nova/layout.h"

namespace easyio::nova {
namespace {

constexpr uint64_t kArea = 1_MB;

// Registers every page of `e` in `used`, failing on overlap.
void TrackPages(const Extent& e, std::set<uint64_t>* used) {
  for (uint64_t p = 0; p < e.pages; ++p) {
    EXPECT_TRUE(used->insert(e.block_off + p * kBlockSize).second)
        << "page handed out twice at off=" << e.block_off + p * kBlockSize;
  }
}

void UntrackPages(const Extent& e, std::set<uint64_t>* used) {
  for (uint64_t p = 0; p < e.pages; ++p) {
    EXPECT_EQ(used->erase(e.block_off + p * kBlockSize), 1u);
  }
}

TEST(AllocatorStressTest, RandomChurnConservesPagesAndNeverOverlaps) {
  constexpr uint64_t kBlocks = 4096;
  BlockAllocator alloc(kArea, kBlocks, /*shards=*/8);
  std::mt19937 rng(20240807);

  std::vector<std::vector<Extent>> live;  // one entry per AllocMulti request
  std::set<uint64_t> used;
  uint64_t live_pages = 0;

  for (int iter = 0; iter < 20000; ++iter) {
    const bool do_alloc =
        live.empty() || (live_pages < kBlocks / 2 && rng() % 3 != 0);
    if (do_alloc) {
      const uint64_t pages = 1 + rng() % 64;
      const int hint = static_cast<int>(rng() % 8);
      std::vector<Extent> extents;
      const Status st = alloc.AllocMultiInto(pages, hint, &extents);
      if (!st.ok()) {
        ASSERT_LT(alloc.free_pages(), pages);
        continue;
      }
      uint64_t got = 0;
      for (const Extent& e : extents) {
        ASSERT_GE(e.block_off, kArea);
        ASSERT_LE(e.block_off + e.pages * kBlockSize,
                  kArea + kBlocks * kBlockSize);
        TrackPages(e, &used);
        got += e.pages;
      }
      ASSERT_EQ(got, pages) << "AllocMulti under- or over-delivered";
      live_pages += pages;
      live.push_back(std::move(extents));
    } else {
      const size_t idx = rng() % live.size();
      for (const Extent& e : live[idx]) {
        UntrackPages(e, &used);
        live_pages -= e.pages;
        alloc.Free(e);
      }
      live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
    }
    ASSERT_EQ(alloc.free_pages() + live_pages, kBlocks)
        << "page conservation broken at iter " << iter;
  }

  // Release everything: the allocator must coalesce back to a fully free
  // device from which one maximal run per shard is allocatable again.
  for (const auto& extents : live) {
    for (const Extent& e : extents) {
      alloc.Free(e);
    }
  }
  EXPECT_EQ(alloc.free_pages(), kBlocks);
  auto all = alloc.AllocMulti(kBlocks, 0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(alloc.free_pages(), 0u);
  // 8 shards, fully coalesced: at most one extent per shard.
  EXPECT_LE(all->size(), 8u);
  for (const Extent& e : *all) {
    alloc.Free(e);
  }
  EXPECT_EQ(alloc.free_pages(), kBlocks);
}

TEST(AllocatorStressTest, FragmentationFallbackStillDeliversEveryPage) {
  constexpr uint64_t kBlocks = 512;
  BlockAllocator alloc(kArea, kBlocks, /*shards=*/4);

  // Fragment: allocate every page singly, then free alternate pages.
  std::vector<Extent> singles;
  for (uint64_t i = 0; i < kBlocks; ++i) {
    auto e = alloc.Alloc(1, static_cast<int>(i % 4));
    ASSERT_TRUE(e.ok());
    ASSERT_EQ(e->pages, 1u);
    singles.push_back(*e);
  }
  std::sort(singles.begin(), singles.end(),
            [](const Extent& a, const Extent& b) {
              return a.block_off < b.block_off;
            });
  uint64_t freed = 0;
  for (size_t i = 0; i < singles.size(); i += 2) {
    alloc.Free(singles[i]);
    freed++;
  }
  ASSERT_EQ(alloc.free_pages(), freed);

  // A large request must be satisfied from single-page fragments via the
  // largest-extent fallback, without overlap and to the exact total.
  std::set<uint64_t> used;
  std::vector<Extent> multi;
  ASSERT_TRUE(alloc.AllocMultiInto(freed, 0, &multi).ok());
  uint64_t got = 0;
  for (const Extent& e : multi) {
    TrackPages(e, &used);
    got += e.pages;
  }
  EXPECT_EQ(got, freed);
  EXPECT_EQ(alloc.free_pages(), 0u);
}

TEST(AllocatorStressTest, FailedLargeRequestRollsBackCompletely) {
  constexpr uint64_t kBlocks = 64;
  BlockAllocator alloc(kArea, kBlocks, /*shards=*/2);
  auto half = alloc.Alloc(32, 0);
  ASSERT_TRUE(half.ok());

  std::vector<Extent> out{Extent{777, 7}};  // pre-existing entry must survive
  const Status st = alloc.AllocMultiInto(kBlocks, 0, &out);
  EXPECT_FALSE(st.ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Extent{777, 7}));
  // The partial progress was returned: everything but the held half is free.
  EXPECT_EQ(alloc.free_pages(), kBlocks - 32);
}

}  // namespace
}  // namespace easyio::nova
