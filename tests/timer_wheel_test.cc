// TimerWheel determinism: the hierarchical wheel + far-heap combination must
// pop entries in exactly ascending (time, seq) order — bit-for-bit the order
// the pure std::priority_queue it replaced produced. The randomized tests
// drive identical schedule/pop sequences into the wheel and a reference heap
// and require identical output; the Simulation-level tests cover the piece
// the wheel delegates to its caller: Cancel() via slab generation tags.

#include "src/sim/timer_wheel.h"

#include <queue>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "src/sim/simulation.h"

namespace easyio::sim {
namespace {

using Entry = TimerWheel::Entry;
using RefHeap =
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>;

void PopBothAndCompare(TimerWheel* wheel, RefHeap* ref, SimTime* now) {
  Entry got{};
  ASSERT_TRUE(wheel->PopNext(kSimTimeMax, &got));
  const Entry want = ref->top();
  ref->pop();
  ASSERT_EQ(got.time, want.time);
  ASSERT_EQ(got.seq, want.seq);
  *now = got.time;
}

TEST(TimerWheelTest, RandomizedMatchesReferenceHeap) {
  for (const uint64_t seed : {1u, 7u, 99u, 1234u}) {
    SCOPED_TRACE(seed);
    std::mt19937_64 rng(seed);
    TimerWheel wheel;
    RefHeap ref;
    SimTime now = 0;
    uint64_t seq = 1;
    for (int i = 0; i < 30000; ++i) {
      if (ref.empty() || rng() % 10 < 7) {
        // Delays spanning every wheel level plus the far-heap horizon,
        // with plenty of exact ties (dt == 0 and small ranges).
        uint64_t dt = 0;
        switch (rng() % 8) {
          case 0: dt = 0; break;                          // same instant
          case 1: dt = rng() % 8; break;                  // level-0 ties
          case 2: dt = rng() % 64; break;                 // level 0
          case 3: dt = rng() % 4096; break;               // level 1
          case 4: dt = rng() % (uint64_t{1} << 18); break;  // level 2
          case 5: dt = rng() % (uint64_t{1} << 24); break;  // level 3 edge
          case 6: dt = 20'000'000 + rng() % 1000; break;  // just past window
          default: dt = 20'000'000 + rng() % 500'000'000; break;  // far heap
        }
        const Entry e{now + dt, seq++, 0, 0};
        wheel.Insert(e);
        ref.push(e);
      } else {
        PopBothAndCompare(&wheel, &ref, &now);
        if (HasFatalFailure()) {
          return;
        }
      }
    }
    while (!ref.empty()) {
      PopBothAndCompare(&wheel, &ref, &now);
      if (HasFatalFailure()) {
        return;
      }
    }
    EXPECT_TRUE(wheel.empty());
    EXPECT_EQ(wheel.size(), 0u);
  }
}

TEST(TimerWheelTest, PopNextHonorsLimit) {
  TimerWheel wheel;
  wheel.Insert({100, 1, 0, 0});
  wheel.Insert({50'000'000, 2, 0, 0});  // lands in the far heap
  Entry e{};
  EXPECT_FALSE(wheel.PopNext(99, &e));
  EXPECT_EQ(wheel.size(), 2u);
  ASSERT_TRUE(wheel.PopNext(100, &e));
  EXPECT_EQ(e.seq, 1u);
  EXPECT_FALSE(wheel.PopNext(1'000'000, &e));
  ASSERT_TRUE(wheel.PopNext(kSimTimeMax, &e));
  EXPECT_EQ(e.seq, 2u);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, InsertAtFiringInstantPreservesSeqOrder) {
  // An event handler scheduling a zero-delay follow-up inserts at base_ while
  // that slot is mid-fire; the follow-up must run this instant, after every
  // already-staged entry.
  TimerWheel wheel;
  wheel.Insert({10, 1, 0, 0});
  wheel.Insert({10, 2, 0, 0});
  wheel.Insert({12, 3, 0, 0});
  Entry e{};
  ASSERT_TRUE(wheel.PopNext(kSimTimeMax, &e));
  EXPECT_EQ(e.seq, 1u);
  wheel.Insert({10, 4, 0, 0});  // scheduled from within the firing instant
  ASSERT_TRUE(wheel.PopNext(kSimTimeMax, &e));
  EXPECT_EQ(e.seq, 2u);
  ASSERT_TRUE(wheel.PopNext(kSimTimeMax, &e));
  EXPECT_EQ(e.seq, 4u);
  ASSERT_TRUE(wheel.PopNext(kSimTimeMax, &e));
  EXPECT_EQ(e.seq, 3u);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, HeapWinsTimeTiesAgainstWheel) {
  // A far entry and a later-scheduled wheel entry can share a firing time
  // once the window catches up; the far entry was issued first (smaller seq)
  // and must pop first.
  TimerWheel wheel;
  const SimTime t = 30'000'000;
  wheel.Insert({t, 1, 0, 0});             // beyond the level-3 window: far heap
  wheel.Insert({17'000'000, 2, 0, 0});    // also far (prefix differs from 0)
  Entry e{};
  ASSERT_TRUE(wheel.PopNext(kSimTimeMax, &e));
  EXPECT_EQ(e.seq, 2u);  // heap pop dragged base_ to 17ms: t is now in-window
  wheel.Insert({t, 3, 0, 0});  // same time as the far-heap resident
  ASSERT_TRUE(wheel.PopNext(kSimTimeMax, &e));
  EXPECT_EQ(e.seq, 1u);
  ASSERT_TRUE(wheel.PopNext(kSimTimeMax, &e));
  EXPECT_EQ(e.seq, 3u);
  EXPECT_TRUE(wheel.empty());
}

// ---- Cancellation (Simulation layer: slab generation tags) ----

TEST(SimCancelTest, StaleIdDoesNotCancelRecycledSlot) {
  Simulation sim({.num_cores = 1});
  int fired = 0;
  const EventId a = sim.ScheduleAfter(10, [&fired] { fired |= 1; });
  sim.Cancel(a);  // frees a's slot for immediate reuse
  const EventId b = sim.ScheduleAfter(10, [&fired] { fired |= 2; });
  EXPECT_NE(a, b);  // same slot or not, the generation differs
  sim.Cancel(a);    // stale id: must not touch b
  sim.Cancel(a);    // double stale cancel: still a no-op
  sim.RunFor(100);
  EXPECT_EQ(fired, 2);
}

TEST(SimCancelTest, CancelAfterFireIsANoOp) {
  Simulation sim({.num_cores = 1});
  int fired = 0;
  const EventId a = sim.ScheduleAfter(10, [&fired] { fired |= 1; });
  sim.RunFor(20);
  EXPECT_EQ(fired, 1);
  const EventId b = sim.ScheduleAfter(10, [&fired] { fired |= 2; });
  sim.Cancel(a);  // a's slot may now back b; the stale id must not cancel it
  sim.RunFor(20);
  EXPECT_EQ(fired, 3);
  (void)b;
}

TEST(SimCancelTest, RandomizedScheduleCancelFire) {
  // Mixed-horizon schedule/cancel churn against the live kernel: exactly the
  // non-cancelled events fire, in (time, issue-order) sequence.
  Simulation sim({.num_cores = 1});
  std::mt19937_64 rng(2024);
  struct Rec {
    SimTime time;
    uint64_t issue;
  };
  std::vector<Rec> fired_log;
  uint64_t issue = 0;
  size_t expected = 0;
  for (int round = 0; round < 100; ++round) {
    std::vector<EventId> cancelable;
    for (int i = 0; i < 25; ++i) {
      uint64_t dt = 0;
      switch (rng() % 5) {
        case 0: dt = rng() % 64; break;
        case 1: dt = rng() % 4096; break;
        case 2: dt = rng() % 300'000; break;
        case 3: dt = rng() % 20'000'000; break;
        default: dt = 20'000'000 + rng() % 100'000'000; break;
      }
      const Rec r{sim.now() + dt, issue++};
      const EventId id =
          sim.ScheduleAfter(dt, [&fired_log, r] { fired_log.push_back(r); });
      if (rng() % 4 == 0) {
        cancelable.push_back(id);
      } else {
        expected++;
      }
    }
    // Cancel before anything from this round can have fired.
    for (const EventId id : cancelable) {
      sim.Cancel(id);
    }
    sim.RunFor(rng() % 2'000'000);
  }
  sim.Run();  // drain
  ASSERT_EQ(fired_log.size(), expected);
  for (size_t i = 1; i < fired_log.size(); ++i) {
    const Rec& prev = fired_log[i - 1];
    const Rec& cur = fired_log[i];
    ASSERT_TRUE(prev.time < cur.time ||
                (prev.time == cur.time && prev.issue < cur.issue))
        << "out of order at " << i << ": (" << prev.time << "," << prev.issue
        << ") then (" << cur.time << "," << cur.issue << ")";
  }
}

}  // namespace
}  // namespace easyio::sim
