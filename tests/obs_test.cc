// Observability layer: Tracer JSON well-formedness, span nesting, sampling
// determinism, drop accounting, and the stats snapshot.
//
// The heart of the file is a minimal recursive-descent JSON parser: the
// acceptance bar for the trace writer is that a *parser* (not a regex)
// accepts its output and that the spans it contains nest properly — complete
// spans on one (pid, tid) track form a stack, async b/e pairs balance per id
// and per-id phase spans are properly nested or disjoint.

#include "src/obs/trace.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/units.h"
#include "src/harness/testbed.h"
#include "src/obs/stats.h"
#include "src/sim/obs_session.h"

namespace easyio {
namespace {

// ---------------------------------------------------------- mini JSON ----

struct JsonValue {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = kNull;
  bool boolean = false;
  std::string raw;  // number token or string contents
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
  double Number() const { return std::strtod(raw.c_str(), nullptr); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.c_str()), end_(text.c_str() + text.size()) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    return p_ == end_;  // no trailing garbage
  }

 private:
  void SkipWs() {
    while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_))) {
      p_++;
    }
  }
  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (static_cast<size_t>(end_ - p_) < n || std::strncmp(p_, lit, n) != 0) {
      return false;
    }
    p_ += n;
    return true;
  }
  bool ParseString(std::string* out) {
    if (p_ >= end_ || *p_ != '"') {
      return false;
    }
    p_++;
    out->clear();
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        p_++;
        if (p_ >= end_) {
          return false;
        }
        switch (*p_) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': case 'f': out->push_back('?'); break;
          case 'u':
            if (end_ - p_ < 5) {
              return false;
            }
            p_ += 4;
            out->push_back('?');
            break;
          default: return false;
        }
        p_++;
      } else {
        out->push_back(*p_++);
      }
    }
    if (p_ >= end_) {
      return false;
    }
    p_++;  // closing quote
    return true;
  }
  bool ParseValue(JsonValue* out) {
    if (p_ >= end_) {
      return false;
    }
    switch (*p_) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->type = JsonValue::kString;
        return ParseString(&out->raw);
      case 't':
        out->type = JsonValue::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::kNull;
        return Literal("null");
      default: return ParseNumber(out);
    }
  }
  bool ParseNumber(JsonValue* out) {
    out->type = JsonValue::kNumber;
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') {
      p_++;
    }
    while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                         *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                         *p_ == '+' || *p_ == '-')) {
      p_++;
    }
    if (p_ == start) {
      return false;
    }
    out->raw.assign(start, static_cast<size_t>(p_ - start));
    return true;
  }
  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::kArray;
    p_++;  // '['
    SkipWs();
    if (p_ < end_ && *p_ == ']') {
      p_++;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->arr.push_back(std::move(v));
      SkipWs();
      if (p_ < end_ && *p_ == ',') {
        p_++;
        SkipWs();
        continue;
      }
      if (p_ < end_ && *p_ == ']') {
        p_++;
        return true;
      }
      return false;
    }
  }
  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::kObject;
    p_++;  // '{'
    SkipWs();
    if (p_ < end_ && *p_ == '}') {
      p_++;
      return true;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (p_ >= end_ || *p_ != ':') {
        return false;
      }
      p_++;
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->obj.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (p_ < end_ && *p_ == ',') {
        p_++;
        SkipWs();
        continue;
      }
      if (p_ < end_ && *p_ == '}') {
        p_++;
        return true;
      }
      return false;
    }
  }

  const char* p_;
  const char* end_;
};

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  if (f != nullptr) {
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      out.append(buf, n);
    }
    std::fclose(f);
  }
  return out;
}

// The writer prints timestamps as microseconds with exactly three decimals,
// so they convert back to integer nanoseconds without float rounding.
uint64_t TsToNs(const std::string& raw) {
  const size_t dot = raw.find('.');
  EXPECT_NE(dot, std::string::npos) << raw;
  EXPECT_EQ(raw.size() - dot - 1, 3u) << raw;
  const uint64_t us = std::strtoull(raw.substr(0, dot).c_str(), nullptr, 10);
  const uint64_t frac = std::strtoull(raw.substr(dot + 1).c_str(), nullptr, 10);
  return us * 1000 + frac;
}

JsonValue ParseTraceFile(const std::string& path) {
  const std::string text = ReadFile(path);
  JsonValue root;
  JsonParser parser(text);
  EXPECT_TRUE(parser.Parse(&root)) << "trace JSON failed to parse: " << path;
  EXPECT_EQ(root.type, JsonValue::kObject);
  return root;
}

struct Span {
  uint64_t start = 0;
  uint64_t end = 0;
  std::string name;
};

// Complete spans on one sequential (pid, tid) track must form a stack: any
// two are either disjoint or one contains the other (shared boundaries
// allowed — a span may start exactly when its parent does).
void CheckStackNesting(const std::vector<Span>& spans_in,
                       const std::string& label) {
  std::vector<Span> spans = spans_in;
  std::stable_sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    return a.start != b.start ? a.start < b.start : a.end > b.end;
  });
  std::vector<Span> stack;
  for (const Span& s : spans) {
    while (!stack.empty() && stack.back().end <= s.start) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      ASSERT_LE(s.end, stack.back().end)
          << label << ": span '" << s.name << "' [" << s.start << ", "
          << s.end << ") partially overlaps '" << stack.back().name << "' ["
          << stack.back().start << ", " << stack.back().end << ")";
    }
    stack.push_back(s);
  }
}

// ------------------------------------------------------------ tests ----

TEST(Tracer, DisabledByDefault) {
  EXPECT_EQ(obs::Get(), nullptr);
  // Macros must be safe to execute with no tracer installed.
  OBS_EVENT(obs::Track(obs::kProcFs, 0), "noop");
  OBS_COUNTER(obs::Track(obs::kProcFs, 0), "noop", 1);
  { OBS_SPAN(obs::Track(obs::kProcFs, 0), "noop"); }
  EXPECT_EQ(obs::Get(), nullptr);
}

TEST(Tracer, SamplingDeterministic) {
  uint64_t fake_now = 0;
  obs::Tracer t({.clock = [&] { return fake_now; }, .sample_every = 4});
  int hits = 0;
  for (int i = 0; i < 16; ++i) {
    if (t.Sample()) {
      hits++;
    }
  }
  EXPECT_EQ(hits, 4);  // every 4th call, starting with the first
  EXPECT_EQ(t.NextOpId(), 1u);  // 0 is reserved for "untraced"
  EXPECT_EQ(t.NextOpId(), 2u);
}

TEST(Tracer, WritesParsableJson) {
  uint64_t fake_now = 0;
  obs::Tracer t({.clock = [&] { return fake_now; }});
  // Nested complete spans on one track, plus every other event kind.
  t.CompleteSpan(obs::Track(obs::kProcCores, 0), "outer", 100, 900,
                 {{"task", 1}});
  t.CompleteSpan(obs::Track(obs::kProcCores, 0), "inner", 200, 400);
  t.Instant(obs::Track(obs::kProcChanMgr, 0), "epoch", 500,
            {{"epoch_bytes", 4096}});
  t.Counter(obs::Track(obs::kProcDma, 1), "qdepth", 600, 3);
  const uint64_t id = t.NextOpId();
  t.AsyncSpan(id, "write", 100, 800, {{"bytes", 65536}});
  t.AsyncSpan(id, "commit", 150, 300);
  EXPECT_EQ(t.event_count(), 4u + 4u);  // async spans are two events each

  const std::string path = testing::TempDir() + "/obs_unit_trace.json";
  ASSERT_TRUE(t.WriteJsonFile(path));
  const JsonValue root = ParseTraceFile(path);

  const JsonValue* other = root.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->Find("clock")->raw, "virtual-ns");
  EXPECT_EQ(other->Find("dropped")->Number(), 0.0);

  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::kArray);

  int x = 0, i = 0, c = 0, b = 0, e = 0, m = 0;
  for (const JsonValue& ev : events->arr) {
    const std::string& ph = ev.Find("ph")->raw;
    if (ph == "X") {
      x++;
      EXPECT_NE(ev.Find("dur"), nullptr);
    } else if (ph == "i") {
      i++;
      EXPECT_EQ(ev.Find("s")->raw, "t");
    } else if (ph == "C") {
      c++;
    } else if (ph == "b") {
      b++;
      EXPECT_EQ(ev.Find("cat")->raw, "op");
      EXPECT_NE(ev.Find("id"), nullptr);
    } else if (ph == "e") {
      e++;
    } else if (ph == "M") {
      m++;
    }
  }
  EXPECT_EQ(x, 2);
  EXPECT_EQ(i, 1);
  EXPECT_EQ(c, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(e, 2);
  // Metadata must name every referenced process (cores, dma, fs-ops,
  // channel-manager) — process_name + sort index per process, thread_name
  // per track.
  EXPECT_GE(m, 4 * 2);
}

TEST(Tracer, MaxEventsDropsKeepAsyncBalanced) {
  uint64_t fake_now = 0;
  obs::Tracer t({.clock = [&] { return fake_now; }, .max_events = 5});
  t.CompleteSpan(obs::Track(obs::kProcCores, 0), "a", 0, 10);
  t.CompleteSpan(obs::Track(obs::kProcCores, 0), "b", 10, 20);
  t.CompleteSpan(obs::Track(obs::kProcCores, 0), "c", 20, 30);
  t.CompleteSpan(obs::Track(obs::kProcCores, 0), "d", 30, 40);
  // Only one slot left: the async span needs two. The writer must not emit
  // a dangling "b" — it retracts the begin when the end cannot be stored.
  t.AsyncSpan(t.NextOpId(), "op", 40, 50);
  EXPECT_GT(t.dropped_events(), 0u);
  EXPECT_LE(t.event_count(), 5u);

  const std::string path = testing::TempDir() + "/obs_drop_trace.json";
  ASSERT_TRUE(t.WriteJsonFile(path));
  const JsonValue root = ParseTraceFile(path);
  int b = 0, e = 0;
  for (const JsonValue& ev : root.Find("traceEvents")->arr) {
    const std::string& ph = ev.Find("ph")->raw;
    b += ph == "b";
    e += ph == "e";
  }
  EXPECT_EQ(b, e);
  EXPECT_GT(root.Find("otherData")->Find("dropped")->Number(), 0.0);
}

// End-to-end: trace a real EasyIO run through the Testbed, then re-parse the
// file and check the structural invariants the schema promises.
TEST(TraceSessionTest, EasyIoRunProducesNestedSpans) {
  const std::string path = testing::TempDir() + "/obs_easyio_trace.json";
  harness::TestbedConfig cfg;
  cfg.fs = harness::FsKind::kEasy;
  cfg.machine_cores = 4;
  cfg.device_bytes = 256_MB;
  harness::Testbed tb(cfg);
  {
    sim::TraceSession session(path, /*sample_every=*/1);
    tb.sim().Spawn(0, [&] {
      int fd = *tb.fs().Create("/t");
      std::vector<std::byte> buf(64_KB, std::byte{0x5a});
      for (int i = 0; i < 32; ++i) {
        EASYIO_CHECK_OK(tb.fs().Write(fd, uint64_t(i) * 64_KB, buf).status());
      }
      for (int i = 0; i < 32; ++i) {
        EASYIO_CHECK_OK(tb.fs().Read(fd, uint64_t(i) * 64_KB, buf).status());
      }
    });
    tb.sim().Run();
    EXPECT_GT(session.tracer().event_count(), 0u);
  }  // session destructor writes the file

  const JsonValue root = ParseTraceFile(path);
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->arr.size(), 100u);

  // 1. Complete spans nest like a stack per sequential track.
  std::map<std::pair<int, int>, std::vector<Span>> by_track;
  // 2. Async b/e balance per id, phases properly nested per id.
  std::map<std::string, std::vector<Span>> by_id;
  std::map<std::string, Span> open_async;
  std::map<std::string, int> op_names;
  for (const JsonValue& ev : events->arr) {
    const std::string& ph = ev.Find("ph")->raw;
    if (ph == "X") {
      Span s;
      s.start = TsToNs(ev.Find("ts")->raw);
      s.end = s.start + TsToNs(ev.Find("dur")->raw);
      s.name = ev.Find("name")->raw;
      by_track[{static_cast<int>(ev.Find("pid")->Number()),
                static_cast<int>(ev.Find("tid")->Number())}]
          .push_back(s);
    } else if (ph == "b") {
      const std::string& id = ev.Find("id")->raw;
      ASSERT_EQ(open_async.count(id), 0u)
          << "interleaved b events for id " << id;
      Span s;
      s.start = TsToNs(ev.Find("ts")->raw);
      s.name = ev.Find("name")->raw;
      open_async[id] = s;
    } else if (ph == "e") {
      const std::string& id = ev.Find("id")->raw;
      auto it = open_async.find(id);
      ASSERT_NE(it, open_async.end()) << "e without b for id " << id;
      it->second.end = TsToNs(ev.Find("ts")->raw);
      ASSERT_GE(it->second.end, it->second.start);
      by_id[id].push_back(it->second);
      op_names[it->second.name]++;
      open_async.erase(it);
    }
  }
  EXPECT_TRUE(open_async.empty()) << "unbalanced async spans";
  ASSERT_FALSE(by_track.empty());
  for (const auto& [track, spans] : by_track) {
    CheckStackNesting(spans, "track (" + std::to_string(track.first) + ", " +
                                 std::to_string(track.second) + ")");
  }
  ASSERT_FALSE(by_id.empty());
  for (const auto& [id, spans] : by_id) {
    CheckStackNesting(spans, "op id " + id);
  }
  // The run was 64K EasyIO writes + reads with full sampling: the op spans
  // and their phase sub-spans must all be present.
  for (const char* name : {"write", "read", "commit", "l1_hold", "dma_submit",
                           "sn_wait", "xfer_write", "xfer_read", "run"}) {
    bool found = op_names.count(name) > 0;
    for (const auto& [track, spans] : by_track) {
      for (const Span& s : spans) {
        found |= s.name == name;
      }
    }
    EXPECT_TRUE(found) << "expected span '" << name << "' in the trace";
  }
}

// ------------------------------------------------------------- stats ----

TEST(StatsTest, SummarizeEmptyHistogram) {
  Histogram h;
  const obs::LatencySummary s = obs::Summarize(h);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean_ns, 0.0);
  EXPECT_EQ(s.min_ns, 0u);
  EXPECT_EQ(s.p50_ns, 0u);
  EXPECT_EQ(s.p999_ns, 0u);
  EXPECT_EQ(s.max_ns, 0u);
}

TEST(StatsTest, SummarizeSingleSample) {
  Histogram h;
  h.Record(1000);
  const obs::LatencySummary s = obs::Summarize(h);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min_ns, 1000u);
  EXPECT_EQ(s.max_ns, 1000u);
  // Percentiles are bucketed upper bounds: within 1.6% above the sample.
  EXPECT_GE(s.p50_ns, 1000u);
  EXPECT_LE(s.p50_ns, 1016u);
  EXPECT_GE(s.p999_ns, s.p50_ns);
}

TEST(StatsTest, CollectStatsCountsFsWork) {
  harness::TestbedConfig cfg;
  cfg.fs = harness::FsKind::kEasy;
  cfg.machine_cores = 2;
  cfg.device_bytes = 256_MB;
  harness::Testbed tb(cfg);
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/s");
    std::vector<std::byte> buf(64_KB, std::byte{0x11});
    for (int i = 0; i < 8; ++i) {
      EASYIO_CHECK_OK(tb.fs().Write(fd, uint64_t(i) * 64_KB, buf).status());
    }
    EASYIO_CHECK_OK(tb.fs().Read(fd, 0, buf).status());
  });
  tb.sim().Run();

  obs::StatsSnapshot snap = tb.CollectStats();
  EXPECT_EQ(snap.now_ns, tb.sim().now());
  ASSERT_EQ(snap.cores.size(), 2u);
  EXPECT_GT(snap.cores[0].busy_ns, 0u);
  EXPECT_GT(snap.cores[0].busy_fraction, 0.0);
  ASSERT_FALSE(snap.channels.empty());
  uint64_t chan_bytes = 0;
  for (const auto& ch : snap.channels) {
    chan_bytes += ch.bytes_completed;
  }
  EXPECT_GT(chan_bytes, 0u);  // 64K writes are DMA-offloaded
  ASSERT_EQ(snap.fs.size(), 1u);
  const obs::FsStats& f = snap.fs[0];
  EXPECT_EQ(f.name, "EasyIO");
  EXPECT_EQ(f.ops_write, 8u);
  EXPECT_EQ(f.ops_read, 1u);
  EXPECT_EQ(f.bytes_written, 8u * 64_KB);
  EXPECT_EQ(f.bytes_read, 64_KB);
  // Every written/read byte moved either over DMA or through the CPU.
  EXPECT_EQ(f.bytes_cpu + f.bytes_dma, f.bytes_written + f.bytes_read);

  Histogram lat;
  lat.Record(123);
  snap.AddLatency("op_ns", lat);

  // Print() is the flat machine-readable dump; spot-check its grammar.
  const std::string path = testing::TempDir() + "/obs_stats_dump.txt";
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  snap.Print(out);
  std::fclose(out);
  const std::string dump = ReadFile(path);
  EXPECT_NE(dump.find("fs[EasyIO].ops_write=8"), std::string::npos) << dump;
  EXPECT_NE(dump.find("core[0].busy_ns="), std::string::npos);
  EXPECT_NE(dump.find("chan[0].bytes="), std::string::npos);
  EXPECT_NE(dump.find("lat[op_ns].count=1"), std::string::npos);
}

}  // namespace
}  // namespace easyio
