// Crash-consistency under DMA fault injection: every sampled crash point —
// including points inside an error/retry window, a stall, or a torn
// completion-record window — must recover to a state matching the model.
// Fault plans are deterministic, so the barrier-count pass and every replay
// see identical fault timing, and the whole sweep is reproducible run over
// run.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/crashmonkey/crash_test.h"

namespace easyio::crashmonkey {
namespace {

// Sequential crashmonkey workloads submit one descriptor at a time and the
// channel picks are deterministic (least-loaded, channel 0 when idle), so
// low channel-0 ordinals are guaranteed to be consumed. One of each fault
// class, early in the run.
dma::FaultPlan StandardFaults() {
  dma::FaultPlan plan;
  plan.errors.push_back({/*channel=*/0, /*ordinal=*/0, /*count=*/1});
  plan.stalls.push_back({/*channel=*/0, /*ordinal=*/1, /*stall_ns=*/40'000});
  plan.torn.push_back({/*channel=*/0, /*ordinal=*/2});
  plan.errors.push_back({/*channel=*/0, /*ordinal=*/5, /*count=*/2});
  return plan;
}

class FaultyCrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(FaultyCrashSweep, SampledPointsPassUnderInjectedFaults) {
  const auto workloads = StandardWorkloads(42);
  const auto& w = workloads[static_cast<size_t>(GetParam())];
  const dma::FaultPlan plan = StandardFaults();
  const auto result =
      RunCrashTest(w, /*max_points=*/12, DefaultCrashFsOptions(), &plan);
  EXPECT_GT(result.total_points, 0) << w.name;
  EXPECT_EQ(result.passed, result.total_points) << w.name;
  for (const auto& f : result.failures) {
    ADD_FAILURE() << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Table2Faulty, FaultyCrashSweep,
                         ::testing::Values(0, 1, 2, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return StandardWorkloads(42)[static_cast<size_t>(
                                                            info.param)]
                               .name;
                         });

TEST(CrashDuringRetryWindowTest, EveryBarrierInsideRecoveryIsConsistent) {
  // A tiny workload whose first data DMA fails twice before succeeding:
  // with max_points above the total barrier count, EVERY persist barrier is
  // a crash point — including the error-status record update, the
  // cleared-status update on each retry, and the final completion. The
  // recovered state must match the model at all of them.
  WorkloadBuilder b;
  b.Create("/retry_victim");
  Rng rng(5);
  std::vector<std::byte> data(16 * 1024);
  for (auto& x : data) {
    x = static_cast<std::byte>(rng.Next());
  }
  b.Write("/retry_victim", 0, data);
  b.Append("/retry_victim", std::vector<std::byte>(6000, std::byte{0x5C}));
  CrashWorkload w{"retry_window", "write whose DMA errors twice", b.Build()};

  dma::FaultPlan plan;
  plan.errors.push_back({/*channel=*/0, /*ordinal=*/0, /*count=*/2});
  const auto result =
      RunCrashTest(w, /*max_points=*/400, DefaultCrashFsOptions(), &plan);
  EXPECT_GT(result.total_points, 0);
  EXPECT_EQ(result.passed, result.total_points);
  for (const auto& f : result.failures) {
    ADD_FAILURE() << f;
  }
}

TEST(CrashDuringTornWindowTest, StaleRecordAtCrashDiscardsOnlyUnackedWrite) {
  // The torn-record case: the transfer finished but the persistent record
  // is stale at the crash. Recovery must treat the write as not durable —
  // which is consistent, because the waiter never woke (the wait reads only
  // the persistent record), so the application never saw the op complete.
  WorkloadBuilder b;
  b.Create("/torn_victim");
  std::vector<std::byte> data(12 * 1024, std::byte{0x7E});
  b.Write("/torn_victim", 0, data);
  b.Write("/torn_victim", 4096, std::vector<std::byte>(8192, std::byte{0x11}));
  CrashWorkload w{"torn_window", "write whose record update is torn",
                  b.Build()};

  dma::FaultPlan plan;
  plan.torn.push_back({/*channel=*/0, /*ordinal=*/0});
  const auto result =
      RunCrashTest(w, /*max_points=*/400, DefaultCrashFsOptions(), &plan);
  EXPECT_GT(result.total_points, 0);
  EXPECT_EQ(result.passed, result.total_points);
  for (const auto& f : result.failures) {
    ADD_FAILURE() << f;
  }
}

TEST(FaultSweepDeterminismTest, SamePlanSameSweepTwice) {
  const auto workloads = StandardWorkloads(42);
  const dma::FaultPlan plan = StandardFaults();
  const auto r1 =
      RunCrashTest(workloads[0], /*max_points=*/6, DefaultCrashFsOptions(),
                   &plan);
  const auto r2 =
      RunCrashTest(workloads[0], /*max_points=*/6, DefaultCrashFsOptions(),
                   &plan);
  EXPECT_EQ(r1.total_points, r2.total_points);
  EXPECT_EQ(r1.passed, r2.passed);
  EXPECT_EQ(r1.failures, r2.failures);
}

}  // namespace
}  // namespace easyio::crashmonkey
