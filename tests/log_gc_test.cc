// Tests for NOVA's log garbage collection: long overwrite streams must keep
// the per-inode log bounded without losing data, leaking blocks, or breaking
// recovery — including on EasyIO with orderless (SN-carrying) entries.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/harness/testbed.h"
#include "src/nova/nova_fs.h"

namespace easyio::nova {
namespace {

using harness::FsKind;
using harness::Testbed;
using harness::TestbedConfig;

TestbedConfig Config(FsKind kind) {
  TestbedConfig cfg;
  cfg.fs = kind;
  cfg.machine_cores = 4;
  cfg.device_bytes = 256_MB;
  return cfg;
}

class LogGcTest : public ::testing::TestWithParam<FsKind> {};

TEST_P(LogGcTest, OverwriteStreamKeepsLogBoundedAndDataCorrect) {
  Testbed tb(Config(GetParam()));
  const uint64_t free_before = tb.nova().free_pages();
  std::vector<std::byte> final_state(256_KB);
  tb.sim().Spawn(0, [&] {
    Rng rng(5);
    int fd = *tb.fs().Create("/hot");
    std::vector<std::byte> init(256_KB, std::byte{0});
    ASSERT_TRUE(tb.fs().Write(fd, 0, init).ok());
    // Thousands of random-block overwrites: without GC this leaves ~8000
    // log entries (~128 pages) on one inode.
    for (int i = 0; i < 8000; ++i) {
      std::vector<std::byte> blk(16_KB,
                                 static_cast<std::byte>(rng.Next()));
      const uint64_t off = rng.Below(16) * 16_KB;
      ASSERT_TRUE(tb.fs().Write(fd, off, blk).ok());
      std::copy(blk.begin(), blk.end(), final_state.begin() + off);
    }
    std::vector<std::byte> back(256_KB);
    ASSERT_TRUE(tb.fs().Read(fd, 0, back).ok());
    ASSERT_EQ(back, final_state);
    ASSERT_TRUE(tb.fs().Close(fd).ok());
  });
  tb.sim().Run();
  EXPECT_GT(tb.nova().log_compactions(), 0u);
  // Log stayed bounded: with everything quiescent, the space cost of /hot
  // is its 64 data pages plus a handful of log pages.
  const uint64_t used = free_before - tb.nova().free_pages();
  EXPECT_LT(used, 64 + 64);  // data pages + small log, not ~128 log pages

  // The compacted log must recover to the same contents.
  NovaFs fs2(&tb.mem(), TestbedConfig{}.fs_options);
  ASSERT_TRUE(fs2.Mount().ok());
  tb.sim().Spawn(0, [&] {
    int fd = *fs2.Open("/hot");
    std::vector<std::byte> back(256_KB);
    ASSERT_TRUE(fs2.Read(fd, 0, back).ok());
    EXPECT_EQ(back, final_state);
  });
  tb.sim().Run();
}

INSTANTIATE_TEST_SUITE_P(AllModes, LogGcTest,
                         ::testing::Values(FsKind::kNova, FsKind::kEasy,
                                           FsKind::kNovaDma),
                         [](const ::testing::TestParamInfo<FsKind>& info) {
                           std::string n = harness::FsKindName(info.param);
                           for (auto& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

TEST(LogGcTest, DirectoryLogCompacts) {
  Testbed tb(Config(FsKind::kNova));
  tb.sim().Spawn(0, [&] {
    // Create+unlink churn in one directory: thousands of dentry entries,
    // few live names.
    for (int i = 0; i < 2000; ++i) {
      const std::string path = "/churn" + std::to_string(i);
      auto fd = tb.fs().Create(path);
      ASSERT_TRUE(fd.ok()) << i;
      ASSERT_TRUE(tb.fs().Close(*fd).ok());
      if (i % 8 != 7) {
        ASSERT_TRUE(tb.fs().Unlink(path).ok());  // keep every 8th name
      }
    }
  });
  tb.sim().Run();
  EXPECT_GT(tb.nova().log_compactions(), 0u);
  // Remount proves the compacted directory log is self-consistent.
  NovaFs fs2(&tb.mem(), TestbedConfig{}.fs_options);
  ASSERT_TRUE(fs2.Mount().ok());
}

TEST(LogGcTest, CompactionPreservesHardLinks) {
  Testbed tb(Config(FsKind::kNova));
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/orig");
    std::vector<std::byte> data(64_KB, std::byte{0x7A});
    ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
    ASSERT_TRUE(tb.fs().Link("/orig", "/alias").ok());
    // Force compaction of the shared inode's log via overwrites.
    for (int i = 0; i < 4000; ++i) {
      std::vector<std::byte> blk(16_KB, static_cast<std::byte>(i));
      ASSERT_TRUE(tb.fs().Write(fd, (i % 4) * 16_KB, blk).ok());
    }
    int fd2 = *tb.fs().Open("/alias");
    EXPECT_EQ(tb.fs().StatFd(fd2)->nlink, 2u);
    std::vector<std::byte> a(64_KB);
    std::vector<std::byte> b(64_KB);
    ASSERT_TRUE(tb.fs().Read(fd, 0, a).ok());
    ASSERT_TRUE(tb.fs().Read(fd2, 0, b).ok());
    EXPECT_EQ(a, b);
  });
  tb.sim().Run();
  EXPECT_GT(tb.nova().log_compactions(), 0u);
}

}  // namespace
}  // namespace easyio::nova
