// Differential property testing: drive long random operation sequences
// against each filesystem and an in-memory reference model simultaneously,
// checking full-state equivalence along the way and after a remount.
// Parameterized over (filesystem kind x seed) — each instance is a distinct
// randomized trajectory through creates, writes (aligned and unaligned,
// small and DMA-sized), appends, reads, links, renames, unlinks and fsyncs.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/harness/testbed.h"
#include "src/nova/nova_fs.h"

namespace easyio {
namespace {

using harness::FsKind;

// Reference model with hard-link aliasing.
struct Model {
  using Content = std::shared_ptr<std::vector<std::byte>>;
  std::map<std::string, Content> files;

  void Write(const std::string& p, uint64_t off,
             const std::vector<std::byte>& data) {
    auto& c = *files.at(p);
    if (c.size() < off + data.size()) {
      c.resize(off + data.size(), std::byte{0});
    }
    std::copy(data.begin(), data.end(), c.begin() + off);
  }
};

class FsPropertyTest
    : public ::testing::TestWithParam<std::tuple<FsKind, uint64_t>> {};

TEST_P(FsPropertyTest, RandomOpsMatchModel) {
  const auto [kind, seed] = GetParam();
  harness::TestbedConfig cfg;
  cfg.fs = kind;
  cfg.machine_cores = 36;
  cfg.device_bytes = 512_MB;
  harness::Testbed tb(cfg);
  auto& fs = tb.fs();

  Model model;
  Rng rng(seed);
  constexpr int kFiles = 12;
  constexpr int kOps = 300;

  auto path_of = [](uint64_t i) { return "/p" + std::to_string(i % kFiles); };

  bool done = false;
  tb.sim().Spawn(0, [&] {
    for (int op = 0; op < kOps; ++op) {
      const std::string path = path_of(rng.Next());
      const bool exists = model.files.contains(path);
      switch (rng.Below(100)) {
        case 0 ... 14: {  // create
          auto fd = fs.Create(path);
          if (exists) {
            ASSERT_EQ(fd.status().code(), ErrorCode::kExists);
          } else {
            ASSERT_TRUE(fd.ok()) << "op " << op << " create " << path
                                 << ": " << fd.status();
            ASSERT_TRUE(fs.Close(*fd).ok());
            model.files[path] =
                std::make_shared<std::vector<std::byte>>();
          }
          break;
        }
        case 15 ... 44: {  // write (mixed sizes/alignment, incl. sparse)
          if (!exists) {
            continue;
          }
          const uint64_t size = model.files[path]->size();
          const uint64_t off =
              rng.Below(3) == 0 ? rng.Below(size + 100_KB)  // maybe sparse
                                : rng.Below(size + 1);
          size_t n;
          switch (rng.Below(4)) {
            case 0: n = 1 + rng.Below(4096); break;           // sub-page
            case 1: n = 4096 * (1 + rng.Below(4)); break;     // aligned
            case 2: n = 16_KB + rng.Below(48_KB); break;      // DMA-sized
            default: n = 1 + rng.Below(300_KB); break;        // large
          }
          std::vector<std::byte> data(n);
          for (auto& b : data) {
            b = static_cast<std::byte>(rng.Next());
          }
          int fd = *fs.Open(path);
          auto w = fs.Write(fd, off, data);
          ASSERT_TRUE(w.ok()) << w.status();
          ASSERT_EQ(*w, n);
          ASSERT_TRUE(fs.Close(fd).ok());
          model.Write(path, off, data);
          break;
        }
        case 45 ... 54: {  // append
          if (!exists) {
            continue;
          }
          std::vector<std::byte> data(1 + rng.Below(20_KB));
          for (auto& b : data) {
            b = static_cast<std::byte>(rng.Next());
          }
          int fd = *fs.Open(path);
          ASSERT_TRUE(fs.Append(fd, data).ok());
          ASSERT_TRUE(fs.Close(fd).ok());
          model.Write(path, model.files[path]->size(), data);
          break;
        }
        case 55 ... 74: {  // read + compare a window
          if (!exists) {
            ASSERT_EQ(fs.Open(path).status().code(), ErrorCode::kNotFound);
            continue;
          }
          const auto& want = *model.files[path];
          int fd = *fs.Open(path);
          ASSERT_EQ(fs.StatFd(fd)->size, want.size());
          if (!want.empty()) {
            const uint64_t off = rng.Below(want.size());
            const size_t n = 1 + rng.Below(want.size() - off);
            std::vector<std::byte> got(n);
            auto r = fs.Read(fd, off, got);
            ASSERT_TRUE(r.ok());
            ASSERT_EQ(*r, n);
            ASSERT_TRUE(std::equal(got.begin(), got.end(),
                                   want.begin() + off))
                << path << " window @" << off << "+" << n << " differs";
          }
          ASSERT_TRUE(fs.Close(fd).ok());
          break;
        }
        case 75 ... 82: {  // unlink
          auto st = fs.Unlink(path);
          if (exists) {
            ASSERT_TRUE(st.ok());
            model.files.erase(path);
          } else {
            ASSERT_EQ(st.code(), ErrorCode::kNotFound);
          }
          break;
        }
        case 83 ... 89: {  // link
          const std::string to = path_of(rng.Next());
          auto st = fs.Link(path, to);
          if (exists && !model.files.contains(to)) {
            ASSERT_TRUE(st.ok());
            model.files[to] = model.files[path];
          } else {
            ASSERT_FALSE(st.ok());
          }
          break;
        }
        case 90 ... 96: {  // rename
          const std::string to = path_of(rng.Next());
          auto st = fs.Rename(path, to);
          if (!exists) {
            ASSERT_EQ(st.code(), ErrorCode::kNotFound);
          } else {
            ASSERT_TRUE(st.ok()) << st;
            // POSIX: renaming between two names of the same inode is a
            // no-op (both names survive).
            const bool same_inode = model.files.contains(to) &&
                                    model.files[to] == model.files[path];
            if (to != path && !same_inode) {
              model.files[to] = model.files[path];
              model.files.erase(path);
            }
          }
          break;
        }
        default: {  // fsync
          if (exists) {
            int fd = *fs.Open(path);
            ASSERT_TRUE(fs.Fsync(fd).ok());
            ASSERT_TRUE(fs.Close(fd).ok());
          }
          break;
        }
      }
    }

    // Final full-state comparison.
    for (int i = 0; i < kFiles; ++i) {
      const std::string path = "/p" + std::to_string(i);
      auto it = model.files.find(path);
      auto fd = fs.Open(path);
      if (it == model.files.end()) {
        ASSERT_FALSE(fd.ok()) << path << " should not exist";
        continue;
      }
      ASSERT_TRUE(fd.ok()) << path;
      const auto& want = *it->second;
      ASSERT_EQ(fs.StatFd(*fd)->size, want.size()) << path;
      std::vector<std::byte> got(want.size());
      if (!want.empty()) {
        ASSERT_TRUE(fs.Read(*fd, 0, got).ok());
        ASSERT_EQ(got, want) << path;
      }
      ASSERT_TRUE(fs.Close(*fd).ok());
    }
    done = true;
  });
  tb.sim().Run();
  ASSERT_TRUE(done);

  // Remount (for the NOVA-layout systems) and re-verify everything from the
  // recovered on-media state.
  nova::NovaFs fs2(&tb.mem(), cfg.fs_options);
  ASSERT_TRUE(fs2.Mount().ok());
  bool verified = false;
  tb.sim().Spawn(0, [&] {
    for (const auto& [path, want_ptr] : model.files) {
      const auto& want = *want_ptr;
      auto fd = fs2.Open(path);
      ASSERT_TRUE(fd.ok()) << path << " lost across remount";
      ASSERT_EQ(fs2.StatFd(*fd)->size, want.size()) << path;
      std::vector<std::byte> got(want.size());
      if (!want.empty()) {
        ASSERT_TRUE(fs2.Read(*fd, 0, got).ok());
        ASSERT_EQ(got, want) << path << " corrupted across remount";
      }
    }
    verified = true;
  });
  tb.sim().Run();
  ASSERT_TRUE(verified);
}

std::string ParamName(
    const ::testing::TestParamInfo<std::tuple<FsKind, uint64_t>>& info) {
  std::string name = harness::FsKindName(std::get<0>(info.param));
  for (auto& ch : name) {
    if (ch == '-') {
      ch = '_';
    }
  }
  return name + "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Differential, FsPropertyTest,
    ::testing::Combine(::testing::Values(FsKind::kNova, FsKind::kNovaDma,
                                         FsKind::kOdin, FsKind::kEasy,
                                         FsKind::kEasyNaive),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    ParamName);

}  // namespace
}  // namespace easyio
