// PageMap edge cases and the steady-state allocation-free guarantee.
//
// The flat sorted-vector PageMap is on the simulator's per-operation hot
// path; besides the split/merge semantics, these tests pin down the
// performance contract: once the extent array and the caller's displaced
// vector have warmed up, Insert/ForEachSegment perform zero heap
// allocations.

#include "src/nova/page_map.h"

#include <cstdlib>
#include <new>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/units.h"
#include "src/nova/layout.h"
#include "src/obs/trace.h"
#include "src/sim/simulation.h"

// ---- operator-new hook (counts allocations when armed) ----

namespace {
bool g_count_allocs = false;
size_t g_alloc_count = 0;
}  // namespace

void* operator new(size_t n) {
  if (g_count_allocs) {
    g_alloc_count++;
  }
  void* p = std::malloc(n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(size_t n, const std::nothrow_t&) noexcept {
  if (g_count_allocs) {
    g_alloc_count++;
  }
  return std::malloc(n);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace easyio::nova {
namespace {

constexpr uint64_t kBase = 1_MB;

uint64_t Blk(uint64_t page_idx) { return kBase + page_idx * kBlockSize; }

TEST(PageMapEdgeTest, OverlapSplitsHeadOfExistingExtent) {
  PageMap map;
  map.Insert(0, 8, Blk(0), 0);
  // New extent covers pages [0, 3): the old extent loses its head.
  const auto displaced = map.Insert(0, 3, Blk(100), 0);
  ASSERT_EQ(displaced.size(), 1u);
  EXPECT_EQ(displaced[0], (Extent{Blk(0), 3}));

  const auto segs = map.Lookup(0, 8);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (PageMap::Segment{0, 3, Blk(100), false}));
  EXPECT_EQ(segs[1], (PageMap::Segment{3, 5, Blk(3), false}));
  EXPECT_EQ(map.extent_count(), 2u);
  EXPECT_EQ(map.mapped_pages(), 8u);
}

TEST(PageMapEdgeTest, OverlapSplitsTailOfExistingExtent) {
  PageMap map;
  map.Insert(0, 8, Blk(0), 0);
  // New extent covers pages [5, 8): the old extent loses its tail.
  const auto displaced = map.Insert(5, 3, Blk(100), 0);
  ASSERT_EQ(displaced.size(), 1u);
  EXPECT_EQ(displaced[0], (Extent{Blk(5), 3}));

  const auto segs = map.Lookup(0, 8);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (PageMap::Segment{0, 5, Blk(0), false}));
  EXPECT_EQ(segs[1], (PageMap::Segment{5, 3, Blk(100), false}));
  EXPECT_EQ(map.mapped_pages(), 8u);
}

TEST(PageMapEdgeTest, OverlapSplitsMiddleOfExistingExtent) {
  PageMap map;
  map.Insert(0, 8, Blk(0), 0);
  // New extent in the middle: the old extent splits into head and tail.
  const auto displaced = map.Insert(3, 2, Blk(100), 0);
  ASSERT_EQ(displaced.size(), 1u);
  EXPECT_EQ(displaced[0], (Extent{Blk(3), 2}));

  const auto segs = map.Lookup(0, 8);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], (PageMap::Segment{0, 3, Blk(0), false}));
  EXPECT_EQ(segs[1], (PageMap::Segment{3, 2, Blk(100), false}));
  EXPECT_EQ(segs[2], (PageMap::Segment{5, 3, Blk(5), false}));
  EXPECT_EQ(map.extent_count(), 3u);
  EXPECT_EQ(map.mapped_pages(), 8u);
}

TEST(PageMapEdgeTest, ExactCoverReplacesWholeExtent) {
  PageMap map;
  map.Insert(2, 4, Blk(0), 0);
  const auto displaced = map.Insert(2, 4, Blk(100), 0);
  ASSERT_EQ(displaced.size(), 1u);
  EXPECT_EQ(displaced[0], (Extent{Blk(0), 4}));
  EXPECT_EQ(map.extent_count(), 1u);

  const auto segs = map.Lookup(2, 4);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (PageMap::Segment{2, 4, Blk(100), false}));
}

TEST(PageMapEdgeTest, InsertSpanningSeveralExtentsDisplacesInOrder) {
  PageMap map;
  map.Insert(0, 2, Blk(0), 0);
  map.Insert(4, 2, Blk(10), 0);
  map.Insert(8, 2, Blk(20), 0);
  // Covers the tail of the first, all of the second, the head of the third.
  const auto displaced = map.Insert(1, 8, Blk(100), 0);
  ASSERT_EQ(displaced.size(), 3u);
  EXPECT_EQ(displaced[0], (Extent{Blk(1), 1}));
  EXPECT_EQ(displaced[1], (Extent{Blk(10), 2}));
  EXPECT_EQ(displaced[2], (Extent{Blk(20), 1}));

  const auto segs = map.Lookup(0, 10);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], (PageMap::Segment{0, 1, Blk(0), false}));
  EXPECT_EQ(segs[1], (PageMap::Segment{1, 8, Blk(100), false}));
  EXPECT_EQ(segs[2], (PageMap::Segment{9, 1, Blk(21), false}));
}

TEST(PageMapEdgeTest, LookupCoalescesAdjacentHoles) {
  PageMap map;
  map.Insert(5, 1, Blk(0), 0);
  // Pages [0,5) and [6,10) are unmapped: each side must come back as one
  // coalesced hole, not per-page fragments.
  const auto segs = map.Lookup(0, 10);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], (PageMap::Segment{0, 5, 0, true}));
  EXPECT_EQ(segs[1], (PageMap::Segment{5, 1, Blk(0), false}));
  EXPECT_EQ(segs[2], (PageMap::Segment{6, 4, 0, true}));
}

TEST(PageMapEdgeTest, LookupRangeFullyInsidePredecessorExtent) {
  PageMap map;
  map.Insert(0, 10, Blk(0), 0);
  const auto segs = map.Lookup(3, 4);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (PageMap::Segment{3, 4, Blk(3), false}));
}

TEST(PageMapEdgeTest, LookupEmptyMapIsOneHole) {
  PageMap map;
  const auto segs = map.Lookup(7, 3);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (PageMap::Segment{7, 3, 0, true}));
}

TEST(PageMapEdgeTest, ClearAccountsEveryFreedExtent) {
  PageMap map;
  map.Insert(0, 3, Blk(0), 0);
  map.Insert(10, 2, Blk(50), 0);
  map.Insert(1, 1, Blk(70), 0);  // splits the first extent
  ASSERT_EQ(map.mapped_pages(), 5u);

  std::vector<Extent> freed;
  map.Clear(&freed);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.extent_count(), 0u);
  EXPECT_EQ(map.mapped_pages(), 0u);

  uint64_t total = 0;
  for (const Extent& e : freed) {
    total += e.pages;
  }
  // Everything currently mapped is released: 5 mapped pages across 4 extents
  // (0-split head, the overwrite, the split tail, the distant extent).
  EXPECT_EQ(total, 5u);
  ASSERT_EQ(freed.size(), 4u);
}

TEST(PageMapEdgeTest, DisplacedVectorIsAppendedNotCleared) {
  PageMap map;
  map.Insert(0, 2, Blk(0), 0);
  std::vector<Extent> displaced{Extent{12345, 99}};
  map.Insert(0, 2, Blk(100), 0, &displaced);
  ASSERT_EQ(displaced.size(), 2u);
  EXPECT_EQ(displaced[0], (Extent{12345, 99}));
  EXPECT_EQ(displaced[1], (Extent{Blk(0), 2}));
}

// ---- steady-state zero-allocation guarantee ----

TEST(PageMapAllocationTest, SteadyStateInsertAndLookupAllocateNothing) {
  PageMap map;
  map.Reserve(64);
  std::vector<Extent> displaced;
  displaced.reserve(64);

  // Warm up: populate a 32-page file and run one full round of the pattern
  // below so every container reaches its steady-state capacity.
  auto round = [&](uint64_t salt) {
    // Full-file rewrite, partial overwrites splitting head/mid/tail, and
    // streaming lookups — the shapes the write/read paths produce.
    map.Insert(0, 32, Blk(salt % 7), 0, &displaced);
    map.Insert(0, 4, Blk(40 + salt % 5), 0, &displaced);
    map.Insert(14, 3, Blk(50 + salt % 5), 0, &displaced);
    map.Insert(29, 3, Blk(60 + salt % 5), 0, &displaced);
    uint64_t pages_seen = 0;
    map.ForEachSegment(0, 32, [&](const PageMap::Segment& s) {
      pages_seen += s.pages;
      EXPECT_FALSE(s.hole);
    });
    EXPECT_EQ(pages_seen, 32u);
    displaced.clear();
  };
  round(0);
  round(1);

  g_alloc_count = 0;
  g_count_allocs = true;
  for (uint64_t i = 0; i < 1000; ++i) {
    round(i);
  }
  g_count_allocs = false;
  EXPECT_EQ(g_alloc_count, 0u)
      << "PageMap hot path allocated in steady state";
}

// The observability macros must preserve the zero-allocation guarantee when
// no tracer is installed: their entire disabled-path cost is the obs::Get()
// null check, so a hot loop over every macro kind may not touch the heap.
TEST(PageMapAllocTest, ObsMacrosAllocFreeWhenDisabled) {
  ASSERT_EQ(easyio::obs::Get(), nullptr);
  g_alloc_count = 0;
  g_count_allocs = true;
  for (int i = 0; i < 100000; ++i) {
    OBS_EVENT(easyio::obs::Track(easyio::obs::kProcFs, 0), "e",
              {"k", static_cast<uint64_t>(i)});
    OBS_EVENT_SAMPLED(easyio::obs::Track(easyio::obs::kProcFs, 0), "es");
    OBS_COUNTER(easyio::obs::Track(easyio::obs::kProcCores, 0), "c", i);
    OBS_COUNTER_SAMPLED(easyio::obs::Track(easyio::obs::kProcCores, 0), "cs",
                        i);
    OBS_SPAN(easyio::obs::Track(easyio::obs::kProcCores, 0), "s");
    OBS_SPAN_SAMPLED(easyio::obs::Track(easyio::obs::kProcCores, 0), "ss");
  }
  g_count_allocs = false;
  EXPECT_EQ(g_alloc_count, 0u)
      << "disabled OBS_* macros allocated on the hot path";
}

// Steady-state simulation hot loop (Advance + event schedule/fire + context
// switches through the instrumented DispatchTask path) with tracing
// disabled: zero allocations once stacks, event slab and the run loop have
// warmed up (DESIGN.md §6).
TEST(PageMapAllocTest, SimAdvanceLoopAllocFreeTracingDisabled) {
  ASSERT_EQ(easyio::obs::Get(), nullptr);
  sim::Simulation sim({.num_cores = 2});
  bool stop = false;
  for (int c = 0; c < 2; ++c) {
    sim.Spawn(c, [&sim, &stop] {
      while (!stop) {
        sim.Advance(100);
      }
    });
  }
  sim.RunFor(50000);  // warm up: stacks, event slots, heap vector
  g_alloc_count = 0;
  g_count_allocs = true;
  sim.RunFor(500000);
  g_count_allocs = false;
  EXPECT_EQ(g_alloc_count, 0u)
      << "simulation hot loop allocated with tracing disabled";
  stop = true;
  sim.Run();  // drain: both tasks observe stop and finish
}

}  // namespace
}  // namespace easyio::nova
