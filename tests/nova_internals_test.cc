// Unit tests for NOVA's internal building blocks: the extent allocator, the
// in-DRAM page map, and the redo journal.

#include <gtest/gtest.h>

#include <set>

#include "src/common/units.h"
#include "src/nova/allocator.h"
#include "src/nova/journal.h"
#include "src/nova/layout.h"
#include "src/nova/page_map.h"
#include "src/pmem/slow_memory.h"
#include "src/sim/simulation.h"

namespace easyio::nova {
namespace {

constexpr uint64_t kArea = 1_MB;  // allocator area offset for tests

TEST(AllocatorTest, AllocAndFreeRoundTrip) {
  BlockAllocator alloc(kArea, 1024, 4);
  EXPECT_EQ(alloc.free_pages(), 1024u);
  auto e = alloc.Alloc(16, 0);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->pages, 16u);
  EXPECT_GE(e->block_off, kArea);
  EXPECT_EQ(alloc.free_pages(), 1008u);
  alloc.Free(*e);
  EXPECT_EQ(alloc.free_pages(), 1024u);
}

TEST(AllocatorTest, DistinctExtents) {
  BlockAllocator alloc(kArea, 256, 2);
  std::set<uint64_t> offs;
  for (int i = 0; i < 16; ++i) {
    auto e = alloc.Alloc(16, i);
    ASSERT_TRUE(e.ok());
    for (uint64_t p = 0; p < e->pages; ++p) {
      EXPECT_TRUE(offs.insert(e->block_off + p * kBlockSize).second)
          << "double allocation";
    }
  }
  EXPECT_EQ(alloc.free_pages(), 0u);
  EXPECT_FALSE(alloc.Alloc(1, 0).ok());
}

TEST(AllocatorTest, CoalescingRebuildsLargeExtents) {
  BlockAllocator alloc(kArea, 64, 1);
  auto a = alloc.Alloc(16, 0);
  auto b = alloc.Alloc(16, 0);
  auto c = alloc.Alloc(16, 0);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  alloc.Free(*a);
  alloc.Free(*c);
  alloc.Free(*b);  // middle free must merge all three
  auto big = alloc.Alloc(48, 0);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->pages, 48u);
}

TEST(AllocatorTest, FragmentationYieldsPartialExtents) {
  BlockAllocator alloc(kArea, 8, 1);
  auto a = alloc.Alloc(3, 0);
  auto b = alloc.Alloc(3, 0);
  ASSERT_TRUE(a.ok() && b.ok());
  alloc.Free(*a);
  // 3 free at the front, 2 at the back; a request for 5 must span both.
  auto multi = alloc.AllocMulti(5, 0);
  ASSERT_TRUE(multi.ok());
  uint64_t total = 0;
  for (const Extent& e : *multi) {
    total += e.pages;
  }
  EXPECT_EQ(total, 5u);
  EXPECT_GE(multi->size(), 2u);
}

TEST(AllocatorTest, AllocMultiRollsBackOnFailure) {
  BlockAllocator alloc(kArea, 8, 1);
  auto hold = alloc.Alloc(4, 0);
  ASSERT_TRUE(hold.ok());
  EXPECT_FALSE(alloc.AllocMulti(5, 0).ok());  // only 4 left
  EXPECT_EQ(alloc.free_pages(), 4u);          // nothing leaked
}

TEST(AllocatorTest, RecoveryMarksAndSweeps) {
  BlockAllocator alloc(kArea, 64, 4);
  alloc.BeginRecovery();
  alloc.MarkUsed(kArea + 4 * kBlockSize, 4);
  alloc.MarkUsed(kArea + 20 * kBlockSize, 1);
  alloc.FinishRecovery();
  EXPECT_EQ(alloc.free_pages(), 59u);
  // The marked ranges must not be handed out.
  std::set<uint64_t> used;
  while (true) {
    auto e = alloc.Alloc(1, 0);
    if (!e.ok()) {
      break;
    }
    used.insert(e->block_off);
  }
  EXPECT_EQ(used.size(), 59u);
  for (uint64_t p = 4; p < 8; ++p) {
    EXPECT_FALSE(used.contains(kArea + p * kBlockSize));
  }
  EXPECT_FALSE(used.contains(kArea + 20 * kBlockSize));
}

TEST(PageMapTest, InsertAndLookup) {
  PageMap map;
  EXPECT_TRUE(map.Insert(0, 4, 1_MB, 0).empty());
  auto segs = map.Lookup(0, 4);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].block_off, 1_MB);
  EXPECT_EQ(segs[0].pages, 4u);
  EXPECT_FALSE(segs[0].hole);
}

TEST(PageMapTest, LookupReportsHoles) {
  PageMap map;
  map.Insert(2, 2, 1_MB, 0);
  auto segs = map.Lookup(0, 6);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_TRUE(segs[0].hole);
  EXPECT_EQ(segs[0].pages, 2u);
  EXPECT_FALSE(segs[1].hole);
  EXPECT_TRUE(segs[2].hole);
  EXPECT_EQ(segs[2].pgoff, 4u);
}

TEST(PageMapTest, OverwriteDisplacesExactly) {
  PageMap map;
  map.Insert(0, 8, 1_MB, 0);
  auto displaced = map.Insert(2, 3, 2_MB, 0);
  ASSERT_EQ(displaced.size(), 1u);
  EXPECT_EQ(displaced[0].block_off, 1_MB + 2 * kBlockSize);
  EXPECT_EQ(displaced[0].pages, 3u);
  // Mapping: [0,2)->old, [2,5)->new, [5,8)->old.
  auto segs = map.Lookup(0, 8);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].block_off, 1_MB);
  EXPECT_EQ(segs[1].block_off, 2_MB);
  EXPECT_EQ(segs[2].block_off, 1_MB + 5 * kBlockSize);
  EXPECT_EQ(map.mapped_pages(), 8u);
}

TEST(PageMapTest, OverwriteSpanningMultipleExtents) {
  PageMap map;
  map.Insert(0, 2, 1_MB, 0);
  map.Insert(2, 2, 2_MB, 0);
  map.Insert(4, 2, 3_MB, 0);
  auto displaced = map.Insert(1, 4, 4_MB, 0);
  // Displaces the tail of extent 1, all of extent 2, head of extent 3.
  uint64_t total = 0;
  for (const Extent& e : displaced) {
    total += e.pages;
  }
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(map.mapped_pages(), 6u);
  auto segs = map.Lookup(0, 6);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[1].block_off, 4_MB);
  EXPECT_EQ(segs[1].pages, 4u);
}

TEST(PageMapTest, ExactCoverDisplacesWholeExtent) {
  PageMap map;
  map.Insert(3, 5, 1_MB, 0);
  auto displaced = map.Insert(3, 5, 2_MB, 0);
  ASSERT_EQ(displaced.size(), 1u);
  EXPECT_EQ(displaced[0], (Extent{1_MB, 5}));
  EXPECT_EQ(map.extent_count(), 1u);
}

TEST(PageMapTest, ClearReturnsEverything) {
  PageMap map;
  map.Insert(0, 2, 1_MB, 0);
  map.Insert(10, 3, 2_MB, 0);
  std::vector<Extent> freed;
  map.Clear(&freed);
  EXPECT_EQ(freed.size(), 2u);
  EXPECT_TRUE(map.empty());
}

TEST(LayoutTest, RegionsAreDisjointAndOrdered) {
  const Layout l = Layout::Compute(256_MB, 16384, 64, 16);
  EXPECT_GE(l.comp_region_off, kBlockSize);
  EXPECT_GT(l.journal_off, l.comp_region_off);
  EXPECT_GT(l.inode_table_off, l.journal_off);
  EXPECT_GT(l.block_area_off, l.inode_table_off);
  EXPECT_GE(l.inode_table_off - l.journal_off, 64 * kBlockSize);
  EXPECT_GT(l.block_count, 0u);
  EXPECT_LE(l.block_area_off + l.block_count * kBlockSize, 256_MB);
}

TEST(JournalTest, CommitAppliesWrites) {
  sim::Simulation sim({.num_cores = 1});
  pmem::SlowMemory mem(&sim, pmem::MediaParams::OneNode(), 4_MB);
  Journal j(&mem, 0, 4);
  sim.Spawn(0, [&] {
    const JournalRecord::JWrite writes[] = {
        {1_MB, 0x1111}, {1_MB + 64, 0x2222}};
    j.CommitAndApply(writes, 0);
  });
  sim.Run();
  EXPECT_EQ(*mem.As<uint64_t>(1_MB), 0x1111u);
  EXPECT_EQ(*mem.As<uint64_t>(1_MB + 64), 0x2222u);
  // Slot cleared after apply.
  EXPECT_EQ(mem.As<JournalRecord>(0)->state, 0u);
}

TEST(JournalTest, RecoverReplaysCommittedRecord) {
  sim::Simulation sim({.num_cores = 1});
  pmem::SlowMemory mem(&sim, pmem::MediaParams::OneNode(), 4_MB);
  // Hand-craft a committed-but-unapplied record (crash between commit and
  // apply).
  JournalRecord rec{};
  rec.count = 1;
  rec.writes[0] = {2_MB, 0xabcd};
  rec.csum = rec.ComputeCsum();
  rec.state = 1;
  std::memcpy(mem.As<JournalRecord>(kBlockSize), &rec, sizeof(rec));
  EXPECT_EQ(Journal::Recover(&mem, 0, 4), 1);
  EXPECT_EQ(*mem.As<uint64_t>(2_MB), 0xabcdu);
  EXPECT_EQ(mem.As<JournalRecord>(kBlockSize)->state, 0u);
}

TEST(JournalTest, RecoverIgnoresUncommitted) {
  sim::Simulation sim({.num_cores = 1});
  pmem::SlowMemory mem(&sim, pmem::MediaParams::OneNode(), 4_MB);
  JournalRecord rec{};
  rec.count = 1;
  rec.writes[0] = {2_MB, 0xabcd};
  rec.csum = rec.ComputeCsum();
  rec.state = 0;  // never committed
  std::memcpy(mem.As<JournalRecord>(0), &rec, sizeof(rec));
  EXPECT_EQ(Journal::Recover(&mem, 0, 4), 0);
  EXPECT_EQ(*mem.As<uint64_t>(2_MB), 0u);
}

TEST(JournalTest, RecoverDiscardsTornRecord) {
  sim::Simulation sim({.num_cores = 1});
  pmem::SlowMemory mem(&sim, pmem::MediaParams::OneNode(), 4_MB);
  JournalRecord rec{};
  rec.count = 2;
  rec.writes[0] = {2_MB, 0xabcd};
  rec.csum = 0xdeadbeef;  // wrong
  rec.state = 1;
  std::memcpy(mem.As<JournalRecord>(0), &rec, sizeof(rec));
  EXPECT_EQ(Journal::Recover(&mem, 0, 4), 0);
  EXPECT_EQ(*mem.As<uint64_t>(2_MB), 0u);
  EXPECT_EQ(mem.As<JournalRecord>(0)->state, 0u);  // cleaned up
}

}  // namespace
}  // namespace easyio::nova
