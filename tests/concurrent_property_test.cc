// Concurrent differential testing: many uthreads hammer a shared set of
// files with racing reads, writes and fsyncs. Writers serialize per file (a
// writer mutex in the test mirrors an application-level protocol), so every
// file always has a well-defined "last committed content"; readers must see
// either that content or a previously committed one — never a torn mix.
// This exercises EasyIO's early lock release, level-2 SN waits, CoW with
// deferred free, and the work-stealing runtime under real contention.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/harness/testbed.h"

namespace easyio {
namespace {

using harness::FsKind;

constexpr int kFiles = 4;
constexpr size_t kFileBytes = 128_KB;

// A committed version: the whole file is filled with a seed-derived pattern
// whose first 8 bytes carry the version id, so a reader can identify which
// version (or detect tearing).
std::vector<std::byte> VersionContent(uint64_t version) {
  Rng rng(version * 0x9e37 + 1);
  std::vector<std::byte> data(kFileBytes);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.Next());
  }
  std::memcpy(data.data(), &version, sizeof(version));
  return data;
}

class ConcurrentPropertyTest : public ::testing::TestWithParam<FsKind> {};

TEST_P(ConcurrentPropertyTest, ReadersNeverSeeTornWrites) {
  harness::TestbedConfig cfg;
  cfg.fs = GetParam();
  cfg.machine_cores = 36;
  cfg.device_bytes = 512_MB;
  harness::Testbed tb(cfg);
  const bool is_easy = GetParam() == FsKind::kEasy;

  struct FileState {
    int fd = -1;
    uint64_t next_version = 1;
    uint64_t committed = 0;  // highest version whose Write returned
    std::unique_ptr<uthread::Mutex> writer_mu;
  };
  std::vector<FileState> files(kFiles);

  tb.sim().Spawn(0, [&] {
    for (int f = 0; f < kFiles; ++f) {
      files[f].fd = *tb.fs().Create("/c" + std::to_string(f));
      files[f].writer_mu = std::make_unique<uthread::Mutex>(&tb.sim());
      EASYIO_CHECK_OK(tb.fs().Write(files[f].fd, 0, VersionContent(0))
                          .status());
    }
  });
  tb.sim().Run();

  // Synchronous filesystems run preemptive kernel threads — modeled as one
  // worker per core — while EasyIO multiplexes all 16 uthreads on 8 cores.
  const int sync_cores = std::min(16, tb.max_worker_cores());
  auto* sched = tb.MakeScheduler(is_easy ? 8 : sync_cores,
                                 /*work_stealing=*/is_easy);
  bool stop = false;
  tb.sim().ScheduleAfter(30_ms, [&] { stop = true; });
  uint64_t reads_checked = 0;
  uint64_t writes_done = 0;

  // 6 writers + 10 readers across 8 cores.
  for (int w = 0; w < 6; ++w) {
    sched->Spawn([&, w] {
      Rng rng(100 + static_cast<uint64_t>(w));
      while (!stop) {
        FileState& f = files[rng.Below(kFiles)];
        uthread::MutexLock lock(f.writer_mu.get());
        const uint64_t version = f.next_version++;
        EASYIO_CHECK_OK(
            tb.fs().Write(f.fd, 0, VersionContent(version)).status());
        // The write is durable at return; publish it.
        f.committed = std::max(f.committed, version);
        writes_done++;
      }
    });
  }
  for (int r = 0; r < 10; ++r) {
    sched->Spawn([&, r] {
      Rng rng(200 + static_cast<uint64_t>(r));
      std::vector<std::byte> buf(kFileBytes);
      while (!stop) {
        FileState& f = files[rng.Below(kFiles)];
        const uint64_t floor_version = f.committed;
        auto n = tb.fs().Read(f.fd, 0, buf);
        ASSERT_TRUE(n.ok());
        ASSERT_EQ(*n, kFileBytes);
        uint64_t seen;
        std::memcpy(&seen, buf.data(), sizeof(seen));
        // Atomicity: the whole buffer must be exactly version `seen`.
        const auto expect = VersionContent(seen);
        ASSERT_EQ(std::memcmp(buf.data() + 8, expect.data() + 8,
                              kFileBytes - 8),
                  0)
            << "torn read: header says v" << seen;
        // Monotonicity: never older than what was committed before the
        // read began.
        ASSERT_GE(seen, floor_version);
        reads_checked++;
      }
    });
  }
  tb.sim().Run();
  // Progress sanity only — the real assertions are the per-read atomicity
  // and monotonicity checks above. OdinFS's delegated reads hold the file
  // lock for the whole copy, so its writers make the fewest rounds.
  EXPECT_GT(writes_done, 10u);
  EXPECT_GT(reads_checked, 100u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ConcurrentPropertyTest,
                         ::testing::Values(FsKind::kNova, FsKind::kNovaDma,
                                           FsKind::kOdin, FsKind::kEasy,
                                           FsKind::kEasyNaive),
                         [](const ::testing::TestParamInfo<FsKind>& info) {
                           std::string n = harness::FsKindName(info.param);
                           for (auto& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
}  // namespace easyio
