#include <gtest/gtest.h>

#include <vector>

#include "src/common/units.h"
#include "src/sim/simulation.h"

namespace easyio::sim {
namespace {

Simulation::Options Opts(int cores) {
  Simulation::Options o;
  o.num_cores = cores;
  return o;
}

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim(Opts(1));
  std::vector<int> order;
  sim.ScheduleAt(300, [&] { order.push_back(3); });
  sim.ScheduleAt(100, [&] { order.push_back(1); });
  sim.ScheduleAt(200, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300u);
}

TEST(SimulationTest, TiesFireInScheduleOrder) {
  Simulation sim(Opts(1));
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, CancelPreventsFiring) {
  Simulation sim(Opts(1));
  bool fired = false;
  EventId id = sim.ScheduleAt(10, [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, RunUntilStopsAtBound) {
  Simulation sim(Opts(1));
  bool late = false;
  sim.ScheduleAt(5_us, [&] { late = true; });
  sim.RunUntil(1_us);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.now(), 1_us);
  sim.Run();
  EXPECT_TRUE(late);
}

TEST(SimulationTest, TaskRunsAndAdvances) {
  Simulation sim(Opts(1));
  SimTime seen_start = 0;
  SimTime seen_end = 0;
  sim.Spawn(0, [&] {
    seen_start = sim.now();
    sim.Advance(500);
    seen_end = sim.now();
  });
  sim.Run();
  EXPECT_EQ(seen_start, 0u);
  EXPECT_EQ(seen_end, 500u);
}

TEST(SimulationTest, AdvanceKeepsCoreBusy) {
  Simulation sim(Opts(1));
  bool second_ran_early = false;
  sim.Spawn(0, [&] { sim.Advance(1000); });
  sim.Spawn(0, [&] {
    // Must not start before the first task's Advance completes.
    second_ran_early = sim.now() < 1000;
  });
  sim.Run();
  EXPECT_FALSE(second_ran_early);
  EXPECT_EQ(sim.core_busy_ns(0), 1000u);
}

TEST(SimulationTest, TasksOnDifferentCoresRunConcurrently) {
  Simulation sim(Opts(2));
  SimTime end0 = 0;
  SimTime end1 = 0;
  sim.Spawn(0, [&] {
    sim.Advance(1000);
    end0 = sim.now();
  });
  sim.Spawn(1, [&] {
    sim.Advance(1000);
    end1 = sim.now();
  });
  sim.Run();
  EXPECT_EQ(end0, 1000u);
  EXPECT_EQ(end1, 1000u);  // parallel, not serialized
}

TEST(SimulationTest, YieldRotatesRunQueue) {
  Simulation sim(Opts(1));
  std::vector<int> order;
  sim.Spawn(0, [&] {
    order.push_back(1);
    sim.Yield();
    order.push_back(3);
  });
  sim.Spawn(0, [&] {
    order.push_back(2);
    sim.Yield();
    order.push_back(4);
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SimulationTest, BlockAndWake) {
  Simulation sim(Opts(1));
  Task* sleeper = nullptr;
  SimTime woke_at = 0;
  sleeper = sim.Spawn(0, [&] {
    sim.Block();
    woke_at = sim.now();
  });
  sim.ScheduleAt(2_us, [&] { sim.Wake(sleeper); });
  sim.Run();
  EXPECT_EQ(woke_at, 2_us);
}

TEST(SimulationTest, BlockHoldingCorePreventsOtherTasks) {
  Simulation sim(Opts(1));
  Task* holder = nullptr;
  SimTime other_started = 0;
  holder = sim.Spawn(0, [&] {
    sim.BlockHoldingCore();  // e.g. synchronous memcpy in flight
  });
  sim.Spawn(0, [&] { other_started = sim.now(); });
  sim.ScheduleAt(5_us, [&] { sim.Wake(holder); });
  sim.Run();
  // The second task cannot start until the holder released the core.
  EXPECT_GE(other_started, 5_us);
}

TEST(SimulationTest, JoinWaitsForCompletion) {
  Simulation sim(Opts(2));
  SimTime join_done = 0;
  Task* worker = sim.Spawn(1, [&] { sim.Advance(3_us); });
  sim.Spawn(0, [&] {
    sim.Join(worker);
    join_done = sim.now();
  });
  sim.Run();
  EXPECT_EQ(join_done, 3_us);
  EXPECT_TRUE(worker->finished());
}

TEST(SimulationTest, JoinFinishedTaskReturnsImmediately) {
  Simulation sim(Opts(1));
  Task* worker = sim.Spawn(0, [] {});
  SimTime join_time = kSimTimeMax;
  sim.ScheduleAt(10_us, [&] {
    sim.Spawn(0, [&] {
      sim.Join(worker);
      join_time = sim.now();
    });
  });
  sim.Run();
  EXPECT_EQ(join_time, 10_us);
}

TEST(SimulationTest, SleepForReleasesCore) {
  Simulation sim(Opts(1));
  SimTime other_ran_at = kSimTimeMax;
  SimTime sleeper_woke = 0;
  sim.Spawn(0, [&] {
    sim.SleepFor(10_us);
    sleeper_woke = sim.now();
  });
  sim.Spawn(0, [&] { other_ran_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(other_ran_at, 0u);  // ran while the first slept
  EXPECT_EQ(sleeper_woke, 10_us);
}

TEST(SimulationTest, SpawnFromInsideTask) {
  Simulation sim(Opts(1));
  SimTime child_ran = kSimTimeMax;
  sim.Spawn(0, [&] {
    sim.Advance(1_us);
    Task* child = sim.Spawn(0, [&] { child_ran = sim.now(); });
    sim.Join(child);
  });
  sim.Run();
  EXPECT_EQ(child_ran, 1_us);
}

TEST(SimulationTest, ManyTasksStressDeterminism) {
  auto run_once = [] {
    Simulation sim(Opts(4));
    uint64_t checksum = 0;
    for (int i = 0; i < 200; ++i) {
      sim.Spawn(i % 4, [&sim, &checksum, i] {
        for (int j = 0; j < 10; ++j) {
          sim.Advance(static_cast<uint64_t>(17 * (i + 1) + j));
          checksum = checksum * 31 + sim.now();
          sim.Yield();
        }
      });
    }
    sim.Run();
    return checksum;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimulationTest, DetachedTaskIsReaped) {
  Simulation sim(Opts(1));
  int runs = 0;
  for (int i = 0; i < 100; ++i) {
    sim.SpawnDetached(0, [&] { runs++; });
  }
  sim.Run();
  EXPECT_EQ(runs, 100);
}

TEST(SimulationTest, PollHookRunsBeforePick) {
  Simulation sim(Opts(1));
  int polls = 0;
  sim.SetPollHook(0, [&](int core) { polls++; });
  sim.Spawn(0, [&] { sim.Yield(); });
  sim.Run();
  EXPECT_GT(polls, 0);
}

TEST(SimulationTest, StealHookMovesWork) {
  Simulation sim(Opts(2));
  // Core 0 is kept busy by a long task with two more queued behind it;
  // idle core 1 steals from core 0's run queue.
  int ran_on_core1 = 0;
  sim.SetStealHook(1, [&](int thief) { return sim.TryStealFrom(0); });
  sim.SetEnqueueHook(0, [&](int) { sim.Kick(1); });
  sim.Spawn(0, [&] { sim.Advance(100_us); });
  for (int i = 0; i < 2; ++i) {
    sim.Spawn(0, [&] {
      if (sim.current()->core() == 1) {
        ran_on_core1++;
      }
    });
  }
  sim.Run();
  EXPECT_GE(ran_on_core1, 1);
}

TEST(SimulationTest, WakeOnMigratesTask) {
  Simulation sim(Opts(2));
  bool ran_on_core1 = false;
  Task* t = sim.Spawn(0, [&] {
    sim.Block();
    ran_on_core1 = sim.current()->core() == 1;
  });
  sim.ScheduleAt(1_us, [&] { sim.WakeOn(t, 1); });
  sim.Run();
  EXPECT_TRUE(ran_on_core1);
}

TEST(SimulationTest, ContextSwitchCountGrows) {
  Simulation sim(Opts(1));
  sim.Spawn(0, [&] {
    for (int i = 0; i < 10; ++i) {
      sim.Yield();
    }
  });
  sim.Run();
  EXPECT_GE(sim.context_switches(), 10u);
}

TEST(SimulationTest, DeepStackUsage) {
  Simulation::Options o;
  o.num_cores = 1;
  o.stack_size = 512 * 1024;
  Simulation sim(o);
  uint64_t result = 0;
  std::function<uint64_t(int)> fib = [&](int n) -> uint64_t {
    volatile char pad[512];  // force real stack consumption
    pad[0] = static_cast<char>(n);
    if (n <= 1) {
      return static_cast<uint64_t>(n) + static_cast<uint64_t>(pad[0] - n);
    }
    return fib(n - 1) + fib(n - 2);
  };
  sim.Spawn(0, [&] { result = fib(18); });
  sim.Run();
  EXPECT_EQ(result, 2584u);
}

TEST(SimulationTest, RequestStopHaltsLoop) {
  Simulation sim(Opts(1));
  int fired = 0;
  sim.ScheduleAt(10, [&] {
    fired++;
    sim.RequestStop();
  });
  sim.ScheduleAt(20, [&] { fired++; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stop_requested());
}

}  // namespace
}  // namespace easyio::sim
