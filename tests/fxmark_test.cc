// Tests of the FxMark harness: all three workloads produce sane results on
// each filesystem, and the headline Fig 9 relationships hold at small scale.

#include <gtest/gtest.h>

#include "src/fxmark/fxmark.h"

namespace easyio::fxmark {
namespace {

RunConfig Quick(harness::FsKind fs, Workload w, int cores) {
  RunConfig cfg;
  cfg.fs = fs;
  cfg.workload = w;
  cfg.cores = cores;
  cfg.io_size = 16_KB;
  cfg.uthreads_per_core = 2;
  cfg.warmup_ns = 3_ms;
  cfg.measure_ns = 20_ms;
  return cfg;
}

TEST(FxmarkTest, DwalProducesThroughputAndLatency) {
  const auto r = fxmark::Run(Quick(harness::FsKind::kNova, Workload::kDWAL, 2));
  EXPECT_GT(r.ops, 100u);
  EXPECT_GT(r.mops, 0.0);
  EXPECT_GT(r.avg_latency_ns, 1000.0);
  EXPECT_GE(r.p99_ns, static_cast<uint64_t>(r.avg_latency_ns * 0.8));
  EXPECT_NEAR(r.gib_per_sec,
              r.mops * 1e6 * 16_KB / kGiB, r.gib_per_sec * 0.01);
}

TEST(FxmarkTest, DrblReadsScaleWithCores) {
  const auto r1 = fxmark::Run(Quick(harness::FsKind::kNova, Workload::kDRBL, 1));
  const auto r4 = fxmark::Run(Quick(harness::FsKind::kNova, Workload::kDRBL, 4));
  EXPECT_GT(r4.mops, r1.mops * 3.0);  // reads scale ~linearly at low counts
}

TEST(FxmarkTest, DwomSharedFileContends) {
  const auto r1 = fxmark::Run(Quick(harness::FsKind::kNova, Workload::kDWOM, 1));
  const auto r8 = fxmark::Run(Quick(harness::FsKind::kNova, Workload::kDWOM, 8));
  // A shared file serializes writers: nowhere near 8x.
  EXPECT_LT(r8.mops, r1.mops * 4.0);
}

TEST(FxmarkTest, EasyIoUsesFewerCoresForPeakWrites) {
  auto sweep_easy = SweepCores(Quick(harness::FsKind::kEasy, Workload::kDWAL,
                                     0),
                               {1, 2, 4, 8, 12});
  auto sweep_nova = SweepCores(Quick(harness::FsKind::kNova, Workload::kDWAL,
                                     0),
                               {1, 2, 4, 8, 12});
  const int easy_cores = CoresAtPeak(sweep_easy, 0.95);
  const int nova_cores = CoresAtPeak(sweep_nova, 0.95);
  EXPECT_LT(easy_cores, nova_cores);  // the paper's headline claim
  // And the peak itself is at least comparable.
  double easy_peak = 0;
  double nova_peak = 0;
  for (const auto& p : sweep_easy) {
    easy_peak = std::max(easy_peak, p.result.mops);
  }
  for (const auto& p : sweep_nova) {
    nova_peak = std::max(nova_peak, p.result.mops);
  }
  EXPECT_GT(easy_peak, nova_peak * 0.95);
}

TEST(FxmarkTest, EasyIoWritesUseLessCpuPerOp) {
  const auto nova = fxmark::Run(Quick(harness::FsKind::kNova, Workload::kDWAL, 2));
  const auto easy = fxmark::Run(Quick(harness::FsKind::kEasy, Workload::kDWAL, 2));
  EXPECT_LT(easy.avg_cpu_ns, nova.avg_cpu_ns * 0.75);
}

TEST(FxmarkTest, DeterministicAcrossRuns) {
  const auto a = fxmark::Run(Quick(harness::FsKind::kEasy, Workload::kDWAL, 2));
  const auto b = fxmark::Run(Quick(harness::FsKind::kEasy, Workload::kDWAL, 2));
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.p99_ns, b.p99_ns);
}

TEST(FxmarkTest, CoresAtPeakPicksMinimum) {
  std::vector<CoreSweepPoint> sweep;
  for (int c : {1, 2, 4, 8}) {
    CoreSweepPoint p;
    p.cores = c;
    p.result.mops = c >= 4 ? 1.0 : 0.2 * c;
    sweep.push_back(p);
  }
  EXPECT_EQ(CoresAtPeak(sweep, 0.95), 4);
}

}  // namespace
}  // namespace easyio::fxmark
