// Tests of EasyIO's core mechanisms: orderless commit, two-level locking,
// selective offloading, asynchronous wait semantics, recovery with SN
// discard, and the Naive (ordered) comparison build.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/harness/testbed.h"

namespace easyio::core {
namespace {

using harness::FsKind;
using harness::Testbed;
using harness::TestbedConfig;

TestbedConfig EasyConfig(size_t device = 256_MB) {
  TestbedConfig cfg;
  cfg.fs = FsKind::kEasy;
  cfg.machine_cores = 8;
  cfg.device_bytes = device;
  return cfg;
}

std::vector<std::byte> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> buf(n);
  for (auto& b : buf) {
    b = static_cast<std::byte>(rng.Next());
  }
  return buf;
}

TEST(EasyIoFsTest, WriteReadRoundTripLargeIo) {
  Testbed tb(EasyConfig());
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/a");
    auto data = Pattern(64_KB, 1);
    ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
    std::vector<std::byte> back(64_KB);
    ASSERT_TRUE(tb.fs().Read(fd, 0, back).ok());
    EXPECT_EQ(back, data);
  });
  tb.sim().Run();
  EXPECT_EQ(tb.easy()->writes_offloaded(), 1u);
  EXPECT_EQ(tb.easy()->reads_offloaded(), 1u);
}

TEST(EasyIoFsTest, SmallIoUsesMemcpy) {
  Testbed tb(EasyConfig());
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/a");
    auto data = Pattern(4_KB, 2);  // Listing 2: <= 4KB stays on the CPU
    ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
    std::vector<std::byte> back(4_KB);
    ASSERT_TRUE(tb.fs().Read(fd, 0, back).ok());
    EXPECT_EQ(back, data);
  });
  tb.sim().Run();
  EXPECT_EQ(tb.easy()->writes_memcpy(), 1u);
  EXPECT_EQ(tb.easy()->writes_offloaded(), 0u);
  EXPECT_EQ(tb.easy()->reads_memcpy(), 1u);
}

TEST(EasyIoFsTest, WriteReleasesCoreWhileDmaRuns) {
  // The heart of the paper: during the DMA, the core runs another uthread.
  Testbed tb(EasyConfig());
  sim::SimTime other_ran_at = sim::kSimTimeMax;
  sim::SimTime write_done_at = 0;
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/a");
    auto data = Pattern(64_KB, 3);
    ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
    write_done_at = tb.sim().now();
  });
  tb.sim().Spawn(0, [&] { other_ran_at = tb.sim().now(); });
  tb.sim().Run();
  // The colocated uthread ran before the 64K write completed.
  EXPECT_LT(other_ran_at, write_done_at);
}

TEST(EasyIoFsTest, SyncBaselineDoesNotReleaseCore) {
  TestbedConfig cfg = EasyConfig();
  cfg.fs = FsKind::kNova;
  Testbed tb(cfg);
  sim::SimTime other_ran_at = sim::kSimTimeMax;
  sim::SimTime write_done_at = 0;
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/a");
    auto data = Pattern(64_KB, 3);
    ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
    write_done_at = tb.sim().now();
  });
  tb.sim().Spawn(0, [&] { other_ran_at = tb.sim().now(); });
  tb.sim().Run();
  EXPECT_GE(other_ran_at, write_done_at);  // memcpy burned the core
}

TEST(EasyIoFsTest, OpStatsShowCpuSavings) {
  Testbed tb(EasyConfig());
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/a");
    auto data = Pattern(64_KB, 4);
    fs::OpStats w;
    ASSERT_TRUE(tb.fs().Write(fd, 0, data, &w).ok());
    EXPECT_GT(w.blocked_ns, 0u);
    EXPECT_EQ(w.cpu_ns, w.total_ns - w.blocked_ns);
    // §6.2: EasyIO-CPU is ~37% of a 64K write. Allow a loose band.
    EXPECT_LT(w.cpu_ns, w.total_ns / 2);
    EXPECT_GT(w.cpu_ns, w.total_ns / 6);

    fs::OpStats r;
    std::vector<std::byte> back(64_KB);
    ASSERT_TRUE(tb.fs().Read(fd, 0, back, &r).ok());
    EXPECT_GT(r.blocked_ns, 0u);
    // §6.2 reports ~5% CPU for 64K reads on their (slower) DMA; our faster
    // single-shot read makes the share larger — still a small fraction.
    EXPECT_LT(r.cpu_ns, r.total_ns / 3);
  });
  tb.sim().Run();
}

TEST(EasyIoFsTest, TwoLevelLockWriteAfterWriteWaits) {
  Testbed tb(EasyConfig());
  sim::SimTime w2_start = 0;
  sim::SimTime w2_done = 0;
  sim::SimTime w1_commit = 0;
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/a");
    auto data = Pattern(256_KB, 5);
    ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
  });
  // Start the second write shortly after: it must find the lock free
  // (released at commit) yet wait on the SN (level 2).
  tb.sim().ScheduleAt(4_us, [&] {
    tb.sim().Spawn(1, [&] {
      w2_start = tb.sim().now();
      int fd = *tb.fs().Open("/a");
      auto data = Pattern(16_KB, 6);
      fs::OpStats st;
      ASSERT_TRUE(tb.fs().Write(fd, 0, data, &st).ok());
      w2_done = tb.sim().now();
      EXPECT_GT(st.blocked_ns, 0u);  // level-2 wait happened
    });
  });
  tb.sim().Run();
  (void)w1_commit;
  EXPECT_EQ(w2_start, 4_us);
  // 256K at ~6.8 GiB/s takes ~37us; the second write cannot finish before
  // the first one's data landed.
  EXPECT_GT(w2_done, 35_us);
}

TEST(EasyIoFsTest, WriteAfterReadProceedsImmediately) {
  // Fig 7a: reads leave no SN behind; a later write need not wait for an
  // in-flight read's DMA.
  Testbed tb(EasyConfig());
  sim::SimTime read_done = 0;
  sim::SimTime write_done = 0;
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/a");
    auto data = Pattern(1_MB, 7);
    ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
    ASSERT_TRUE(tb.fs().Fsync(fd).ok());

    // Kick off a large DMA read...
    tb.sim().Spawn(1, [&, fd] {
      std::vector<std::byte> back(1_MB);
      ASSERT_TRUE(tb.fs().Read(fd, 0, back).ok());
      read_done = tb.sim().now();
    });
    // ...and a small write to the same file slightly later.
    tb.sim().Spawn(2, [&, fd] {
      auto patch = Pattern(16_KB, 8);
      ASSERT_TRUE(tb.fs().Write(fd, 0, patch).ok());
      write_done = tb.sim().now();
    });
  });
  tb.sim().Run();
  EXPECT_GT(read_done, 0u);
  EXPECT_GT(write_done, 0u);
  // The write did not wait for the ~150us read.
  EXPECT_LT(write_done, read_done);
}

TEST(EasyIoFsTest, CowProtectsInflightReadFromOverwrite) {
  // The overlapping write lands in new blocks and old blocks are
  // deferred-freed, so the concurrent reader sees fully old data.
  Testbed tb(EasyConfig());
  auto old_data = Pattern(512_KB, 9);
  auto new_data = Pattern(512_KB, 10);
  std::vector<std::byte> read_back(512_KB);
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/a");
    ASSERT_TRUE(tb.fs().Write(fd, 0, old_data).ok());
    ASSERT_TRUE(tb.fs().Fsync(fd).ok());
    tb.sim().Spawn(1, [&, fd] {
      ASSERT_TRUE(tb.fs().Read(fd, 0, read_back).ok());
    });
    tb.sim().Spawn(2, [&, fd] {
      ASSERT_TRUE(tb.fs().Write(fd, 0, new_data).ok());
    });
  });
  tb.sim().Run();
  // The read started before the write commit (same instant but spawned
  // first), so it must observe the old contents in full.
  EXPECT_EQ(read_back, old_data);
}

TEST(EasyIoFsTest, FsyncWaitsForPendingWrite) {
  Testbed tb(EasyConfig());
  tb.sim().Spawn(0, [&] {
    int fd = *tb.fs().Create("/a");
    auto data = Pattern(1_MB, 11);
    const sim::SimTime t0 = tb.sim().now();
    ASSERT_TRUE(tb.fs().Write(fd, 0, data).ok());
    ASSERT_TRUE(tb.fs().Fsync(fd).ok());
    // 1MB at ~6.8 GiB/s: at least ~140us passed.
    EXPECT_GT(tb.sim().now() - t0, 120_us);
  });
  tb.sim().Run();
}

TEST(EasyIoFsTest, NaiveModeIsOrderedAndSlower) {
  auto run = [](FsKind kind) {
    TestbedConfig cfg = EasyConfig();
    cfg.fs = kind;
    Testbed tb(cfg);
    uint64_t total = 0;
    tb.sim().Spawn(0, [&] {
      int fd = *tb.fs().Create("/a");
      auto data = Pattern(64_KB, 12);
      for (int i = 0; i < 20; ++i) {
        fs::OpStats st;
        ASSERT_TRUE(tb.fs().Write(fd, 0, data, &st).ok());
        total += st.total_ns;
      }
    });
    tb.sim().Run();
    return total / 20;
  };
  const uint64_t easy = run(FsKind::kEasy);
  const uint64_t naive = run(FsKind::kEasyNaive);
  // Fig 11: orderless is meaningfully faster (paper: ~18% avg, growing with
  // I/O size).
  EXPECT_LT(easy, naive);
  EXPECT_GT(static_cast<double>(naive) / easy, 1.05);
}

TEST(EasyIoFsTest, RecoveryDiscardsIncompleteOrderlessWrite) {
  // Crash with the metadata committed but the DMA unfinished: the write
  // entry's SN exceeds the channel completion record, so mount must discard
  // it and the file shows the old contents.
  sim::Simulation sim({.num_cores = 2});
  pmem::SlowMemory mem(&sim, pmem::MediaParams::TwoNode(), 256_MB);
  mem.EnableCrashTracking();

  nova::NovaFs::Options fs_opts;
  EasyIoFs::EasyOptions easy_opts;
  auto fs = std::make_unique<EasyIoFs>(&mem, fs_opts, easy_opts);
  EASYIO_CHECK_OK(fs->Format());
  auto engine = std::make_unique<dma::DmaEngine>(
      &mem, fs->layout().comp_region_off, 16);
  core::ChannelManager cm(&sim, engine.get(), {});
  fs->AttachChannelManager(&cm);

  auto old_data = Pattern(1_MB, 13);
  auto new_data = Pattern(1_MB, 14);
  bool first_done = false;
  bool overwrite_done = false;
  sim.Spawn(0, [&] {
    int fd = *fs->Create("/f");
    ASSERT_TRUE(fs->Write(fd, 0, old_data).ok());
    ASSERT_TRUE(fs->Fsync(fd).ok());
    first_done = true;
    // Overwrite asynchronously; we will crash mid-DMA.
    fs::OpStats st;
    ASSERT_TRUE(fs->Write(fd, 0, new_data, &st).ok());
    overwrite_done = true;
  });
  // The 1MB DMA takes ~150us; stop well inside the overwrite's transfer,
  // after its metadata committed (~40us past the first write's completion).
  sim.RunUntil(260_us);
  ASSERT_TRUE(first_done);
  ASSERT_FALSE(overwrite_done);  // still parked on WaitSn

  auto image = mem.CrashImage();

  // Mount a fresh incarnation on the crash image.
  sim::Simulation sim2({.num_cores = 2});
  pmem::SlowMemory mem2(&sim2, pmem::MediaParams::TwoNode(), 256_MB);
  mem2.LoadImage(image);
  auto fs2 = std::make_unique<EasyIoFs>(&mem2, fs_opts, easy_opts);
  ASSERT_TRUE(fs2->Mount().ok());
  EXPECT_GE(fs2->recovery_discarded_entries(), 1u);
  auto engine2 = std::make_unique<dma::DmaEngine>(
      &mem2, fs2->layout().comp_region_off, 16);
  core::ChannelManager cm2(&sim2, engine2.get(), {});
  fs2->AttachChannelManager(&cm2);

  sim2.Spawn(0, [&] {
    int fd = *fs2->Open("/f");
    std::vector<std::byte> back(1_MB);
    ASSERT_TRUE(fs2->Read(fd, 0, back).ok());
    EXPECT_EQ(back, old_data);  // the incomplete overwrite was discarded
  });
  sim2.Run();
}

TEST(EasyIoFsTest, RecoveryKeepsCompletedOrderlessWrite) {
  sim::Simulation sim({.num_cores = 2});
  pmem::SlowMemory mem(&sim, pmem::MediaParams::TwoNode(), 256_MB);
  nova::NovaFs::Options fs_opts;
  EasyIoFs::EasyOptions easy_opts;
  auto fs = std::make_unique<EasyIoFs>(&mem, fs_opts, easy_opts);
  EASYIO_CHECK_OK(fs->Format());
  auto engine = std::make_unique<dma::DmaEngine>(
      &mem, fs->layout().comp_region_off, 16);
  core::ChannelManager cm(&sim, engine.get(), {});
  fs->AttachChannelManager(&cm);

  auto data = Pattern(64_KB, 15);
  sim.Spawn(0, [&] {
    int fd = *fs->Create("/f");
    ASSERT_TRUE(fs->Write(fd, 0, data).ok());
  });
  sim.Run();  // write fully completed

  auto image = mem.CrashImage();
  sim::Simulation sim2({.num_cores = 2});
  pmem::SlowMemory mem2(&sim2, pmem::MediaParams::TwoNode(), 256_MB);
  mem2.LoadImage(image);
  auto fs2 = std::make_unique<EasyIoFs>(&mem2, fs_opts, easy_opts);
  ASSERT_TRUE(fs2->Mount().ok());
  EXPECT_EQ(fs2->recovery_discarded_entries(), 0u);
  auto engine2 = std::make_unique<dma::DmaEngine>(
      &mem2, fs2->layout().comp_region_off, 16);
  core::ChannelManager cm2(&sim2, engine2.get(), {});
  fs2->AttachChannelManager(&cm2);
  sim2.Spawn(0, [&] {
    int fd = *fs2->Open("/f");
    std::vector<std::byte> back(64_KB);
    ASSERT_TRUE(fs2->Read(fd, 0, back).ok());
    EXPECT_EQ(back, data);
  });
  sim2.Run();
}

TEST(EasyIoFsTest, ManyUthreadsInterleaveOnFewCores) {
  // 2 cores, 8 uthreads doing 64K writes to private files: asynchronous
  // overlap should beat the serial sum by a wide margin.
  Testbed tb(EasyConfig());
  auto* sched = tb.MakeScheduler(2);
  tb.sim().Spawn(0, [&] {
    sched->RunWorkers(8, [&](int id) {
      int fd = *tb.fs().Create("/w" + std::to_string(id));
      auto data = Pattern(64_KB, 20 + static_cast<uint64_t>(id));
      for (int k = 0; k < 5; ++k) {
        ASSERT_TRUE(tb.fs().Write(fd, static_cast<uint64_t>(k) * 64_KB,
                                  data).ok());
      }
    });
  });
  tb.sim().Run();
  // 40 x 64K writes ~ 2.5MB; at the 4-L-channel aggregate (~12.7 GiB/s)
  // that's ~190us minimum. Serial execution would be ~40 * ~12us CPU + waits.
  // Mostly we assert it completed and used both cores.
  EXPECT_GT(tb.sim().core_busy_ns(0), 0u);
  EXPECT_GT(tb.sim().core_busy_ns(1), 0u);
}

TEST(ChannelManagerTest, PickWriteChannelBalancesDepth) {
  Testbed tb(EasyConfig());
  auto* cm = tb.channel_manager();
  // All empty: returns some L channel; after loading channel 0, pick moves.
  dma::Channel* first = cm->PickWriteChannel();
  ASSERT_NE(first, nullptr);
  tb.sim().Spawn(0, [&] {
    std::vector<char> buf(64_KB, 'x');
    dma::Descriptor d{dma::Descriptor::Dir::kWrite, 64_MB, buf.data(),
                      64_KB, {}};
    first->Submit(std::move(d));
    dma::Channel* second = cm->PickWriteChannel();
    EXPECT_NE(second, first);
  });
  tb.sim().Run();
}

TEST(ChannelManagerTest, ReadAdmissionRespectsDepthBound) {
  Testbed tb(EasyConfig());
  auto* cm = tb.channel_manager();
  tb.sim().Spawn(0, [&] {
    std::vector<char> buf(2_MB, 'x');
    // Saturate every L channel past the bound.
    std::vector<dma::Sn> last(
        static_cast<size_t>(cm->options().num_l_channels));
    for (int i = 0; i < cm->options().num_l_channels; ++i) {
      for (int k = 0; k < 2; ++k) {
        dma::Descriptor d{dma::Descriptor::Dir::kRead, 64_MB, buf.data(),
                          2_MB, {}};
        last[static_cast<size_t>(i)] =
            tb.engine()->channel(i).Submit(std::move(d));
      }
    }
    EXPECT_EQ(cm->PickReadChannel(), nullptr);  // shunt to memcpy
    // Drain before `buf` goes out of scope: descriptors reference it.
    for (int i = 0; i < cm->options().num_l_channels; ++i) {
      tb.engine()->channel(i).WaitSn(last[static_cast<size_t>(i)]);
    }
  });
  tb.sim().Run();
}

TEST(ChannelManagerTest, BulkWriteSplitsInto64K) {
  Testbed tb(EasyConfig());
  auto* cm = tb.channel_manager();
  tb.sim().Spawn(0, [&] {
    std::vector<std::byte> buf(2_MB, std::byte{0x42});
    cm->BulkWriteAndWait(128_MB, buf.data(), buf.size());
    EXPECT_EQ(std::memcmp(tb.mem().raw() + 128_MB, buf.data(), 2_MB), 0);
  });
  tb.sim().Run();
  EXPECT_EQ(cm->b_channel()->descriptors_completed(), 2_MB / 64_KB);
}

TEST(ChannelManagerTest, ThrottlingCapsBandwidth) {
  Testbed tb(EasyConfig());
  auto* cm = tb.channel_manager();
  // Drive the B channel continuously for 2ms with a 2 GiB/s limit.
  cm->StartThrottling();
  auto* lapp = cm->RegisterLApp(10_us);
  // Keep the limit pinned: report latencies right at target so Listing 1
  // neither raises nor lowers it beyond the initial value minus holds.
  (void)lapp;
  tb.sim().Spawn(0, [&] {
    std::vector<std::byte> buf(2_MB, std::byte{0x1});
    const sim::SimTime start = tb.sim().now();
    while (tb.sim().now() - start < 2_ms) {
      cm->BulkWriteAndWait(128_MB, buf.data(), buf.size());
    }
  });
  tb.sim().RunUntil(2_ms);
  const double gbps =
      GibPerSec(cm->b_channel()->bytes_completed(),
                tb.sim().now());
  // Unthrottled the B channel would run at ~6.8 GiB/s; the default initial
  // limit is 8 but Listing 1 with no L samples keeps it; set expectations
  // loosely: it must not exceed the per-channel cap.
  EXPECT_LT(gbps, 7.5);
  cm->StopThrottling();
}

TEST(ChannelManagerTest, QosLoopThrottlesDownOnViolation) {
  Testbed tb(EasyConfig());
  auto* cm = tb.channel_manager();
  auto* lapp = cm->RegisterLApp(/*target=*/10_us);
  cm->StartThrottling();
  const double limit0 = cm->b_limit_gbps();
  // Report SLO violations every few microseconds for a while.
  for (int i = 1; i <= 50; ++i) {
    tb.sim().ScheduleAt(static_cast<sim::SimTime>(i) * 10_us,
                        [lapp] { lapp->ReportLatency(50_us); });
  }
  tb.sim().RunUntil(600_us);
  EXPECT_LT(cm->b_limit_gbps(), limit0);
  // Now report ample headroom; the limit must climb back.
  const double low = cm->b_limit_gbps();
  for (int i = 1; i <= 50; ++i) {
    tb.sim().ScheduleAt(600_us + static_cast<sim::SimTime>(i) * 10_us,
                        [lapp] { lapp->ReportLatency(1_us); });
  }
  tb.sim().RunUntil(1400_us);
  EXPECT_GT(cm->b_limit_gbps(), low);
  cm->StopThrottling();
}

}  // namespace
}  // namespace easyio::core
