// Figure 3: DMA bandwidth with a varying number of channels (1-8); 16 cores
// submit requests concurrently so the channels stay saturated.
//
// Paper shapes: write bandwidth peaks at 4 channels for 4K and declines
// monotonically with channel count for larger I/O; read bandwidth never
// declines and peaks at 2-4 channels.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/dma/dma_engine.h"
#include "src/pmem/slow_memory.h"
#include "src/sim/simulation.h"

namespace easyio {
namespace {

constexpr uint64_t kDuration = 30_ms;
constexpr int kCores = 16;

double RunDma(bool is_write, uint64_t io_size, int channels) {
  sim::Simulation sim({.num_cores = kCores});
  pmem::SlowMemory mem(&sim, pmem::MediaParams::OneNode(), 256_MB);
  dma::DmaEngine engine(&mem, 0, channels);
  uint64_t bytes_done = 0;
  bool stop = false;
  sim.ScheduleAt(kDuration, [&] { stop = true; });
  for (int c = 0; c < kCores; ++c) {
    sim.Spawn(c, [&, c] {
      std::vector<std::byte> buf(io_size, std::byte{0x77});
      const uint64_t base = 64_MB + 4_MB * static_cast<uint64_t>(c);
      uint64_t off = 0;
      dma::Channel& ch = engine.channel(c % channels);
      while (!stop) {
        dma::Descriptor d;
        d.dir = is_write ? dma::Descriptor::Dir::kWrite
                         : dma::Descriptor::Dir::kRead;
        d.pmem_off = base + off;
        d.dram = buf.data();
        d.size = static_cast<uint32_t>(io_size);
        const dma::Sn sn = ch.Submit(std::move(d));
        ch.WaitSnBusy(sn);
        bytes_done += io_size;
        off = (off + io_size) % 4_MB;
      }
    });
  }
  sim.RunUntil(kDuration + 1_s);
  return GibPerSec(bytes_done, kDuration);
}

void RunDirection(bool is_write) {
  std::printf("\n-- %s bandwidth (GiB/s), 16 cores --\n",
              is_write ? "Write" : "Read");
  std::printf("%-10s", "io\\chans");
  const std::vector<int> channel_counts{1, 2, 4, 6, 8};
  for (int ch : channel_counts) {
    std::printf("%8d", ch);
  }
  std::printf("\n");
  for (uint64_t io : {4_KB, 16_KB, 64_KB}) {
    std::printf("%-10s", bench::SizeName(io));
    for (int ch : channel_counts) {
      std::printf("%8.2f", RunDma(is_write, io, ch));
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace easyio

int main() {
  using namespace easyio;
  bench::PrintHeader("Figure 3: DMA bandwidth vs number of channels");
  RunDirection(/*is_write=*/true);
  RunDirection(/*is_write=*/false);
  std::printf(
      "\nExpected shape (paper): writes peak at 4 channels for 4K and fall\n"
      "monotonically with channels for 64K; reads never decline, peak 2-4.\n");
  return 0;
}
