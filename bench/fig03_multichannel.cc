// Figure 3: DMA bandwidth with a varying number of channels (1-8); 16 cores
// submit requests concurrently so the channels stay saturated.
//
// Paper shapes: write bandwidth peaks at 4 channels for 4K and declines
// monotonically with channel count for larger I/O; read bandwidth never
// declines and peaks at 2-4 channels.

#include <cstdio>
#include <optional>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/dma/dma_engine.h"
#include "src/dma/fault_plan.h"
#include "src/harness/scenario_runner.h"
#include "src/pmem/slow_memory.h"
#include "src/sim/simulation.h"

namespace easyio {
namespace {

constexpr uint64_t kDuration = 30_ms;
constexpr int kCores = 16;

double RunDma(bool is_write, uint64_t io_size, int channels,
              uint64_t fault_seed) {
  sim::Simulation sim({.num_cores = kCores});
  pmem::SlowMemory mem(&sim, pmem::MediaParams::OneNode(), 256_MB);
  dma::DmaEngine engine(&mem, 0, channels);
  std::optional<dma::FaultInjector> injector;
  if (fault_seed != 0) {
    injector.emplace(bench::MakeBenchFaultPlan(fault_seed, channels));
    engine.AttachFaultInjector(&*injector);
  }
  uint64_t bytes_done = 0;
  bool stop = false;
  sim.ScheduleAt(kDuration, [&] { stop = true; });
  for (int c = 0; c < kCores; ++c) {
    sim.Spawn(c, [&, c] {
      std::vector<std::byte> buf(io_size, std::byte{0x77});
      const uint64_t base = 64_MB + 4_MB * static_cast<uint64_t>(c);
      uint64_t off = 0;
      dma::Channel& ch = engine.channel(c % channels);
      while (!stop) {
        dma::Descriptor d;
        d.dir = is_write ? dma::Descriptor::Dir::kWrite
                         : dma::Descriptor::Dir::kRead;
        d.pmem_off = base + off;
        d.dram = buf.data();
        d.size = static_cast<uint32_t>(io_size);
        const dma::Sn sn = ch.Submit(std::move(d));
        // busy=true keeps the no-fault path timing-identical to WaitSnBusy;
        // under --faults the wait also retries errors and falls back to a
        // CPU copy when retries run out.
        ch.WaitSnRecover(sn, dma::RetryPolicy{.busy = true});
        bytes_done += io_size;
        off = (off + io_size) % 4_MB;
      }
    });
  }
  sim.RunUntil(kDuration + 1_s);
  return GibPerSec(bytes_done, kDuration);
}

const std::vector<int> kChannelCounts{1, 2, 4, 6, 8};
const std::vector<uint64_t> kIoSizes{4_KB, 16_KB, 64_KB};

// Each grid point is an independent simulation; the whole direction fans out
// across the scenario runner and prints from the ordered result vector.
void RunDirection(bool is_write, int jobs, uint64_t fault_seed) {
  std::printf("\n-- %s bandwidth (GiB/s), 16 cores --\n",
              is_write ? "Write" : "Read");
  std::printf("%-10s", "io\\chans");
  for (int ch : kChannelCounts) {
    std::printf("%8d", ch);
  }
  std::printf("\n");
  const size_t cols = kChannelCounts.size();
  const std::vector<double> gibps =
      harness::RunIndexed(jobs, kIoSizes.size() * cols, [&](size_t i) {
        return RunDma(is_write, kIoSizes[i / cols], kChannelCounts[i % cols],
                      fault_seed);
      });
  for (size_t row = 0; row < kIoSizes.size(); ++row) {
    std::printf("%-10s", bench::SizeName(kIoSizes[row]).c_str());
    for (size_t col = 0; col < cols; ++col) {
      std::printf("%8.2f", gibps[row * cols + col]);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace easyio

int main(int argc, char** argv) {
  using namespace easyio;
  const int jobs = harness::ScenarioRunner::JobsFromArgs(argc, argv);
  // --faults=<seed> injects a seeded random DMA fault plan into every grid
  // point; seed 0 (the default) is byte-identical to a run without the flag.
  const bench::FaultFlags faults = bench::ParseFaultFlags(argc, argv);
  bench::PrintHeader("Figure 3: DMA bandwidth vs number of channels");
  RunDirection(/*is_write=*/true, jobs, faults.seed);
  RunDirection(/*is_write=*/false, jobs, faults.seed);
  std::printf(
      "\nExpected shape (paper): writes peak at 4 channels for 4K and fall\n"
      "monotonically with channels for 64K; reads never decline, peak 2-4.\n");
  return 0;
}
