// Figure 11: effectiveness of EasyIO's individual techniques.
//
// Left panel: orderless file operation — single-thread write latency of
// EasyIO vs Naive (strictly ordered, two kernel interactions) across I/O
// sizes. Paper: ~18% lower on average, gap growing with I/O size.
//
// Right panel: two-level locking — FxMark DWOM (shared-file writes) with a
// compute-only uthread colocated per core, EasyIO vs Naive across core
// counts. Paper: Naive holds the file lock across the whole operation (the
// DMA wait included), so EasyIO's early release wins (~66% at 2 cores); both
// decline as cores add lock contention.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/fxmark/fxmark.h"
#include "src/harness/scenario_runner.h"
#include "src/harness/testbed.h"
#include "src/sim/obs_session.h"

namespace easyio {
namespace {

// Set from --faults=<seed> in main before any scenario job runs; 0 = off.
uint64_t g_fault_seed = 0;

void MaybeInjectFaults(harness::TestbedConfig* cfg) {
  if (g_fault_seed != 0) {
    cfg->faults = bench::MakeBenchFaultPlan(
        g_fault_seed, static_cast<int>(cfg->fs_options.comp_channels));
  }
}

double WriteLatencyUs(harness::FsKind kind, uint64_t io_size,
                      const bench::TraceFlags* trace = nullptr) {
  harness::TestbedConfig cfg;
  cfg.fs = kind;
  cfg.machine_cores = 4;
  cfg.device_bytes = 256_MB;
  MaybeInjectFaults(&cfg);
  harness::Testbed tb(cfg);
  std::unique_ptr<sim::TraceSession> session;
  if (trace != nullptr && trace->enabled()) {
    session = std::make_unique<sim::TraceSession>(trace->path,
                                                  trace->sample_every);
  }
  double total = 0;
  constexpr int kOps = 200;
  tb.sim().Spawn(0, [&] {
    Rng rng(1);
    int fd = *tb.fs().Create("/f");
    std::vector<std::byte> buf(io_size, std::byte{0x33});
    for (uint64_t off = 0; off < 4_MB; off += io_size) {
      EASYIO_CHECK_OK(tb.fs().Write(fd, off, buf).status());
    }
    for (int i = 0; i < kOps; ++i) {
      fs::OpStats st;
      EASYIO_CHECK_OK(
          tb.fs().Write(fd, rng.Below(4_MB / io_size) * io_size, buf, &st)
              .status());
      total += st.total_ns / 1e3;
    }
  });
  tb.sim().Run();
  if (session != nullptr) {
    tb.CollectStats().Print(stderr);
  }
  return total / kOps;
}

// DWOM with a colocated compute uthread per core (work stealing disabled,
// §6.4.2) — measures shared-file write throughput under lock contention.
double DwomThroughputKops(harness::FsKind kind, int cores) {
  harness::TestbedConfig tb_cfg;
  tb_cfg.fs = kind;
  tb_cfg.machine_cores = 16;
  tb_cfg.device_bytes = 1_GB;
  MaybeInjectFaults(&tb_cfg);
  harness::Testbed tb(tb_cfg);

  // Shared file.
  int shared_fd = -1;
  tb.sim().Spawn(0, [&] {
    shared_fd = *tb.fs().Create("/shared");
    std::vector<std::byte> block(1_MB, std::byte{0x11});
    for (uint64_t off = 0; off < 16_MB; off += 1_MB) {
      EASYIO_CHECK_OK(tb.fs().Write(shared_fd, off, block).status());
    }
  });
  tb.sim().Run();

  auto* sched = tb.MakeScheduler(cores, /*work_stealing=*/false);
  bool stop = false;
  bool measuring = false;
  uint64_t ops = 0;
  constexpr uint64_t kWarmup = 5_ms;
  constexpr uint64_t kMeasure = 40_ms;
  tb.sim().ScheduleAfter(kWarmup, [&] { measuring = true; });
  tb.sim().ScheduleAfter(kWarmup + kMeasure, [&] { stop = true; });

  for (int c = 0; c < cores; ++c) {
    // One DWOM writer per core...
    sched->SpawnOn(c, [&, c] {
      Rng rng(100 + static_cast<uint64_t>(c));
      std::vector<std::byte> buf(16_KB, std::byte{0x77});
      while (!stop) {
        EASYIO_CHECK_OK(
            tb.fs()
                .Write(shared_fd, rng.Below(16_MB / 16_KB) * 16_KB, buf)
                .status());
        if (measuring && !stop) {
          ops++;
        }
      }
    });
    // ...plus one compute-only uthread that never issues I/O (§6.4.2).
    sched->SpawnOn(c, [&] {
      while (!stop) {
        tb.sim().Advance(2_us);  // scientific computation slice
        sched->Yield();
      }
    });
  }
  tb.sim().Run();
  return static_cast<double>(ops) /
         (static_cast<double>(kMeasure) / 1e9) / 1e3;
}

}  // namespace
}  // namespace easyio

int main(int argc, char** argv) {
  using namespace easyio;
  // --trace=<path> records the EasyIO 64K single-thread run: every orderless
  // write's commit / l1_hold / sn_wait phases, unsampled. The session is
  // created inside the scenario job, so it traces exactly that simulation on
  // whichever worker thread runs it (see src/sim/obs_session.h).
  const bench::TraceFlags trace =
      bench::ParseTraceFlags(argc, argv, /*default_sample=*/1);
  // --faults=<seed> injects a seeded DMA fault plan into every run's
  // testbed; seed 0 (the default) is byte-identical to no flag.
  g_fault_seed = bench::ParseFaultFlags(argc, argv).seed;
  const int jobs = harness::ScenarioRunner::JobsFromArgs(argc, argv);
  bench::PrintHeader("Figure 11 (left): orderless file operation — "
                     "single-thread write latency (us)");
  std::printf("%-8s %10s %10s %8s\n", "io", "EasyIO", "Naive", "gain");
  const std::vector<uint64_t> ios{4_KB, 8_KB, 16_KB, 32_KB, 64_KB};
  // Column-major pairs: [i] = EasyIO, [ios.size() + i] = Naive.
  const std::vector<double> lat =
      harness::RunIndexed(jobs, ios.size() * 2, [&](size_t i) {
        const bool naive = i >= ios.size();
        const uint64_t io = ios[i % ios.size()];
        const bool traced = !naive && io == 64_KB && trace.enabled();
        return WriteLatencyUs(
            naive ? harness::FsKind::kEasyNaive : harness::FsKind::kEasy, io,
            traced ? &trace : nullptr);
      });
  double gain_sum = 0;
  int gain_n = 0;
  for (size_t i = 0; i < ios.size(); ++i) {
    const double easy = lat[i];
    const double naive = lat[ios.size() + i];
    const double gain = 100.0 * (naive - easy) / naive;
    gain_sum += gain;
    gain_n++;
    std::printf("%-8s %10.2f %10.2f %7.1f%%\n",
                bench::SizeName(ios[i]).c_str(), easy, naive, gain);
  }
  std::printf("average latency reduction: %.1f%% (paper: ~18%%)\n",
              gain_sum / gain_n);

  bench::PrintHeader("Figure 11 (right): two-level locking — DWOM 16K "
                     "shared-file writes + colocated compute (Kops/s)");
  std::printf("%-7s %10s %10s %8s\n", "cores", "EasyIO", "Naive", "gain");
  const std::vector<int> core_counts{2, 4, 6, 8};
  const std::vector<double> kops =
      harness::RunIndexed(jobs, core_counts.size() * 2, [&](size_t i) {
        const bool naive = i >= core_counts.size();
        return DwomThroughputKops(
            naive ? harness::FsKind::kEasyNaive : harness::FsKind::kEasy,
            core_counts[i % core_counts.size()]);
      });
  for (size_t i = 0; i < core_counts.size(); ++i) {
    const double easy = kops[i];
    const double naive = kops[core_counts.size() + i];
    std::printf("%-7d %10.1f %10.1f %7.1f%%\n", core_counts[i], easy, naive,
                100.0 * (easy - naive) / naive);
  }
  std::printf(
      "\nExpected shape (paper): EasyIO ~66%% higher at 2 cores; both sides\n"
      "decline as more cores contend for the single file lock.\n");
  return 0;
}
