// Extension & design-choice ablations beyond the paper's figures:
//
//  A. DSA preview (paper §5 / §6.6 future work): EasyIO re-run with the
//     DSA-flavoured engine parameters (cheap submission, strong reads,
//     small-I/O competence). Expectation from the paper's discussion: the
//     read side — EasyIO's weak spot on I/OAT — improves substantially.
//
//  B. Selective-offloading ablation (Listing 2): EasyIO with the 4KB memcpy
//     cutoff and the q_deps<2 read admission disabled, to show both rules
//     carry their weight.
//
//  C. L-channel count ablation (§4.4 "up to 4 channels"): write throughput
//     with 1, 2, 4 and 8 L-channels.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/fxmark/fxmark.h"
#include "src/harness/scenario_runner.h"

namespace easyio {
namespace {

using fxmark::RunConfig;
using fxmark::Workload;

RunConfig Base(Workload w, uint64_t io, int cores) {
  RunConfig cfg;
  cfg.fs = harness::FsKind::kEasy;
  cfg.workload = w;
  cfg.io_size = io;
  cfg.cores = cores;
  cfg.uthreads_per_core = 2;
  cfg.warmup_ns = 5_ms;
  cfg.measure_ns = 30_ms;
  return cfg;
}

void DsaPreview(int jobs) {
  std::printf("\n-- A. DSA preview: EasyIO on I/OAT vs DSA parameters --\n");
  std::printf("%-28s %12s %12s %8s\n", "workload", "I/OAT", "DSA", "gain");
  struct Case {
    const char* name;
    Workload w;
    uint64_t io;
    int cores;
  };
  const std::vector<Case> cases{
      {"DWAL write 16K, 4 cores", Workload::kDWAL, 16_KB, 4},
      {"DWAL write 64K, 2 cores", Workload::kDWAL, 64_KB, 2},
      {"DRBL read  16K, 8 cores", Workload::kDRBL, 16_KB, 8},
      {"DRBL read  64K, 8 cores", Workload::kDRBL, 64_KB, 8},
  };
  // [i] = I/OAT run, [cases.size() + i] = DSA run of the same case.
  const std::vector<double> kops =
      harness::RunIndexed(jobs, cases.size() * 2, [&](size_t i) {
        const Case& c = cases[i % cases.size()];
        RunConfig cfg = Base(c.w, c.io, c.cores);
        if (i >= cases.size()) {
          cfg.media = pmem::MediaParams::Dsa();
        }
        return fxmark::Run(cfg).mops * 1e3;
      });
  for (size_t i = 0; i < cases.size(); ++i) {
    const double a = kops[i];
    const double b = kops[cases.size() + i];
    std::printf("%-28s %10.1fK %10.1fK %7.2fx\n", cases[i].name, a, b, b / a);
  }
  std::printf("(paper §6.6: DSA is expected to expand EasyIO's benefit,\n"
              " especially for reads and small I/Os)\n");
}

void SelectiveOffloadAblation(int jobs) {
  std::printf("\n-- B. Selective offloading ablation (Listing 2) --\n");
  std::printf("%-34s %12s %12s\n", "configuration", "4K write", "16K read");

  const RunConfig w_def = Base(Workload::kDWAL, 4_KB, 4);
  const RunConfig r_def = Base(Workload::kDRBL, 16_KB, 8);

  RunConfig w_all = w_def;
  w_all.easy_options.dma_min_bytes = 0;  // DMA even for tiny I/O
  RunConfig r_all = r_def;
  r_all.easy_options.dma_min_bytes = 0;
  r_all.cm_options.read_admission_qdepth = 1u << 20;  // no admission gate

  RunConfig w_none = w_def;
  w_none.easy_options.dma_min_bytes = UINT64_MAX;  // never offload
  RunConfig r_none = r_def;
  r_none.easy_options.dma_min_bytes = UINT64_MAX;

  struct Row {
    const char* name;
    RunConfig write;
    RunConfig read;
  };
  const std::vector<Row> rows{
      {"default (4K cutoff, q<2 gate)", w_def, r_def},
      {"always-DMA (no cutoff, no gate)", w_all, r_all},
      {"never-DMA (pure memcpy)", w_none, r_none},
  };
  // [2i] = write run of row i, [2i+1] = read run of row i.
  const std::vector<double> kops =
      harness::RunIndexed(jobs, rows.size() * 2, [&](size_t i) {
        const Row& row = rows[i / 2];
        return fxmark::Run(i % 2 == 0 ? row.write : row.read).mops * 1e3;
      });
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-34s %10.1fK %11.1fK\n", rows[i].name, kops[2 * i],
                kops[2 * i + 1]);
  }
  std::printf(
      "(the q<2 read gate is load-bearing: without it, reads collapse onto\n"
      " the slow DMA read path. The 4K write cutoff is latency-motivated —\n"
      " single-thread 4K DMA loses to memcpy, Figs 2/8 — while under high\n"
      " concurrency 4K DMA can out-throughput contended memcpy.)\n");
}

void LChannelAblation(int jobs) {
  std::printf("\n-- C. L-channel count ablation (write 16K, 8 cores) --\n");
  std::printf("%-12s %12s %10s %10s\n", "L channels", "Kops/s", "avg_us",
              "p99_us");
  const std::vector<int> counts{1, 2, 4, 8};
  const std::vector<fxmark::RunResult> results =
      harness::RunIndexed(jobs, counts.size(), [&](size_t i) {
        RunConfig cfg = Base(Workload::kDWAL, 16_KB, 8);
        cfg.cm_options.num_l_channels = counts[i];
        cfg.cm_options.b_channel = counts[i];  // keep B out of the L range
        return fxmark::Run(cfg);
      });
  for (size_t i = 0; i < counts.size(); ++i) {
    const auto& r = results[i];
    std::printf("%-12d %12.1f %10.2f %10.2f\n", counts[i], r.mops * 1e3,
                r.avg_latency_ns / 1e3, r.p99_ns / 1e3);
  }
  std::printf("(the paper steers L-apps to up to 4 channels; more causes\n"
              " aggregate write-bandwidth decline, fewer causes HoL queuing)\n");
}

}  // namespace
}  // namespace easyio

int main(int argc, char** argv) {
  using namespace easyio;
  const int jobs = harness::ScenarioRunner::JobsFromArgs(argc, argv);
  bench::PrintHeader(
      "Extensions: DSA preview + design-choice ablations (beyond the paper)");
  DsaPreview(jobs);
  SelectiveOffloadAblation(jobs);
  LChannelAblation(jobs);
  return 0;
}
