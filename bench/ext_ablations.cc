// Extension & design-choice ablations beyond the paper's figures:
//
//  A. DSA preview (paper §5 / §6.6 future work): EasyIO re-run with the
//     DSA-flavoured engine parameters (cheap submission, strong reads,
//     small-I/O competence). Expectation from the paper's discussion: the
//     read side — EasyIO's weak spot on I/OAT — improves substantially.
//
//  B. Selective-offloading ablation (Listing 2): EasyIO with the 4KB memcpy
//     cutoff and the q_deps<2 read admission disabled, to show both rules
//     carry their weight.
//
//  C. L-channel count ablation (§4.4 "up to 4 channels"): write throughput
//     with 1, 2, 4 and 8 L-channels.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/fxmark/fxmark.h"

namespace easyio {
namespace {

using fxmark::RunConfig;
using fxmark::Workload;

RunConfig Base(Workload w, uint64_t io, int cores) {
  RunConfig cfg;
  cfg.fs = harness::FsKind::kEasy;
  cfg.workload = w;
  cfg.io_size = io;
  cfg.cores = cores;
  cfg.uthreads_per_core = 2;
  cfg.warmup_ns = 5_ms;
  cfg.measure_ns = 30_ms;
  return cfg;
}

void DsaPreview() {
  std::printf("\n-- A. DSA preview: EasyIO on I/OAT vs DSA parameters --\n");
  std::printf("%-28s %12s %12s %8s\n", "workload", "I/OAT", "DSA", "gain");
  struct Case {
    const char* name;
    Workload w;
    uint64_t io;
    int cores;
  };
  const Case cases[] = {
      {"DWAL write 16K, 4 cores", Workload::kDWAL, 16_KB, 4},
      {"DWAL write 64K, 2 cores", Workload::kDWAL, 64_KB, 2},
      {"DRBL read  16K, 8 cores", Workload::kDRBL, 16_KB, 8},
      {"DRBL read  64K, 8 cores", Workload::kDRBL, 64_KB, 8},
  };
  for (const Case& c : cases) {
    RunConfig ioat = Base(c.w, c.io, c.cores);
    RunConfig dsa = ioat;
    dsa.media = pmem::MediaParams::Dsa();
    const double a = fxmark::Run(ioat).mops * 1e3;
    const double b = fxmark::Run(dsa).mops * 1e3;
    std::printf("%-28s %10.1fK %10.1fK %7.2fx\n", c.name, a, b, b / a);
  }
  std::printf("(paper §6.6: DSA is expected to expand EasyIO's benefit,\n"
              " especially for reads and small I/Os)\n");
}

void SelectiveOffloadAblation() {
  std::printf("\n-- B. Selective offloading ablation (Listing 2) --\n");
  std::printf("%-34s %12s %12s\n", "configuration", "4K write", "16K read");
  auto run_pair = [](RunConfig base_w, RunConfig base_r) {
    const double w = fxmark::Run(base_w).mops * 1e3;
    const double r = fxmark::Run(base_r).mops * 1e3;
    std::printf("%10.1fK %11.1fK\n", w, r);
  };

  RunConfig w_def = Base(Workload::kDWAL, 4_KB, 4);
  RunConfig r_def = Base(Workload::kDRBL, 16_KB, 8);
  std::printf("%-34s ", "default (4K cutoff, q<2 gate)");
  run_pair(w_def, r_def);

  RunConfig w_all = w_def;
  w_all.easy_options.dma_min_bytes = 0;  // DMA even for tiny I/O
  RunConfig r_all = r_def;
  r_all.easy_options.dma_min_bytes = 0;
  r_all.cm_options.read_admission_qdepth = 1u << 20;  // no admission gate
  std::printf("%-34s ", "always-DMA (no cutoff, no gate)");
  run_pair(w_all, r_all);

  RunConfig w_none = w_def;
  w_none.easy_options.dma_min_bytes = UINT64_MAX;  // never offload
  RunConfig r_none = r_def;
  r_none.easy_options.dma_min_bytes = UINT64_MAX;
  std::printf("%-34s ", "never-DMA (pure memcpy)");
  run_pair(w_none, r_none);
  std::printf(
      "(the q<2 read gate is load-bearing: without it, reads collapse onto\n"
      " the slow DMA read path. The 4K write cutoff is latency-motivated —\n"
      " single-thread 4K DMA loses to memcpy, Figs 2/8 — while under high\n"
      " concurrency 4K DMA can out-throughput contended memcpy.)\n");
}

void LChannelAblation() {
  std::printf("\n-- C. L-channel count ablation (write 16K, 8 cores) --\n");
  std::printf("%-12s %12s %10s %10s\n", "L channels", "Kops/s", "avg_us",
              "p99_us");
  for (int n : {1, 2, 4, 8}) {
    RunConfig cfg = Base(Workload::kDWAL, 16_KB, 8);
    cfg.cm_options.num_l_channels = n;
    cfg.cm_options.b_channel = n;  // keep the B channel out of the L range
    const auto r = fxmark::Run(cfg);
    std::printf("%-12d %12.1f %10.2f %10.2f\n", n, r.mops * 1e3,
                r.avg_latency_ns / 1e3, r.p99_ns / 1e3);
  }
  std::printf("(the paper steers L-apps to up to 4 channels; more causes\n"
              " aggregate write-bandwidth decline, fewer causes HoL queuing)\n");
}

}  // namespace
}  // namespace easyio

int main() {
  using namespace easyio;
  bench::PrintHeader(
      "Extensions: DSA preview + design-choice ablations (beyond the paper)");
  DsaPreview();
  SelectiveOffloadAblation();
  LChannelAblation();
  return 0;
}
