// Small shared helpers for the figure-reproduction benches.

#ifndef EASYIO_BENCH_BENCH_UTIL_H_
#define EASYIO_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/dma/fault_plan.h"

namespace easyio::bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

// --trace=<path> / --trace-sample=<N> command-line handling, shared by the
// figure benches that can emit a Perfetto trace (see docs/OBSERVABILITY.md).
// `sample_every` starts from the bench's default and is overridden by the
// flag; unknown arguments are ignored so benches keep their own flags.
struct TraceFlags {
  std::string path;          // empty = tracing stays off
  uint32_t sample_every = 1;
  bool enabled() const { return !path.empty(); }
};

inline TraceFlags ParseTraceFlags(int argc, char** argv,
                                  uint32_t default_sample = 1) {
  TraceFlags f;
  f.sample_every = default_sample;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--trace=", 8) == 0) {
      f.path = a + 8;
    } else if (std::strncmp(a, "--trace-sample=", 15) == 0) {
      f.sample_every = static_cast<uint32_t>(std::strtoul(a + 15, nullptr, 10));
      if (f.sample_every == 0) {
        f.sample_every = 1;
      }
    }
  }
  return f;
}

// --faults=<seed> command-line handling: a nonzero seed turns on DMA fault
// injection with a seeded random FaultPlan (see MakeBenchFaultPlan). Seed 0
// (or no flag) leaves injection off; a bench run without the flag and one
// with --faults=0 print byte-identical output. Unknown arguments are
// ignored, matching ParseTraceFlags.
struct FaultFlags {
  uint64_t seed = 0;
  bool enabled() const { return seed != 0; }
};

inline FaultFlags ParseFaultFlags(int argc, char** argv) {
  FaultFlags f;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--faults=", 9) == 0) {
      f.seed = std::strtoull(a + 9, nullptr, 10);
    }
  }
  return f;
}

// The shared fault shape for figure benches: a couple of transfer errors,
// one stall and one torn record per channel on average, all inside the
// first 128 descriptors each channel sees so the faults actually fire on
// short runs. Deterministic in (seed, num_channels).
inline dma::FaultPlan MakeBenchFaultPlan(uint64_t seed, int num_channels) {
  return dma::FaultPlan::Random(seed, num_channels,
                                /*n_errors=*/2 * num_channels,
                                /*n_stalls=*/num_channels,
                                /*n_torn=*/num_channels,
                                /*ordinal_range=*/128,
                                /*stall_ns=*/50'000);
}

// Returns by value (not a shared static buffer): two SizeName calls in one
// printf argument list each keep their own text, and concurrent scenario
// jobs formatting labels never race.
inline std::string SizeName(uint64_t io_size) {
  char buf[16];
  if (io_size >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%lluM",
                  static_cast<unsigned long long>(io_size >> 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluK",
                  static_cast<unsigned long long>(io_size >> 10));
  }
  return buf;
}

}  // namespace easyio::bench

#endif  // EASYIO_BENCH_BENCH_UTIL_H_
