// Small shared helpers for the figure-reproduction benches.

#ifndef EASYIO_BENCH_BENCH_UTIL_H_
#define EASYIO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace easyio::bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline const char* SizeName(uint64_t io_size) {
  static char buf[16];
  if (io_size >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%lluM",
                  static_cast<unsigned long long>(io_size >> 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluK",
                  static_cast<unsigned long long>(io_size >> 10));
  }
  return buf;
}

}  // namespace easyio::bench

#endif  // EASYIO_BENCH_BENCH_UTIL_H_
