// Small shared helpers for the figure-reproduction benches.

#ifndef EASYIO_BENCH_BENCH_UTIL_H_
#define EASYIO_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace easyio::bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

// --trace=<path> / --trace-sample=<N> command-line handling, shared by the
// figure benches that can emit a Perfetto trace (see docs/OBSERVABILITY.md).
// `sample_every` starts from the bench's default and is overridden by the
// flag; unknown arguments are ignored so benches keep their own flags.
struct TraceFlags {
  std::string path;          // empty = tracing stays off
  uint32_t sample_every = 1;
  bool enabled() const { return !path.empty(); }
};

inline TraceFlags ParseTraceFlags(int argc, char** argv,
                                  uint32_t default_sample = 1) {
  TraceFlags f;
  f.sample_every = default_sample;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--trace=", 8) == 0) {
      f.path = a + 8;
    } else if (std::strncmp(a, "--trace-sample=", 15) == 0) {
      f.sample_every = static_cast<uint32_t>(std::strtoul(a + 15, nullptr, 10));
      if (f.sample_every == 0) {
        f.sample_every = 1;
      }
    }
  }
  return f;
}

// Returns by value (not a shared static buffer): two SizeName calls in one
// printf argument list each keep their own text, and concurrent scenario
// jobs formatting labels never race.
inline std::string SizeName(uint64_t io_size) {
  char buf[16];
  if (io_size >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%lluM",
                  static_cast<unsigned long long>(io_size >> 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluK",
                  static_cast<unsigned long long>(io_size >> 10));
  }
  return buf;
}

}  // namespace easyio::bench

#endif  // EASYIO_BENCH_BENCH_UTIL_H_
