// Figure 10: throughput of the eight real-world applications (§6.3,
// Table 1) as worker cores grow, across the four filesystems.
//
// Paper shapes: EasyIO ~2.1x/2.1x/1.5x/2.3x over NOVA for Snappy, Grep,
// KNN, BFS (I/O-intensive or balanced); ~1.0-1.1x for JPGDecoder and AES
// (computation-dominated); ~2.3x for Fileserver; Webserver (high contention
// on the shared log) is the one case where OdinFS beats EasyIO. OdinFS
// declines beyond 12 worker cores (reserved delegation cores).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/apps.h"
#include "src/harness/scenario_runner.h"

namespace easyio {
namespace {

using apps::AppKind;
using apps::AppRunConfig;

const std::vector<int> kCores{1, 2, 4, 8, 12, 16};

// Set from --faults=<seed> in main before any scenario job runs; 0 = off.
uint64_t g_fault_seed = 0;

const std::vector<harness::FsKind> kKinds{
    harness::FsKind::kNova, harness::FsKind::kNovaDma, harness::FsKind::kOdin,
    harness::FsKind::kEasy};

// One independent simulation per (fs, cores) cell; the app's whole grid fans
// out across the scenario runner, then prints from the ordered results
// (skipped OdinFS cells carry a negative sentinel).
void RunApp(AppKind app, int jobs) {
  std::printf("\n-- %s (ops/s) --\n", apps::AppName(app));
  std::printf("%-9s", "fs\\cores");
  for (int c : kCores) {
    std::printf("%9d", c);
  }
  std::printf("\n");
  const size_t cols = kCores.size();
  const std::vector<double> grid =
      harness::RunIndexed(jobs, kKinds.size() * cols, [&](size_t i) {
        const harness::FsKind kind = kKinds[i / cols];
        const int cores = kCores[i % cols];
        if (kind == harness::FsKind::kOdin && cores > 12) {
          return -1.0;
        }
        AppRunConfig cfg;
        cfg.app = app;
        cfg.fs = kind;
        cfg.cores = cores;
        if (g_fault_seed != 0) {
          cfg.faults = bench::MakeBenchFaultPlan(
              g_fault_seed,
              static_cast<int>(nova::NovaFs::Options{}.comp_channels));
        }
        return apps::RunApp(cfg).ops_per_sec;
      });
  double nova_best = 0;
  double easy_best = 0;
  for (size_t k = 0; k < kKinds.size(); ++k) {
    const harness::FsKind kind = kKinds[k];
    std::printf("%-9s", harness::FsKindName(kind));
    for (size_t c = 0; c < cols; ++c) {
      const double ops = grid[k * cols + c];
      if (ops < 0) {
        std::printf("%9s", "-");
        continue;
      }
      std::printf("%9.0f", ops);
      if (kind == harness::FsKind::kNova) {
        nova_best = std::max(nova_best, ops);
      }
      if (kind == harness::FsKind::kEasy) {
        easy_best = std::max(easy_best, ops);
      }
    }
    std::printf("\n");
  }
  std::printf("EasyIO/NOVA peak speedup: %.2fx\n",
              nova_best > 0 ? easy_best / nova_best : 0.0);
}

}  // namespace
}  // namespace easyio

int main(int argc, char** argv) {
  using namespace easyio;
  const int jobs = harness::ScenarioRunner::JobsFromArgs(argc, argv);
  // --faults=<seed> injects a seeded DMA fault plan into every cell's
  // testbed; seed 0 (the default) is byte-identical to no flag.
  g_fault_seed = bench::ParseFaultFlags(argc, argv).seed;
  bench::PrintHeader(
      "Figure 10: real-world application throughput vs worker cores");
  std::printf(
      "Table 1 geometry: Snappy r910K/w1.9M 1:1 | JPG r43K/w786K 1:1 (1/8\n"
      "scale) | AES r64K/w64K 1:1 | Grep r2M 1:0 | KNN r1M 1:0 | BFS r1M\n"
      "1:0 | Fileserver r1M/w~1M 1:2 | Webserver r256K/w16K 10:1\n");
  for (AppKind app :
       {AppKind::kSnappy, AppKind::kJpgDecoder, AppKind::kAes, AppKind::kGrep,
        AppKind::kKnn, AppKind::kBfs, AppKind::kFileserver,
        AppKind::kWebserver}) {
    RunApp(app, jobs);
  }
  std::printf(
      "\nExpected shape (paper): ~2x speedups for Snappy/Grep/BFS, ~1.5x\n"
      "KNN, ~1.0-1.1x for compute-bound JPG/AES, ~2.3x Fileserver; OdinFS\n"
      "wins Webserver (shared-log contention) and stops at 12 cores.\n");
  return 0;
}
