// Figure 10: throughput of the eight real-world applications (§6.3,
// Table 1) as worker cores grow, across the four filesystems.
//
// Paper shapes: EasyIO ~2.1x/2.1x/1.5x/2.3x over NOVA for Snappy, Grep,
// KNN, BFS (I/O-intensive or balanced); ~1.0-1.1x for JPGDecoder and AES
// (computation-dominated); ~2.3x for Fileserver; Webserver (high contention
// on the shared log) is the one case where OdinFS beats EasyIO. OdinFS
// declines beyond 12 worker cores (reserved delegation cores).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/apps.h"

namespace easyio {
namespace {

using apps::AppKind;
using apps::AppRunConfig;

const std::vector<int> kCores{1, 2, 4, 8, 12, 16};

void RunApp(AppKind app) {
  std::printf("\n-- %s (ops/s) --\n", apps::AppName(app));
  std::printf("%-9s", "fs\\cores");
  for (int c : kCores) {
    std::printf("%9d", c);
  }
  std::printf("\n");
  double nova_best = 0;
  double easy_best = 0;
  for (harness::FsKind kind :
       {harness::FsKind::kNova, harness::FsKind::kNovaDma,
        harness::FsKind::kOdin, harness::FsKind::kEasy}) {
    std::printf("%-9s", harness::FsKindName(kind));
    for (int cores : kCores) {
      if (kind == harness::FsKind::kOdin && cores > 12) {
        std::printf("%9s", "-");
        continue;
      }
      AppRunConfig cfg;
      cfg.app = app;
      cfg.fs = kind;
      cfg.cores = cores;
      const auto r = apps::RunApp(cfg);
      std::printf("%9.0f", r.ops_per_sec);
      if (kind == harness::FsKind::kNova) {
        nova_best = std::max(nova_best, r.ops_per_sec);
      }
      if (kind == harness::FsKind::kEasy) {
        easy_best = std::max(easy_best, r.ops_per_sec);
      }
    }
    std::printf("\n");
  }
  std::printf("EasyIO/NOVA peak speedup: %.2fx\n",
              nova_best > 0 ? easy_best / nova_best : 0.0);
}

}  // namespace
}  // namespace easyio

int main() {
  using namespace easyio;
  bench::PrintHeader(
      "Figure 10: real-world application throughput vs worker cores");
  std::printf(
      "Table 1 geometry: Snappy r910K/w1.9M 1:1 | JPG r43K/w786K 1:1 (1/8\n"
      "scale) | AES r64K/w64K 1:1 | Grep r2M 1:0 | KNN r1M 1:0 | BFS r1M\n"
      "1:0 | Fileserver r1M/w~1M 1:2 | Webserver r256K/w16K 10:1\n");
  for (AppKind app :
       {AppKind::kSnappy, AppKind::kJpgDecoder, AppKind::kAes, AppKind::kGrep,
        AppKind::kKnn, AppKind::kBfs, AppKind::kFileserver,
        AppKind::kWebserver}) {
    RunApp(app);
  }
  std::printf(
      "\nExpected shape (paper): ~2x speedups for Snappy/Grep/BFS, ~1.5x\n"
      "KNN, ~1.0-1.1x for compute-bound JPG/AES, ~2.3x Fileserver; OdinFS\n"
      "wins Webserver (shared-log contention) and stops at 12 cores.\n");
  return 0;
}
