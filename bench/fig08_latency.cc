// Figure 8: single-thread operation latency of NOVA, NOVA-DMA, ODINFS and
// EasyIO across I/O sizes, plus EasyIO-CPU (the CPU-busy share of EasyIO's
// operation).
//
// Paper shapes: EasyIO lowest for writes and reads (DMA offload + orderless
// commit); the gap grows with I/O size (~41% lower 64K write latency);
// EasyIO-CPU is ~37% (write) and ~5% (read) of the op at 64K; OdinFS beats
// NOVA for large I/Os.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/harness/scenario_runner.h"
#include "src/harness/testbed.h"

namespace easyio {
namespace {

struct Point {
  double total_us;
  double cpu_us;
};

// Set from --faults=<seed> in main before any scenario job runs; 0 = off.
uint64_t g_fault_seed = 0;

Point Measure(harness::FsKind kind, bool is_write, uint64_t io_size) {
  harness::TestbedConfig cfg;
  cfg.fs = kind;
  cfg.machine_cores = 36;
  cfg.device_bytes = 256_MB;
  if (g_fault_seed != 0) {
    cfg.faults = bench::MakeBenchFaultPlan(
        g_fault_seed, static_cast<int>(cfg.fs_options.comp_channels));
  }
  harness::Testbed tb(cfg);
  Point out{0, 0};
  constexpr int kOps = 200;
  tb.sim().Spawn(0, [&] {
    Rng rng(1);
    int fd = *tb.fs().Create("/f");
    std::vector<std::byte> buf(io_size, std::byte{0x33});
    const uint64_t file_bytes = 4_MB;
    for (uint64_t off = 0; off < file_bytes; off += io_size) {
      EASYIO_CHECK_OK(tb.fs().Write(fd, off, buf).status());
    }
    const uint64_t blocks = file_bytes / io_size;
    for (int i = 0; i < kOps; ++i) {
      const uint64_t off = rng.Below(blocks) * io_size;
      fs::OpStats st;
      if (is_write) {
        EASYIO_CHECK_OK(tb.fs().Write(fd, off, buf, &st).status());
      } else {
        EASYIO_CHECK_OK(tb.fs().Read(fd, off, buf, &st).status());
      }
      out.total_us += st.total_ns / 1e3;
      out.cpu_us += st.cpu_ns / 1e3;
    }
  });
  tb.sim().Run();
  out.total_us /= kOps;
  out.cpu_us /= kOps;
  return out;
}

// One independent simulation per (fs, io) point; the direction's whole grid
// fans out across the scenario runner and prints from the ordered results.
void RunDirection(bool is_write, int jobs) {
  std::printf("\n-- %s latency (us), single thread --\n",
              is_write ? "Write" : "Read");
  std::printf("%-10s %8s %10s %8s %8s %12s\n", "io", "NOVA", "NOVA-DMA",
              "ODINFS", "EasyIO", "EasyIO-CPU");
  const std::vector<uint64_t> ios{4_KB, 8_KB, 16_KB, 32_KB, 64_KB};
  const std::vector<harness::FsKind> kinds{
      harness::FsKind::kNova, harness::FsKind::kNovaDma,
      harness::FsKind::kOdin, harness::FsKind::kEasy};
  const size_t cols = kinds.size();
  const std::vector<Point> points =
      harness::RunIndexed(jobs, ios.size() * cols, [&](size_t i) {
        return Measure(kinds[i % cols], is_write, ios[i / cols]);
      });
  for (size_t row = 0; row < ios.size(); ++row) {
    const Point* p = &points[row * cols];
    std::printf("%-10s %8.2f %10.2f %8.2f %8.2f %12.2f\n",
                bench::SizeName(ios[row]).c_str(), p[0].total_us,
                p[1].total_us, p[2].total_us, p[3].total_us, p[3].cpu_us);
  }
}

}  // namespace
}  // namespace easyio

int main(int argc, char** argv) {
  using namespace easyio;
  const int jobs = harness::ScenarioRunner::JobsFromArgs(argc, argv);
  // --faults=<seed> injects a seeded DMA fault plan into every point's
  // testbed; seed 0 (the default) is byte-identical to no flag.
  g_fault_seed = bench::ParseFaultFlags(argc, argv).seed;
  bench::PrintHeader("Figure 8: operation latency by filesystem (1 thread)");
  RunDirection(/*is_write=*/true, jobs);
  RunDirection(/*is_write=*/false, jobs);
  std::printf(
      "\nExpected shape (paper): EasyIO lowest write+read latency, gap\n"
      "growing with I/O size (~41%% lower 64K write than NOVA); EasyIO-CPU\n"
      "~37%%/~5%% of write/read op at 64K; ODINFS helps for large I/Os.\n");
  return 0;
}
