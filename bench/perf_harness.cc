// Wall-clock performance harness: measures the *simulator's* real-time cost
// (host ns per simulated op) over a fixed op mix, and records the trajectory
// in BENCH_report.json at the repo root so every PR has a before/after
// number.
//
// The mix combines the fxmark profiles the paper evaluates (DWAL/DRBL at
// 4K and 64K, on EasyIO and the synchronous NOVA baseline) with direct
// component loops over the hot data structures (PageMap, BlockAllocator,
// the event loop) in the spirit of micro_components.cc. For each case we
// report:
//   wall_ns_per_op  - host nanoseconds per simulated operation (min of N
//                     repeats, to shed scheduler noise)
//   sim_ratio       - host time / simulated time (how many real ns the
//                     simulator burns per virtual ns; lower is better)
// plus the process-wide peak RSS.
//
// Usage:
//   perf_harness [--smoke] [--as-baseline] [--repeats N] [--out PATH]
//                [--jobs=N]
//
//   --as-baseline  record this run as the "baseline" section (seed state);
//                  later default runs preserve it and report improvement.
//   --smoke        tiny windows + JSON self-check; used as a ctest target.
//   --jobs=N       run the measured mix through the scenario runner with N
//                  worker threads. Defaults to 1: the mix measures *host*
//                  wall time per op, and co-running simulations would
//                  contend for cycles and inflate each other's numbers.
//
// Independently of --jobs, the report gains a "figure_regen_wall_s" section:
// a fig09-like (fs x cores) scenario grid is regenerated once serially and
// once at the host's default parallelism, recording both wall times and the
// speedup (~1.0 on a 1-core host).

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/fxmark/fxmark.h"
#include "src/harness/scenario_runner.h"
#include "src/harness/testbed.h"
#include "src/nova/allocator.h"
#include "src/nova/layout.h"
#include "src/nova/page_map.h"
#include "src/sim/flow_resource.h"
#include "src/sim/obs_session.h"
#include "src/sim/simulation.h"

namespace easyio {
namespace {

struct CaseResult {
  std::string name;
  double wall_ns_per_op = 0;
  double sim_ratio = 0;  // host ns per simulated ns (0 for component loops)
  uint64_t ops = 0;
  // Cases added after the baseline was recorded are kept out of the geomean
  // so the baseline/current improvement stays an apples-to-apples compare.
  bool in_geomean = true;
};

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ------------------------------------------------------------ fxmark mix ----

CaseResult RunFxmark(const std::string& name, harness::FsKind fs,
                     fxmark::Workload wl, uint64_t io_size,
                     uint64_t measure_ns, int repeats,
                     const bench::TraceFlags* trace = nullptr) {
  CaseResult out;
  out.name = name;
  double best = 1e18;
  for (int r = 0; r < repeats; ++r) {
    // Trace the first repeat only; the tracer's host-side cost inflates that
    // repeat's wall clock, but min-of-repeats sheds it when repeats > 1.
    std::unique_ptr<sim::TraceSession> session;
    if (r == 0 && trace != nullptr && trace->enabled()) {
      session = std::make_unique<sim::TraceSession>(trace->path,
                                                    trace->sample_every);
    }
    fxmark::RunConfig cfg;
    cfg.fs = fs;
    cfg.workload = wl;
    cfg.cores = 4;
    cfg.uthreads_per_core = fs == harness::FsKind::kEasy ? 2 : 1;
    cfg.io_size = io_size;
    cfg.file_bytes = 4_MB;
    cfg.warmup_ns = measure_ns / 4;
    cfg.measure_ns = measure_ns;
    cfg.device_bytes = 512_MB;
    cfg.machine_cores = 8;
    const uint64_t t0 = NowNs();
    const fxmark::RunResult res = fxmark::Run(cfg);
    const uint64_t wall = NowNs() - t0;
    if (res.ops == 0) {
      continue;
    }
    const double ns_per_op =
        static_cast<double>(wall) / static_cast<double>(res.ops);
    if (ns_per_op < best) {
      best = ns_per_op;
      out.ops = res.ops;
      out.sim_ratio = static_cast<double>(wall) /
                      static_cast<double>(cfg.warmup_ns + cfg.measure_ns);
    }
  }
  out.wall_ns_per_op = best;
  return out;
}

// --------------------------------------------------------- component mix ----

CaseResult RunPageMapLoop(uint64_t iters, int repeats) {
  CaseResult out;
  out.name = "micro_pagemap_insert_lookup";
  double best = 1e18;
  for (int r = 0; r < repeats; ++r) {
    nova::PageMap map;
    uint64_t sink = 0;
    const uint64_t t0 = NowNs();
    uint64_t pg = 0;
    for (uint64_t i = 0; i < iters; ++i) {
      map.Insert(pg % 4096, 16, 1_MB + pg * nova::kBlockSize, 0);
      for (const auto& seg : map.Lookup(pg % 4096, 16)) {
        sink += seg.block_off;
      }
      pg += 16;
    }
    const uint64_t wall = NowNs() - t0;
    if (sink == 0) {
      std::fprintf(stderr, "pagemap sink zero?\n");
    }
    best = std::min(best,
                    static_cast<double>(wall) / static_cast<double>(iters));
  }
  out.wall_ns_per_op = best;
  out.ops = iters;
  return out;
}

CaseResult RunAllocatorLoop(uint64_t iters, int repeats) {
  CaseResult out;
  out.name = "micro_allocator_churn";
  double best = 1e18;
  for (int r = 0; r < repeats; ++r) {
    nova::BlockAllocator alloc(1_MB, 1 << 18, 16);
    Rng rng(7);
    std::vector<nova::Extent> held;
    held.reserve(1024);
    const uint64_t t0 = NowNs();
    for (uint64_t i = 0; i < iters; ++i) {
      auto e = alloc.Alloc(1 + rng.Below(32), static_cast<int>(i % 16));
      if (e.ok()) {
        held.push_back(*e);
      }
      if (held.size() >= 1024 || !e.ok()) {
        // Free a random half to force fragmentation churn.
        for (size_t k = 0; k < held.size();) {
          if (rng.Below(2) == 0) {
            alloc.Free(held[k]);
            held[k] = held.back();
            held.pop_back();
          } else {
            k++;
          }
        }
      }
    }
    const uint64_t wall = NowNs() - t0;
    best = std::min(best,
                    static_cast<double>(wall) / static_cast<double>(iters));
  }
  out.wall_ns_per_op = best;
  out.ops = iters;
  return out;
}

// Exercises the FlowResource hot path: every StartFlow/CancelFlow/completion
// re-settles and recomputes the rates of every active flow, so this measures
// the flow container + max-min recompute cost under a live flow set of ~24.
CaseResult RunFlowRecomputeLoop(uint64_t iters, int repeats) {
  CaseResult out;
  out.name = "micro_flow_recompute";
  out.in_geomean = false;  // added after the seed baseline was recorded
  double best = 1e18;
  for (int r = 0; r < repeats; ++r) {
    sim::Simulation sim({.num_cores = 1});
    sim::CapacityModel model;
    model.cpu_aggregate = [](int) { return 8.0; };
    model.dma_aggregate = [](int) { return 6.0; };
    model.total = 12.0;
    sim::FlowResource res(&sim, "bench", model);
    Rng rng(11);
    std::vector<sim::FlowResource::FlowId> live;
    live.reserve(32);
    uint64_t done = 0;
    const uint64_t t0 = NowNs();
    for (uint64_t i = 0; i < iters; ++i) {
      live.push_back(res.StartFlow(
          4_KB + rng.Below(16) * 4_KB, 2.0,
          i % 3 == 0 ? sim::FlowType::kCpu : sim::FlowType::kDma,
          [&done] { done++; }));
      if (live.size() >= 24) {
        // Cancel one random survivor, let the rest make progress, then drop
        // ids the simulation completed meanwhile.
        const size_t k = rng.Below(live.size());
        if (res.HasFlow(live[k])) {
          res.CancelFlow(live[k]);
        }
        live[k] = live.back();
        live.pop_back();
        sim.RunFor(2_us);
        live.erase(std::remove_if(
                       live.begin(), live.end(),
                       [&res](sim::FlowResource::FlowId id) {
                         return !res.HasFlow(id);
                       }),
                   live.end());
      }
    }
    sim.Run();  // drain the remaining flows
    const uint64_t wall = NowNs() - t0;
    if (done == 0) {
      std::fprintf(stderr, "flow recompute: no completions?\n");
    }
    best = std::min(best,
                    static_cast<double>(wall) / static_cast<double>(iters));
  }
  out.wall_ns_per_op = best;
  out.ops = iters;
  return out;
}

// Measures one task-dispatch cycle: Yield -> host handles the directive ->
// kick event fires -> switch back in. Two tasks ping-pong on one core, so
// every context_switches() increment is one full cycle (two raw stack
// switches plus the event-loop dispatch around them). The ucontext-fallback
// build of the same commit runs the identical loop, so the ratio between the
// two isolates the cost of glibc swapcontext (a sigprocmask syscall per raw
// switch) against the syscall-free asm path.
CaseResult RunUthreadSwitchLoop(uint64_t iters, int repeats) {
  CaseResult out;
  out.name = "micro_uthread_switch";
  out.in_geomean = false;  // added after the seed baseline was recorded
  double best = 1e18;
  for (int r = 0; r < repeats; ++r) {
    sim::Simulation sim({.num_cores = 1});
    uint64_t remaining = iters;
    for (int t = 0; t < 2; ++t) {
      sim.Spawn(0, [&sim, &remaining] {
        while (remaining > 0) {
          remaining--;
          sim.Yield();
        }
      });
    }
    const uint64_t c0 = sim.context_switches();
    const uint64_t t0 = NowNs();
    sim.Run();
    const uint64_t wall = NowNs() - t0;
    const uint64_t switches = sim.context_switches() - c0;
    if (switches < iters) {
      std::fprintf(stderr, "uthread switch loop undercounted\n");
    }
    out.ops = switches;
    best = std::min(best,
                    static_cast<double>(wall) / static_cast<double>(switches));
  }
  out.wall_ns_per_op = best;
  return out;
}

// Exercises the timing wheel across its level structure: near events (levels
// 0-1), mid-range events (level 2), far events that land in the heap
// fallback, plus a cancellation stream exercising the generation tags.
CaseResult RunTimerWheelLoop(uint64_t iters, int repeats) {
  CaseResult out;
  out.name = "micro_timer_wheel";
  out.in_geomean = false;  // added after the seed baseline was recorded
  double best = 1e18;
  for (int r = 0; r < repeats; ++r) {
    sim::Simulation sim({.num_cores = 1});
    Rng rng(23);
    uint64_t fired = 0;
    std::vector<sim::EventId> cancelable;
    const uint64_t t0 = NowNs();
    for (uint64_t i = 0; i < iters; ++i) {
      sim.ScheduleAfter(1 + rng.Below(200), [&fired] { fired++; });
      if (i % 4 == 0) {
        cancelable.push_back(
            sim.ScheduleAfter(100 + rng.Below(4000), [&fired] { fired++; }));
      }
      if (i % 8 == 0) {
        // Beyond the level-3 window: lands in the heap, fires much later.
        sim.ScheduleAfter(20'000'000 + rng.Below(1000),
                          [&fired] { fired++; });
      }
      if (i % 5 == 0 && !cancelable.empty()) {
        sim.Cancel(cancelable.back());
        cancelable.pop_back();
      }
      sim.RunFor(150);
    }
    sim.Run();
    const uint64_t wall = NowNs() - t0;
    if (fired == 0) {
      std::fprintf(stderr, "timer wheel loop fired nothing\n");
    }
    best = std::min(best,
                    static_cast<double>(wall) / static_cast<double>(iters));
  }
  out.wall_ns_per_op = best;
  out.ops = iters;
  return out;
}

CaseResult RunEventLoop(uint64_t iters, int repeats) {
  CaseResult out;
  out.name = "micro_event_schedule_fire";
  double best = 1e18;
  for (int r = 0; r < repeats; ++r) {
    sim::Simulation sim({.num_cores = 1});
    uint64_t fired = 0;
    const uint64_t t0 = NowNs();
    for (uint64_t i = 0; i < iters; ++i) {
      sim.ScheduleAfter(1, [&fired] { fired++; });
      sim.RunFor(2);
    }
    const uint64_t wall = NowNs() - t0;
    if (fired != iters) {
      std::fprintf(stderr, "event loop dropped events\n");
    }
    best = std::min(best,
                    static_cast<double>(wall) / static_cast<double>(iters));
  }
  out.wall_ns_per_op = best;
  out.ops = iters;
  return out;
}

// ---------------------------------------------------- figure regeneration ----

// Regenerates a fig09-like (fs x cores) scenario grid through the scenario
// runner at the given parallelism and returns the host wall seconds. Each
// cell is an independent simulation, so the grid scales with host threads.
double FigureRegenWallS(int jobs, uint64_t measure_ns) {
  struct Cell {
    harness::FsKind fs;
    int cores;
  };
  std::vector<Cell> grid;
  for (harness::FsKind fs : {harness::FsKind::kNova, harness::FsKind::kEasy}) {
    for (int c : {1, 2, 4, 8}) {
      grid.push_back({fs, c});
    }
  }
  const uint64_t t0 = NowNs();
  harness::RunIndexed(jobs, grid.size(), [&](size_t i) {
    fxmark::RunConfig cfg;
    cfg.fs = grid[i].fs;
    cfg.workload = fxmark::Workload::kDWAL;
    cfg.io_size = 16_KB;
    cfg.cores = grid[i].cores;
    cfg.uthreads_per_core = cfg.fs == harness::FsKind::kEasy ? 2 : 1;
    cfg.file_bytes = 4_MB;
    cfg.warmup_ns = measure_ns / 4;
    cfg.measure_ns = measure_ns;
    cfg.device_bytes = 512_MB;
    cfg.machine_cores = 16;
    return fxmark::Run(cfg).ops;
  });
  return static_cast<double>(NowNs() - t0) / 1e9;
}

// ------------------------------------------------------------------ json ----

double Geomean(const std::vector<CaseResult>& cases) {
  double log_sum = 0;
  int n = 0;
  for (const auto& c : cases) {
    if (!c.in_geomean) {
      continue;
    }
    log_sum += std::log(c.wall_ns_per_op);
    n++;
  }
  return std::exp(log_sum / static_cast<double>(n));
}

// Geomean of sim_ratio over the fxmark cases (the only ones with a virtual
// clock): how many host ns the simulator burns per simulated ns.
double SimRatioGeomean(const std::vector<CaseResult>& cases) {
  double log_sum = 0;
  int n = 0;
  for (const auto& c : cases) {
    if (!c.in_geomean || c.sim_ratio <= 0) {
      continue;
    }
    log_sum += std::log(c.sim_ratio);
    n++;
  }
  return n == 0 ? 0 : std::exp(log_sum / static_cast<double>(n));
}

void EmitRun(std::ostringstream& os, const std::vector<CaseResult>& cases,
             const std::string& indent) {
  os << indent << "\"mix\": [\n";
  for (size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s  {\"name\": \"%s\", \"wall_ns_per_op\": %.2f, "
                  "\"sim_ratio\": %.4f, \"ops\": %llu, "
                  "\"in_geomean\": %s}%s\n",
                  indent.c_str(), c.name.c_str(), c.wall_ns_per_op,
                  c.sim_ratio, static_cast<unsigned long long>(c.ops),
                  c.in_geomean ? "true" : "false",
                  i + 1 < cases.size() ? "," : "");
    os << buf;
  }
  os << indent << "],\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s\"geomean_ns_per_op\": %.2f,\n",
                indent.c_str(), Geomean(cases));
  os << buf;
  std::snprintf(buf, sizeof(buf), "%s\"sim_ratio_geomean\": %.4f,\n",
                indent.c_str(), SimRatioGeomean(cases));
  os << buf;
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  std::snprintf(buf, sizeof(buf), "%s\"peak_rss_kb\": %ld\n", indent.c_str(),
                ru.ru_maxrss);
  os << buf;
}

// ----------------------------------------------------------- history file ----

// BENCH_history.json keeps one entry per harness run next to the report, so
// the geomean/sim_ratio trajectory across PRs survives the report's
// current-block overwrites. --as-baseline rotates the file: the old
// trajectory measured a different baseline epoch, so it starts over with the
// new baseline as entry zero.
std::string HistoryPathFor(const std::string& out_path) {
  const size_t slash = out_path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "" : out_path.substr(0, slash + 1);
  return dir + "BENCH_history.json";
}

void AppendHistory(const std::string& out_path, double geomean,
                   double sim_ratio_geomean, int repeats, bool as_baseline) {
  const std::string path = HistoryPathFor(out_path);
  std::string entries;
  if (!as_baseline) {  // rotate: a new baseline discards the old trajectory
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      const std::string prev = ss.str();
      const size_t b = prev.find('[');
      const size_t e = prev.rfind(']');
      if (b != std::string::npos && e != std::string::npos && e > b + 1) {
        entries = prev.substr(b + 1, e - b - 1);
        // Trim surrounding whitespace so the re-emit below stays tidy.
        while (!entries.empty() &&
               (entries.back() == '\n' || entries.back() == ' ')) {
          entries.pop_back();
        }
        while (!entries.empty() &&
               (entries.front() == '\n' || entries.front() == ' ')) {
          entries.erase(entries.begin());
        }
        if (!entries.empty()) {
          entries.insert(0, "    ");
        }
      }
    }
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    {\"geomean_ns_per_op\": %.2f, \"sim_ratio_geomean\": "
                "%.4f, \"repeats\": %d, \"baseline\": %s}",
                geomean, sim_ratio_geomean, repeats,
                as_baseline ? "true" : "false");
  std::ostringstream os;
  os << "{\n  \"schema\": \"easyio-bench-history-v1\",\n  \"entries\": [\n";
  if (!entries.empty()) {
    os << entries << ",\n";
  }
  os << buf << "\n  ]\n}\n";
  std::ofstream out(path);
  out << os.str();
}

// Extracts the previously recorded baseline block (between the exact marker
// lines the harness itself emits), so a default run can carry it forward.
std::string ExtractBaselineBlock(const std::string& prev) {
  const std::string begin = "  \"baseline\": {\n";
  const std::string end = "\n  },\n";
  const size_t b = prev.find(begin);
  if (b == std::string::npos) {
    return "";
  }
  const size_t e = prev.find(end, b);
  if (e == std::string::npos) {
    return "";
  }
  return prev.substr(b, e + end.size() - b);
}

double ExtractGeomean(const std::string& block) {
  const std::string key = "\"geomean_ns_per_op\": ";
  const size_t p = block.find(key);
  if (p == std::string::npos) {
    return 0;
  }
  return std::strtod(block.c_str() + p + key.size(), nullptr);
}

bool JsonBalanced(const std::string& s) {
  int depth = 0;
  bool in_str = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_str) {
      if (c == '\\') {
        i++;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') {
      in_str = true;
    } else if (c == '{' || c == '[') {
      depth++;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) {
        return false;
      }
    }
  }
  return depth == 0 && !in_str;
}

}  // namespace
}  // namespace easyio

int main(int argc, char** argv) {
  using namespace easyio;
  bool smoke = false;
  bool as_baseline = false;
  double check_regression_pct = -1;  // <0: no gate
  int repeats = 3;
  // The measured mix defaults to serial: co-running simulations contend for
  // host cycles and inflate each other's wall_ns_per_op.
  int jobs = 1;
  std::string out_path = "BENCH_report.json";
  // --trace records the easyio_dwal_write_64k case's first repeat; heavy
  // sampling by default, this case runs hundreds of thousands of ops.
  const bench::TraceFlags trace =
      bench::ParseTraceFlags(argc, argv, /*default_sample=*/32);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--as-baseline") == 0) {
      as_baseline = true;
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::max(1, std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--check-regression=", 19) == 0) {
      check_regression_pct = std::atof(argv[i] + 19);
    } else if (std::strncmp(argv[i], "--trace", 7) == 0) {
      // handled by ParseTraceFlags
    } else {
      std::fprintf(stderr,
                   "usage: perf_harness [--smoke] [--as-baseline] "
                   "[--repeats N] [--out PATH] [--jobs=N] "
                   "[--check-regression=PCT] [--trace=PATH] "
                   "[--trace-sample=N]\n");
      return 2;
    }
  }
  if (smoke) {
    repeats = 1;
  }
  const uint64_t measure = smoke ? 2_ms : 20_ms;
  const uint64_t micro_iters = smoke ? 20000 : 2000000;

  std::vector<CaseResult> cases;
  const struct {
    const char* name;
    harness::FsKind fs;
    fxmark::Workload wl;
    uint64_t io;
  } kFxCases[] = {
      {"easyio_dwal_write_4k", harness::FsKind::kEasy,
       fxmark::Workload::kDWAL, 4_KB},
      {"easyio_dwal_write_64k", harness::FsKind::kEasy,
       fxmark::Workload::kDWAL, 64_KB},
      {"easyio_drbl_read_4k", harness::FsKind::kEasy,
       fxmark::Workload::kDRBL, 4_KB},
      {"easyio_drbl_read_64k", harness::FsKind::kEasy,
       fxmark::Workload::kDRBL, 64_KB},
      {"nova_dwal_write_4k", harness::FsKind::kNova,
       fxmark::Workload::kDWAL, 4_KB},
      {"nova_drbl_read_64k", harness::FsKind::kNova,
       fxmark::Workload::kDRBL, 64_KB},
  };
  const size_t n_fx = sizeof(kFxCases) / sizeof(kFxCases[0]);
  // The mix fans out across the scenario runner (serial unless --jobs=N);
  // results land in submission-ordered slots, so the table below is
  // byte-structured the same for any jobs value.
  const std::vector<CaseResult> fx_results =
      harness::RunIndexed(jobs, n_fx, [&](size_t i) {
        const auto& fx = kFxCases[i];
        const bool traced = trace.enabled() &&
                            std::strcmp(fx.name, "easyio_dwal_write_64k") == 0;
        return RunFxmark(fx.name, fx.fs, fx.wl, fx.io, measure, repeats,
                         traced ? &trace : nullptr);
      });
  for (const CaseResult& res : fx_results) {
    cases.push_back(res);
    std::printf("%-28s %10.1f ns/op  (sim_ratio %.3f, %llu ops)\n",
                res.name.c_str(), res.wall_ns_per_op, res.sim_ratio,
                static_cast<unsigned long long>(res.ops));
  }
  cases.push_back(RunPageMapLoop(micro_iters, repeats));
  std::printf("%-28s %10.1f ns/op\n", cases.back().name.c_str(),
              cases.back().wall_ns_per_op);
  cases.push_back(RunAllocatorLoop(micro_iters, repeats));
  std::printf("%-28s %10.1f ns/op\n", cases.back().name.c_str(),
              cases.back().wall_ns_per_op);
  cases.push_back(RunEventLoop(micro_iters, repeats));
  std::printf("%-28s %10.1f ns/op\n", cases.back().name.c_str(),
              cases.back().wall_ns_per_op);
  cases.push_back(RunFlowRecomputeLoop(micro_iters / 4, repeats));
  std::printf("%-28s %10.1f ns/op  (excluded from geomean)\n",
              cases.back().name.c_str(), cases.back().wall_ns_per_op);
  cases.push_back(RunUthreadSwitchLoop(micro_iters, repeats));
  std::printf("%-28s %10.1f ns/switch  (excluded from geomean)\n",
              cases.back().name.c_str(), cases.back().wall_ns_per_op);
  cases.push_back(RunTimerWheelLoop(micro_iters / 2, repeats));
  std::printf("%-28s %10.1f ns/op  (excluded from geomean)\n",
              cases.back().name.c_str(), cases.back().wall_ns_per_op);

  // Serial vs parallel regeneration of a figure-style scenario grid.
  const double regen_serial_s = FigureRegenWallS(1, measure);
  const int regen_jobs = harness::ScenarioRunner::DefaultJobs();
  const double regen_parallel_s = FigureRegenWallS(regen_jobs, measure);
  std::printf("%-28s serial %.2fs, parallel(%d jobs) %.2fs, %.2fx\n",
              "figure_regen", regen_serial_s, regen_jobs, regen_parallel_s,
              regen_serial_s / regen_parallel_s);

  // Previous report (to carry the baseline forward).
  std::string prev;
  {
    std::ifstream in(out_path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      prev = ss.str();
    }
  }

  std::ostringstream os;
  os << "{\n  \"schema\": \"easyio-bench-report-v1\",\n";
  std::string baseline_block;
  if (as_baseline) {
    std::ostringstream run;
    EmitRun(run, cases, "    ");
    baseline_block = "  \"baseline\": {\n" + run.str() + "  },\n";
  } else {
    baseline_block = ExtractBaselineBlock(prev);
  }
  if (!baseline_block.empty()) {
    os << baseline_block;
  }
  os << "  \"current\": {\n";
  EmitRun(os, cases, "    ");
  os << "  },\n";
  {
    char regen_buf[256];
    std::snprintf(regen_buf, sizeof(regen_buf),
                  "  \"figure_regen_wall_s\": {\"serial_s\": %.3f, "
                  "\"parallel_s\": %.3f, \"speedup\": %.2f, \"jobs\": %d, "
                  "\"host_threads\": %u},\n",
                  regen_serial_s, regen_parallel_s,
                  regen_serial_s / regen_parallel_s, regen_jobs,
                  std::thread::hardware_concurrency());
    os << regen_buf;
  }
  const double base_geo = ExtractGeomean(baseline_block);
  const double cur_geo = Geomean(cases);
  char buf[160];
  if (base_geo > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  \"improvement_pct\": %.1f,\n",
                  100.0 * (base_geo - cur_geo) / base_geo);
    os << buf;
  }
  std::snprintf(buf, sizeof(buf), "  \"repeats\": %d,\n  \"smoke\": %s\n}\n",
                repeats, smoke ? "true" : "false");
  os << buf;

  const std::string report = os.str();
  if (!JsonBalanced(report)) {
    std::fprintf(stderr, "perf_harness: generated report is not balanced\n");
    return 1;
  }
  std::ofstream out(out_path);
  out << report;
  out.close();
  std::printf("\ngeomean %.1f ns/op  sim_ratio %.2f", cur_geo,
              SimRatioGeomean(cases));
  if (base_geo > 0) {
    std::printf("  (baseline %.1f, %.1f%% better)", base_geo,
                100.0 * (base_geo - cur_geo) / base_geo);
  }
  std::printf("  -> %s\n", out_path.c_str());
  if (!smoke) {
    AppendHistory(out_path, cur_geo, SimRatioGeomean(cases), repeats,
                  as_baseline);
  }
  if (check_regression_pct >= 0) {
    if (base_geo <= 0) {
      std::fprintf(stderr,
                   "perf_harness: --check-regression with no baseline "
                   "recorded; skipping gate\n");
    } else if (cur_geo > base_geo * (1.0 + check_regression_pct / 100.0)) {
      std::fprintf(stderr,
                   "perf_harness: REGRESSION geomean %.1f ns/op exceeds "
                   "baseline %.1f by more than %.1f%%\n",
                   cur_geo, base_geo, check_regression_pct);
      return 1;
    } else {
      std::printf("regression gate ok (geomean %.1f vs baseline %.1f, "
                  "limit +%.1f%%)\n",
                  cur_geo, base_geo, check_regression_pct);
    }
  }
  if (smoke) {
    // Self-check: re-read and validate shape.
    std::ifstream in(out_path);
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string s = ss.str();
    if (!JsonBalanced(s) || s.find("\"current\"") == std::string::npos ||
        s.find("\"geomean_ns_per_op\"") == std::string::npos ||
        s.find("\"figure_regen_wall_s\"") == std::string::npos) {
      std::fprintf(stderr, "perf_harness --smoke: report failed self-check\n");
      return 1;
    }
    std::printf("smoke ok\n");
  }
  return 0;
}
