// Figure 12: effectiveness of the channel manager's bandwidth throttling.
//
// A Web server (L-app: Poisson-arriving requests, each reading a 64K HTML
// file through EasyIO) is colocated with a garbage collector (B-app: 2MB
// bulk moves through the shared B channel). GC is active during [2s,4s) and
// [6s,8s). Three policies:
//   No-Throttling  - GC runs unregulated;
//   CPU-Throttling - the GC uthread gets fewer CPU cycles (Caladan policy),
//                    which fails: submission is cheap, the DMA engine still
//                    eats the bandwidth;
//   DMA-Throttling - the channel manager caps the B channel at 2 GiB/s by
//                    suspending/resuming it per epoch (the paper's policy).
//
// Paper shape: No-/CPU-throttling spike to ~2.5x the idle latency; DMA
// throttling caps the spike ~40% lower.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/harness/testbed.h"
#include "src/sim/obs_session.h"

namespace easyio {
namespace {

enum class Policy { kNone, kCpu, kDma };

constexpr uint64_t kRun = 10_s;
constexpr uint64_t kBucket = 500_ms;
constexpr uint64_t kFileBytes = 64_KB;
constexpr int kFiles = 32;
constexpr double kArrivalRateHz = 40000;  // Poisson client requests

bool GcActive(sim::SimTime t) {
  return (t >= 2_s && t < 4_s) || (t >= 6_s && t < 8_s);
}

std::vector<double> RunPolicy(Policy policy,
                              const bench::TraceFlags* trace = nullptr) {
  harness::TestbedConfig cfg;
  cfg.fs = harness::FsKind::kEasy;
  cfg.machine_cores = 8;
  cfg.device_bytes = 1_GB;
  cfg.cm_options.b_limit_init_gbps = 2.0;  // paper: regulate GC below 2 GB/s
  cfg.cm_options.delta_gbps = 0.0;         // fixed limit for this figure
  harness::Testbed tb(cfg);
  auto& sim = tb.sim();
  std::unique_ptr<sim::TraceSession> session;
  if (trace != nullptr && trace->enabled()) {
    session = std::make_unique<sim::TraceSession>(trace->path,
                                                  trace->sample_every);
  }

  // Web content.
  std::vector<int> fds;
  sim.Spawn(0, [&] {
    std::vector<std::byte> body(kFileBytes, std::byte{'<'});
    for (int i = 0; i < kFiles; ++i) {
      int fd = *tb.fs().Create("/html" + std::to_string(i));
      EASYIO_CHECK_OK(tb.fs().Write(fd, 0, body).status());
      fds.push_back(fd);
    }
  });
  sim.Run();

  if (policy == Policy::kDma) {
    tb.channel_manager()->StartThrottling();
  }

  std::vector<uint64_t> bucket_max(kRun / kBucket, 0);
  bool stop = false;
  sim.ScheduleAt(kRun, [&] { stop = true; });

  // Web server: cores 0-3, one detached uthread per request.
  auto* web = tb.MakeScheduler(4);
  sim.Spawn(0, [&, web] {
    Rng rng(7);
    while (!stop) {
      const double gap = rng.NextExponential(1e9 / kArrivalRateHz);
      sim.SleepFor(static_cast<uint64_t>(gap) + 1);
      if (stop) {
        break;
      }
      const int fd = fds[rng.Below(fds.size())];
      web->SpawnDetached([&, fd] {
        const sim::SimTime t0 = sim.now();
        std::vector<std::byte> buf(kFileBytes);
        EASYIO_CHECK_OK(tb.fs().Read(fd, 0, buf).status());
        const uint64_t lat = sim.now() - t0;
        const size_t b = std::min<size_t>(t0 / kBucket,
                                          bucket_max.size() - 1);
        bucket_max[b] = std::max(bucket_max[b], lat);
      });
    }
  });

  // Garbage collector on core 6 (its own runtime in the real deployment).
  sim.Spawn(6, [&] {
    std::vector<std::byte> bulk(2_MB, std::byte{0xcc});
    while (!stop) {
      if (!GcActive(sim.now())) {
        sim.SleepFor(1_ms);
        continue;
      }
      tb.channel_manager()->BulkWriteAndWait(768_MB, bulk.data(),
                                             bulk.size());
      if (policy == Policy::kCpu) {
        // Caladan-style CPU quota: the GC uthread is descheduled 3/4 of the
        // time — but the DMA engine keeps moving its submitted bulk data.
        sim.SleepFor(2_us);
      }
    }
  });

  sim.RunUntil(kRun + 10_ms);
  if (session != nullptr) {
    tb.CollectStats().Print(stderr);
  }
  std::vector<double> timeline;
  for (uint64_t v : bucket_max) {
    timeline.push_back(static_cast<double>(v) / 1e3);
  }
  return timeline;
}

}  // namespace
}  // namespace easyio

int main(int argc, char** argv) {
  using namespace easyio;
  // --trace=<path> records the DMA-Throttling run: epoch ticks,
  // budget_suspend decisions and the B channel's CHANCMD suspension windows.
  const bench::TraceFlags trace =
      bench::ParseTraceFlags(argc, argv, /*default_sample=*/32);
  bench::PrintHeader(
      "Figure 12: web-server max latency per 0.5s (us) with a colocated GC\n"
      "(GC active during [2s,4s) and [6s,8s); B-app limit 2 GiB/s)");
  const auto none = RunPolicy(Policy::kNone);
  const auto cpu = RunPolicy(Policy::kCpu);
  const auto dma = RunPolicy(Policy::kDma, trace.enabled() ? &trace : nullptr);
  std::printf("%6s %15s %15s %15s\n", "t(s)", "No-Throttling",
              "CPU-Throttling", "DMA-Throttling");
  for (size_t i = 0; i < none.size(); ++i) {
    std::printf("%6.1f %15.1f %15.1f %15.1f\n",
                static_cast<double>(i) * 0.5, none[i], cpu[i], dma[i]);
  }
  auto peak_during_gc = [](const std::vector<double>& tl) {
    double peak = 0;
    for (size_t i = 0; i < tl.size(); ++i) {
      if ((i >= 4 && i < 8) || (i >= 12 && i < 16)) {
        peak = std::max(peak, tl[i]);
      }
    }
    return peak;
  };
  const double p_none = peak_during_gc(none);
  const double p_cpu = peak_during_gc(cpu);
  const double p_dma = peak_during_gc(dma);
  std::printf(
      "\nGC-window peak latency: none=%.1fus cpu=%.1fus dma=%.1fus "
      "(dma %.0f%% below others)\n",
      p_none, p_cpu, p_dma,
      100.0 * (1.0 - p_dma / std::max(p_none, p_cpu)));
  std::printf(
      "Expected shape (paper): No-/CPU-throttling spike ~2.5x idle; DMA\n"
      "throttling holds the peak ~40%% lower.\n");
  return 0;
}
