// Figure 4: interference between a latency-sensitive foreground program
// (64K DMA reads) and a background bulk mover (2MB transfers, emulating GC)
// over a 10-second timeline. Background variants: memcpy, DMA on a separate
// channel (DMA-EX), DMA sharing the foreground channel (DMA-SH). GC is
// active during seconds [2,4) and [6,8).
//
// Paper shapes: switching the background from memcpy to DMA more than
// doubles foreground latency; sharing a channel jitters worst (head-of-line
// blocking in the hardware queue).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/dma/dma_engine.h"
#include "src/obs/trace.h"
#include "src/pmem/slow_memory.h"
#include "src/sim/obs_session.h"
#include "src/sim/simulation.h"

namespace easyio {
namespace {

enum class BgMode { kMemcpy, kDmaExclusive, kDmaShared };

constexpr uint64_t kRun = 10_s;
constexpr uint64_t kBucket = 500_ms;

std::vector<double> RunTimeline(BgMode mode, const bench::TraceFlags* trace) {
  sim::Simulation sim({.num_cores = 2});
  std::unique_ptr<sim::TraceSession> session;
  if (trace != nullptr && trace->enabled()) {
    session = std::make_unique<sim::TraceSession>(trace->path,
                                                  trace->sample_every);
  }
  pmem::SlowMemory mem(&sim, pmem::MediaParams::OneNode(), 256_MB);
  dma::DmaEngine engine(&mem, 0, 2);

  std::vector<uint64_t> bucket_sum(kRun / kBucket, 0);
  std::vector<uint64_t> bucket_n(kRun / kBucket, 0);
  bool stop = false;
  sim.ScheduleAt(kRun, [&] { stop = true; });

  // Foreground: back-to-back 64K DMA reads on channel 0.
  sim.Spawn(0, [&] {
    std::vector<std::byte> buf(64_KB);
    while (!stop) {
      const sim::SimTime t0 = sim.now();
      dma::Descriptor d{dma::Descriptor::Dir::kRead, 64_MB, buf.data(),
                        64_KB, {}};
      dma::Channel& ch = engine.channel(0);
      const dma::Sn sn = ch.Submit(std::move(d));
      ch.WaitSnBusy(sn);
      const uint64_t lat = sim.now() - t0;
      // Per-op async span so the interference spike is visible as a band of
      // widening fg_read spans in Perfetto (the JSON the issue's acceptance
      // test loads).
      if (auto* t = obs::Get(); t && t->Sample()) {
        t->AsyncSpan(t->NextOpId(), "fg_read", t0, sim.now(),
                     {{"lat_ns", lat}});
      }
      const size_t bucket = std::min<size_t>(t0 / kBucket,
                                             bucket_sum.size() - 1);
      bucket_sum[bucket] += lat;
      bucket_n[bucket]++;
    }
  });

  // Background GC: 2MB bulk moves, continuously while active.
  auto gc_active = [](sim::SimTime t) {
    return (t >= 2_s && t < 4_s) || (t >= 6_s && t < 8_s);
  };
  sim.Spawn(1, [&] {
    std::vector<std::byte> bulk(2_MB, std::byte{0xbb});
    while (!stop) {
      if (!gc_active(sim.now())) {
        sim.SleepFor(1_ms);
        continue;
      }
      switch (mode) {
        case BgMode::kMemcpy:
          mem.CpuWrite(128_MB, bulk.data(), bulk.size());
          break;
        case BgMode::kDmaExclusive:
        case BgMode::kDmaShared: {
          dma::Channel& ch =
              engine.channel(mode == BgMode::kDmaShared ? 0 : 1);
          dma::Descriptor d{dma::Descriptor::Dir::kWrite, 128_MB,
                            bulk.data(), 2_MB, {}};
          const dma::Sn sn = ch.Submit(std::move(d));
          ch.WaitSn(sn);
          break;
        }
      }
    }
  });

  sim.RunUntil(kRun + 1_ms);
  std::vector<double> timeline;
  for (size_t i = 0; i < bucket_sum.size(); ++i) {
    timeline.push_back(bucket_n[i] == 0
                           ? 0.0
                           : static_cast<double>(bucket_sum[i]) /
                                 static_cast<double>(bucket_n[i]) / 1e3);
  }
  return timeline;
}

}  // namespace
}  // namespace easyio

int main(int argc, char** argv) {
  using namespace easyio;
  // --trace=<path> records the DMA-SH run (the interesting one: shared-
  // channel head-of-line blocking); default sampling keeps the file small.
  const bench::TraceFlags trace =
      bench::ParseTraceFlags(argc, argv, /*default_sample=*/16);
  bench::PrintHeader(
      "Figure 4: foreground 64K DMA-read latency vs background bulk mover\n"
      "(GC active during [2s,4s) and [6s,8s); avg latency per 0.5s, us)");
  const auto memcpy_tl = RunTimeline(BgMode::kMemcpy, nullptr);
  const auto ex_tl = RunTimeline(BgMode::kDmaExclusive, nullptr);
  const auto sh_tl =
      RunTimeline(BgMode::kDmaShared, trace.enabled() ? &trace : nullptr);
  std::printf("%6s %12s %12s %12s\n", "t(s)", "BG-Memcpy", "BG-DMA-EX",
              "BG-DMA-SH");
  for (size_t i = 0; i < memcpy_tl.size(); ++i) {
    std::printf("%6.1f %12.1f %12.1f %12.1f\n",
                static_cast<double>(i) * 0.5, memcpy_tl[i], ex_tl[i],
                sh_tl[i]);
  }
  double base = 0;
  double ex_peak = 0;
  double sh_peak = 0;
  for (size_t i = 0; i < memcpy_tl.size(); ++i) {
    const bool gc = (i >= 4 && i < 8) || (i >= 12 && i < 16);
    if (!gc) {
      base = std::max(base, memcpy_tl[i]);
    } else {
      ex_peak = std::max(ex_peak, ex_tl[i]);
      sh_peak = std::max(sh_peak, sh_tl[i]);
    }
  }
  std::printf(
      "\nidle FG latency ~%.1fus; during GC: DMA-EX peaks %.1fus, DMA-SH "
      "peaks %.1fus\n",
      base, ex_peak, sh_peak);
  std::printf(
      "Expected shape (paper): >2x latency increase when BG uses DMA, with\n"
      "the shared-channel case far worse (head-of-line blocking).\n");
  return 0;
}
