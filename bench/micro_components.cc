// Component microbenchmarks (google-benchmark): host-side costs of the
// building blocks — context switching, the simulation event loop, SN
// encoding, checksums, the allocator and page map. These measure the
// *simulator's* efficiency (real nanoseconds), complementing the virtual-
// time figure benches.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/crc32.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/dma/sn.h"
#include "src/nova/allocator.h"
#include "src/nova/layout.h"
#include "src/nova/page_map.h"
#include "src/sim/context.h"
#include "src/sim/simulation.h"

namespace easyio {
namespace {

sim::Context g_main_ctx;
sim::Context g_co_ctx;

void PingPongEntry(void*) {
  while (true) {
    SwapContext(&g_co_ctx, &g_main_ctx);
  }
}

// Raw stackful context-switch cost (one iteration = switch in + switch out).
void BM_ContextSwitch(benchmark::State& state) {
  std::vector<std::byte> stack(64 * 1024);
  MakeContext(&g_co_ctx, stack.data(), stack.size(), &PingPongEntry, nullptr);
  for (auto _ : state) {
    SwapContext(&g_main_ctx, &g_co_ctx);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_ContextSwitch);

void BM_EventScheduleFire(benchmark::State& state) {
  sim::Simulation sim({.num_cores = 1});
  uint64_t fired = 0;
  for (auto _ : state) {
    sim.ScheduleAfter(1, [&fired] { fired++; });
    sim.RunFor(2);
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventScheduleFire);

void BM_SnPackUnpack(benchmark::State& state) {
  uint64_t acc = 0;
  uint64_t i = 0;
  for (auto _ : state) {
    const dma::Sn sn = dma::Sn::Make(static_cast<uint8_t>(i & 0xf), i, i % 64);
    acc += dma::Sn::Unpack(sn.Pack()).seq;
    i++;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SnPackUnpack);

void BM_Crc32c(benchmark::State& state) {
  std::vector<uint8_t> buf(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (auto _ : state) {
    h.Record(rng.Below(1000000));
  }
  benchmark::DoNotOptimize(h.P99());
}
BENCHMARK(BM_HistogramRecord);

void BM_AllocatorAllocFree(benchmark::State& state) {
  nova::BlockAllocator alloc(1_MB, 1 << 18, 16);
  for (auto _ : state) {
    auto e = alloc.Alloc(16, 3);
    alloc.Free(*e);
  }
}
BENCHMARK(BM_AllocatorAllocFree);

void BM_PageMapInsertLookup(benchmark::State& state) {
  nova::PageMap map;
  Rng rng(2);
  uint64_t pg = 0;
  for (auto _ : state) {
    map.Insert(pg % 4096, 16, 1_MB + pg * nova::kBlockSize, 0);
    benchmark::DoNotOptimize(map.Lookup(pg % 4096, 16));
    pg += 16;
  }
}
BENCHMARK(BM_PageMapInsertLookup);

void BM_RngNext(benchmark::State& state) {
  Rng rng(3);
  uint64_t acc = 0;
  for (auto _ : state) {
    acc += rng.Next();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngNext);

}  // namespace
}  // namespace easyio

BENCHMARK_MAIN();
