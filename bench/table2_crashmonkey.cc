// Table 2: crash-consistency test results with the CrashMonkey-style
// harness — four workloads, up to 1000 crash points each, run against
// EasyIO with orderless writes and SN-based recovery.
//
// Paper result: all tests pass (EasyIO restores a consistent state by
// discarding committed block mappings whose DMA never finished).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/crashmonkey/crash_test.h"

int main() {
  using namespace easyio;
  bench::PrintHeader("Table 2: crash consistency with CrashMonkey");
  std::printf("%-15s %-38s %12s %8s\n", "workload", "description",
              "crash points", "passed");
  bool all_ok = true;
  for (const auto& w : crashmonkey::StandardWorkloads(42)) {
    const auto result = crashmonkey::RunCrashTest(w, /*max_points=*/1000);
    std::printf("%-15s %-38s %12d %8d\n", w.name.c_str(),
                w.description.c_str(), result.total_points, result.passed);
    for (const auto& f : result.failures) {
      std::printf("    FAILURE: %s\n", f.c_str());
    }
    all_ok &= result.passed == result.total_points;
  }
  std::printf("\n%s (paper: 1000/1000 for each workload)\n",
              all_ok ? "All crash points recovered consistently."
                     : "CRASH-CONSISTENCY FAILURES DETECTED.");
  return all_ok ? 0 : 1;
}
