// Figure 9: throughput vs average/P99 latency as worker cores grow, for
// FxMark DWAL (private-file writes) and DRBL (private-file reads) at 16K and
// 64K, across the four filesystems — plus the embedded "cores at peak"
// tables.
//
// Paper shapes: EasyIO peaks write throughput with ~6 cores (16K) / ~2 cores
// (64K) vs NOVA's 16 (63%/88% core savings); EasyIO peak write throughput
// slightly above NOVA's and stable at high core counts while NOVA and
// NOVA-DMA collapse; EasyIO read latency is *higher* than NOVA's under load;
// OdinFS is capped at 12 worker cores.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/fxmark/fxmark.h"
#include "src/harness/scenario_runner.h"

namespace easyio {
namespace {

using fxmark::RunConfig;
using fxmark::Workload;

const std::vector<int> kCores{1, 2, 4, 6, 8, 12, 16, 20, 24};

// Set from --faults=<seed> in main before any scenario job runs; 0 = off.
uint64_t g_fault_seed = 0;

// Every (fs, core-count) sweep point is an independent simulation; the
// panel's four sweeps fan out together across the scenario runner (the
// per-sweep results stay in core_counts order, so the table is byte-
// identical for any jobs value).
void RunPanel(Workload workload, uint64_t io_size, int jobs) {
  std::printf("\n-- %s throughput vs latency, %s I/O --\n",
              fxmark::WorkloadName(workload), bench::SizeName(io_size).c_str());
  std::printf("%-9s %5s %10s %10s %10s %10s\n", "fs", "cores", "Kops/s",
              "avg_us", "p99_us", "GiB/s");

  struct PeakRow {
    harness::FsKind fs;
    int cores_at_peak;
    double peak_kops;
  };
  std::vector<PeakRow> peaks;

  const std::vector<harness::FsKind> kinds{
      harness::FsKind::kNova, harness::FsKind::kNovaDma,
      harness::FsKind::kOdin, harness::FsKind::kEasy};
  // Flatten the panel into one (fs, core-count) job list so a single runner
  // keeps all host threads fed even when one filesystem's sweep is short.
  struct SweepCase {
    harness::FsKind fs;
    int cores;
  };
  std::vector<SweepCase> grid;
  for (harness::FsKind kind : kinds) {
    for (int c : kCores) {
      if (kind == harness::FsKind::kOdin && c > 12) {
        // 12-per-node reservation leaves at most 12 worker cores (§6.1).
        continue;
      }
      grid.push_back({kind, c});
    }
  }
  const std::vector<fxmark::CoreSweepPoint> points =
      harness::RunIndexed(jobs, grid.size(), [&](size_t i) {
        RunConfig cfg;
        cfg.fs = grid[i].fs;
        cfg.workload = workload;
        cfg.io_size = io_size;
        cfg.uthreads_per_core = 2;  // §6.2: uthreads = 2x cores for EasyIO
        cfg.cores = grid[i].cores;
        if (g_fault_seed != 0) {
          cfg.faults = bench::MakeBenchFaultPlan(
              g_fault_seed,
              static_cast<int>(nova::NovaFs::Options{}.comp_channels));
        }
        return fxmark::CoreSweepPoint{grid[i].cores, fxmark::Run(cfg)};
      });
  size_t next_point = 0;
  for (size_t k = 0; k < kinds.size(); ++k) {
    const harness::FsKind kind = kinds[k];
    std::vector<fxmark::CoreSweepPoint> sweep;
    while (next_point < points.size() &&
           grid[next_point].fs == kind) {
      sweep.push_back(points[next_point++]);
    }
    for (const auto& point : sweep) {
      std::printf("%-9s %5d %10.1f %10.2f %10.2f %10.2f\n",
                  harness::FsKindName(kind), point.cores,
                  point.result.mops * 1e3, point.result.avg_latency_ns / 1e3,
                  point.result.p99_ns / 1e3, point.result.gib_per_sec);
    }
    double peak = 0;
    for (const auto& point : sweep) {
      peak = std::max(peak, point.result.mops * 1e3);
    }
    peaks.push_back({kind, fxmark::CoresAtPeak(sweep, 0.95), peak});
  }

  std::printf("cores-at-peak(95%%):");
  for (const auto& row : peaks) {
    std::printf("  %s=%d(%.0fK)", harness::FsKindName(row.fs),
                row.cores_at_peak, row.peak_kops);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace easyio

int main(int argc, char** argv) {
  using namespace easyio;
  const int jobs = harness::ScenarioRunner::JobsFromArgs(argc, argv);
  // --faults=<seed> injects a seeded DMA fault plan into every sweep
  // point's testbed; seed 0 (the default) is byte-identical to no flag.
  g_fault_seed = bench::ParseFaultFlags(argc, argv).seed;
  bench::PrintHeader(
      "Figure 9: throughput vs latency, core sweep (FxMark DWAL/DRBL)");
  RunPanel(fxmark::Workload::kDWAL, 16_KB, jobs);
  RunPanel(fxmark::Workload::kDWAL, 64_KB, jobs);
  RunPanel(fxmark::Workload::kDRBL, 16_KB, jobs);
  RunPanel(fxmark::Workload::kDRBL, 64_KB, jobs);
  std::printf(
      "\nExpected shape (paper): writes — EasyIO peaks with few cores (6 at\n"
      "16K, 2 at 64K) vs NOVA's 16; NOVA/NOVA-DMA throughput collapses at\n"
      "high core counts, EasyIO's only dips slightly. reads — EasyIO reaches\n"
      "the highest peak but with higher latency; NOVA-DMA peaks early at\n"
      "less than half of EasyIO's read throughput.\n");
  return 0;
}
