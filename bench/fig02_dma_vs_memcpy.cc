// Figure 2: raw bandwidth of CPU memcpy vs the on-chip DMA engine when
// copying between DRAM and the slow memory, sweeping core count, I/O size
// and batch size. One DMA channel; one NUMA node with 3 DCPMMs (§2.2).
//
// Paper shapes:
//   1. one DMA channel saturates device write bandwidth with a single core,
//      memcpy needs several;
//   2. DMA read peak is far below memcpy's (~63% lower);
//   3. DMA loses to memcpy at 4K even with batching;
//   4. memcpy write bandwidth *declines* as cores are added.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/dma/dma_engine.h"
#include "src/pmem/slow_memory.h"
#include "src/sim/simulation.h"

namespace easyio {
namespace {

constexpr uint64_t kDuration = 30_ms;
constexpr uint64_t kRegionPerWorker = 4_MB;

double RunMemcpy(bool is_write, uint64_t io_size, int cores) {
  sim::Simulation sim({.num_cores = cores});
  pmem::SlowMemory mem(&sim, pmem::MediaParams::OneNode(),
                       64_MB + kRegionPerWorker * static_cast<uint64_t>(cores));
  uint64_t bytes_done = 0;
  bool stop = false;
  sim.ScheduleAt(kDuration, [&] { stop = true; });
  for (int c = 0; c < cores; ++c) {
    sim.Spawn(c, [&, c] {
      std::vector<std::byte> buf(io_size, std::byte{0x77});
      const uint64_t base = 64_MB + kRegionPerWorker * static_cast<uint64_t>(c);
      uint64_t off = 0;
      while (!stop) {
        if (is_write) {
          mem.CpuWrite(base + off, buf.data(), io_size);
        } else {
          mem.CpuRead(buf.data(), base + off, io_size);
        }
        bytes_done += io_size;
        off = (off + io_size) % kRegionPerWorker;
      }
    });
  }
  sim.RunUntil(kDuration + 1_s);
  return GibPerSec(bytes_done, kDuration);
}

double RunDma(bool is_write, uint64_t io_size, int cores, int batch) {
  sim::Simulation sim({.num_cores = cores});
  pmem::SlowMemory mem(&sim, pmem::MediaParams::OneNode(),
                       64_MB + kRegionPerWorker * static_cast<uint64_t>(cores));
  dma::DmaEngine engine(&mem, 0, /*num_channels=*/1);  // one channel (Fig 2)
  uint64_t bytes_done = 0;
  bool stop = false;
  sim.ScheduleAt(kDuration, [&] { stop = true; });
  for (int c = 0; c < cores; ++c) {
    sim.Spawn(c, [&, c] {
      std::vector<std::byte> buf(io_size * static_cast<size_t>(batch),
                                 std::byte{0x77});
      const uint64_t base = 64_MB + kRegionPerWorker * static_cast<uint64_t>(c);
      uint64_t off = 0;
      while (!stop) {
        std::vector<dma::Descriptor> descs;
        for (int b = 0; b < batch; ++b) {
          dma::Descriptor d;
          d.dir = is_write ? dma::Descriptor::Dir::kWrite
                           : dma::Descriptor::Dir::kRead;
          d.pmem_off = base + off;
          d.dram = buf.data() + static_cast<size_t>(b) * io_size;
          d.size = static_cast<uint32_t>(io_size);
          descs.push_back(std::move(d));
          off = (off + io_size) % kRegionPerWorker;
        }
        auto sns = engine.channel(0).SubmitBatch(std::move(descs));
        engine.channel(0).WaitSnBusy(sns.back());
        bytes_done += io_size * static_cast<uint64_t>(batch);
      }
    });
  }
  sim.RunUntil(kDuration + 1_s);
  return GibPerSec(bytes_done, kDuration);
}

void RunDirection(bool is_write) {
  std::printf("\n-- %s bandwidth (GiB/s), one NUMA node --\n",
              is_write ? "Write" : "Read");
  std::printf("%-14s", "series\\cores");
  const std::vector<int> core_counts{1, 2, 4, 8, 16};
  for (int c : core_counts) {
    std::printf("%8d", c);
  }
  std::printf("\n");

  std::printf("%-14s", "memcpy-4K");
  for (int c : core_counts) {
    std::printf("%8.2f", RunMemcpy(is_write, 4_KB, c));
  }
  std::printf("\n");
  std::printf("%-14s", "memcpy-64K");
  for (int c : core_counts) {
    std::printf("%8.2f", RunMemcpy(is_write, 64_KB, c));
  }
  std::printf("\n");

  for (uint64_t io : {4_KB, 16_KB, 64_KB}) {
    for (int batch : {1, 4}) {
      char name[32];
      std::snprintf(name, sizeof(name), "DMA-%s-%s", bench::SizeName(io).c_str(),
                    batch == 1 ? "NB" : "B");
      std::printf("%-14s", name);
      for (int c : core_counts) {
        std::printf("%8.2f", RunDma(is_write, io, c, batch));
      }
      std::printf("\n");
    }
  }
}

}  // namespace
}  // namespace easyio

int main() {
  using namespace easyio;
  bench::PrintHeader(
      "Figure 2: memcpy vs on-chip DMA bandwidth (1 DMA channel)");
  RunDirection(/*is_write=*/true);
  RunDirection(/*is_write=*/false);
  std::printf(
      "\nExpected shape (paper): DMA saturates write BW with 1 core; memcpy\n"
      "write declines beyond ~4 cores; DMA read peak ~37%% of memcpy's;\n"
      "DMA loses at 4K even batched.\n");
  return 0;
}
