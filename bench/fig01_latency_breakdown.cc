// Figure 1: latency breakdown of NOVA — metadata, memcpy, indexing,
// syscall & VFS — for single-threaded writes and reads of 4K..64K.
//
// Paper shape: the memcpy share grows with I/O size, reaching ~63% for
// writes and ~95% for reads at 64K.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/harness/testbed.h"
#include "src/sim/obs_session.h"

namespace easyio {
namespace {

struct Breakdown {
  double total_us = 0;
  double meta_us = 0;
  double memcpy_us = 0;
  double index_us = 0;
  double syscall_us = 0;
};

Breakdown Measure(bool is_write, uint64_t io_size,
                  const bench::TraceFlags* trace) {
  harness::TestbedConfig cfg;
  cfg.fs = harness::FsKind::kNova;
  cfg.machine_cores = 2;
  cfg.device_bytes = 256_MB;
  harness::Testbed tb(cfg);
  std::unique_ptr<sim::TraceSession> session;
  if (trace != nullptr && trace->enabled()) {
    session = std::make_unique<sim::TraceSession>(trace->path,
                                                  trace->sample_every);
  }

  Breakdown out;
  constexpr int kOps = 200;
  tb.sim().Spawn(0, [&] {
    Rng rng(1);
    int fd = *tb.fs().Create("/f");
    std::vector<std::byte> buf(io_size, std::byte{0x33});
    const uint64_t file_bytes = 4_MB;
    // Preallocate.
    for (uint64_t off = 0; off < file_bytes; off += io_size) {
      EASYIO_CHECK_OK(tb.fs().Write(fd, off, buf).status());
    }
    const uint64_t blocks = file_bytes / io_size;
    for (int i = 0; i < kOps; ++i) {
      const uint64_t off = rng.Below(blocks) * io_size;
      fs::OpStats st;
      if (is_write) {
        EASYIO_CHECK_OK(tb.fs().Write(fd, off, buf, &st).status());
      } else {
        EASYIO_CHECK_OK(tb.fs().Read(fd, off, buf, &st).status());
      }
      out.total_us += st.total_ns / 1e3;
      out.meta_us += st.meta_ns / 1e3;
      out.memcpy_us += st.data_ns / 1e3;
      out.index_us += st.index_ns / 1e3;
      out.syscall_us += st.syscall_ns / 1e3;
    }
  });
  tb.sim().Run();
  if (session != nullptr) {
    tb.CollectStats().Print(stderr);
  }
  out.total_us /= kOps;
  out.meta_us /= kOps;
  out.memcpy_us /= kOps;
  out.index_us /= kOps;
  out.syscall_us /= kOps;
  return out;
}

}  // namespace
}  // namespace easyio

int main(int argc, char** argv) {
  using namespace easyio;
  // --trace=<path> records the 64K-write run (the paper's headline
  // breakdown); small op count, so every op is sampled by default.
  const bench::TraceFlags trace =
      bench::ParseTraceFlags(argc, argv, /*default_sample=*/1);
  bench::PrintHeader(
      "Figure 1: Latency breakdown of NOVA (single thread, us per op)");
  std::printf("%-6s %-5s %9s %9s %9s %9s %9s %8s\n", "op", "io", "total",
              "metadata", "memcpy", "indexing", "syscall", "memcpy%");
  for (bool is_write : {true, false}) {
    for (uint64_t io : {4_KB, 8_KB, 16_KB, 32_KB, 64_KB}) {
      const bool traced = is_write && io == 64_KB && trace.enabled();
      const auto b = Measure(is_write, io, traced ? &trace : nullptr);
      std::printf("%-6s %-5s %9.2f %9.2f %9.2f %9.2f %9.2f %7.1f%%\n",
                  is_write ? "write" : "read", bench::SizeName(io).c_str(), b.total_us,
                  b.meta_us, b.memcpy_us, b.index_us, b.syscall_us,
                  100.0 * b.memcpy_us / b.total_us);
    }
  }
  std::printf(
      "\nExpected shape (paper): memcpy share grows with I/O size, to ~63%%\n"
      "for 64K writes and ~95%% for 64K reads.\n");
  return 0;
}
