// A small append-only key-value store built on EasyIO's public API,
// showing how an application's own pipeline (hashing + serialization)
// interleaves with asynchronous log appends: while a uthread's append is in
// flight on the DMA engine, the other uthreads keep serializing and
// hashing — the CPU the paper's synchronous filesystems would have burned on
// memcpy.
//
// Run: ./build/examples/log_structured_kv

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/harness/testbed.h"

using namespace easyio;

namespace {

// On-log record: u32 crc | u32 klen | u32 vlen | key | value.
std::vector<std::byte> Serialize(const std::string& key,
                                 const std::string& value) {
  std::vector<std::byte> rec(12 + key.size() + value.size());
  const uint32_t klen = static_cast<uint32_t>(key.size());
  const uint32_t vlen = static_cast<uint32_t>(value.size());
  std::memcpy(rec.data() + 4, &klen, 4);
  std::memcpy(rec.data() + 8, &vlen, 4);
  std::memcpy(rec.data() + 12, key.data(), key.size());
  std::memcpy(rec.data() + 12 + key.size(), value.data(), value.size());
  const uint32_t crc = Crc32c(rec.data() + 4, rec.size() - 4);
  std::memcpy(rec.data(), &crc, 4);
  return rec;
}

class KvStore {
 public:
  explicit KvStore(harness::Testbed* tb)
      : tb_(tb), mu_(&tb->sim()) {
    fd_ = *tb_->fs().Create("/kv_log");
  }

  void Put(const std::string& key, const std::string& value) {
    const auto rec = Serialize(key, value);
    // Reserve the log offset and append under the store mutex so concurrent
    // producers index the right record. The append itself is asynchronous
    // under the hood: metadata commits in parallel with the DMA and this
    // uthread parks until the record is durable — other producers keep
    // serializing meanwhile.
    uthread::MutexLock lock(&mu_);
    const auto off = tb_->fs().StatFd(fd_)->size;
    EASYIO_CHECK_OK(tb_->fs().Append(fd_, rec).status());
    index_[key] = {off, rec.size()};
  }

  StatusOr<std::string> Get(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return NotFound(key);
    }
    std::vector<std::byte> rec(it->second.second);
    EASYIO_CHECK_OK(tb_->fs().Read(fd_, it->second.first, rec).status());
    uint32_t crc;
    uint32_t klen;
    uint32_t vlen;
    std::memcpy(&crc, rec.data(), 4);
    std::memcpy(&klen, rec.data() + 4, 4);
    std::memcpy(&vlen, rec.data() + 8, 4);
    if (crc != Crc32c(rec.data() + 4, rec.size() - 4)) {
      return IoError("record checksum mismatch");
    }
    return std::string(reinterpret_cast<const char*>(rec.data()) + 12 + klen,
                       vlen);
  }

 private:
  harness::Testbed* tb_;
  uthread::Mutex mu_;
  int fd_;
  std::map<std::string, std::pair<uint64_t, size_t>> index_;
};

}  // namespace

int main() {
  harness::TestbedConfig config;
  config.fs = harness::FsKind::kEasy;
  harness::Testbed tb(config);
  auto* sched = tb.MakeScheduler(2);

  tb.sim().Spawn(0, [&] {
    KvStore kv(&tb);
    Rng rng(99);
    const int kEntries = 200;
    const sim::SimTime t0 = tb.sim().now();

    // 4 producer uthreads share the store (appends serialize on the file
    // lock; the two-level lock releases it at metadata commit).
    sched->RunWorkers(4, [&](int id) {
      for (int i = id; i < kEntries; i += 4) {
        std::string value(8000 + (i % 7) * 4096, 'a' + (i % 26));
        kv.Put("key" + std::to_string(i), value);
      }
    });
    const double put_us =
        static_cast<double>(tb.sim().now() - t0) / kEntries / 1e3;

    // Verify a sample.
    int verified = 0;
    for (int i = 0; i < kEntries; i += 17) {
      auto v = kv.Get("key" + std::to_string(i));
      EASYIO_CHECK_OK(v.status());
      if ((*v)[0] == static_cast<char>('a' + (i % 26))) {
        verified++;
      }
    }
    std::printf("stored %d records (avg %.1fus per durable PUT), verified "
                "%d reads, log size %llu bytes\n",
                kEntries, put_us, verified,
                static_cast<unsigned long long>(
                    tb.fs().StatPath("/kv_log")->size));
  });
  tb.sim().Run();
  return 0;
}
