// Crash recovery walkthrough: demonstrates the completion-buffer-centric
// orderless write (§4.2) end to end.
//
// We overwrite a file and pull the (virtual) power cable while the DMA is
// still copying — *after* the metadata (carrying the descriptor's SN) has
// committed. Mounting the crash image shows recovery comparing the log
// entry's SN against the channel's persistent completion record and
// discarding the half-done overwrite: the file reads back fully old, never
// torn.
//
// Run: ./build/examples/crash_recovery

#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/dma/dma_engine.h"
#include "src/easyio/channel_manager.h"
#include "src/easyio/easy_io_fs.h"
#include "src/pmem/slow_memory.h"

using namespace easyio;

namespace {

std::vector<std::byte> Fill(size_t n, uint8_t v) {
  return std::vector<std::byte>(n, std::byte{v});
}

}  // namespace

int main() {
  constexpr size_t kDevice = 256_MB;
  constexpr size_t kFile = 1_MB;

  // ---- life before the crash ----
  sim::Simulation sim({.num_cores = 2});
  pmem::SlowMemory mem(&sim, pmem::MediaParams::TwoNode(), kDevice);
  mem.EnableCrashTracking();

  core::EasyIoFs fs(&mem, {}, {});
  EASYIO_CHECK_OK(fs.Format());
  dma::DmaEngine engine(&mem, fs.layout().comp_region_off, 16);
  core::ChannelManager cm(&sim, &engine, {});
  fs.AttachChannelManager(&cm);

  bool overwrite_returned = false;
  sim.Spawn(0, [&] {
    int fd = *fs.Create("/important");
    EASYIO_CHECK_OK(fs.Write(fd, 0, Fill(kFile, 0xAA)).status());
    EASYIO_CHECK_OK(fs.Fsync(fd));
    std::printf("t=%7.1fus  original data (0xAA) durable\n",
                sim.now() / 1e3);
    EASYIO_CHECK_OK(fs.Write(fd, 0, Fill(kFile, 0xBB)).status());
    overwrite_returned = true;  // we will crash before this line runs
  });

  // The 1MB overwrite's DMA takes ~150us; its metadata commits within a few
  // tens of us. Crash squarely in between.
  sim.RunUntil(260_us);
  std::printf("t=%7.1fus  CRASH! overwrite returned: %s (metadata committed, "
              "DMA in flight)\n",
              sim.now() / 1e3, overwrite_returned ? "yes" : "no");
  const auto image = mem.CrashImage();

  // ---- life after the crash ----
  sim::Simulation sim2({.num_cores = 2});
  pmem::SlowMemory mem2(&sim2, pmem::MediaParams::TwoNode(), kDevice);
  mem2.LoadImage(image);
  core::EasyIoFs fs2(&mem2, {}, {});
  EASYIO_CHECK_OK(fs2.Mount());
  std::printf("remount: recovery discarded %llu committed-but-incomplete "
              "write entr%s (SN > completion record)\n",
              static_cast<unsigned long long>(
                  fs2.recovery_discarded_entries()),
              fs2.recovery_discarded_entries() == 1 ? "y" : "ies");

  sim2.Spawn(0, [&] {
    int fd = *fs2.Open("/important");
    std::vector<std::byte> back(kFile);
    EASYIO_CHECK_OK(fs2.Read(fd, 0, back).status());
    size_t old_bytes = 0;
    size_t new_bytes = 0;
    for (std::byte b : back) {
      old_bytes += b == std::byte{0xAA};
      new_bytes += b == std::byte{0xBB};
    }
    std::printf("file contents: %zu bytes old (0xAA), %zu bytes new (0xBB) "
                "-> %s\n",
                old_bytes, new_bytes,
                old_bytes == kFile ? "atomically rolled back, no tearing"
                                   : "TORN WRITE (bug!)");
  });
  sim2.Run();
  return 0;
}
