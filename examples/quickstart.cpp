// Quickstart: bring up the simulated slow-memory machine, mount EasyIO, and
// issue asynchronous reads and writes from uthreads.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/harness/testbed.h"

using namespace easyio;

int main() {
  // A 36-core machine with 6 simulated Optane DCPMMs (the paper's testbed),
  // EasyIO mounted on a 1 GiB device.
  harness::TestbedConfig config;
  config.fs = harness::FsKind::kEasy;
  harness::Testbed tb(config);

  // A Caladan-style runtime over 2 cores; 4 uthreads share them.
  auto* sched = tb.MakeScheduler(/*cores=*/2);

  tb.sim().Spawn(0, [&] {
    sched->RunWorkers(4, [&](int id) {
      auto& fs = tb.fs();
      const std::string path = "/hello_" + std::to_string(id);
      int fd = *fs.Create(path);

      // A 64KB write: EasyIO offloads the copy to a DMA channel, commits
      // the metadata in parallel (orderless), and parks this uthread — the
      // core runs the other workers meanwhile.
      std::vector<std::byte> data(64_KB, std::byte{static_cast<uint8_t>(id)});
      fs::OpStats st;
      EASYIO_CHECK_OK(fs.Write(fd, 0, data, &st).status());
      std::printf(
          "[uthread %d] wrote 64KB: total %5.1fus, CPU-busy %5.1fus "
          "(%4.1f%% harvested while the DMA ran)\n",
          id, st.total_ns / 1e3, st.cpu_ns / 1e3,
          100.0 * st.blocked_ns / st.total_ns);

      // Read it back (also DMA-offloaded when a channel is free).
      std::vector<std::byte> back(64_KB);
      EASYIO_CHECK_OK(fs.Read(fd, 0, back, &st).status());
      if (back != data) {
        std::printf("[uthread %d] data mismatch!\n", id);
        return;
      }
      std::printf("[uthread %d] read back OK: total %5.1fus, CPU %5.1fus\n",
                  id, st.total_ns / 1e3, st.cpu_ns / 1e3);
      EASYIO_CHECK_OK(fs.Close(fd));
    });
    std::printf(
        "\nAll 4 uthreads finished at t=%.1fus on 2 cores — their I/Os "
        "overlapped.\n",
        tb.sim().now() / 1e3);
    std::printf("writes offloaded to DMA: %llu, reads offloaded: %llu\n",
                static_cast<unsigned long long>(tb.easy()->writes_offloaded()),
                static_cast<unsigned long long>(tb.easy()->reads_offloaded()));
  });
  tb.sim().Run();
  return 0;
}
