// QoS colocation: a latency-critical web server shares the machine with a
// bandwidth-hungry bulk mover (think GC or backup). The channel manager
// separates their DMA channels and throttles the bulk channel whenever the
// web server misses its SLO (Listing 1 of the paper).
//
// Run: ./build/examples/qos_colocation

#include <cstdio>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/harness/testbed.h"

using namespace easyio;

namespace {

constexpr uint64_t kPageBytes = 64_KB;
constexpr uint64_t kRunNs = 1_s;

Histogram ServeWithBulk(bool throttle) {
  harness::TestbedConfig config;
  config.fs = harness::FsKind::kEasy;
  config.machine_cores = 8;
  config.cm_options.b_limit_init_gbps = 3.0;
  harness::Testbed tb(config);
  auto& sim = tb.sim();

  // Content.
  std::vector<int> fds;
  sim.Spawn(0, [&] {
    std::vector<std::byte> body(kPageBytes, std::byte{'#'});
    for (int i = 0; i < 16; ++i) {
      int fd = *tb.fs().Create("/site" + std::to_string(i));
      EASYIO_CHECK_OK(tb.fs().Write(fd, 0, body).status());
      fds.push_back(fd);
    }
  });
  sim.Run();

  auto* cm = tb.channel_manager();
  auto* lapp = cm->RegisterLApp(/*target=*/18_us);
  if (throttle) {
    cm->StartThrottling();
  }

  Histogram latency;
  bool stop = false;
  sim.ScheduleAt(kRunNs, [&] { stop = true; });

  // Web server: Poisson arrivals, one detached uthread per request.
  auto* web = tb.MakeScheduler(4);
  sim.Spawn(0, [&] {
    Rng rng(11);
    while (!stop) {
      sim.SleepFor(static_cast<uint64_t>(rng.NextExponential(40_us)) + 1);
      if (stop) {
        break;
      }
      const int fd = fds[rng.Below(fds.size())];
      web->SpawnDetached([&, fd] {
        const sim::SimTime t0 = sim.now();
        std::vector<std::byte> buf(kPageBytes);
        EASYIO_CHECK_OK(tb.fs().Read(fd, 0, buf).status());
        const uint64_t lat = sim.now() - t0;
        latency.Record(lat);
        lapp->ReportLatency(lat);
      });
    }
  });

  // Bulk mover: continuous 2MB transfers through the shared B channel.
  sim.Spawn(6, [&] {
    std::vector<std::byte> bulk(2_MB, std::byte{0xEE});
    while (!stop) {
      cm->BulkWriteAndWait(512_MB, bulk.data(), bulk.size());
    }
  });

  sim.RunUntil(kRunNs + 1_ms);
  if (throttle) {
    std::printf("(QoS settled the bulk limit at %.2f GiB/s)\n",
                cm->b_limit_gbps());
  }
  return latency;
}

}  // namespace

int main() {
  std::printf("Web server (64KB pages, 25K req/s) colocated with a bulk "
              "mover...\n\n");
  const Histogram off = ServeWithBulk(/*throttle=*/false);
  const Histogram on = ServeWithBulk(/*throttle=*/true);
  std::printf("%-22s %s\n", "no throttling:", off.Summary().c_str());
  std::printf("%-22s %s\n", "channel-manager QoS:", on.Summary().c_str());
  std::printf("\nThe QoS loop suspends the bulk channel (CHANCMD) whenever "
              "the server's\nSLO headroom vanishes, trading bulk bandwidth "
              "for tail latency.\n");
  return 0;
}
