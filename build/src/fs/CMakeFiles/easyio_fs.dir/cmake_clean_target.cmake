file(REMOVE_RECURSE
  "libeasyio_fs.a"
)
