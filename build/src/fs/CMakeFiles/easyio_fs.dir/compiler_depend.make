# Empty compiler generated dependencies file for easyio_fs.
# This may be replaced when dependencies are built.
