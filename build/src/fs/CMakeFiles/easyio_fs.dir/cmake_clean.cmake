file(REMOVE_RECURSE
  "CMakeFiles/easyio_fs.dir/file_system.cc.o"
  "CMakeFiles/easyio_fs.dir/file_system.cc.o.d"
  "libeasyio_fs.a"
  "libeasyio_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easyio_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
