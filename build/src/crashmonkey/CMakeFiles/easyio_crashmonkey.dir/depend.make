# Empty dependencies file for easyio_crashmonkey.
# This may be replaced when dependencies are built.
