file(REMOVE_RECURSE
  "libeasyio_crashmonkey.a"
)
