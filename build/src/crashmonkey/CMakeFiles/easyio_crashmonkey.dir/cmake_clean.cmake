file(REMOVE_RECURSE
  "CMakeFiles/easyio_crashmonkey.dir/crash_test.cc.o"
  "CMakeFiles/easyio_crashmonkey.dir/crash_test.cc.o.d"
  "libeasyio_crashmonkey.a"
  "libeasyio_crashmonkey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easyio_crashmonkey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
