file(REMOVE_RECURSE
  "CMakeFiles/easyio_nova.dir/allocator.cc.o"
  "CMakeFiles/easyio_nova.dir/allocator.cc.o.d"
  "CMakeFiles/easyio_nova.dir/journal.cc.o"
  "CMakeFiles/easyio_nova.dir/journal.cc.o.d"
  "CMakeFiles/easyio_nova.dir/nova_fs.cc.o"
  "CMakeFiles/easyio_nova.dir/nova_fs.cc.o.d"
  "CMakeFiles/easyio_nova.dir/page_map.cc.o"
  "CMakeFiles/easyio_nova.dir/page_map.cc.o.d"
  "libeasyio_nova.a"
  "libeasyio_nova.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easyio_nova.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
