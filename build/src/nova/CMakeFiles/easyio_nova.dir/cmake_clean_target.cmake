file(REMOVE_RECURSE
  "libeasyio_nova.a"
)
