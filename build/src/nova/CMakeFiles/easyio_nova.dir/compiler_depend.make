# Empty compiler generated dependencies file for easyio_nova.
# This may be replaced when dependencies are built.
