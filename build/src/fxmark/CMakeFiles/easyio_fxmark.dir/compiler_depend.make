# Empty compiler generated dependencies file for easyio_fxmark.
# This may be replaced when dependencies are built.
