file(REMOVE_RECURSE
  "libeasyio_fxmark.a"
)
