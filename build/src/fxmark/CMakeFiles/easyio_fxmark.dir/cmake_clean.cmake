file(REMOVE_RECURSE
  "CMakeFiles/easyio_fxmark.dir/fxmark.cc.o"
  "CMakeFiles/easyio_fxmark.dir/fxmark.cc.o.d"
  "libeasyio_fxmark.a"
  "libeasyio_fxmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easyio_fxmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
