file(REMOVE_RECURSE
  "libeasyio_apps.a"
)
