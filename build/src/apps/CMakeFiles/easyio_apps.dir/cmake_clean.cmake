file(REMOVE_RECURSE
  "CMakeFiles/easyio_apps.dir/aes.cc.o"
  "CMakeFiles/easyio_apps.dir/aes.cc.o.d"
  "CMakeFiles/easyio_apps.dir/apps.cc.o"
  "CMakeFiles/easyio_apps.dir/apps.cc.o.d"
  "CMakeFiles/easyio_apps.dir/graph.cc.o"
  "CMakeFiles/easyio_apps.dir/graph.cc.o.d"
  "CMakeFiles/easyio_apps.dir/grep.cc.o"
  "CMakeFiles/easyio_apps.dir/grep.cc.o.d"
  "CMakeFiles/easyio_apps.dir/idct.cc.o"
  "CMakeFiles/easyio_apps.dir/idct.cc.o.d"
  "CMakeFiles/easyio_apps.dir/kdtree.cc.o"
  "CMakeFiles/easyio_apps.dir/kdtree.cc.o.d"
  "CMakeFiles/easyio_apps.dir/lz.cc.o"
  "CMakeFiles/easyio_apps.dir/lz.cc.o.d"
  "libeasyio_apps.a"
  "libeasyio_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easyio_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
