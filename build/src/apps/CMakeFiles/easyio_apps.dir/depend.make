# Empty dependencies file for easyio_apps.
# This may be replaced when dependencies are built.
