file(REMOVE_RECURSE
  "libeasyio_baselines.a"
)
