file(REMOVE_RECURSE
  "CMakeFiles/easyio_baselines.dir/delegation.cc.o"
  "CMakeFiles/easyio_baselines.dir/delegation.cc.o.d"
  "CMakeFiles/easyio_baselines.dir/nova_dma_fs.cc.o"
  "CMakeFiles/easyio_baselines.dir/nova_dma_fs.cc.o.d"
  "libeasyio_baselines.a"
  "libeasyio_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easyio_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
