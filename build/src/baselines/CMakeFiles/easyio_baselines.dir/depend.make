# Empty dependencies file for easyio_baselines.
# This may be replaced when dependencies are built.
