file(REMOVE_RECURSE
  "CMakeFiles/easyio_common.dir/crc32.cc.o"
  "CMakeFiles/easyio_common.dir/crc32.cc.o.d"
  "CMakeFiles/easyio_common.dir/histogram.cc.o"
  "CMakeFiles/easyio_common.dir/histogram.cc.o.d"
  "CMakeFiles/easyio_common.dir/status.cc.o"
  "CMakeFiles/easyio_common.dir/status.cc.o.d"
  "libeasyio_common.a"
  "libeasyio_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easyio_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
