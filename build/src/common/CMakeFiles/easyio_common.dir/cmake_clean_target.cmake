file(REMOVE_RECURSE
  "libeasyio_common.a"
)
