# Empty compiler generated dependencies file for easyio_common.
# This may be replaced when dependencies are built.
