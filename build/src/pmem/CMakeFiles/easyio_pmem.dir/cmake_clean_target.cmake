file(REMOVE_RECURSE
  "libeasyio_pmem.a"
)
