file(REMOVE_RECURSE
  "CMakeFiles/easyio_pmem.dir/slow_memory.cc.o"
  "CMakeFiles/easyio_pmem.dir/slow_memory.cc.o.d"
  "libeasyio_pmem.a"
  "libeasyio_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easyio_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
