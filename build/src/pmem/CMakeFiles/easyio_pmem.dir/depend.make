# Empty dependencies file for easyio_pmem.
# This may be replaced when dependencies are built.
