file(REMOVE_RECURSE
  "libeasyio_uthread.a"
)
