file(REMOVE_RECURSE
  "CMakeFiles/easyio_uthread.dir/scheduler.cc.o"
  "CMakeFiles/easyio_uthread.dir/scheduler.cc.o.d"
  "libeasyio_uthread.a"
  "libeasyio_uthread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easyio_uthread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
