# Empty dependencies file for easyio_uthread.
# This may be replaced when dependencies are built.
