file(REMOVE_RECURSE
  "libeasyio_dma.a"
)
