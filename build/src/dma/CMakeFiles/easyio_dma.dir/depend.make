# Empty dependencies file for easyio_dma.
# This may be replaced when dependencies are built.
