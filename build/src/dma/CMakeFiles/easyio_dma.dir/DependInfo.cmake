
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dma/channel.cc" "src/dma/CMakeFiles/easyio_dma.dir/channel.cc.o" "gcc" "src/dma/CMakeFiles/easyio_dma.dir/channel.cc.o.d"
  "/root/repo/src/dma/dma_engine.cc" "src/dma/CMakeFiles/easyio_dma.dir/dma_engine.cc.o" "gcc" "src/dma/CMakeFiles/easyio_dma.dir/dma_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pmem/CMakeFiles/easyio_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/easyio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/easyio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
