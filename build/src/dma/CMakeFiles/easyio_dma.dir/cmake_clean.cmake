file(REMOVE_RECURSE
  "CMakeFiles/easyio_dma.dir/channel.cc.o"
  "CMakeFiles/easyio_dma.dir/channel.cc.o.d"
  "CMakeFiles/easyio_dma.dir/dma_engine.cc.o"
  "CMakeFiles/easyio_dma.dir/dma_engine.cc.o.d"
  "libeasyio_dma.a"
  "libeasyio_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easyio_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
