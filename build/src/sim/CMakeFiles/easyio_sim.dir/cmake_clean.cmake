file(REMOVE_RECURSE
  "CMakeFiles/easyio_sim.dir/context.cc.o"
  "CMakeFiles/easyio_sim.dir/context.cc.o.d"
  "CMakeFiles/easyio_sim.dir/flow_resource.cc.o"
  "CMakeFiles/easyio_sim.dir/flow_resource.cc.o.d"
  "CMakeFiles/easyio_sim.dir/simulation.cc.o"
  "CMakeFiles/easyio_sim.dir/simulation.cc.o.d"
  "libeasyio_sim.a"
  "libeasyio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easyio_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
