# Empty compiler generated dependencies file for easyio_sim.
# This may be replaced when dependencies are built.
