file(REMOVE_RECURSE
  "libeasyio_sim.a"
)
