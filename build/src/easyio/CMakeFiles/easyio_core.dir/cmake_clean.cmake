file(REMOVE_RECURSE
  "CMakeFiles/easyio_core.dir/channel_manager.cc.o"
  "CMakeFiles/easyio_core.dir/channel_manager.cc.o.d"
  "CMakeFiles/easyio_core.dir/easy_io_fs.cc.o"
  "CMakeFiles/easyio_core.dir/easy_io_fs.cc.o.d"
  "libeasyio_core.a"
  "libeasyio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easyio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
