# Empty compiler generated dependencies file for easyio_core.
# This may be replaced when dependencies are built.
