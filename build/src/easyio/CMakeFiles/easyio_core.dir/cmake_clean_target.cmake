file(REMOVE_RECURSE
  "libeasyio_core.a"
)
