# Empty compiler generated dependencies file for fig11_ablation.
# This may be replaced when dependencies are built.
