file(REMOVE_RECURSE
  "CMakeFiles/fig11_ablation.dir/fig11_ablation.cc.o"
  "CMakeFiles/fig11_ablation.dir/fig11_ablation.cc.o.d"
  "fig11_ablation"
  "fig11_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
