file(REMOVE_RECURSE
  "CMakeFiles/fig12_throttling.dir/fig12_throttling.cc.o"
  "CMakeFiles/fig12_throttling.dir/fig12_throttling.cc.o.d"
  "fig12_throttling"
  "fig12_throttling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
