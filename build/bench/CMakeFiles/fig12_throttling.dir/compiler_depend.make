# Empty compiler generated dependencies file for fig12_throttling.
# This may be replaced when dependencies are built.
