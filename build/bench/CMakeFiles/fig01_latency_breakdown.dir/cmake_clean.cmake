file(REMOVE_RECURSE
  "CMakeFiles/fig01_latency_breakdown.dir/fig01_latency_breakdown.cc.o"
  "CMakeFiles/fig01_latency_breakdown.dir/fig01_latency_breakdown.cc.o.d"
  "fig01_latency_breakdown"
  "fig01_latency_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_latency_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
