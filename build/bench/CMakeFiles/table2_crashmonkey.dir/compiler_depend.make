# Empty compiler generated dependencies file for table2_crashmonkey.
# This may be replaced when dependencies are built.
