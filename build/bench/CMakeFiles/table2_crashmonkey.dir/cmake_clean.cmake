file(REMOVE_RECURSE
  "CMakeFiles/table2_crashmonkey.dir/table2_crashmonkey.cc.o"
  "CMakeFiles/table2_crashmonkey.dir/table2_crashmonkey.cc.o.d"
  "table2_crashmonkey"
  "table2_crashmonkey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_crashmonkey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
