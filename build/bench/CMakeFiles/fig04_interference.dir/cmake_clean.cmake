file(REMOVE_RECURSE
  "CMakeFiles/fig04_interference.dir/fig04_interference.cc.o"
  "CMakeFiles/fig04_interference.dir/fig04_interference.cc.o.d"
  "fig04_interference"
  "fig04_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
