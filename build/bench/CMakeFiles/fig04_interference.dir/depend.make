# Empty dependencies file for fig04_interference.
# This may be replaced when dependencies are built.
