
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig03_multichannel.cc" "bench/CMakeFiles/fig03_multichannel.dir/fig03_multichannel.cc.o" "gcc" "bench/CMakeFiles/fig03_multichannel.dir/fig03_multichannel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dma/CMakeFiles/easyio_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/easyio_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/easyio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/easyio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
