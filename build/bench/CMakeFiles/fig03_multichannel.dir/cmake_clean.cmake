file(REMOVE_RECURSE
  "CMakeFiles/fig03_multichannel.dir/fig03_multichannel.cc.o"
  "CMakeFiles/fig03_multichannel.dir/fig03_multichannel.cc.o.d"
  "fig03_multichannel"
  "fig03_multichannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_multichannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
