# Empty compiler generated dependencies file for fig03_multichannel.
# This may be replaced when dependencies are built.
