file(REMOVE_RECURSE
  "CMakeFiles/fig08_latency.dir/fig08_latency.cc.o"
  "CMakeFiles/fig08_latency.dir/fig08_latency.cc.o.d"
  "fig08_latency"
  "fig08_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
