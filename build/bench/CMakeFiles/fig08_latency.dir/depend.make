# Empty dependencies file for fig08_latency.
# This may be replaced when dependencies are built.
