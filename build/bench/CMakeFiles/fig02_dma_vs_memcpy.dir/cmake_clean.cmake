file(REMOVE_RECURSE
  "CMakeFiles/fig02_dma_vs_memcpy.dir/fig02_dma_vs_memcpy.cc.o"
  "CMakeFiles/fig02_dma_vs_memcpy.dir/fig02_dma_vs_memcpy.cc.o.d"
  "fig02_dma_vs_memcpy"
  "fig02_dma_vs_memcpy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_dma_vs_memcpy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
