# Empty dependencies file for fig02_dma_vs_memcpy.
# This may be replaced when dependencies are built.
