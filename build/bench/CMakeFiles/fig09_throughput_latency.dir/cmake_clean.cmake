file(REMOVE_RECURSE
  "CMakeFiles/fig09_throughput_latency.dir/fig09_throughput_latency.cc.o"
  "CMakeFiles/fig09_throughput_latency.dir/fig09_throughput_latency.cc.o.d"
  "fig09_throughput_latency"
  "fig09_throughput_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_throughput_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
