# Empty dependencies file for fig09_throughput_latency.
# This may be replaced when dependencies are built.
