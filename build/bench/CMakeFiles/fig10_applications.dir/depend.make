# Empty dependencies file for fig10_applications.
# This may be replaced when dependencies are built.
