file(REMOVE_RECURSE
  "CMakeFiles/fig10_applications.dir/fig10_applications.cc.o"
  "CMakeFiles/fig10_applications.dir/fig10_applications.cc.o.d"
  "fig10_applications"
  "fig10_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
