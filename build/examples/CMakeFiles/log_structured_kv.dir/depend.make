# Empty dependencies file for log_structured_kv.
# This may be replaced when dependencies are built.
