file(REMOVE_RECURSE
  "CMakeFiles/log_structured_kv.dir/log_structured_kv.cpp.o"
  "CMakeFiles/log_structured_kv.dir/log_structured_kv.cpp.o.d"
  "log_structured_kv"
  "log_structured_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_structured_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
