# Empty dependencies file for qos_colocation.
# This may be replaced when dependencies are built.
