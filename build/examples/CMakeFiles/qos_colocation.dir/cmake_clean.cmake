file(REMOVE_RECURSE
  "CMakeFiles/qos_colocation.dir/qos_colocation.cpp.o"
  "CMakeFiles/qos_colocation.dir/qos_colocation.cpp.o.d"
  "qos_colocation"
  "qos_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
