# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/flow_resource_test[1]_include.cmake")
include("/root/repo/build/tests/pmem_test[1]_include.cmake")
include("/root/repo/build/tests/dma_test[1]_include.cmake")
include("/root/repo/build/tests/uthread_test[1]_include.cmake")
include("/root/repo/build/tests/nova_internals_test[1]_include.cmake")
include("/root/repo/build/tests/nova_fs_test[1]_include.cmake")
include("/root/repo/build/tests/easyio_fs_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/crashmonkey_test[1]_include.cmake")
include("/root/repo/build/tests/fxmark_test[1]_include.cmake")
include("/root/repo/build/tests/fs_property_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_fault_test[1]_include.cmake")
include("/root/repo/build/tests/log_gc_test[1]_include.cmake")
include("/root/repo/build/tests/concurrent_property_test[1]_include.cmake")
