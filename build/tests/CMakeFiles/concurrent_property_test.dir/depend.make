# Empty dependencies file for concurrent_property_test.
# This may be replaced when dependencies are built.
