file(REMOVE_RECURSE
  "CMakeFiles/concurrent_property_test.dir/concurrent_property_test.cc.o"
  "CMakeFiles/concurrent_property_test.dir/concurrent_property_test.cc.o.d"
  "concurrent_property_test"
  "concurrent_property_test.pdb"
  "concurrent_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
