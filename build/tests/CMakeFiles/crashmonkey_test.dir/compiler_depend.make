# Empty compiler generated dependencies file for crashmonkey_test.
# This may be replaced when dependencies are built.
