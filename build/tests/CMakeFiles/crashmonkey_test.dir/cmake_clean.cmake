file(REMOVE_RECURSE
  "CMakeFiles/crashmonkey_test.dir/crashmonkey_test.cc.o"
  "CMakeFiles/crashmonkey_test.dir/crashmonkey_test.cc.o.d"
  "crashmonkey_test"
  "crashmonkey_test.pdb"
  "crashmonkey_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crashmonkey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
