file(REMOVE_RECURSE
  "CMakeFiles/flow_resource_test.dir/flow_resource_test.cc.o"
  "CMakeFiles/flow_resource_test.dir/flow_resource_test.cc.o.d"
  "flow_resource_test"
  "flow_resource_test.pdb"
  "flow_resource_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_resource_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
