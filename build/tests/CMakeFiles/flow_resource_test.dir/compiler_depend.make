# Empty compiler generated dependencies file for flow_resource_test.
# This may be replaced when dependencies are built.
