# Empty compiler generated dependencies file for recovery_fault_test.
# This may be replaced when dependencies are built.
