file(REMOVE_RECURSE
  "CMakeFiles/recovery_fault_test.dir/recovery_fault_test.cc.o"
  "CMakeFiles/recovery_fault_test.dir/recovery_fault_test.cc.o.d"
  "recovery_fault_test"
  "recovery_fault_test.pdb"
  "recovery_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
