# Empty compiler generated dependencies file for log_gc_test.
# This may be replaced when dependencies are built.
