file(REMOVE_RECURSE
  "CMakeFiles/log_gc_test.dir/log_gc_test.cc.o"
  "CMakeFiles/log_gc_test.dir/log_gc_test.cc.o.d"
  "log_gc_test"
  "log_gc_test.pdb"
  "log_gc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_gc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
