file(REMOVE_RECURSE
  "CMakeFiles/dma_test.dir/dma_test.cc.o"
  "CMakeFiles/dma_test.dir/dma_test.cc.o.d"
  "dma_test"
  "dma_test.pdb"
  "dma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
