# Empty dependencies file for dma_test.
# This may be replaced when dependencies are built.
