# Empty dependencies file for nova_fs_test.
# This may be replaced when dependencies are built.
