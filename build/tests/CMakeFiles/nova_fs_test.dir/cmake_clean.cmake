file(REMOVE_RECURSE
  "CMakeFiles/nova_fs_test.dir/nova_fs_test.cc.o"
  "CMakeFiles/nova_fs_test.dir/nova_fs_test.cc.o.d"
  "nova_fs_test"
  "nova_fs_test.pdb"
  "nova_fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
