file(REMOVE_RECURSE
  "CMakeFiles/nova_internals_test.dir/nova_internals_test.cc.o"
  "CMakeFiles/nova_internals_test.dir/nova_internals_test.cc.o.d"
  "nova_internals_test"
  "nova_internals_test.pdb"
  "nova_internals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
