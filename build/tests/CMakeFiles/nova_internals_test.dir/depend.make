# Empty dependencies file for nova_internals_test.
# This may be replaced when dependencies are built.
