file(REMOVE_RECURSE
  "CMakeFiles/uthread_test.dir/uthread_test.cc.o"
  "CMakeFiles/uthread_test.dir/uthread_test.cc.o.d"
  "uthread_test"
  "uthread_test.pdb"
  "uthread_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uthread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
