# Empty dependencies file for uthread_test.
# This may be replaced when dependencies are built.
