file(REMOVE_RECURSE
  "CMakeFiles/easyio_fs_test.dir/easyio_fs_test.cc.o"
  "CMakeFiles/easyio_fs_test.dir/easyio_fs_test.cc.o.d"
  "easyio_fs_test"
  "easyio_fs_test.pdb"
  "easyio_fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easyio_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
