# Empty dependencies file for easyio_fs_test.
# This may be replaced when dependencies are built.
