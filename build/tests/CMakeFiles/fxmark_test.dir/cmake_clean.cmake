file(REMOVE_RECURSE
  "CMakeFiles/fxmark_test.dir/fxmark_test.cc.o"
  "CMakeFiles/fxmark_test.dir/fxmark_test.cc.o.d"
  "fxmark_test"
  "fxmark_test.pdb"
  "fxmark_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxmark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
