# Empty dependencies file for fxmark_test.
# This may be replaced when dependencies are built.
