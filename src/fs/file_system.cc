#include "src/fs/file_system.h"

#include <vector>

namespace easyio::fs {

StatusOr<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return InvalidArgument("path must be absolute: " + path);
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) {
      j = path.size();
    }
    if (j == i) {
      return InvalidArgument("empty path component: " + path);
    }
    parts.push_back(path.substr(i, j - i));
    i = j + 1;
  }
  return parts;
}

Status SplitParent(const std::string& path,
                   std::vector<std::string>* parent_out,
                   std::string* leaf_out) {
  EASYIO_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return InvalidArgument("path names the root: " + path);
  }
  *leaf_out = parts.back();
  parts.pop_back();
  *parent_out = std::move(parts);
  return OkStatus();
}

}  // namespace easyio::fs
