// The POSIX-flavoured filesystem interface every evaluated system implements
// (NOVA, NOVA-DMA, OdinFS-style delegation, EasyIO).
//
// Calls must be made from inside a sim::Task: they charge modeled syscall,
// metadata and data-movement time. Read/Write are positional (pread/pwrite);
// Append maintains the file size under the file lock (FxMark's DWAL).

#ifndef EASYIO_FS_FILE_SYSTEM_H_
#define EASYIO_FS_FILE_SYSTEM_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace easyio::fs {

struct FileStat {
  uint64_t ino = 0;
  uint64_t size = 0;
  uint64_t nlink = 0;
  uint64_t mtime_ns = 0;
  bool is_dir = false;
};

// Per-operation cost accounting, used to reproduce the paper's latency
// breakdown (Fig 1) and the EasyIO-CPU fraction (Fig 8).
struct OpStats {
  uint64_t total_ns = 0;    // end-to-end operation latency
  uint64_t cpu_ns = 0;      // time the CPU was actually busy on this op
  uint64_t blocked_ns = 0;  // time parked on async completions (EasyIO)
  uint64_t syscall_ns = 0;  // syscall & VFS share
  uint64_t index_ns = 0;    // file indexing share
  uint64_t meta_ns = 0;     // metadata update share (incl. allocation)
  uint64_t data_ns = 0;     // data movement share (memcpy or DMA wait)
  // Tracing correlation id assigned at the op entry point when an obs
  // tracer is installed and sampling selects this op; 0 = untraced. Internal
  // phases (commit, l2 wait, SN wait) attach their spans to this id.
  uint64_t trace_op_id = 0;

  void Clear() { *this = OpStats{}; }
};

// Contract (paper §5 evaluation harness): implementations provide POSIX
// read/write/append semantics with the durability point the respective
// system defines — NOVA-style systems are durable when the call returns,
// EasyIO is durable when the op's SN completes (paper §4.2; Fsync bridges
// the gap). Calls must run inside a sim::Task and charge all modeled time
// themselves; concurrent calls on distinct fds are always safe, and calls on
// the same file follow the system's own locking discipline (a single file
// lock for NOVA, two-level locking per §4.3 for EasyIO). Every byte the call
// reports transferred has actually been moved into/out of the simulated
// device, so crash tests observe real contents.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual std::string_view name() const = 0;

  // Namespace operations.
  virtual StatusOr<int> Create(const std::string& path) = 0;
  virtual StatusOr<int> Open(const std::string& path) = 0;
  virtual Status Close(int fd) = 0;
  virtual Status Mkdir(const std::string& path) = 0;
  virtual Status Unlink(const std::string& path) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Link(const std::string& existing,
                      const std::string& link_path) = 0;
  virtual StatusOr<FileStat> StatPath(const std::string& path) = 0;
  virtual StatusOr<FileStat> StatFd(int fd) = 0;

  // Data operations. `stats`, when non-null, receives the cost breakdown.
  virtual StatusOr<size_t> Read(int fd, uint64_t off, std::span<std::byte> buf,
                                OpStats* stats) = 0;
  virtual StatusOr<size_t> Write(int fd, uint64_t off,
                                 std::span<const std::byte> buf,
                                 OpStats* stats) = 0;
  virtual StatusOr<size_t> Append(int fd, std::span<const std::byte> buf,
                                  OpStats* stats) = 0;
  virtual Status Fsync(int fd) = 0;

  // Convenience overloads.
  StatusOr<size_t> Read(int fd, uint64_t off, std::span<std::byte> buf) {
    return Read(fd, off, buf, nullptr);
  }
  StatusOr<size_t> Write(int fd, uint64_t off,
                         std::span<const std::byte> buf) {
    return Write(fd, off, buf, nullptr);
  }
  StatusOr<size_t> Append(int fd, std::span<const std::byte> buf) {
    return Append(fd, buf, nullptr);
  }
};

// Splits "/a/b/c" into {"a","b","c"}; rejects empty components.
StatusOr<std::vector<std::string>> SplitPath(const std::string& path);
// Splits into (parent_components, leaf_name).
Status SplitParent(const std::string& path,
                   std::vector<std::string>* parent_out,
                   std::string* leaf_out);

}  // namespace easyio::fs

#endif  // EASYIO_FS_FILE_SYSTEM_H_
