#include "src/uthread/scheduler.h"

#include <cassert>

#include "src/obs/trace.h"

namespace easyio::uthread {

Scheduler::Scheduler(sim::Simulation* sim, const Options& options)
    : sim_(sim), options_(options) {
  assert(options.first_core >= 0 && options.num_cores >= 1);
  assert(options.first_core + options.num_cores <= sim->num_cores());
  if (options_.work_stealing && options_.num_cores > 1) {
    for (int c = options_.first_core;
         c < options_.first_core + options_.num_cores; ++c) {
      sim_->SetStealHook(c, [this](int thief) -> sim::Task* {
        // Steal from the most loaded sibling within this runtime only.
        int best = -1;
        size_t best_depth = 0;
        for (int v = options_.first_core;
             v < options_.first_core + options_.num_cores; ++v) {
          if (v == thief) {
            continue;
          }
          const size_t depth = sim_->run_queue_depth(v);
          if (depth > best_depth) {
            best_depth = depth;
            best = v;
          }
        }
        if (best < 0) {
          return nullptr;
        }
        sim::Task* stolen = sim_->TryStealFrom(best);
        if (stolen != nullptr) {
          OBS_EVENT_SAMPLED(
              obs::Track(obs::kProcCores, static_cast<uint32_t>(thief)),
              "steal", {"victim", static_cast<uint64_t>(best)},
              {"task", stolen->id()});
        }
        return stolen;
      });
      // When work queues up behind a busy core, prod the idle siblings so
      // they come steal it.
      sim_->SetEnqueueHook(c, [this](int overloaded) {
        for (int v = options_.first_core;
             v < options_.first_core + options_.num_cores; ++v) {
          if (v != overloaded && !sim_->core_busy(v) &&
              sim_->run_queue_depth(v) == 0) {
            sim_->Kick(v);
          }
        }
      });
    }
  }
}

int Scheduler::PickCore() const {
  int best = options_.first_core +
             static_cast<int>(round_robin_++ % options_.num_cores);
  size_t best_load = SIZE_MAX;
  for (int c = options_.first_core;
       c < options_.first_core + options_.num_cores; ++c) {
    const size_t load =
        sim_->run_queue_depth(c) + (sim_->core_busy(c) ? 1 : 0);
    if (load < best_load) {
      best_load = load;
      best = c;
    }
  }
  return best;
}

sim::Task* Scheduler::Spawn(std::function<void()> fn) {
  return sim_->Spawn(PickCore(), std::move(fn));
}

sim::Task* Scheduler::SpawnOn(int core, std::function<void()> fn) {
  assert(core >= options_.first_core &&
         core < options_.first_core + options_.num_cores);
  return sim_->Spawn(core, std::move(fn));
}

sim::Task* Scheduler::SpawnDetached(std::function<void()> fn) {
  return sim_->SpawnDetached(PickCore(), std::move(fn));
}

void Scheduler::RunWorkers(int n, const std::function<void(int)>& fn) {
  std::vector<sim::Task*> workers;
  workers.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers.push_back(Spawn([fn, i] { fn(i); }));
  }
  for (sim::Task* w : workers) {
    sim_->Join(w);
  }
}

void Scheduler::Yield() {
  sim_->Advance(options_.switch_cost_ns);
  sim_->Yield();
}

// ----------------------------------------------------------------- Mutex ----

void Mutex::Lock() {
  sim::Task* self = sim_->current();
  assert(self != nullptr);
  if (owner_ == nullptr) {
    owner_ = self;
    return;
  }
  assert(owner_ != self && "recursive lock");
  waiters_.push_back(self);
  sim_->Block();
  assert(owner_ == self);  // handed off by Unlock
}

bool Mutex::TryLock() {
  if (owner_ != nullptr) {
    return false;
  }
  owner_ = sim_->current();
  return true;
}

void Mutex::Unlock() {
  assert(owner_ == sim_->current());
  if (waiters_.empty()) {
    owner_ = nullptr;
    return;
  }
  owner_ = waiters_.front();
  waiters_.pop_front();
  sim_->Wake(owner_);
}

// ---------------------------------------------------------------- RwLock ----

void RwLock::ReadLock() {
  sim::Task* self = sim_->current();
  // Writer preference: queue behind any waiting writer to avoid starvation.
  if (writer_ != nullptr || !waiters_.empty()) {
    waiters_.push_back({self, /*is_writer=*/false});
    sim_->Block();
    return;  // WakeNext granted us the read lock
  }
  readers_++;
}

void RwLock::ReadUnlock() {
  assert(readers_ > 0);
  readers_--;
  if (readers_ == 0) {
    WakeNext();
  }
}

void RwLock::WriteLock() {
  sim::Task* self = sim_->current();
  if (writer_ != nullptr || readers_ > 0 || !waiters_.empty()) {
    waiters_.push_back({self, /*is_writer=*/true});
    sim_->Block();
    assert(writer_ == self);
    return;
  }
  writer_ = self;
}

void RwLock::WriteUnlock() {
  assert(writer_ == sim_->current());
  writer_ = nullptr;
  WakeNext();
}

void RwLock::WakeNext() {
  if (writer_ != nullptr || readers_ > 0 || waiters_.empty()) {
    return;
  }
  if (waiters_.front().is_writer) {
    writer_ = waiters_.front().task;
    waiters_.pop_front();
    sim_->Wake(writer_);
    return;
  }
  // Admit the whole leading run of readers.
  while (!waiters_.empty() && !waiters_.front().is_writer) {
    readers_++;
    sim::Task* t = waiters_.front().task;
    waiters_.pop_front();
    sim_->Wake(t);
  }
}

// --------------------------------------------------------------- CondVar ----

void CondVar::Wait(Mutex* mu) {
  waiters_.push_back(sim_->current());
  mu->Unlock();
  sim_->Block();
  mu->Lock();
}

void CondVar::NotifyOne() {
  if (waiters_.empty()) {
    return;
  }
  sim::Task* t = waiters_.front();
  waiters_.pop_front();
  sim_->Wake(t);
}

void CondVar::NotifyAll() {
  while (!waiters_.empty()) {
    NotifyOne();
  }
}

}  // namespace easyio::uthread
