// Caladan-lite userspace scheduling runtime (paper §2.3, §5).
//
// A Scheduler owns a contiguous set of simulated cores and multiplexes
// uthreads (sim::Tasks) on them:
//   * spawn/join with round-robin placement,
//   * cooperative yield — in EasyIO the runtime yields every time a syscall
//     returns after issuing an asynchronous I/O, which is what interleaves
//     application work with in-flight DMA,
//   * work stealing — an idle core steals the newest runnable uthread from
//     the most loaded sibling core, so uthreads whose I/O completed while
//     their home core was stuck in a long task still get to run (§5),
//   * context-switch cost charged in virtual time per switch.
//
// Multiple Scheduler instances over disjoint core ranges model colocated
// applications (the Caladan deployment of Figs 4 and 12).

#ifndef EASYIO_UTHREAD_SCHEDULER_H_
#define EASYIO_UTHREAD_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/sim/simulation.h"

namespace easyio::uthread {

class Scheduler {
 public:
  struct Options {
    int first_core = 0;
    int num_cores = 1;
    bool work_stealing = true;
    uint64_t switch_cost_ns = 120;  // userspace context switch (§2.3)
  };

  Scheduler(sim::Simulation* sim, const Options& options);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int first_core() const { return options_.first_core; }
  int num_cores() const { return options_.num_cores; }
  sim::Simulation* simulation() const { return sim_; }

  // Spawns a uthread on the least-loaded owned core (ties: round-robin).
  sim::Task* Spawn(std::function<void()> fn);
  sim::Task* SpawnOn(int core, std::function<void()> fn);
  // Detached: freed on completion, not joinable (per-request uthreads).
  sim::Task* SpawnDetached(std::function<void()> fn);

  void Join(sim::Task* t) { sim_->Join(t); }
  // Spawns `n` workers running fn(worker_index) and joins them all.
  void RunWorkers(int n, const std::function<void(int)>& fn);

  // Cooperative yield, charging the context-switch cost. EasyIO's runtime
  // calls this on return from every asynchronous syscall ("we perform the
  // thread_yield() every time when returning from the kernel", §5).
  void Yield();

  uint64_t switch_cost_ns() const { return options_.switch_cost_ns; }

 private:
  int PickCore() const;

  sim::Simulation* sim_;
  Options options_;
  mutable uint64_t round_robin_ = 0;
};

// A uthread-blocking mutex: contended lockers park and the unlock hands the
// lock to the oldest waiter (FIFO), all in virtual time on the owning core's
// scheduler.
class Mutex {
 public:
  explicit Mutex(sim::Simulation* sim) : sim_(sim) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock();
  bool TryLock();
  void Unlock();
  bool locked() const { return owner_ != nullptr; }
  sim::Task* owner() const { return owner_; }

 private:
  sim::Simulation* sim_;
  sim::Task* owner_ = nullptr;
  std::deque<sim::Task*> waiters_;
};

// RAII lock guard for Mutex.
class MutexLock {
 public:
  explicit MutexLock(Mutex* mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Readers-writer lock with writer preference (matches NOVA's per-inode
// rwlock). Writers are exclusive; readers share.
class RwLock {
 public:
  explicit RwLock(sim::Simulation* sim) : sim_(sim) {}
  RwLock(const RwLock&) = delete;
  RwLock& operator=(const RwLock&) = delete;

  void ReadLock();
  void ReadUnlock();
  void WriteLock();
  void WriteUnlock();
  bool write_locked() const { return writer_ != nullptr; }
  int readers() const { return readers_; }

 private:
  struct Waiter {
    sim::Task* task;
    bool is_writer;
  };
  void WakeNext();

  sim::Simulation* sim_;
  sim::Task* writer_ = nullptr;
  int readers_ = 0;
  std::deque<Waiter> waiters_;
};

// Condition variable paired with Mutex.
class CondVar {
 public:
  explicit CondVar(sim::Simulation* sim) : sim_(sim) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu);
  void NotifyOne();
  void NotifyAll();

 private:
  sim::Simulation* sim_;
  std::deque<sim::Task*> waiters_;
};

}  // namespace easyio::uthread

#endif  // EASYIO_UTHREAD_SCHEDULER_H_
