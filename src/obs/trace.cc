#include "src/obs/trace.h"

#include <cassert>
#include <cinttypes>
#include <map>
#include <set>
#include <utility>

namespace easyio::obs {

namespace internal {
constinit thread_local Tracer* g_tracer = nullptr;
}  // namespace internal

void Install(Tracer* tracer) {
  assert(internal::g_tracer == nullptr && tracer != nullptr);
  internal::g_tracer = tracer;
}

void Uninstall(Tracer* tracer) {
  assert(internal::g_tracer == tracer);
  (void)tracer;
  internal::g_tracer = nullptr;
}

Tracer::Tracer(Options options) : options_(std::move(options)) {
  assert(options_.clock != nullptr);
  if (options_.sample_every == 0) options_.sample_every = 1;
}

size_t Tracer::event_count() const {
  size_t n = 0;
  for (const auto& c : chunks_) n += c.size();
  return n;
}

Tracer::Event* Tracer::Append() {
  if (event_count() >= options_.max_events) {
    ++dropped_;
    return nullptr;
  }
  if (chunks_.empty() || chunks_.back().size() == kChunkEvents) {
    chunks_.emplace_back();
    chunks_.back().reserve(kChunkEvents);
  }
  return &chunks_.back().emplace_back();
}

void Tracer::FillArgs(Event& ev, std::initializer_list<Arg> args) {
  ev.num_args = 0;
  for (const Arg& a : args) {
    if (ev.num_args == Event::kMaxArgs) break;
    ev.args[ev.num_args++] = a;
  }
}

void Tracer::CompleteSpan(uint32_t track, const char* name, uint64_t start_ns,
                          uint64_t end_ns, std::initializer_list<Arg> args) {
  Event* ev = Append();
  if (ev == nullptr) return;
  ev->ph = Event::Ph::kComplete;
  ev->track = track;
  ev->name = name;
  ev->ts = start_ns;
  ev->dur = end_ns >= start_ns ? end_ns - start_ns : 0;
  FillArgs(*ev, args);
}

void Tracer::Instant(uint32_t track, const char* name, uint64_t ts_ns,
                     std::initializer_list<Arg> args) {
  Event* ev = Append();
  if (ev == nullptr) return;
  ev->ph = Event::Ph::kInstant;
  ev->track = track;
  ev->name = name;
  ev->ts = ts_ns;
  FillArgs(*ev, args);
}

void Tracer::Counter(uint32_t track, const char* name, uint64_t ts_ns,
                     uint64_t value) {
  Event* ev = Append();
  if (ev == nullptr) return;
  ev->ph = Event::Ph::kCounter;
  ev->track = track;
  ev->name = name;
  ev->ts = ts_ns;
  ev->num_args = 1;
  ev->args[0] = {"value", value};
}

void Tracer::AsyncSpan(uint64_t id, const char* name, uint64_t start_ns,
                       uint64_t end_ns, std::initializer_list<Arg> args) {
  if (end_ns < start_ns) end_ns = start_ns;
  Event* b = Append();
  if (b == nullptr) return;
  b->ph = Event::Ph::kAsyncBegin;
  b->track = Track(kProcFs, 0);
  b->name = name;
  b->ts = start_ns;
  b->id = id;
  FillArgs(*b, args);
  Event* e = Append();
  if (e == nullptr) {
    // Never leave an unbalanced "b": retract the begin event instead.
    chunks_.back().pop_back();
    ++dropped_;
    return;
  }
  e->ph = Event::Ph::kAsyncEnd;
  e->track = Track(kProcFs, 0);
  e->name = name;
  e->ts = end_ns;
  e->id = id;
}

namespace {

const char* ProcessName(uint32_t pid) {
  switch (pid) {
    case kProcCores: return "cores";
    case kProcDma: return "dma";
    case kProcDmaState: return "dma-state";
    case kProcFs: return "fs-ops";
    case kProcChanMgr: return "channel-manager";
    default: return "unknown";
  }
}

std::string ThreadName(uint32_t pid, uint32_t tid) {
  char buf[32];
  switch (pid) {
    case kProcCores: std::snprintf(buf, sizeof(buf), "core %u", tid); break;
    case kProcDma: std::snprintf(buf, sizeof(buf), "chan %u", tid); break;
    case kProcDmaState:
      std::snprintf(buf, sizeof(buf), "chan %u state", tid);
      break;
    case kProcFs: std::snprintf(buf, sizeof(buf), "ops"); break;
    case kProcChanMgr: std::snprintf(buf, sizeof(buf), "manager"); break;
    default: std::snprintf(buf, sizeof(buf), "t%u", tid); break;
  }
  return buf;
}

// Virtual ns -> trace-event microseconds with sub-µs precision preserved.
void PrintTs(std::FILE* out, uint64_t ns) {
  std::fprintf(out, "%" PRIu64 ".%03" PRIu64, ns / 1000, ns % 1000);
}

}  // namespace

void Tracer::WriteMetadata(std::FILE* out) const {
  std::set<uint32_t> tracks;
  for (const auto& chunk : chunks_)
    for (const Event& ev : chunk) tracks.insert(ev.track);
  std::set<uint32_t> pids;
  for (uint32_t track : tracks) pids.insert(TrackPid(track));
  bool first = true;
  for (uint32_t pid : pids) {
    if (!first) std::fputs(",\n", out);
    first = false;
    std::fprintf(out,
                 "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                 "\"args\":{\"name\":\"%s\"}},\n",
                 pid, ProcessName(pid));
    // Sort order keeps the Perfetto track list stable across runs.
    std::fprintf(out,
                 "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":%u,"
                 "\"args\":{\"sort_index\":%u}}",
                 pid, pid);
  }
  for (uint32_t track : tracks) {
    uint32_t pid = TrackPid(track), tid = TrackTid(track);
    std::fprintf(out,
                 ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                 "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                 pid, tid, ThreadName(pid, tid).c_str());
  }
}

void Tracer::WriteJson(std::FILE* out) const {
  std::fprintf(out,
               "{\n\"displayTimeUnit\":\"ns\",\n"
               "\"otherData\":{\"clock\":\"virtual-ns\","
               "\"sample_every\":%u,\"events\":%zu,\"dropped\":%" PRIu64
               "},\n\"traceEvents\":[\n",
               options_.sample_every, event_count(), dropped_);
  WriteMetadata(out);
  for (const auto& chunk : chunks_) {
    for (const Event& ev : chunk) {
      std::fputs(",\n", out);
      uint32_t pid = TrackPid(ev.track), tid = TrackTid(ev.track);
      switch (ev.ph) {
        case Event::Ph::kComplete:
          std::fprintf(out, "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%u,"
                            "\"tid\":%u,\"ts\":", ev.name, pid, tid);
          PrintTs(out, ev.ts);
          std::fputs(",\"dur\":", out);
          PrintTs(out, ev.dur);
          break;
        case Event::Ph::kInstant:
          std::fprintf(out, "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                            "\"pid\":%u,\"tid\":%u,\"ts\":", ev.name, pid, tid);
          PrintTs(out, ev.ts);
          break;
        case Event::Ph::kCounter:
          std::fprintf(out, "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":%u,"
                            "\"tid\":%u,\"ts\":", ev.name, pid, tid);
          PrintTs(out, ev.ts);
          break;
        case Event::Ph::kAsyncBegin:
        case Event::Ph::kAsyncEnd:
          std::fprintf(out,
                       "{\"name\":\"%s\",\"cat\":\"op\",\"ph\":\"%s\","
                       "\"id\":\"0x%" PRIx64 "\",\"pid\":%u,\"tid\":%u,"
                       "\"ts\":",
                       ev.name, ev.ph == Event::Ph::kAsyncBegin ? "b" : "e",
                       ev.id, pid, tid);
          PrintTs(out, ev.ts);
          break;
      }
      if (ev.num_args > 0) {
        std::fputs(",\"args\":{", out);
        for (int i = 0; i < ev.num_args; ++i) {
          std::fprintf(out, "%s\"%s\":%" PRIu64, i == 0 ? "" : ",",
                       ev.args[i].key, ev.args[i].value);
        }
        std::fputc('}', out);
      }
      std::fputc('}', out);
    }
  }
  std::fputs("\n]\n}\n", out);
}

bool Tracer::WriteJsonFile(const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  WriteJson(out);
  bool ok = std::ferror(out) == 0;
  std::fclose(out);
  return ok;
}

}  // namespace easyio::obs
