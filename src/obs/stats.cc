#include "src/obs/stats.h"

#include <cinttypes>

namespace easyio::obs {

LatencySummary Summarize(const Histogram& h) {
  LatencySummary s;
  s.count = h.count();
  if (s.count == 0) return s;
  s.mean_ns = h.Mean();
  s.min_ns = h.min();
  s.p50_ns = h.P50();
  s.p99_ns = h.P99();
  s.p999_ns = h.P999();
  s.max_ns = h.max();
  return s;
}

void StatsSnapshot::Print(std::FILE* out) const {
  std::fprintf(out, "stats.now_ns=%" PRIu64 "\n", now_ns);
  std::fprintf(out, "stats.context_switches=%" PRIu64 "\n", context_switches);
  for (const CoreStats& c : cores) {
    std::fprintf(out,
                 "core[%d].busy_ns=%" PRIu64 " core[%d].busy_frac=%.3f "
                 "core[%d].run_queue=%" PRIu64 "\n",
                 c.core, c.busy_ns, c.core, c.busy_fraction, c.core,
                 c.run_queue);
  }
  for (const ChannelStats& ch : channels) {
    std::fprintf(out,
                 "chan[%d].bytes=%" PRIu64 " chan[%d].descs=%" PRIu64
                 " chan[%d].qdepth=%" PRIu64 " chan[%d].suspended=%d\n",
                 ch.id, ch.bytes_completed, ch.id, ch.descriptors_completed,
                 ch.id, ch.queue_depth, ch.id, ch.suspended ? 1 : 0);
    if (ch.transfer_errors != 0 || ch.retries != 0 ||
        ch.software_completions != 0 || ch.stalls_injected != 0 ||
        ch.torn_records != 0 || ch.record_repairs != 0) {
      std::fprintf(out,
                   "chan[%d].xfer_errors=%" PRIu64 " chan[%d].retries=%" PRIu64
                   " chan[%d].sw_completions=%" PRIu64
                   " chan[%d].stalls=%" PRIu64 " chan[%d].torn=%" PRIu64
                   " chan[%d].record_repairs=%" PRIu64 "\n",
                   ch.id, ch.transfer_errors, ch.id, ch.retries, ch.id,
                   ch.software_completions, ch.id, ch.stalls_injected, ch.id,
                   ch.torn_records, ch.id, ch.record_repairs);
    }
  }
  for (const FsStats& f : fs) {
    std::fprintf(out,
                 "fs[%s].ops_read=%" PRIu64 " fs[%s].ops_write=%" PRIu64
                 " fs[%s].bytes_read=%" PRIu64 " fs[%s].bytes_written=%" PRIu64
                 " fs[%s].bytes_cpu=%" PRIu64 " fs[%s].bytes_dma=%" PRIu64
                 " fs[%s].log_compactions=%" PRIu64 "\n",
                 f.name.c_str(), f.ops_read, f.name.c_str(), f.ops_write,
                 f.name.c_str(), f.bytes_read, f.name.c_str(), f.bytes_written,
                 f.name.c_str(), f.bytes_cpu, f.name.c_str(), f.bytes_dma,
                 f.name.c_str(), f.log_compactions);
  }
  for (const auto& [name, l] : latencies) {
    std::fprintf(out,
                 "lat[%s].count=%" PRIu64 " lat[%s].mean_ns=%.1f "
                 "lat[%s].p50_ns=%" PRIu64 " lat[%s].p99_ns=%" PRIu64
                 " lat[%s].p999_ns=%" PRIu64 " lat[%s].max_ns=%" PRIu64 "\n",
                 name.c_str(), l.count, name.c_str(), l.mean_ns, name.c_str(),
                 l.p50_ns, name.c_str(), l.p99_ns, name.c_str(), l.p999_ns,
                 name.c_str(), l.max_ns);
  }
}

}  // namespace easyio::obs
