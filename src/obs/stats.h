// Counters-and-gauges snapshot: a plain-struct view of what every simulated
// actor has done so far, cheap enough to collect at any point of a run.
//
// Unlike the event tracer (trace.h), these are *cumulative* counters the
// instrumented layers maintain unconditionally — they are plain integer
// increments on paths that already do bookkeeping, so they need no
// enable/disable gate. harness::Testbed::CollectStats() fills a
// StatsSnapshot from a live testbed; benches print it with Print() behind
// their --stats/--trace flags. The field glossary lives in
// docs/OBSERVABILITY.md.

#ifndef EASYIO_OBS_STATS_H_
#define EASYIO_OBS_STATS_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"

namespace easyio::obs {

struct CoreStats {
  int core = 0;
  uint64_t busy_ns = 0;       // virtual ns this core ran a task
  uint64_t run_queue = 0;     // runnable tasks queued right now
  double busy_fraction = 0;   // busy_ns / snapshot time
};

struct ChannelStats {
  int id = 0;
  uint64_t bytes_completed = 0;
  uint64_t descriptors_completed = 0;
  uint64_t queue_depth = 0;   // descriptors pending right now
  bool suspended = false;
  // Fault-injection/recovery counters (all zero without an injector; the
  // Print() line for them is emitted only when one is nonzero, so output
  // is unchanged when injection is off).
  uint64_t transfer_errors = 0;
  uint64_t retries = 0;
  uint64_t software_completions = 0;
  uint64_t stalls_injected = 0;
  uint64_t torn_records = 0;
  uint64_t record_repairs = 0;
};

struct FsStats {
  std::string name;
  uint64_t ops_read = 0;
  uint64_t ops_write = 0;     // Write + Append entry points
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_cpu = 0;     // data moved by CPU memcpy paths
  uint64_t bytes_dma = 0;     // data moved by DMA offload paths
  uint64_t log_compactions = 0;
};

// Percentile summary of a common/histogram, for embedding latency series in
// the snapshot without copying the whole bucket array.
struct LatencySummary {
  uint64_t count = 0;
  double mean_ns = 0;
  uint64_t min_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  uint64_t max_ns = 0;
};
LatencySummary Summarize(const Histogram& h);

struct StatsSnapshot {
  uint64_t now_ns = 0;
  uint64_t context_switches = 0;
  std::vector<CoreStats> cores;
  std::vector<ChannelStats> channels;
  std::vector<FsStats> fs;
  // Named latency series the caller recorded (e.g. "write_us").
  std::vector<std::pair<std::string, LatencySummary>> latencies;

  void AddLatency(const std::string& name, const Histogram& h) {
    latencies.emplace_back(name, Summarize(h));
  }
  // Flat `section.key=value` dump, one datum per line (grep/cut friendly).
  void Print(std::FILE* out) const;
};

}  // namespace easyio::obs

#endif  // EASYIO_OBS_STATS_H_
