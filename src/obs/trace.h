// Virtual-time structured tracing.
//
// A Tracer records spans, instants and counters keyed by *virtual*
// nanoseconds and exports them as Chrome/Perfetto trace-event JSON
// (docs/OBSERVABILITY.md documents the full schema). The design constraints,
// in order:
//
//   1. Recording must never perturb the simulation. The tracer only *reads*
//      the virtual clock — it never calls Advance()/ScheduleAfter() — so a
//      run produces byte-identical simulated output whether tracing is on,
//      off, or compiled out.
//   2. Zero overhead when disabled. Every macro below compiles to a single
//      relaxed pointer load plus a predictable branch when no tracer is
//      installed (and to nothing at all under -DEASYIO_OBS_DISABLED), which
//      preserves the steady-state zero-allocation guarantee of DESIGN.md §6.
//   3. Bounded memory when enabled. Events are fixed-size PODs stored in
//      chunked slabs; high-frequency event classes go through a shared
//      sampling counter (`sample_every`) and a hard `max_events` cap drops
//      (and counts) the overflow instead of growing without bound.
//
// The tracer is installed globally (obs::Install) because the instrumented
// layers — sim, dma, uthread, nova, easyio — must not all grow a tracer
// parameter. Instrumentation sites therefore look like:
//
//   if (auto* t = obs::Get()) t->CompleteSpan(track, "xfer", t0, t1, {...});
//
// or use the OBS_* convenience macros. The virtual-clock source is a
// callback supplied at construction; sim::TraceSession (src/sim/obs_session.h)
// binds it to Simulation::Get()->now() and handles install/export/uninstall.

#ifndef EASYIO_OBS_TRACE_H_
#define EASYIO_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

namespace easyio::obs {

// Chrome's trace model is (process, thread) tracks. We map simulator actors
// onto fixed process ids so traces are comparable across runs and the JSON
// writer can name everything without a registration step.
enum Process : uint32_t {
  kProcCores = 1,     // one thread per simulated core: busy spans, park/steal
  kProcDma = 2,       // one thread per DMA channel: transfer spans, submits
  kProcDmaState = 3,  // one thread per DMA channel: suspend/resume windows
  kProcFs = 4,        // async per-op phase spans (b/e events, cat "op")
  kProcChanMgr = 5,   // channel-manager epochs, throttle decisions, b_limit
};

// Packs a (process, thread) pair into the single 32-bit track id the event
// structs carry.
constexpr uint32_t Track(Process p, uint32_t tid) {
  return (static_cast<uint32_t>(p) << 16) | (tid & 0xffffu);
}
constexpr uint32_t TrackPid(uint32_t track) { return track >> 16; }
constexpr uint32_t TrackTid(uint32_t track) { return track & 0xffffu; }

// Numeric key/value attached to an event. Keys must be string literals (the
// tracer stores the pointer, not a copy).
struct Arg {
  const char* key;
  uint64_t value;
};

class Tracer {
 public:
  struct Options {
    // Virtual-clock source in nanoseconds. Required; called only from
    // recording sites that do not already hold an explicit timestamp.
    std::function<uint64_t()> clock;
    // Sampled event classes record one event per `sample_every` hits of the
    // shared sampling counter. 1 = record everything.
    uint32_t sample_every = 1;
    // Hard cap on stored events; overflow is dropped and counted.
    size_t max_events = 4u << 20;
  };

  explicit Tracer(Options options);

  uint64_t now() const { return options_.clock(); }
  uint32_t sample_every() const { return options_.sample_every; }

  // Shared sampling gate for high-frequency event classes. Deterministic
  // (a plain counter — no host randomness), so a given binary + seed + sample
  // rate always traces the same events.
  bool Sample() {
    return options_.sample_every <= 1 ||
           sample_counter_++ % options_.sample_every == 0;
  }

  // Monotonic id source for async (per-op) spans. 0 is reserved to mean
  // "this op is not being traced" (see fs::OpStats::trace_op_id).
  uint64_t NextOpId() { return next_op_id_++; }

  // ---- Recording (all timestamps in virtual ns) ----
  // Complete span ("X") on a sequential track: [start_ns, end_ns).
  void CompleteSpan(uint32_t track, const char* name, uint64_t start_ns,
                    uint64_t end_ns, std::initializer_list<Arg> args = {});
  // Instant ("i").
  void Instant(uint32_t track, const char* name, uint64_t ts_ns,
               std::initializer_list<Arg> args = {});
  // Counter ("C") sample: the value of series `name` at ts_ns.
  void Counter(uint32_t track, const char* name, uint64_t ts_ns,
               uint64_t value);
  // Async span (b/e pair, cat "op", shared `id`): phases of one logical
  // operation may overlap other operations' phases, so they live on the
  // per-id async timeline instead of a sequential track. Both events are
  // emitted together once the interval is known, which instrumentation sites
  // use to report phases measured with explicit timestamps after the fact.
  void AsyncSpan(uint64_t id, const char* name, uint64_t start_ns,
                 uint64_t end_ns, std::initializer_list<Arg> args = {});

  // ---- Export ----
  size_t event_count() const;
  uint64_t dropped_events() const { return dropped_; }
  // Chrome trace-event JSON (object form with traceEvents + metadata).
  // Loadable by Perfetto (ui.perfetto.dev) and chrome://tracing.
  void WriteJson(std::FILE* out) const;
  bool WriteJsonFile(const std::string& path) const;

 private:
  struct Event {
    enum class Ph : uint8_t { kComplete, kInstant, kCounter, kAsyncBegin, kAsyncEnd };
    static constexpr int kMaxArgs = 3;
    Ph ph;
    uint8_t num_args = 0;
    uint32_t track;
    const char* name;
    uint64_t ts;
    uint64_t dur = 0;  // kComplete only
    uint64_t id = 0;   // async events only
    Arg args[kMaxArgs];
  };
  static constexpr size_t kChunkEvents = 64 * 1024;

  Event* Append();  // nullptr once max_events is hit (counts the drop)
  void FillArgs(Event& ev, std::initializer_list<Arg> args);
  void WriteMetadata(std::FILE* out) const;

  Options options_;
  uint64_t sample_counter_ = 0;
  uint64_t next_op_id_ = 1;
  uint64_t dropped_ = 0;
  std::vector<std::vector<Event>> chunks_;
};

namespace internal {
// Single definition in trace.cc. Read through obs::Get() only. Per host
// thread: a tracer installed on one scenario-runner worker is invisible to
// (and cannot race with) simulations running on other workers.
// constinit: constant-initialized TLS needs no init-guard wrapper, so the
// disabled-path read below stays a single thread-pointer-relative load.
extern constinit thread_local Tracer* g_tracer;
}  // namespace internal

// The installed tracer for the calling host thread, or nullptr when tracing
// is disabled on it. The null check is the entire disabled-path cost of
// every instrumentation site.
inline Tracer* Get() { return internal::g_tracer; }
// Install/remove the calling thread's tracer. A Tracer instance is
// single-threaded: install, record, and uninstall it all on one host thread
// (sim::TraceSession's scoped lifetime guarantees this). Installing over an
// existing tracer or uninstalling a tracer that is not installed is a
// programming error.
void Install(Tracer* tracer);
void Uninstall(Tracer* tracer);

// RAII helper behind OBS_SPAN: opens at construction, records a complete
// span at scope exit. When tracing is off (or the sample gate says no) the
// constructor leaves tracer_ null and the destructor is a no-op.
class ScopedSpan {
 public:
  ScopedSpan(uint32_t track, const char* name, bool sampled = false)
      : tracer_(Get()), track_(track), name_(name) {
    if (tracer_ != nullptr && sampled && !tracer_->Sample()) tracer_ = nullptr;
    if (tracer_ != nullptr) start_ = tracer_->now();
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr)
      tracer_->CompleteSpan(track_, name_, start_, tracer_->now());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  uint32_t track_;
  const char* name_;
  uint64_t start_ = 0;
};

}  // namespace easyio::obs

// ---- Macros ----
//
// The compile-time gate (-DEASYIO_OBS_DISABLED) removes every macro body so
// instrumented code carries no tracing instructions at all. The default
// build keeps them in; the runtime gate is the obs::Get() null check.

#define EASYIO_OBS_CONCAT_INNER(a, b) a##b
#define EASYIO_OBS_CONCAT(a, b) EASYIO_OBS_CONCAT_INNER(a, b)

#if !defined(EASYIO_OBS_DISABLED)

// Complete span covering the enclosing scope. "Always" class.
#define OBS_SPAN(track, name) \
  ::easyio::obs::ScopedSpan EASYIO_OBS_CONCAT(obs_span_, __LINE__)(track, name)
// Same, but subject to the tracer's sampling rate. Use on per-op hot paths.
#define OBS_SPAN_SAMPLED(track, name)                                       \
  ::easyio::obs::ScopedSpan EASYIO_OBS_CONCAT(obs_span_, __LINE__)(track,   \
                                                                   name, true)
// Instant event at the current virtual time. Optional {"key", value} args.
#define OBS_EVENT(track, name, ...)                                       \
  do {                                                                    \
    if (auto* obs_t_ = ::easyio::obs::Get())                              \
      obs_t_->Instant((track), (name), obs_t_->now(), {__VA_ARGS__});     \
  } while (0)
#define OBS_EVENT_SAMPLED(track, name, ...)                               \
  do {                                                                    \
    if (auto* obs_t_ = ::easyio::obs::Get(); obs_t_ && obs_t_->Sample()) \
      obs_t_->Instant((track), (name), obs_t_->now(), {__VA_ARGS__});     \
  } while (0)
// Counter sample at the current virtual time.
#define OBS_COUNTER(track, name, value)                                  \
  do {                                                                   \
    if (auto* obs_t_ = ::easyio::obs::Get())                             \
      obs_t_->Counter((track), (name), obs_t_->now(),                    \
                      static_cast<uint64_t>(value));                     \
  } while (0)
#define OBS_COUNTER_SAMPLED(track, name, value)                          \
  do {                                                                   \
    if (auto* obs_t_ = ::easyio::obs::Get(); obs_t_ && obs_t_->Sample()) \
      obs_t_->Counter((track), (name), obs_t_->now(),                    \
                      static_cast<uint64_t>(value));                     \
  } while (0)

#else  // EASYIO_OBS_DISABLED

#define OBS_SPAN(track, name) \
  do {                        \
  } while (0)
#define OBS_SPAN_SAMPLED(track, name) \
  do {                                \
  } while (0)
#define OBS_EVENT(track, name, ...) \
  do {                              \
  } while (0)
#define OBS_EVENT_SAMPLED(track, name, ...) \
  do {                                      \
  } while (0)
#define OBS_COUNTER(track, name, value) \
  do {                                  \
  } while (0)
#define OBS_COUNTER_SAMPLED(track, name, value) \
  do {                                          \
  } while (0)

#endif  // EASYIO_OBS_DISABLED

#endif  // EASYIO_OBS_TRACE_H_
