#include "src/baselines/delegation.h"

#include <algorithm>
#include <cassert>

namespace easyio::baselines {

DelegationPool::DelegationPool(sim::Simulation* sim, pmem::SlowMemory* mem,
                               const Options& options)
    : sim_(sim), mem_(mem), options_(options) {
  assert(options.num_threads >= 1);
  rings_.resize(static_cast<size_t>(options.num_threads));
  worker_parked_.assign(static_cast<size_t>(options.num_threads), false);
}

void DelegationPool::Start() {
  assert(!started_);
  started_ = true;
  workers_.resize(static_cast<size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_[static_cast<size_t>(i)] =
        sim_->Spawn(options_.first_core + i, [this, i] { WorkerLoop(i); });
  }
}

void DelegationPool::WorkerLoop(int idx) {
  auto& ring = rings_[static_cast<size_t>(idx)];
  while (true) {
    if (ring.empty()) {
      worker_parked_[static_cast<size_t>(idx)] = true;
      sim_->Block();
      continue;  // the waker cleared the parked flag
    }
    Request req = ring.front();
    ring.pop_front();
    if (req.to_pmem) {
      mem_->CpuWrite(req.pmem_off, req.dram, req.n);
    } else {
      mem_->CpuRead(req.dram, req.pmem_off, req.n);
    }
    requests_processed_++;
    req.completion->remaining--;
    if (req.completion->remaining == 0 && req.completion->waiting) {
      sim_->Wake(req.completion->waiter);
    }
  }
}

void DelegationPool::Move(bool to_pmem, uint64_t pmem_off, std::byte* dram,
                          size_t n) {
  assert(started_ && "Start() the pool before Move()");
  assert(sim_->in_task());
  const int chunks = static_cast<int>(
      (n + options_.chunk_bytes - 1) / options_.chunk_bytes);
  Completion completion{chunks, sim_->current()};
  size_t posted = 0;
  while (posted < n) {
    const size_t chunk = std::min<uint64_t>(options_.chunk_bytes, n - posted);
    const int ring = static_cast<int>(next_ring_++ %
                                      static_cast<uint64_t>(
                                          options_.num_threads));
    rings_[static_cast<size_t>(ring)].push_back(Request{
        to_pmem, pmem_off + posted, dram + posted, chunk, &completion});
    if (worker_parked_[static_cast<size_t>(ring)]) {
      // Clear before waking: the worker may not run (and reset the flag)
      // before another Move posts to this ring, and a second Wake on a
      // task that is already runnable is illegal.
      worker_parked_[static_cast<size_t>(ring)] = false;
      sim_->Wake(workers_[static_cast<size_t>(ring)]);
    }
    // Posting cost per request on the application core (ring + fence).
    // NOTE: this Advance yields to the event loop, so workers may already be
    // consuming requests while later chunks are still being posted.
    sim_->Advance(options_.ring_post_ns);
    posted += chunk;
  }
  if (completion.remaining > 0) {
    // Check-then-park is atomic (no yield in between): the application
    // thread polls the completion word, so its core stays busy.
    completion.waiting = true;
    sim_->BlockHoldingCore();
  }
}

}  // namespace easyio::baselines
