// Delegation pool for the OdinFS baseline [OSDI'22].
//
// OdinFS reserves cores per NUMA node to run background delegation threads;
// application threads post data-movement requests to per-thread rings, the
// delegation threads perform the PM accesses (splitting large I/Os for
// parallelism), and the application thread spins until its request group
// completes. The paper's configuration reserves 12 cores per node — which is
// why its workloads cap out at 12 worker cores on a 36-core machine (§6.1).

#ifndef EASYIO_BASELINES_DELEGATION_H_
#define EASYIO_BASELINES_DELEGATION_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/pmem/slow_memory.h"
#include "src/sim/simulation.h"

namespace easyio::baselines {

class DelegationPool {
 public:
  struct Options {
    int first_core = 0;   // first reserved core
    int num_threads = 4;  // delegation threads (one per reserved core)
    uint64_t chunk_bytes = 32 * 1024;  // split granularity
    uint64_t ring_post_ns = 700;       // request-posting cost on the caller
  };

  DelegationPool(sim::Simulation* sim, pmem::SlowMemory* mem,
                 const Options& options);

  DelegationPool(const DelegationPool&) = delete;
  DelegationPool& operator=(const DelegationPool&) = delete;

  // Spawns the delegation tasks on their reserved cores. Call once, before
  // any Move().
  void Start();

  // Synchronously moves `n` bytes between DRAM and pmem by splitting into
  // chunks fanned across the delegation threads; the caller's core stays
  // busy (it polls the completion word) until all chunks land.
  void Move(bool to_pmem, uint64_t pmem_off, std::byte* dram, size_t n);

  int num_threads() const { return options_.num_threads; }
  uint64_t requests_processed() const { return requests_processed_; }

 private:
  struct Completion {
    int remaining;
    sim::Task* waiter;
    bool waiting = false;  // waiter has actually parked
  };
  struct Request {
    bool to_pmem;
    uint64_t pmem_off;
    std::byte* dram;
    size_t n;
    Completion* completion;
  };

  void WorkerLoop(int idx);

  sim::Simulation* sim_;
  pmem::SlowMemory* mem_;
  Options options_;
  std::vector<std::deque<Request>> rings_;
  std::vector<sim::Task*> workers_;
  std::vector<bool> worker_parked_;
  uint64_t next_ring_ = 0;
  uint64_t requests_processed_ = 0;
  bool started_ = false;
};

}  // namespace easyio::baselines

#endif  // EASYIO_BASELINES_DELEGATION_H_
