// NOVA-DMA: the paper's stand-in for Fastmove [FAST'23] (§6.1) — NOVA with
// the memcpys in the read and write paths replaced by DMA-offloaded copies,
// but still a *synchronous* interface: the calling thread busy-polls the
// completion, burning its core the whole time. Requests round-robin over all
// available channels, which is exactly what makes its write throughput
// collapse under concurrency (§6.2: "NOVA-DMA uses all available DMA
// channels, and our empirical study shows that using more channels is
// harmful").

#ifndef EASYIO_BASELINES_NOVA_DMA_FS_H_
#define EASYIO_BASELINES_NOVA_DMA_FS_H_

#include "src/dma/dma_engine.h"
#include "src/nova/nova_fs.h"

namespace easyio::baselines {

class NovaDmaFs : public nova::NovaFs {
 public:
  NovaDmaFs(pmem::SlowMemory* mem, const nova::NovaFs::Options& options)
      : NovaFs(mem, options) {
    // Synchronous interface: recovery waits (like the completion polls) hold
    // the core.
    recover_policy_.busy = true;
  }

  // Attach after Format()/Mount(); see EasyIoFs::AttachChannelManager.
  void AttachEngine(dma::DmaEngine* engine) { engine_ = engine; }

  std::string_view name() const override { return "NOVA-DMA"; }

 protected:
  void MoveToPmem(uint64_t pmem_off, const std::byte* src, size_t bytes,
                  fs::OpStats* stats) override;
  void MoveFromPmem(std::byte* dst, uint64_t pmem_off, size_t bytes,
                    fs::OpStats* stats) override;

 private:
  dma::Channel* NextChannel();

  dma::DmaEngine* engine_ = nullptr;
  uint64_t round_robin_ = 0;
};

}  // namespace easyio::baselines

#endif  // EASYIO_BASELINES_NOVA_DMA_FS_H_
