#include "src/baselines/nova_dma_fs.h"

#include <cassert>

namespace easyio::baselines {

dma::Channel* NovaDmaFs::NextChannel() {
  assert(engine_ != nullptr && "AttachEngine before I/O");
  return &engine_->channel(
      static_cast<int>(round_robin_++ % engine_->num_channels()));
}

void NovaDmaFs::MoveToPmem(uint64_t pmem_off, const std::byte* src,
                           size_t bytes, fs::OpStats* stats) {
  Timed(stats, &fs::OpStats::data_ns, [&] {
    dma::Channel* ch = NextChannel();
    dma::Descriptor d;
    d.dir = dma::Descriptor::Dir::kWrite;
    d.pmem_off = pmem_off;
    d.dram = const_cast<std::byte*>(src);
    d.size = static_cast<uint32_t>(bytes);
    const dma::Sn sn = ch->Submit(std::move(d));
    // Synchronous interface: poll, core stays busy. Recovery-aware so an
    // injected transfer error is retried (and finally CPU-copied) instead
    // of spinning forever on a halted channel.
    ch->WaitSnRecover(sn, recover_policy_);
  });
}

void NovaDmaFs::MoveFromPmem(std::byte* dst, uint64_t pmem_off, size_t bytes,
                             fs::OpStats* stats) {
  Timed(stats, &fs::OpStats::data_ns, [&] {
    dma::Channel* ch = NextChannel();
    dma::Descriptor d;
    d.dir = dma::Descriptor::Dir::kRead;
    d.pmem_off = pmem_off;
    d.dram = dst;
    d.size = static_cast<uint32_t>(bytes);
    const dma::Sn sn = ch->Submit(std::move(d));
    ch->WaitSnRecover(sn, recover_policy_);
  });
}

}  // namespace easyio::baselines
