// OdinFS baseline [OSDI'22]: NOVA layout + opportunistic delegation for data
// movement. The application thread handles metadata itself but ships data
// copies to the DelegationPool's reserved-core threads, which parallelize
// large I/Os across chunks. Small I/Os (< one chunk) skip delegation — the
// ring round-trip would cost more than the copy (OdinFS's "opportunistic"
// part).

#ifndef EASYIO_BASELINES_ODIN_FS_H_
#define EASYIO_BASELINES_ODIN_FS_H_

#include "src/baselines/delegation.h"
#include "src/nova/nova_fs.h"

namespace easyio::baselines {

class OdinFs : public nova::NovaFs {
 public:
  OdinFs(pmem::SlowMemory* mem, const nova::NovaFs::Options& options,
         DelegationPool* pool)
      : NovaFs(mem, options), pool_(pool) {}

  std::string_view name() const override { return "ODINFS"; }

 protected:
  void MoveToPmem(uint64_t pmem_off, const std::byte* src, size_t bytes,
                  fs::OpStats* stats) override {
    Timed(stats, &fs::OpStats::data_ns, [&] {
      if (bytes < 8192) {
        // Below ~2 chunks delegation doesn't pay; copy inline.
        memory()->CpuWrite(pmem_off, src, bytes);
      } else {
        pool_->Move(/*to_pmem=*/true, pmem_off, const_cast<std::byte*>(src),
                    bytes);
      }
    });
  }

  void MoveFromPmem(std::byte* dst, uint64_t pmem_off, size_t bytes,
                    fs::OpStats* stats) override {
    Timed(stats, &fs::OpStats::data_ns, [&] {
      if (bytes < 8192) {
        memory()->CpuRead(dst, pmem_off, bytes);
      } else {
        pool_->Move(/*to_pmem=*/false, pmem_off, dst, bytes);
      }
    });
  }

 private:
  DelegationPool* pool_;
};

}  // namespace easyio::baselines

#endif  // EASYIO_BASELINES_ODIN_FS_H_
