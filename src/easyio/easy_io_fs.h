// EasyIoFs: NOVA with EasyIO's asynchronous I/O (the paper's contribution).
//
// Differences from the synchronous base class, all from §4:
//
//  * Orderless write (§4.2): the data DMA is submitted and the metadata
//    (write log entry carrying the descriptor's SN) committed in parallel,
//    in one interaction; the uthread then yields and resumes when the
//    channel's completion record covers the SN.
//  * Two-level locking (§4.3): the file lock (level 1) is released right
//    after the metadata commit; any later read or write that finds an
//    incomplete outstanding write SN on the inode blocks first (level 2).
//    Reads never leave an SN behind (CoW protects later writers), so
//    write-after-read proceeds immediately.
//  * Selective offloading (§4.4, Listing 2): I/O <= 4KB uses memcpy; reads
//    use a DMA channel only when one has queue depth < 2, else memcpy.
//  * Channel placement via the ChannelManager: writes and admitted reads go
//    to the L channels.
//
// The `ordered_naive` option builds the paper's Fig 11 "Naive" comparison:
// data and metadata strictly ordered in two kernel interactions, with the
// file lock held across the DMA wait.

#ifndef EASYIO_EASYIO_EASY_IO_FS_H_
#define EASYIO_EASYIO_EASY_IO_FS_H_

#include <cstdint>
#include <span>

#include "src/easyio/channel_manager.h"
#include "src/nova/nova_fs.h"

namespace easyio::core {

class EasyIoFs : public nova::NovaFs {
 public:
  struct EasyOptions {
    bool ordered_naive = false;
    uint64_t dma_min_bytes = 4096;  // <= this uses memcpy (Listing 2)

    // Recovery policy for DMA waits (only exercised under fault injection):
    // re-submit a failed descriptor up to dma_retry_attempts times with
    // doubling backoff, then fall back to a synchronous CPU copy. A
    // quarantined channel skips straight to the fallback.
    int dma_retry_attempts = 3;
    uint64_t dma_retry_backoff_ns = 2'000;

    // Striping: >1 spreads a large block-aligned orderless write over that
    // many L channels in stripe_chunk_bytes pieces. Durability then depends
    // on *every* channel's completion record covering its own last SN —
    // per-channel SN monotonicity says nothing across channels, so the wait
    // and the inode's level-2 state track one SN per channel used.
    int write_stripe_channels = 1;
    uint64_t stripe_chunk_bytes = 16 * 1024;
  };

  EasyIoFs(pmem::SlowMemory* mem, const nova::NovaFs::Options& options,
           const EasyOptions& easy_options)
      : NovaFs(mem, options), easy_(easy_options) {
    recover_policy_ = {easy_options.dma_retry_attempts,
                       easy_options.dma_retry_backoff_ns, /*busy=*/false};
  }

  // The ChannelManager (and its DmaEngine) must be attached after Format()
  // or Mount(): engine construction starts a fresh completion-record era,
  // which would defeat mount-time SN validation if it ran first.
  void AttachChannelManager(ChannelManager* cm) { cm_ = cm; }
  ChannelManager* channel_manager() const { return cm_; }

  std::string_view name() const override {
    return easy_.ordered_naive ? "EasyIO-Naive" : "EasyIO";
  }

  // Counters for the evaluation.
  uint64_t reads_offloaded() const { return reads_offloaded_; }
  uint64_t reads_memcpy() const { return reads_memcpy_; }
  uint64_t writes_offloaded() const { return writes_offloaded_; }
  uint64_t writes_memcpy() const { return writes_memcpy_; }

 protected:
  StatusOr<size_t> WriteInternal(Inode& in, uint64_t off,
                                 std::span<const std::byte> buf, bool append,
                                 fs::OpStats* stats) override;
  StatusOr<size_t> ReadInternal(Inode& in, uint64_t off,
                                std::span<std::byte> buf,
                                fs::OpStats* stats) override;
  Status FsyncInternal(Inode& in) override;

 private:
  // All write paths enter with the level-1 lock held; `l1_start` is its
  // acquisition time, so the path can attribute the full lock-hold window to
  // the traced op when it releases the lock.
  StatusOr<size_t> WriteOrderless(Inode& in, uint64_t off,
                                  std::span<const std::byte> buf,
                                  fs::OpStats* stats, sim::SimTime l1_start);
  // Striped orderless write (write_stripe_channels > 1, block-aligned):
  // chunks round-robin over several L channels, one log entry + SN per
  // chunk, and a per-channel last-SN wait.
  StatusOr<size_t> WriteOrderlessStriped(Inode& in, uint64_t off,
                                         std::span<const std::byte> buf,
                                         fs::OpStats* stats,
                                         sim::SimTime l1_start,
                                         std::vector<dma::Channel*>&& chans);
  StatusOr<size_t> WriteNaive(Inode& in, uint64_t off,
                              std::span<const std::byte> buf,
                              fs::OpStats* stats, sim::SimTime l1_start);
  // Synchronous memcpy fallback shared by both modes (small I/O).
  StatusOr<size_t> WriteMemcpy(Inode& in, uint64_t off,
                               std::span<const std::byte> buf,
                               fs::OpStats* stats, sim::SimTime l1_start);
  // Finishes a write on the CPU when no channel is available (all L
  // channels quarantined). Enters after index charge, block allocation,
  // FillWriteEdges and ChunkifyInto — reuses that work instead of
  // restarting the op through WriteMemcpy.
  StatusOr<size_t> DegradedCpuWriteTail(Inode& in, uint64_t off,
                                        std::span<const std::byte> buf,
                                        fs::OpStats* stats,
                                        sim::SimTime l1_start,
                                        OpScratch& scratch);
  // Maps the user buffer onto the allocated extents: one range per
  // contiguous extent (never a hole), honoring the unaligned head offset.
  // Appends to *out (not cleared).
  static void ChunkifyInto(const std::vector<nova::Extent>& extents,
                           uint64_t off, size_t n,
                           std::vector<ByteRange>* out);

  // Per-wait retry policy: a quarantined channel gets zero retry attempts
  // (straight to the CPU-copy fallback — no point re-feeding a channel the
  // manager already pulled from rotation).
  dma::RetryPolicy RecoverPolicyFor(const dma::Channel& ch) const {
    dma::RetryPolicy p = recover_policy_;
    if (cm_ != nullptr && cm_->quarantined(ch)) {
      p.max_attempts = 0;
    }
    return p;
  }
  // Report transfer errors observed across a wait to the channel manager's
  // quarantine scorekeeping.
  void NoteChannelFaults(dma::Channel& ch, uint64_t errors_before) {
    if (ch.transfer_errors() != errors_before && cm_ != nullptr) {
      cm_->ReportChannelFault(ch);
    }
  }

  EasyOptions easy_;
  ChannelManager* cm_ = nullptr;
  uint64_t reads_offloaded_ = 0;
  uint64_t reads_memcpy_ = 0;
  uint64_t writes_offloaded_ = 0;
  uint64_t writes_memcpy_ = 0;
};

}  // namespace easyio::core

#endif  // EASYIO_EASYIO_EASY_IO_FS_H_
