#include "src/easyio/channel_manager.h"

#include <algorithm>
#include <cassert>

#include "src/obs/trace.h"

namespace easyio::core {

ChannelManager::ChannelManager(sim::Simulation* sim, dma::DmaEngine* engine,
                               const Options& options)
    : sim_(sim),
      engine_(engine),
      options_(options),
      b_limit_gbps_(options.b_limit_init_gbps) {
  assert(options.num_l_channels >= 1);
  assert(options.num_l_channels <= engine->num_channels());
  assert(options.b_channel >= 0 &&
         options.b_channel < engine->num_channels());
  assert(options.b_channel >= options.num_l_channels &&
         "B channel must not overlap the L channels");
}

dma::Channel* ChannelManager::PickWriteChannel() {
  dma::Channel* best = &engine_->channel(0);
  for (int i = 1; i < options_.num_l_channels; ++i) {
    dma::Channel& c = engine_->channel(i);
    if (c.queue_depth() < best->queue_depth()) {
      best = &c;
    }
  }
  return best;
}

dma::Channel* ChannelManager::PickReadChannel() {
  // Rotate the scan start so consecutive reads spread over the L channels
  // (a channel is busy with post-descriptor housekeeping after a read even
  // when its queue looks empty).
  const int n = options_.num_l_channels;
  const int start = static_cast<int>(read_rotor_++ % static_cast<uint64_t>(n));
  for (int k = 0; k < n; ++k) {
    dma::Channel& c = engine_->channel((start + k) % n);
    if (c.queue_depth() < options_.read_admission_qdepth) {
      return &c;
    }
  }
  return nullptr;  // shunt to memcpy (Listing 2)
}

dma::Sn ChannelManager::SubmitBulkWrite(uint64_t pmem_off, const void* src,
                                        size_t n) {
  assert(n > 0);
  std::vector<dma::Descriptor> batch;
  const auto* p = static_cast<const std::byte*>(src);
  size_t done = 0;
  while (done < n) {
    const size_t chunk = std::min<size_t>(options_.bulk_split_bytes, n - done);
    dma::Descriptor d;
    d.dir = dma::Descriptor::Dir::kWrite;
    d.pmem_off = pmem_off + done;
    d.dram = const_cast<std::byte*>(p + done);
    d.size = static_cast<uint32_t>(chunk);
    batch.push_back(std::move(d));
    done += chunk;
  }
  auto sns = b_channel()->SubmitBatch(std::move(batch));
  return sns.back();
}

void ChannelManager::BulkWriteAndWait(uint64_t pmem_off, const void* src,
                                      size_t n) {
  const dma::Sn last = SubmitBulkWrite(pmem_off, src, n);
  b_channel()->WaitSn(last);
}

ChannelManager::LApp* ChannelManager::RegisterLApp(uint64_t target_ns) {
  l_apps_.push_back(std::make_unique<LApp>(target_ns));
  return l_apps_.back().get();
}

void ChannelManager::StartThrottling() {
  if (throttling_) {
    return;
  }
  throttling_ = true;
  throttle_generation_++;
  epoch_start_bytes_ = b_channel()->bytes_completed();
  OBS_EVENT(obs::Track(obs::kProcChanMgr, 0), "throttle_start",
            {"b_chan", options_.b_channel});
  const uint64_t gen = throttle_generation_;
  sim_->ScheduleAfter(options_.check_interval_ns, [this, gen] {
    if (gen == throttle_generation_) {
      BudgetCheck();
    }
  });
  sim_->ScheduleAfter(options_.epoch_ns, [this, gen] {
    if (gen == throttle_generation_) {
      EpochTick();
    }
  });
}

void ChannelManager::StopThrottling() {
  if (!throttling_) {
    return;
  }
  throttling_ = false;
  throttle_generation_++;
  OBS_EVENT(obs::Track(obs::kProcChanMgr, 0), "throttle_stop");
  if (b_channel()->suspended()) {
    b_channel()->Resume();
  }
}

void ChannelManager::BudgetCheck() {
  if (!throttling_) {
    return;
  }
  // Budget for a whole epoch at the current limit; once the B channel has
  // moved that much in this epoch, suspend it until the epoch ends.
  const double budget_bytes =
      b_limit_gbps_ * kGiB * (static_cast<double>(options_.epoch_ns) / 1e9);
  const uint64_t used = b_channel()->bytes_completed() - epoch_start_bytes_;
  if (static_cast<double>(used) >= budget_bytes &&
      !b_channel()->suspended()) {
    OBS_EVENT(obs::Track(obs::kProcChanMgr, 0), "budget_suspend",
              {"used_bytes", used},
              {"budget_bytes", static_cast<uint64_t>(budget_bytes)});
    b_channel()->Suspend();
  }
  const uint64_t gen = throttle_generation_;
  sim_->ScheduleAfter(options_.check_interval_ns, [this, gen] {
    if (gen == throttle_generation_) {
      BudgetCheck();
    }
  });
}

void ChannelManager::EpochTick() {
  if (!throttling_) {
    return;
  }
  // Listing 1: min headroom across L-apps decides the direction.
  double min_headroom = 1e9;
  bool any_samples = false;
  for (auto& app : l_apps_) {
    if (app->samples_ == 0) {
      continue;
    }
    any_samples = true;
    const double target = static_cast<double>(app->target_ns());
    const double latency = static_cast<double>(app->TakeEpochMax());
    min_headroom = std::min(min_headroom, (target - latency) / target);
  }
  if (any_samples) {
    if (min_headroom < 0) {
      b_limit_gbps_ -= options_.delta_gbps;  // throttle down B-apps
    } else if (min_headroom > options_.qos_threshold) {
      b_limit_gbps_ += options_.delta_gbps;  // throttle up B-apps
    }
    b_limit_gbps_ = std::clamp(b_limit_gbps_, options_.b_limit_min_gbps,
                               options_.b_limit_max_gbps);
  }
  // Epoch ticks are control-plane events (one per 20µs): always recorded.
  if (auto* t = obs::Get()) {
    const uint64_t epoch_bytes =
        b_channel()->bytes_completed() - epoch_start_bytes_;
    t->Instant(obs::Track(obs::kProcChanMgr, 0), "epoch", sim_->now(),
               {{"epoch_bytes", epoch_bytes}});
    t->Counter(obs::Track(obs::kProcChanMgr, 0), "b_limit_mbps", sim_->now(),
               static_cast<uint64_t>(b_limit_gbps_ * 1000.0));
  }
  // New epoch: reset accounting and resume the B channel.
  epoch_start_bytes_ = b_channel()->bytes_completed();
  if (b_channel()->suspended()) {
    b_channel()->Resume();
  }
  const uint64_t gen = throttle_generation_;
  sim_->ScheduleAfter(options_.epoch_ns, [this, gen] {
    if (gen == throttle_generation_) {
      EpochTick();
    }
  });
}

}  // namespace easyio::core
