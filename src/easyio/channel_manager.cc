#include "src/easyio/channel_manager.h"

#include <algorithm>
#include <cassert>

#include "src/obs/trace.h"

namespace easyio::core {

ChannelManager::ChannelManager(sim::Simulation* sim, dma::DmaEngine* engine,
                               const Options& options)
    : sim_(sim),
      engine_(engine),
      options_(options),
      b_limit_gbps_(options.b_limit_init_gbps),
      health_(static_cast<size_t>(engine->num_channels())) {
  assert(options.num_l_channels >= 1);
  assert(options.num_l_channels <= engine->num_channels());
  assert(options.b_channel >= 0 &&
         options.b_channel < engine->num_channels());
  assert(options.b_channel >= options.num_l_channels &&
         "B channel must not overlap the L channels");
}

dma::Channel* ChannelManager::PickWriteChannel() {
  dma::Channel* best = nullptr;
  for (int i = 0; i < options_.num_l_channels; ++i) {
    dma::Channel& c = engine_->channel(i);
    if (health_[c.id()].quarantined) {
      continue;
    }
    if (best == nullptr || c.queue_depth() < best->queue_depth()) {
      best = &c;
    }
  }
  return best;  // nullptr only when every L channel is quarantined
}

void ChannelManager::PickWriteChannels(int k, std::vector<dma::Channel*>* out) {
  out->clear();
  for (int i = 0; i < options_.num_l_channels; ++i) {
    dma::Channel& c = engine_->channel(i);
    if (!health_[c.id()].quarantined) {
      out->push_back(&c);
    }
  }
  // Least-loaded first (stable: ties keep channel-index order, so the pick
  // is deterministic), truncated to k.
  std::stable_sort(out->begin(), out->end(),
                   [](const dma::Channel* a, const dma::Channel* b) {
                     return a->queue_depth() < b->queue_depth();
                   });
  if (out->size() > static_cast<size_t>(k)) {
    out->resize(static_cast<size_t>(k));
  }
}

dma::Channel* ChannelManager::PickReadChannel() {
  // Rotate the scan start so consecutive reads spread over the L channels
  // (a channel is busy with post-descriptor housekeeping after a read even
  // when its queue looks empty).
  const int n = options_.num_l_channels;
  const int start = static_cast<int>(read_rotor_++ % static_cast<uint64_t>(n));
  for (int k = 0; k < n; ++k) {
    dma::Channel& c = engine_->channel((start + k) % n);
    if (health_[c.id()].quarantined) {
      continue;
    }
    if (c.queue_depth() < options_.read_admission_qdepth) {
      return &c;
    }
  }
  return nullptr;  // shunt to memcpy (Listing 2)
}

dma::Sn ChannelManager::SubmitBulkWrite(uint64_t pmem_off, const void* src,
                                        size_t n) {
  assert(n > 0);
  // Rebalance: a quarantined B channel sheds bulk traffic onto the
  // least-loaded healthy L channel (the L-apps pay some interference, but
  // the transfer makes progress). With everything quarantined the B channel
  // is used regardless — WaitSnRecover's fallback still guarantees
  // completion.
  dma::Channel* target = b_channel();
  if (health_[target->id()].quarantined) {
    if (dma::Channel* l = PickWriteChannel(); l != nullptr) {
      target = l;
    }
  }
  std::vector<dma::Descriptor> batch;
  const auto* p = static_cast<const std::byte*>(src);
  size_t done = 0;
  while (done < n) {
    const size_t chunk = std::min<size_t>(options_.bulk_split_bytes, n - done);
    dma::Descriptor d;
    d.dir = dma::Descriptor::Dir::kWrite;
    d.pmem_off = pmem_off + done;
    d.dram = const_cast<std::byte*>(p + done);
    d.size = static_cast<uint32_t>(chunk);
    batch.push_back(std::move(d));
    done += chunk;
  }
  auto sns = target->SubmitBatch(std::move(batch));
  return sns.back();
}

void ChannelManager::BulkWriteAndWait(uint64_t pmem_off, const void* src,
                                      size_t n) {
  const dma::Sn last = SubmitBulkWrite(pmem_off, src, n);
  engine_->ChannelFor(last).WaitSnRecover(last);
}

ChannelManager::LApp* ChannelManager::RegisterLApp(uint64_t target_ns) {
  l_apps_.push_back(std::make_unique<LApp>(target_ns));
  return l_apps_.back().get();
}

void ChannelManager::StartThrottling() {
  if (throttling_) {
    return;
  }
  throttling_ = true;
  throttle_generation_++;
  epoch_start_bytes_ = b_channel()->bytes_completed();
  OBS_EVENT(obs::Track(obs::kProcChanMgr, 0), "throttle_start",
            {"b_chan", options_.b_channel});
  const uint64_t gen = throttle_generation_;
  sim_->ScheduleAfter(options_.check_interval_ns, [this, gen] {
    if (gen == throttle_generation_) {
      BudgetCheck();
    }
  });
  sim_->ScheduleAfter(options_.epoch_ns, [this, gen] {
    if (gen == throttle_generation_) {
      EpochTick();
    }
  });
}

void ChannelManager::StopThrottling() {
  if (!throttling_) {
    return;
  }
  throttling_ = false;
  throttle_generation_++;
  OBS_EVENT(obs::Track(obs::kProcChanMgr, 0), "throttle_stop");
  if (b_channel()->suspended()) {
    b_channel()->Resume();
  }
}

void ChannelManager::BudgetCheck() {
  if (!throttling_) {
    return;
  }
  // Budget for a whole epoch at the current limit; once the B channel has
  // moved that much in this epoch, suspend it until the epoch ends.
  const double budget_bytes =
      b_limit_gbps_ * kGiB * (static_cast<double>(options_.epoch_ns) / 1e9);
  const uint64_t used = b_channel()->bytes_completed() - epoch_start_bytes_;
  if (static_cast<double>(used) >= budget_bytes &&
      !b_channel()->suspended()) {
    OBS_EVENT(obs::Track(obs::kProcChanMgr, 0), "budget_suspend",
              {"used_bytes", used},
              {"budget_bytes", static_cast<uint64_t>(budget_bytes)});
    b_channel()->Suspend();
  }
  const uint64_t gen = throttle_generation_;
  sim_->ScheduleAfter(options_.check_interval_ns, [this, gen] {
    if (gen == throttle_generation_) {
      BudgetCheck();
    }
  });
}

void ChannelManager::ReportChannelFault(dma::Channel& ch) {
  ChannelHealth& h = health_[ch.id()];
  h.fault_score++;
  OBS_EVENT(obs::Track(obs::kProcChanMgr, 0), "channel_fault",
            {"chan", ch.id()}, {"score", static_cast<uint64_t>(h.fault_score)});
  if (!h.quarantined && h.fault_score >= options_.quarantine_fault_threshold) {
    Quarantine(ch);
  }
}

void ChannelManager::Quarantine(dma::Channel& ch) {
  ChannelHealth& h = health_[ch.id()];
  if (h.quarantined) {
    return;
  }
  h.quarantined = true;
  h.quarantined_until = sim_->now() + options_.quarantine_ns;
  h.stalled_since = 0;
  quarantines_++;
  OBS_EVENT(obs::Track(obs::kProcChanMgr, 0), "quarantine", {"chan", ch.id()},
            {"qdepth", ch.queue_depth()});
  // CHANCMD kick: suspend/resume resets the engine's fetch state — an
  // in-flight descriptor below the restart threshold is aborted and re-run,
  // which is what un-sticks a wedged channel. The throttler owns the B
  // channel's suspend state while active, so don't fight it.
  if (!(throttling_ && &ch == b_channel())) {
    ch.Suspend();
    ch.Resume();
  }
  // Probation: the channel returns to rotation after quarantine_ns with a
  // clean slate. The event checks quarantined_until so overlapping
  // quarantines (re-reported faults) keep the latest deadline.
  const uint8_t id = ch.id();
  sim_->ScheduleAfter(options_.quarantine_ns, [this, id] {
    ChannelHealth& hh = health_[id];
    if (hh.quarantined && sim_->now() >= hh.quarantined_until) {
      hh.quarantined = false;
      hh.fault_score = 0;
      hh.stalled_since = 0;
      OBS_EVENT(obs::Track(obs::kProcChanMgr, 0), "quarantine_end",
                {"chan", id});
    }
  });
}

void ChannelManager::StartHealthMonitor() {
  if (health_monitoring_) {
    return;
  }
  health_monitoring_ = true;
  health_generation_++;
  for (int i = 0; i < engine_->num_channels(); ++i) {
    health_[static_cast<size_t>(i)].last_descs =
        engine_->channel(i).descriptors_completed();
    health_[static_cast<size_t>(i)].stalled_since = 0;
  }
  OBS_EVENT(obs::Track(obs::kProcChanMgr, 0), "health_monitor_start");
  const uint64_t gen = health_generation_;
  sim_->ScheduleAfter(options_.health_interval_ns, [this, gen] {
    if (gen == health_generation_) {
      HealthTick();
    }
  });
}

void ChannelManager::StopHealthMonitor() {
  if (!health_monitoring_) {
    return;
  }
  health_monitoring_ = false;
  health_generation_++;
  OBS_EVENT(obs::Track(obs::kProcChanMgr, 0), "health_monitor_stop");
}

void ChannelManager::HealthTick() {
  if (!health_monitoring_) {
    return;
  }
  for (int i = 0; i < engine_->num_channels(); ++i) {
    dma::Channel& ch = engine_->channel(i);
    ChannelHealth& h = health_[static_cast<size_t>(i)];
    const uint64_t descs = ch.descriptors_completed();
    if (h.quarantined) {
      h.last_descs = descs;
      continue;
    }
    if (ch.halted()) {
      // Halted on a transfer error: software recovery (the waiter's
      // WaitSnRecover) will drain it, but no new work should land there.
      Quarantine(ch);
      h.last_descs = descs;
      continue;
    }
    if (ch.queue_depth() > 0 && !ch.suspended() && descs == h.last_descs) {
      if (h.stalled_since == 0) {
        h.stalled_since = sim_->now();
      } else if (sim_->now() - h.stalled_since >= options_.stall_threshold_ns) {
        OBS_EVENT(obs::Track(obs::kProcChanMgr, 0), "stall_detected",
                  {"chan", ch.id()}, {"qdepth", ch.queue_depth()});
        Quarantine(ch);
      }
    } else {
      h.stalled_since = 0;
    }
    h.last_descs = descs;
  }
  const uint64_t gen = health_generation_;
  sim_->ScheduleAfter(options_.health_interval_ns, [this, gen] {
    if (gen == health_generation_) {
      HealthTick();
    }
  });
}

void ChannelManager::EpochTick() {
  if (!throttling_) {
    return;
  }
  // Listing 1: min headroom across L-apps decides the direction.
  double min_headroom = 1e9;
  bool any_samples = false;
  for (auto& app : l_apps_) {
    if (app->samples_ == 0) {
      continue;
    }
    any_samples = true;
    const double target = static_cast<double>(app->target_ns());
    const double latency = static_cast<double>(app->TakeEpochMax());
    min_headroom = std::min(min_headroom, (target - latency) / target);
  }
  if (any_samples) {
    if (min_headroom < 0) {
      b_limit_gbps_ -= options_.delta_gbps;  // throttle down B-apps
    } else if (min_headroom > options_.qos_threshold) {
      b_limit_gbps_ += options_.delta_gbps;  // throttle up B-apps
    }
    b_limit_gbps_ = std::clamp(b_limit_gbps_, options_.b_limit_min_gbps,
                               options_.b_limit_max_gbps);
  }
  // Epoch ticks are control-plane events (one per 20µs): always recorded.
  if (auto* t = obs::Get()) {
    const uint64_t epoch_bytes =
        b_channel()->bytes_completed() - epoch_start_bytes_;
    t->Instant(obs::Track(obs::kProcChanMgr, 0), "epoch", sim_->now(),
               {{"epoch_bytes", epoch_bytes}});
    t->Counter(obs::Track(obs::kProcChanMgr, 0), "b_limit_mbps", sim_->now(),
               static_cast<uint64_t>(b_limit_gbps_ * 1000.0));
  }
  // New epoch: reset accounting and resume the B channel.
  epoch_start_bytes_ = b_channel()->bytes_completed();
  if (b_channel()->suspended()) {
    b_channel()->Resume();
  }
  const uint64_t gen = throttle_generation_;
  sim_->ScheduleAfter(options_.epoch_ns, [this, gen] {
    if (gen == throttle_generation_) {
      EpochTick();
    }
  });
}

}  // namespace easyio::core
