#include "src/easyio/easy_io_fs.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "src/obs/trace.h"

namespace easyio::core {

namespace {

// Attaches a phase span to a traced op's async timeline; no-op when the op
// is untraced (OpStats::trace_op_id == 0) or tracing is off.
inline void TracePhase(const fs::OpStats* stats, const char* name,
                       sim::SimTime t0, sim::SimTime t1,
                       std::initializer_list<obs::Arg> args = {}) {
  if (stats == nullptr || stats->trace_op_id == 0) {
    return;
  }
  if (auto* t = obs::Get()) {
    t->AsyncSpan(stats->trace_op_id, name, t0, t1, args);
  }
}

}  // namespace

void EasyIoFs::ChunkifyInto(const std::vector<nova::Extent>& extents,
                            uint64_t off, size_t n,
                            std::vector<ByteRange>* out) {
  const uint64_t head = off % nova::kBlockSize;
  size_t copied = 0;
  for (const nova::Extent& e : extents) {
    const uint64_t ext_bytes = e.pages * nova::kBlockSize;
    const uint64_t skip = copied == 0 ? head : 0;
    const size_t bytes = std::min<uint64_t>(n - copied, ext_bytes - skip);
    ByteRange r;
    r.buf_off = copied;
    r.pmem_off = e.block_off + skip;
    r.bytes = bytes;
    r.hole = false;
    out->push_back(r);
    copied += bytes;
    if (copied == n) {
      break;
    }
  }
  assert(copied == n);
}

StatusOr<size_t> EasyIoFs::WriteInternal(Inode& in, uint64_t off,
                                         std::span<const std::byte> buf,
                                         bool append, fs::OpStats* stats) {
  in.lock.WriteLock();
  const sim::SimTime l1_start = sim()->now();
  if (append) {
    off = in.size;
  }
  // Level-2: a write-write conflict must wait for the outstanding orderless
  // write to actually finish (§4.3, Fig 7b).
  const uint64_t l2_wait = WaitPendingWrite(in);
  if (stats != nullptr) {
    stats->blocked_ns += l2_wait;
  }
  if (l2_wait > 0) {
    TracePhase(stats, "l2_wait", sim()->now() - l2_wait, sim()->now());
  }
  MaybeCompactLog(in, stats);
  StatusOr<size_t> r =
      (buf.size() <= easy_.dma_min_bytes || cm_ == nullptr)
          ? WriteMemcpy(in, off, buf, stats, l1_start)
          : (easy_.ordered_naive
                 ? WriteNaive(in, off, buf, stats, l1_start)
                 : WriteOrderless(in, off, buf, stats, l1_start));
  return r;
}

// Small I/O: the DMA engine is less efficient than memcpy below 4KB and the
// transfer completes before the core even returns to userspace (§4.4), so
// EasyIO keeps the synchronous CPU path. Enters with the write lock held.
StatusOr<size_t> EasyIoFs::WriteMemcpy(Inode& in, uint64_t off,
                                       std::span<const std::byte> buf,
                                       fs::OpStats* stats,
                                       sim::SimTime l1_start) {
  const size_t n = buf.size();
  const uint64_t first_pg = off / nova::kBlockSize;
  const uint64_t pages = (off + n - 1) / nova::kBlockSize - first_pg + 1;
  Charge(stats, &fs::OpStats::index_ns,
         params().index_base_ns + params().index_per_page_ns * pages);
  ScratchLease scratch(this);
  const Status alloc_st = AllocBlocks(pages, stats, &scratch->extents);
  if (!alloc_st.ok()) {
    in.lock.WriteUnlock();
    Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
    return alloc_st;
  }
  FillWriteEdges(in, off, n, scratch->extents, stats);
  ChunkifyInto(scratch->extents, off, n, &scratch->ranges);
  for (const ByteRange& c : scratch->ranges) {
    Timed(stats, &fs::OpStats::data_ns, [&] {
      memory()->CpuWrite(c.pmem_off, buf.data() + c.buf_off, c.bytes);
    });
  }
  AddCpuBytes(n);
  scratch->sns.assign(scratch->extents.size(), dma::Sn::None());
  const Status st =
      CommitWrite(in, off, n, scratch->extents, scratch->sns, stats);
  TracePhase(stats, "l1_hold", l1_start, sim()->now());
  in.lock.WriteUnlock();
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
  writes_memcpy_++;
  if (!st.ok()) {
    return st;
  }
  return n;
}

StatusOr<size_t> EasyIoFs::DegradedCpuWriteTail(Inode& in, uint64_t off,
                                                std::span<const std::byte> buf,
                                                fs::OpStats* stats,
                                                sim::SimTime l1_start,
                                                OpScratch& scratch) {
  const size_t n = buf.size();
  for (const ByteRange& c : scratch.ranges) {
    Timed(stats, &fs::OpStats::data_ns, [&] {
      memory()->CpuWrite(c.pmem_off, buf.data() + c.buf_off, c.bytes);
    });
  }
  AddCpuBytes(n);
  scratch.sns.assign(scratch.extents.size(), dma::Sn::None());
  const Status st = CommitWrite(in, off, n, scratch.extents, scratch.sns,
                                stats);
  TracePhase(stats, "l1_hold", l1_start, sim()->now());
  in.lock.WriteUnlock();
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
  writes_memcpy_++;
  if (!st.ok()) {
    return st;
  }
  return n;
}

// The paper's write path (§4.2): DMA submission and metadata commit proceed
// in parallel; the lock drops at commit; the uthread parks until the
// completion record covers the SN.
StatusOr<size_t> EasyIoFs::WriteOrderless(Inode& in, uint64_t off,
                                          std::span<const std::byte> buf,
                                          fs::OpStats* stats,
                                          sim::SimTime l1_start) {
  const size_t n = buf.size();
  // Striping only pays off for large block-aligned writes (each chunk is
  // its own log entry, so unaligned edges would need read-modify-write per
  // chunk); everything else stays on the single-channel path.
  if (easy_.write_stripe_channels > 1 && off % nova::kBlockSize == 0 &&
      n % nova::kBlockSize == 0 && n > easy_.stripe_chunk_bytes) {
    std::vector<dma::Channel*> chans;
    cm_->PickWriteChannels(easy_.write_stripe_channels, &chans);
    if (chans.size() > 1) {
      return WriteOrderlessStriped(in, off, buf, stats, l1_start,
                                   std::move(chans));
    }
  }
  const uint64_t first_pg = off / nova::kBlockSize;
  const uint64_t pages = (off + n - 1) / nova::kBlockSize - first_pg + 1;
  Charge(stats, &fs::OpStats::index_ns,
         params().index_base_ns + params().index_per_page_ns * pages);
  ScratchLease scratch(this);
  const Status alloc_st = AllocBlocks(pages, stats, &scratch->extents);
  if (!alloc_st.ok()) {
    in.lock.WriteUnlock();
    Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
    return alloc_st;
  }
  FillWriteEdges(in, off, n, scratch->extents, stats);

  dma::Channel* ch = cm_->PickWriteChannel();
  ChunkifyInto(scratch->extents, off, n, &scratch->ranges);
  if (ch == nullptr) {
    // Every L channel quarantined: degrade to the synchronous CPU path,
    // reusing the index/alloc/edge work already done above.
    return DegradedCpuWriteTail(in, off, buf, stats, l1_start, *scratch);
  }
  for (const ByteRange& c : scratch->ranges) {
    dma::Descriptor d;
    d.dir = dma::Descriptor::Dir::kWrite;
    d.pmem_off = c.pmem_off;
    d.dram = const_cast<std::byte*>(buf.data() + c.buf_off);
    d.size = static_cast<uint32_t>(c.bytes);
    scratch->batch.push_back(std::move(d));
  }
  const sim::SimTime submit_t0 = sim()->now();
  Timed(stats, &fs::OpStats::data_ns, [&] {
    ch->SubmitBatch(std::span<dma::Descriptor>(scratch->batch),
                    &scratch->sns);
  });
  TracePhase(stats, "dma_submit", submit_t0, sim()->now(),
             {{"descs", scratch->batch.size()}, {"chan", ch->id()}});
  AddDmaBytes(n);

  // Metadata commits while the DMA engine is still copying: the log entries
  // embed the SNs, so durability of the data is described indirectly.
  const Status st =
      CommitWrite(in, off, n, scratch->extents, scratch->sns, stats);
  const dma::Sn last_sn = scratch->sns.back();
  in.pending_channel = ch;
  in.pending_sn = last_sn;
  TracePhase(stats, "l1_hold", l1_start, sim()->now());
  in.lock.WriteUnlock();  // level-1 released before the data lands
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
  writes_offloaded_++;
  if (!st.ok()) {
    return st;
  }

  // Back in the runtime: yield and resume when the I/O finishes (§4.1).
  Charge(stats, &fs::OpStats::data_ns, params().uthread_switch_ns);
  const sim::SimTime t0 = sim()->now();
  const uint64_t errs0 = ch->transfer_errors();
  ch->WaitSnRecover(last_sn, RecoverPolicyFor(*ch));
  NoteChannelFaults(*ch, errs0);
  TracePhase(stats, "sn_wait", t0, sim()->now(), {{"chan", ch->id()}});
  if (stats != nullptr) {
    const uint64_t waited = sim()->now() - t0;
    stats->blocked_ns += waited;
    stats->data_ns += waited;
  }
  return n;
}

// Striped variant of the orderless write: the chunks of one large write
// round-robin over several L channels. Each chunk is one log entry AND one
// descriptor, so every entry's SN names exactly the transfer that moves its
// bytes — a chunk on a slow channel cannot hide behind a fast channel's
// completion record. Durability therefore needs *every* channel's record to
// cover its own last SN (per-channel SN monotonicity says nothing across
// channels), both in the wait below and in the inode's level-2 state.
StatusOr<size_t> EasyIoFs::WriteOrderlessStriped(
    Inode& in, uint64_t off, std::span<const std::byte> buf,
    fs::OpStats* stats, sim::SimTime l1_start,
    std::vector<dma::Channel*>&& chans) {
  const size_t n = buf.size();
  assert(off % nova::kBlockSize == 0 && n % nova::kBlockSize == 0);
  const uint64_t pages = n / nova::kBlockSize;
  Charge(stats, &fs::OpStats::index_ns,
         params().index_base_ns + params().index_per_page_ns * pages);
  ScratchLease scratch(this);
  const Status alloc_st = AllocBlocks(pages, stats, &scratch->extents);
  if (!alloc_st.ok()) {
    in.lock.WriteUnlock();
    Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
    return alloc_st;
  }
  FillWriteEdges(in, off, n, scratch->extents, stats);

  // Split the allocated extents into stripe chunks (block-granular by the
  // alignment precondition).
  const uint64_t chunk_pages =
      std::max<uint64_t>(1, easy_.stripe_chunk_bytes / nova::kBlockSize);
  std::vector<nova::Extent> subs;
  subs.reserve(pages / chunk_pages + scratch->extents.size());
  for (const nova::Extent& e : scratch->extents) {
    for (uint64_t p = 0; p < e.pages; p += chunk_pages) {
      subs.push_back({e.block_off + p * nova::kBlockSize,
                      std::min(chunk_pages, e.pages - p)});
    }
  }

  // Chunks round-robin over the channels; one doorbell per channel. The
  // scatter through per_idx keeps scratch->sns positionally 1:1 with subs,
  // which CommitWrite requires.
  std::vector<std::vector<dma::Descriptor>> per_chan(chans.size());
  std::vector<std::vector<size_t>> per_idx(chans.size());
  uint64_t cum = 0;
  for (size_t i = 0; i < subs.size(); ++i) {
    const size_t ci = i % chans.size();
    dma::Descriptor d;
    d.dir = dma::Descriptor::Dir::kWrite;
    d.pmem_off = subs[i].block_off;
    d.dram = const_cast<std::byte*>(buf.data() + cum);
    d.size = static_cast<uint32_t>(subs[i].pages * nova::kBlockSize);
    per_chan[ci].push_back(std::move(d));
    per_idx[ci].push_back(i);
    cum += subs[i].pages * nova::kBlockSize;
  }
  scratch->sns.assign(subs.size(), dma::Sn::None());
  std::vector<dma::Sn> last(chans.size(), dma::Sn::None());
  const sim::SimTime submit_t0 = sim()->now();
  Timed(stats, &fs::OpStats::data_ns, [&] {
    std::vector<dma::Sn> sns_c;
    for (size_t c = 0; c < chans.size(); ++c) {
      if (per_chan[c].empty()) {
        continue;
      }
      sns_c.clear();
      chans[c]->SubmitBatch(std::span<dma::Descriptor>(per_chan[c]), &sns_c);
      for (size_t j = 0; j < sns_c.size(); ++j) {
        scratch->sns[per_idx[c][j]] = sns_c[j];
      }
      last[c] = sns_c.back();
    }
  });
  TracePhase(stats, "dma_submit", submit_t0, sim()->now(),
             {{"descs", subs.size()}, {"stripes", chans.size()}});
  AddDmaBytes(n);

  const Status st = CommitWrite(in, off, n, subs, scratch->sns, stats);
  in.pending_channel = chans[0];
  in.pending_sn = last[0];
  for (size_t c = 1; c < chans.size(); ++c) {
    if (!last[c].none()) {
      in.pending_stripes.push_back({chans[c], last[c]});
    }
  }
  TracePhase(stats, "l1_hold", l1_start, sim()->now());
  in.lock.WriteUnlock();
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
  writes_offloaded_++;
  if (!st.ok()) {
    return st;
  }

  Charge(stats, &fs::OpStats::data_ns, params().uthread_switch_ns);
  const sim::SimTime t0 = sim()->now();
  for (size_t c = 0; c < chans.size(); ++c) {
    if (last[c].none()) {
      continue;
    }
    const uint64_t errs0 = chans[c]->transfer_errors();
    chans[c]->WaitSnRecover(last[c], RecoverPolicyFor(*chans[c]));
    NoteChannelFaults(*chans[c], errs0);
  }
  TracePhase(stats, "sn_wait", t0, sim()->now(),
             {{"stripes", chans.size()}});
  if (stats != nullptr) {
    const uint64_t waited = sim()->now() - t0;
    stats->blocked_ns += waited;
    stats->data_ns += waited;
  }
  return n;
}

// Fig 11's "Naive": strictly ordered, two interactions with the filesystem,
// lock held across the DMA wait.
StatusOr<size_t> EasyIoFs::WriteNaive(Inode& in, uint64_t off,
                                      std::span<const std::byte> buf,
                                      fs::OpStats* stats,
                                      sim::SimTime l1_start) {
  const size_t n = buf.size();
  const uint64_t first_pg = off / nova::kBlockSize;
  const uint64_t pages = (off + n - 1) / nova::kBlockSize - first_pg + 1;
  Charge(stats, &fs::OpStats::index_ns,
         params().index_base_ns + params().index_per_page_ns * pages);
  ScratchLease scratch(this);
  const Status alloc_st = AllocBlocks(pages, stats, &scratch->extents);
  if (!alloc_st.ok()) {
    in.lock.WriteUnlock();
    Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
    return alloc_st;
  }
  FillWriteEdges(in, off, n, scratch->extents, stats);

  dma::Channel* ch = cm_->PickWriteChannel();
  ChunkifyInto(scratch->extents, off, n, &scratch->ranges);
  if (ch == nullptr) {
    // Every L channel quarantined: degrade to the synchronous CPU path,
    // reusing the index/alloc/edge work already done above.
    return DegradedCpuWriteTail(in, off, buf, stats, l1_start, *scratch);
  }
  for (const ByteRange& c : scratch->ranges) {
    dma::Descriptor d;
    d.dir = dma::Descriptor::Dir::kWrite;
    d.pmem_off = c.pmem_off;
    d.dram = const_cast<std::byte*>(buf.data() + c.buf_off);
    d.size = static_cast<uint32_t>(c.bytes);
    scratch->batch.push_back(std::move(d));
  }
  const sim::SimTime submit_t0 = sim()->now();
  Timed(stats, &fs::OpStats::data_ns, [&] {
    ch->SubmitBatch(std::span<dma::Descriptor>(scratch->batch),
                    &scratch->sns);
  });
  TracePhase(stats, "dma_submit", submit_t0, sim()->now(),
             {{"descs", scratch->batch.size()}, {"chan", ch->id()}});
  AddDmaBytes(n);
  const dma::Sn last_sn = scratch->sns.back();

  // First interaction returns (lock still held!); the uthread parks.
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
  Charge(stats, &fs::OpStats::data_ns, params().uthread_switch_ns);
  const sim::SimTime t0 = sim()->now();
  const uint64_t errs0 = ch->transfer_errors();
  ch->WaitSnRecover(last_sn, RecoverPolicyFor(*ch));
  NoteChannelFaults(*ch, errs0);
  TracePhase(stats, "sn_wait", t0, sim()->now(), {{"chan", ch->id()}});
  if (stats != nullptr) {
    const uint64_t waited = sim()->now() - t0;
    stats->blocked_ns += waited;
    stats->data_ns += waited;
  }

  // Second interaction: commit the metadata now that data is durable. The
  // submission SNs are no longer needed, so the scratch vector is reused
  // for the all-None commit SNs.
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_enter_ns);
  scratch->sns.assign(scratch->extents.size(), dma::Sn::None());
  const Status st =
      CommitWrite(in, off, n, scratch->extents, scratch->sns, stats);
  TracePhase(stats, "l1_hold", l1_start, sim()->now());
  in.lock.WriteUnlock();
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
  writes_offloaded_++;
  if (!st.ok()) {
    return st;
  }
  return n;
}

StatusOr<size_t> EasyIoFs::ReadInternal(Inode& in, uint64_t off,
                                        std::span<std::byte> buf,
                                        fs::OpStats* stats) {
  in.lock.ReadLock();
  const sim::SimTime l1_start = sim()->now();
  // Level-2: wait out a conflicting unfinished write (§4.3, Fig 7b).
  const uint64_t l2_wait = WaitPendingWrite(in);
  if (stats != nullptr) {
    stats->blocked_ns += l2_wait;
  }
  if (l2_wait > 0) {
    TracePhase(stats, "l2_wait", sim()->now() - l2_wait, sim()->now());
  }
  if (off >= in.size) {
    in.lock.ReadUnlock();
    Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
    return size_t{0};
  }
  const size_t n = std::min<uint64_t>(buf.size(), in.size - off);
  const uint64_t first_pg = off / nova::kBlockSize;
  const uint64_t pages = (off + n - 1) / nova::kBlockSize - first_pg + 1;
  Charge(stats, &fs::OpStats::index_ns,
         params().index_base_ns + params().index_per_page_ns * pages);
  ScratchLease scratch(this);
  in.pages.LookupInto(first_pg, pages, &scratch->segs);
  SegmentsToByteRanges(scratch->segs, off, n, &scratch->ranges);
  in.pending_reads++;

  // Listing 2: DMA only for >4KB and an L channel below the depth bound.
  dma::Channel* ch = nullptr;
  if (n > easy_.dma_min_bytes && cm_ != nullptr) {
    ch = cm_->PickReadChannel();
  }

  if (ch == nullptr) {
    // memcpy fallback: reads never leave an SN behind, and CoW plus the
    // pending-read count protect the blocks, so the lock drops first.
    TracePhase(stats, "l1_hold", l1_start, sim()->now());
    in.lock.ReadUnlock();
    reads_memcpy_++;
    for (const ByteRange& r : scratch->ranges) {
      if (r.hole) {
        FillZero(buf.data() + r.buf_off, r.bytes, stats);
      } else {
        Timed(stats, &fs::OpStats::data_ns, [&] {
          memory()->CpuRead(buf.data() + r.buf_off, r.pmem_off, r.bytes);
        });
        AddCpuBytes(r.bytes);
      }
    }
    OnReadDone(in);
    Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
    return n;
  }

  // DMA path: holes are zero-filled by the CPU, mapped ranges become one
  // batch of read descriptors.
  for (const ByteRange& r : scratch->ranges) {
    if (r.hole) {
      FillZero(buf.data() + r.buf_off, r.bytes, stats);
      continue;
    }
    dma::Descriptor d;
    d.dir = dma::Descriptor::Dir::kRead;
    d.pmem_off = r.pmem_off;
    d.dram = buf.data() + r.buf_off;
    d.size = static_cast<uint32_t>(r.bytes);
    scratch->batch.push_back(std::move(d));
  }
  reads_offloaded_++;
  if (scratch->batch.empty()) {
    TracePhase(stats, "l1_hold", l1_start, sim()->now());
    in.lock.ReadUnlock();
    OnReadDone(in);
    Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
    return n;
  }
  for (const dma::Descriptor& d : scratch->batch) {
    AddDmaBytes(d.size);
  }
  const sim::SimTime submit_t0 = sim()->now();
  Timed(stats, &fs::OpStats::data_ns, [&] {
    ch->SubmitBatch(std::span<dma::Descriptor>(scratch->batch),
                    &scratch->sns);
  });
  TracePhase(stats, "dma_submit", submit_t0, sim()->now(),
             {{"descs", scratch->batch.size()}, {"chan", ch->id()}});
  const dma::Sn last_sn = scratch->sns.back();
  TracePhase(stats, "l1_hold", l1_start, sim()->now());
  in.lock.ReadUnlock();  // reads only touch timestamps; unlock at once
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);

  Charge(stats, &fs::OpStats::data_ns, params().uthread_switch_ns);
  const sim::SimTime t0 = sim()->now();
  const uint64_t errs0 = ch->transfer_errors();
  ch->WaitSnRecover(last_sn, RecoverPolicyFor(*ch));
  NoteChannelFaults(*ch, errs0);
  TracePhase(stats, "sn_wait", t0, sim()->now(), {{"chan", ch->id()}});
  if (stats != nullptr) {
    const uint64_t waited = sim()->now() - t0;
    stats->blocked_ns += waited;
    stats->data_ns += waited;
  }
  OnReadDone(in);
  return n;
}

Status EasyIoFs::FsyncInternal(Inode& in) {
  // Data of the (single possible) outstanding orderless write must land.
  WaitPendingWrite(in);
  return OkStatus();
}

}  // namespace easyio::core
