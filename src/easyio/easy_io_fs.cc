#include "src/easyio/easy_io_fs.h"

#include <cassert>

namespace easyio::core {

void EasyIoFs::ChunkifyInto(const std::vector<nova::Extent>& extents,
                            uint64_t off, size_t n,
                            std::vector<ByteRange>* out) {
  const uint64_t head = off % nova::kBlockSize;
  size_t copied = 0;
  for (const nova::Extent& e : extents) {
    const uint64_t ext_bytes = e.pages * nova::kBlockSize;
    const uint64_t skip = copied == 0 ? head : 0;
    const size_t bytes = std::min<uint64_t>(n - copied, ext_bytes - skip);
    ByteRange r;
    r.buf_off = copied;
    r.pmem_off = e.block_off + skip;
    r.bytes = bytes;
    r.hole = false;
    out->push_back(r);
    copied += bytes;
    if (copied == n) {
      break;
    }
  }
  assert(copied == n);
}

StatusOr<size_t> EasyIoFs::WriteInternal(Inode& in, uint64_t off,
                                         std::span<const std::byte> buf,
                                         bool append, fs::OpStats* stats) {
  in.lock.WriteLock();
  if (append) {
    off = in.size;
  }
  // Level-2: a write-write conflict must wait for the outstanding orderless
  // write to actually finish (§4.3, Fig 7b).
  const uint64_t l2_wait = WaitPendingWrite(in);
  if (stats != nullptr) {
    stats->blocked_ns += l2_wait;
  }
  MaybeCompactLog(in, stats);
  StatusOr<size_t> r =
      (buf.size() <= easy_.dma_min_bytes || cm_ == nullptr)
          ? WriteMemcpy(in, off, buf, stats)
          : (easy_.ordered_naive ? WriteNaive(in, off, buf, stats)
                                 : WriteOrderless(in, off, buf, stats));
  return r;
}

// Small I/O: the DMA engine is less efficient than memcpy below 4KB and the
// transfer completes before the core even returns to userspace (§4.4), so
// EasyIO keeps the synchronous CPU path. Enters with the write lock held.
StatusOr<size_t> EasyIoFs::WriteMemcpy(Inode& in, uint64_t off,
                                       std::span<const std::byte> buf,
                                       fs::OpStats* stats) {
  const size_t n = buf.size();
  const uint64_t first_pg = off / nova::kBlockSize;
  const uint64_t pages = (off + n - 1) / nova::kBlockSize - first_pg + 1;
  Charge(stats, &fs::OpStats::index_ns,
         params().index_base_ns + params().index_per_page_ns * pages);
  ScratchLease scratch(this);
  const Status alloc_st = AllocBlocks(pages, stats, &scratch->extents);
  if (!alloc_st.ok()) {
    in.lock.WriteUnlock();
    Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
    return alloc_st;
  }
  FillWriteEdges(in, off, n, scratch->extents, stats);
  ChunkifyInto(scratch->extents, off, n, &scratch->ranges);
  for (const ByteRange& c : scratch->ranges) {
    Timed(stats, &fs::OpStats::data_ns, [&] {
      memory()->CpuWrite(c.pmem_off, buf.data() + c.buf_off, c.bytes);
    });
  }
  scratch->sns.assign(scratch->extents.size(), dma::Sn::None());
  const Status st =
      CommitWrite(in, off, n, scratch->extents, scratch->sns, stats);
  in.lock.WriteUnlock();
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
  writes_memcpy_++;
  if (!st.ok()) {
    return st;
  }
  return n;
}

// The paper's write path (§4.2): DMA submission and metadata commit proceed
// in parallel; the lock drops at commit; the uthread parks until the
// completion record covers the SN.
StatusOr<size_t> EasyIoFs::WriteOrderless(Inode& in, uint64_t off,
                                          std::span<const std::byte> buf,
                                          fs::OpStats* stats) {
  const size_t n = buf.size();
  const uint64_t first_pg = off / nova::kBlockSize;
  const uint64_t pages = (off + n - 1) / nova::kBlockSize - first_pg + 1;
  Charge(stats, &fs::OpStats::index_ns,
         params().index_base_ns + params().index_per_page_ns * pages);
  ScratchLease scratch(this);
  const Status alloc_st = AllocBlocks(pages, stats, &scratch->extents);
  if (!alloc_st.ok()) {
    in.lock.WriteUnlock();
    Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
    return alloc_st;
  }
  FillWriteEdges(in, off, n, scratch->extents, stats);

  dma::Channel* ch = cm_->PickWriteChannel();
  ChunkifyInto(scratch->extents, off, n, &scratch->ranges);
  for (const ByteRange& c : scratch->ranges) {
    dma::Descriptor d;
    d.dir = dma::Descriptor::Dir::kWrite;
    d.pmem_off = c.pmem_off;
    d.dram = const_cast<std::byte*>(buf.data() + c.buf_off);
    d.size = static_cast<uint32_t>(c.bytes);
    scratch->batch.push_back(std::move(d));
  }
  Timed(stats, &fs::OpStats::data_ns, [&] {
    ch->SubmitBatch(std::span<dma::Descriptor>(scratch->batch),
                    &scratch->sns);
  });

  // Metadata commits while the DMA engine is still copying: the log entries
  // embed the SNs, so durability of the data is described indirectly.
  const Status st =
      CommitWrite(in, off, n, scratch->extents, scratch->sns, stats);
  const dma::Sn last_sn = scratch->sns.back();
  in.pending_channel = ch;
  in.pending_sn = last_sn;
  in.lock.WriteUnlock();  // level-1 released before the data lands
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
  writes_offloaded_++;
  if (!st.ok()) {
    return st;
  }

  // Back in the runtime: yield and resume when the I/O finishes (§4.1).
  Charge(stats, &fs::OpStats::data_ns, params().uthread_switch_ns);
  const sim::SimTime t0 = sim()->now();
  ch->WaitSn(last_sn);
  if (stats != nullptr) {
    const uint64_t waited = sim()->now() - t0;
    stats->blocked_ns += waited;
    stats->data_ns += waited;
  }
  return n;
}

// Fig 11's "Naive": strictly ordered, two interactions with the filesystem,
// lock held across the DMA wait.
StatusOr<size_t> EasyIoFs::WriteNaive(Inode& in, uint64_t off,
                                      std::span<const std::byte> buf,
                                      fs::OpStats* stats) {
  const size_t n = buf.size();
  const uint64_t first_pg = off / nova::kBlockSize;
  const uint64_t pages = (off + n - 1) / nova::kBlockSize - first_pg + 1;
  Charge(stats, &fs::OpStats::index_ns,
         params().index_base_ns + params().index_per_page_ns * pages);
  ScratchLease scratch(this);
  const Status alloc_st = AllocBlocks(pages, stats, &scratch->extents);
  if (!alloc_st.ok()) {
    in.lock.WriteUnlock();
    Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
    return alloc_st;
  }
  FillWriteEdges(in, off, n, scratch->extents, stats);

  dma::Channel* ch = cm_->PickWriteChannel();
  ChunkifyInto(scratch->extents, off, n, &scratch->ranges);
  for (const ByteRange& c : scratch->ranges) {
    dma::Descriptor d;
    d.dir = dma::Descriptor::Dir::kWrite;
    d.pmem_off = c.pmem_off;
    d.dram = const_cast<std::byte*>(buf.data() + c.buf_off);
    d.size = static_cast<uint32_t>(c.bytes);
    scratch->batch.push_back(std::move(d));
  }
  Timed(stats, &fs::OpStats::data_ns, [&] {
    ch->SubmitBatch(std::span<dma::Descriptor>(scratch->batch),
                    &scratch->sns);
  });
  const dma::Sn last_sn = scratch->sns.back();

  // First interaction returns (lock still held!); the uthread parks.
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
  Charge(stats, &fs::OpStats::data_ns, params().uthread_switch_ns);
  const sim::SimTime t0 = sim()->now();
  ch->WaitSn(last_sn);
  if (stats != nullptr) {
    const uint64_t waited = sim()->now() - t0;
    stats->blocked_ns += waited;
    stats->data_ns += waited;
  }

  // Second interaction: commit the metadata now that data is durable. The
  // submission SNs are no longer needed, so the scratch vector is reused
  // for the all-None commit SNs.
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_enter_ns);
  scratch->sns.assign(scratch->extents.size(), dma::Sn::None());
  const Status st =
      CommitWrite(in, off, n, scratch->extents, scratch->sns, stats);
  in.lock.WriteUnlock();
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
  writes_offloaded_++;
  if (!st.ok()) {
    return st;
  }
  return n;
}

StatusOr<size_t> EasyIoFs::ReadInternal(Inode& in, uint64_t off,
                                        std::span<std::byte> buf,
                                        fs::OpStats* stats) {
  in.lock.ReadLock();
  // Level-2: wait out a conflicting unfinished write (§4.3, Fig 7b).
  const uint64_t l2_wait = WaitPendingWrite(in);
  if (stats != nullptr) {
    stats->blocked_ns += l2_wait;
  }
  if (off >= in.size) {
    in.lock.ReadUnlock();
    Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
    return size_t{0};
  }
  const size_t n = std::min<uint64_t>(buf.size(), in.size - off);
  const uint64_t first_pg = off / nova::kBlockSize;
  const uint64_t pages = (off + n - 1) / nova::kBlockSize - first_pg + 1;
  Charge(stats, &fs::OpStats::index_ns,
         params().index_base_ns + params().index_per_page_ns * pages);
  ScratchLease scratch(this);
  in.pages.LookupInto(first_pg, pages, &scratch->segs);
  SegmentsToByteRanges(scratch->segs, off, n, &scratch->ranges);
  in.pending_reads++;

  // Listing 2: DMA only for >4KB and an L channel below the depth bound.
  dma::Channel* ch = nullptr;
  if (n > easy_.dma_min_bytes && cm_ != nullptr) {
    ch = cm_->PickReadChannel();
  }

  if (ch == nullptr) {
    // memcpy fallback: reads never leave an SN behind, and CoW plus the
    // pending-read count protect the blocks, so the lock drops first.
    in.lock.ReadUnlock();
    reads_memcpy_++;
    for (const ByteRange& r : scratch->ranges) {
      if (r.hole) {
        FillZero(buf.data() + r.buf_off, r.bytes, stats);
      } else {
        Timed(stats, &fs::OpStats::data_ns, [&] {
          memory()->CpuRead(buf.data() + r.buf_off, r.pmem_off, r.bytes);
        });
      }
    }
    OnReadDone(in);
    Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
    return n;
  }

  // DMA path: holes are zero-filled by the CPU, mapped ranges become one
  // batch of read descriptors.
  for (const ByteRange& r : scratch->ranges) {
    if (r.hole) {
      FillZero(buf.data() + r.buf_off, r.bytes, stats);
      continue;
    }
    dma::Descriptor d;
    d.dir = dma::Descriptor::Dir::kRead;
    d.pmem_off = r.pmem_off;
    d.dram = buf.data() + r.buf_off;
    d.size = static_cast<uint32_t>(r.bytes);
    scratch->batch.push_back(std::move(d));
  }
  reads_offloaded_++;
  if (scratch->batch.empty()) {
    in.lock.ReadUnlock();
    OnReadDone(in);
    Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
    return n;
  }
  Timed(stats, &fs::OpStats::data_ns, [&] {
    ch->SubmitBatch(std::span<dma::Descriptor>(scratch->batch),
                    &scratch->sns);
  });
  const dma::Sn last_sn = scratch->sns.back();
  in.lock.ReadUnlock();  // reads only touch timestamps; unlock at once
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);

  Charge(stats, &fs::OpStats::data_ns, params().uthread_switch_ns);
  const sim::SimTime t0 = sim()->now();
  ch->WaitSn(last_sn);
  if (stats != nullptr) {
    const uint64_t waited = sim()->now() - t0;
    stats->blocked_ns += waited;
    stats->data_ns += waited;
  }
  OnReadDone(in);
  return n;
}

Status EasyIoFs::FsyncInternal(Inode& in) {
  // Data of the (single possible) outstanding orderless write must land.
  WaitPendingWrite(in);
  return OkStatus();
}

}  // namespace easyio::core
