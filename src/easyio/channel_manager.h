// ChannelManager (paper §4.4): mediates between DMA requests and channels to
// meet the diverse goals of latency-critical (L-) and bandwidth-oriented
// (B-) applications.
//
//  * Channel separation: L-apps steer requests to up to 4 dedicated channels
//    (more causes write-bandwidth decline, §2.2); all B-apps share one.
//  * Selective offloading (Listing 2): reads are admitted to a DMA channel
//    only if some L-channel has queue depth < 2, otherwise the caller falls
//    back to memcpy; I/O <= 4KB always uses memcpy (handled by the FS).
//  * Bandwidth throttling: B-app bulk I/O is split into 64KB descriptors; an
//    epoch loop accounts the B-channel's bytes and suspends it via CHANCMD
//    once it exceeds B_APP_BW_LIMIT for the epoch, resuming at the next
//    epoch boundary.
//  * QoS feedback (Listing 1): every epoch, the minimum SLO headroom across
//    registered L-apps throttles the limit down (violation) or up (ample
//    headroom) by Delta.

#ifndef EASYIO_EASYIO_CHANNEL_MANAGER_H_
#define EASYIO_EASYIO_CHANNEL_MANAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/dma/dma_engine.h"
#include "src/sim/simulation.h"

namespace easyio::core {

// Contract (paper §4.4, Listings 1 & 2): PickWriteChannel always returns an
// L channel (writes are never denied DMA); PickReadChannel returns an L
// channel with queue depth below
// read_admission_qdepth or nullptr, and the caller MUST fall back to memcpy
// on nullptr (Listing 2). SubmitBulkWrite never splits a request across
// channels — all chunks land on the single shared B channel, preserving SN
// monotonicity for the returned last-SN. While StartThrottling is active the
// manager owns the B channel's Suspend/Resume: per check_interval_ns it
// suspends once the epoch's byte budget (b_limit_gbps × epoch_ns) is spent,
// per epoch_ns it resumes and moves the limit by delta_gbps following
// Listing 1's min-headroom feedback. Callers must not Suspend/Resume the B
// channel concurrently.
class ChannelManager {
 public:
  struct Options {
    int num_l_channels = 4;
    int b_channel = 4;  // channel index reserved for B-apps
    uint64_t epoch_ns = 20_us;
    uint64_t check_interval_ns = 4_us;  // sub-epoch budget checks
    double delta_gbps = 0.25;           // Listing 1's Delta
    double qos_threshold = 0.25;        // Listing 1's threshold
    double b_limit_init_gbps = 8.0;
    double b_limit_min_gbps = 0.25;
    double b_limit_max_gbps = 16.0;
    uint64_t bulk_split_bytes = 64_KB;
    size_t read_admission_qdepth = 2;   // Listing 2's q_deps bound

    // ---- Fault handling (see "Quarantine" below) ----
    uint64_t health_interval_ns = 20_us;  // monitor scan period
    // A channel with queued work, not suspended, making no completion
    // progress for this long is declared stalled.
    uint64_t stall_threshold_ns = 60_us;
    uint64_t quarantine_ns = 200_us;  // probation before a channel returns
    int quarantine_fault_threshold = 2;  // consumer-reported faults
  };

  // Tracks one L-app's SLO. The app (or the FS on its behalf) reports each
  // operation's latency; the manager consumes the per-epoch maximum.
  class LApp {
   public:
    explicit LApp(uint64_t target_ns) : target_ns_(target_ns) {}
    void ReportLatency(uint64_t ns) {
      epoch_max_ns_ = std::max(epoch_max_ns_, ns);
      samples_++;
    }
    uint64_t target_ns() const { return target_ns_; }

   private:
    friend class ChannelManager;
    uint64_t TakeEpochMax() {
      const uint64_t v = epoch_max_ns_;
      epoch_max_ns_ = 0;
      samples_ = 0;
      return v;
    }
    uint64_t target_ns_;
    uint64_t epoch_max_ns_ = 0;
    uint64_t samples_ = 0;
  };

  ChannelManager(sim::Simulation* sim, dma::DmaEngine* engine,
                 const Options& options);

  ChannelManager(const ChannelManager&) = delete;
  ChannelManager& operator=(const ChannelManager&) = delete;

  dma::DmaEngine* engine() const { return engine_; }
  const Options& options() const { return options_; }

  // L-app channel selection: least-loaded of the L channels (writes always
  // get one; the paper steers to up to 4 to balance reads and writes).
  // Quarantined channels are skipped; nullptr (fall back to memcpy) only
  // when every L channel is quarantined.
  dma::Channel* PickWriteChannel();
  // Striped variant: appends the `k` least-loaded healthy L channels to
  // *out (fewer if quarantine leaves fewer; possibly none).
  void PickWriteChannels(int k, std::vector<dma::Channel*>* out);
  // Listing 2's admission control: an L channel with q_deps < 2, or nullptr
  // (caller falls back to memcpy).
  dma::Channel* PickReadChannel();

  // B-app bulk write: split into bulk_split_bytes descriptors on the shared
  // B channel (so suspension never re-executes a large transfer, §4.4) and
  // batch-submitted. Returns the last SN.
  dma::Sn SubmitBulkWrite(uint64_t pmem_off, const void* src, size_t n);
  // Blocking variant used by background apps (GC): parks the calling uthread
  // until the bulk transfer completes.
  void BulkWriteAndWait(uint64_t pmem_off, const void* src, size_t n);

  dma::Channel* b_channel() { return &engine_->channel(options_.b_channel); }

  // ---- QoS loop ----
  LApp* RegisterLApp(uint64_t target_latency_ns);
  void StartThrottling();
  void StopThrottling();
  bool throttling() const { return throttling_; }
  double b_limit_gbps() const { return b_limit_gbps_; }

  // ---- Quarantine (graceful degradation under channel faults) ----
  // A quarantined channel receives no new placements (picks skip it; bulk
  // writes reroute to a healthy L channel) for quarantine_ns, then returns
  // on probation with a cleared fault score. Outstanding work on it still
  // completes through WaitSnRecover's retry/fallback path. Channels enter
  // quarantine two ways: a consumer reports transfer errors
  // (ReportChannelFault, quarantine_fault_threshold strikes) or the health
  // monitor observes a halted or stalled channel.
  bool quarantined(const dma::Channel& ch) const {
    return health_[ch.id()].quarantined;
  }
  // One fault strike against `ch` (a consumer saw a transfer error on it).
  void ReportChannelFault(dma::Channel& ch);
  // Periodic scan for halted/stalled channels. Read-only over channel state
  // except when it triggers a quarantine, so running it perturbs nothing on
  // a healthy system. Stop it before tearing the simulation down, like
  // StopThrottling.
  void StartHealthMonitor();
  void StopHealthMonitor();
  bool health_monitoring() const { return health_monitoring_; }
  uint64_t quarantines() const { return quarantines_; }

 private:
  struct ChannelHealth {
    bool quarantined = false;
    int fault_score = 0;
    sim::SimTime quarantined_until = 0;
    uint64_t last_descs = 0;        // completion progress at last scan
    sim::SimTime stalled_since = 0;  // 0 = progressing
  };

  void EpochTick();
  void BudgetCheck();
  void HealthTick();
  void Quarantine(dma::Channel& ch);

  sim::Simulation* sim_;
  dma::DmaEngine* engine_;
  Options options_;
  std::vector<std::unique_ptr<LApp>> l_apps_;
  bool throttling_ = false;
  double b_limit_gbps_;
  uint64_t epoch_start_bytes_ = 0;
  uint64_t read_rotor_ = 0;
  uint64_t throttle_generation_ = 0;  // invalidates in-flight timer events
  std::vector<ChannelHealth> health_;
  bool health_monitoring_ = false;
  uint64_t health_generation_ = 0;  // invalidates in-flight monitor events
  uint64_t quarantines_ = 0;
};

}  // namespace easyio::core

#endif  // EASYIO_EASYIO_CHANNEL_MANAGER_H_
