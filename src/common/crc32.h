// CRC32 (Castagnoli polynomial) used to checksum on-media log entries so
// mount-time recovery can detect torn or stale entries.

#ifndef EASYIO_COMMON_CRC32_H_
#define EASYIO_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace easyio {

uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace easyio

#endif  // EASYIO_COMMON_CRC32_H_
