// Lightweight error-handling vocabulary for the EasyIO codebase.
//
// The simulated kernel/filesystem code is exception-free; fallible operations
// return Status (or StatusOr<T> when they produce a value). Codes intentionally
// mirror the POSIX errno values the real NOVA would surface so that workload
// code reads naturally.

#ifndef EASYIO_COMMON_STATUS_H_
#define EASYIO_COMMON_STATUS_H_

#include <cassert>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace easyio {

enum class ErrorCode : int32_t {
  kOk = 0,
  kNotFound,       // ENOENT
  kExists,         // EEXIST
  kInvalidArgument,// EINVAL
  kNoSpace,        // ENOSPC
  kNotDir,         // ENOTDIR
  kIsDir,          // EISDIR
  kNotEmpty,       // ENOTEMPTY
  kBadFd,          // EBADF
  kTooManyLinks,   // EMLINK
  kNameTooLong,    // ENAMETOOLONG
  kIoError,        // EIO (e.g. checksum mismatch detected at read)
  kBusy,           // EBUSY
  kCorruption,     // unrecoverable on-media inconsistency found at mount
  kInternal,       // invariant violation inside the library
};

std::string_view ErrorCodeName(ErrorCode code);

// Value-type status. Cheap to copy in the OK case.
class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code, std::string message = {})
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status NotFound(std::string msg = {}) {
  return Status(ErrorCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg = {}) {
  return Status(ErrorCode::kExists, std::move(msg));
}
inline Status InvalidArgument(std::string msg = {}) {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status NoSpace(std::string msg = {}) {
  return Status(ErrorCode::kNoSpace, std::move(msg));
}
inline Status BadFd(std::string msg = {}) {
  return Status(ErrorCode::kBadFd, std::move(msg));
}
inline Status IoError(std::string msg = {}) {
  return Status(ErrorCode::kIoError, std::move(msg));
}
inline Status Corruption(std::string msg = {}) {
  return Status(ErrorCode::kCorruption, std::move(msg));
}
inline Status Internal(std::string msg = {}) {
  return Status(ErrorCode::kInternal, std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& s);

// StatusOr<T>: either a T or a non-OK Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(rep_).ok() && "StatusOr constructed from OK status");
  }
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> rep_;
};

// Propagation helpers.
#define EASYIO_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::easyio::Status easyio_status_ = (expr);    \
    if (!easyio_status_.ok()) {                  \
      return easyio_status_;                     \
    }                                            \
  } while (0)

#define EASYIO_ASSIGN_OR_RETURN(lhs, expr)       \
  EASYIO_ASSIGN_OR_RETURN_IMPL_(                 \
      EASYIO_STATUS_CONCAT_(statusor_, __LINE__), lhs, expr)

#define EASYIO_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                  \
  if (!var.ok()) {                                    \
    return var.status();                              \
  }                                                   \
  lhs = std::move(var).value()

#define EASYIO_STATUS_CONCAT_INNER_(a, b) a##b
#define EASYIO_STATUS_CONCAT_(a, b) EASYIO_STATUS_CONCAT_INNER_(a, b)

// Crash on non-OK status; for callers that have proven the call cannot fail.
#define EASYIO_CHECK_OK(expr)                              \
  do {                                                     \
    ::easyio::Status easyio_status_ = (expr);              \
    if (!easyio_status_.ok()) {                            \
      ::easyio::internal::CheckOkFailed(                   \
          easyio_status_, #expr, __FILE__, __LINE__);      \
    }                                                      \
  } while (0)

namespace internal {
[[noreturn]] void CheckOkFailed(const Status& status, const char* expr,
                                const char* file, int line);
}  // namespace internal

}  // namespace easyio

#endif  // EASYIO_COMMON_STATUS_H_
