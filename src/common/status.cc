#include "src/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace easyio {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kExists: return "EXISTS";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNoSpace: return "NO_SPACE";
    case ErrorCode::kNotDir: return "NOT_DIR";
    case ErrorCode::kIsDir: return "IS_DIR";
    case ErrorCode::kNotEmpty: return "NOT_EMPTY";
    case ErrorCode::kBadFd: return "BAD_FD";
    case ErrorCode::kTooManyLinks: return "TOO_MANY_LINKS";
    case ErrorCode::kNameTooLong: return "NAME_TOO_LONG";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kBusy: return "BUSY";
    case ErrorCode::kCorruption: return "CORRUPTION";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

namespace internal {

void CheckOkFailed(const Status& status, const char* expr, const char* file,
                   int line) {
  std::fprintf(stderr, "EASYIO_CHECK_OK failed at %s:%d: %s -> %s\n", file,
               line, expr, status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace easyio
