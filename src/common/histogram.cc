#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace easyio {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  // Top set bit selects the decade; next 6 bits select the sub-bucket.
  const int msb = 63 - std::countl_zero(value);
  const int decade = msb - 5;  // values < 64 handled above
  const int sub = static_cast<int>((value >> (msb - 6)) & (kSubBuckets - 1));
  const int idx = decade * kSubBuckets + sub;
  return std::min(idx, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < kSubBuckets) {
    return static_cast<uint64_t>(bucket);
  }
  if (bucket >= kNumBuckets - 1) {
    return UINT64_MAX;  // overflow bucket absorbs everything above the range
  }
  const int decade = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  const int msb = decade + 5;
  const uint64_t base = 1ull << msb;
  const uint64_t step = 1ull << (msb - 6);
  return base + static_cast<uint64_t>(sub + 1) * step - 1;
}

void Histogram::Record(uint64_t value_ns) {
  buckets_[BucketFor(value_ns)]++;
  count_++;
  sum_ += value_ns;
  min_ = std::min(min_, value_ns);
  max_ = std::max(max_, value_ns);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0u);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.2fus p50=%.2fus p99=%.2fus max=%.2fus",
                static_cast<unsigned long long>(count_), Mean() / 1e3,
                P50() / 1e3, P99() / 1e3, static_cast<double>(max_) / 1e3);
  return buf;
}

}  // namespace easyio
