// Byte and time unit helpers shared across the codebase.
//
// Virtual time in the simulator is a plain uint64_t of nanoseconds (SimTime in
// src/sim/time.h); these helpers keep call sites readable.

#ifndef EASYIO_COMMON_UNITS_H_
#define EASYIO_COMMON_UNITS_H_

#include <cstdint>

namespace easyio {

constexpr uint64_t operator""_KB(unsigned long long v) { return v << 10; }
constexpr uint64_t operator""_MB(unsigned long long v) { return v << 20; }
constexpr uint64_t operator""_GB(unsigned long long v) { return v << 30; }

constexpr uint64_t operator""_ns(unsigned long long v) { return v; }
constexpr uint64_t operator""_us(unsigned long long v) { return v * 1000; }
constexpr uint64_t operator""_ms(unsigned long long v) { return v * 1000 * 1000; }
constexpr uint64_t operator""_s(unsigned long long v) {
  return v * 1000ull * 1000 * 1000;
}

// Bandwidth expressed as bytes per second; transfers convert to nanoseconds.
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

// Duration in ns of moving `bytes` at `gbps` (GiB/s).
constexpr uint64_t TransferNs(uint64_t bytes, double gbps) {
  return static_cast<uint64_t>(static_cast<double>(bytes) / (gbps * kGiB) * 1e9);
}

// Bandwidth in GiB/s of moving `bytes` in `ns`.
constexpr double GibPerSec(uint64_t bytes, uint64_t ns) {
  return ns == 0 ? 0.0
                 : static_cast<double>(bytes) / kGiB /
                       (static_cast<double>(ns) / 1e9);
}

}  // namespace easyio

#endif  // EASYIO_COMMON_UNITS_H_
