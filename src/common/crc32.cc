#include "src/common/crc32.h"

#include <array>

namespace easyio {

namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // CRC32C, reflected

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = MakeTable();

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xff];
  }
  return ~crc;
}

}  // namespace easyio
