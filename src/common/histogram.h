// Latency histogram with percentile queries.
//
// Log-linear bucketing (64 linear buckets per power-of-two decade) keeps the
// footprint constant while giving <1.6% relative error on percentiles, which
// is plenty for reproducing the paper's avg/P99 latency curves.

#ifndef EASYIO_COMMON_HISTOGRAM_H_
#define EASYIO_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace easyio {

class Histogram {
 public:
  Histogram();

  void Record(uint64_t value_ns);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  // q in [0, 1]; returns an upper-bound estimate of the q-quantile.
  uint64_t Percentile(double q) const;

  uint64_t P50() const { return Percentile(0.50); }
  uint64_t P99() const { return Percentile(0.99); }
  uint64_t P999() const { return Percentile(0.999); }

  // Human-readable one-line summary in microseconds.
  std::string Summary() const;

 private:
  static constexpr int kSubBuckets = 64;
  static constexpr int kDecades = 40;  // covers [0, 2^40) ns ≈ 18 minutes
  static constexpr int kNumBuckets = kSubBuckets * kDecades;

  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);

  std::vector<uint32_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace easyio

#endif  // EASYIO_COMMON_HISTOGRAM_H_
