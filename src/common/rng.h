// Deterministic pseudo-random number generation for workloads and models.
//
// All stochastic behaviour in the simulator (workload key choice, Poisson
// arrivals, crash-point sampling) flows through Rng instances seeded from the
// experiment configuration, so every run is exactly reproducible.

#ifndef EASYIO_COMMON_RNG_H_
#define EASYIO_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace easyio {

// xoshiro256** — fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into the four state words.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / (1ull << 53)); }

  // Exponentially distributed inter-arrival gap with the given mean
  // (Poisson process helper for the open-loop web-server client).
  double NextExponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) {
      u = 1e-18;
    }
    return -mean * std::log(u);
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace easyio

#endif  // EASYIO_COMMON_RNG_H_
