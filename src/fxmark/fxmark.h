// FxMark-style microbenchmark harness (paper §6.2, [ATC'16]).
//
// Reproduces the three workloads the paper evaluates:
//   DWAL - each worker writes sequentially through its private, preallocated
//          file (wrapping at the end); the paper's append-to-private-log
//          pattern with bounded space, since NOVA's CoW makes append and
//          overwrite cost-identical.
//   DRBL - each worker reads random io_size-aligned blocks of its private
//          file.
//   DWOM - all workers overwrite random blocks of one shared file (the
//          lock-contention workload of Fig 11).
//
// Workers run as uthreads: synchronous filesystems get one pinned worker per
// core; EasyIO gets `uthreads_per_core` (2 in the paper) multiplexed by the
// Caladan-style scheduler. Results aggregate throughput, latency
// distribution, and per-op CPU time over a warmup + measurement window of
// virtual time.

#ifndef EASYIO_FXMARK_FXMARK_H_
#define EASYIO_FXMARK_FXMARK_H_

#include <cstdint>
#include <string>

#include "src/common/histogram.h"
#include "src/common/units.h"
#include "src/harness/testbed.h"

namespace easyio::fxmark {

enum class Workload { kDWAL, kDRBL, kDWOM };

inline const char* WorkloadName(Workload w) {
  switch (w) {
    case Workload::kDWAL: return "DWAL";
    case Workload::kDRBL: return "DRBL";
    case Workload::kDWOM: return "DWOM";
  }
  return "?";
}

struct RunConfig {
  harness::FsKind fs = harness::FsKind::kEasy;
  Workload workload = Workload::kDWAL;
  int cores = 1;
  int uthreads_per_core = 1;     // paper uses 2 for EasyIO
  uint64_t io_size = 16_KB;
  uint64_t file_bytes = 4_MB;    // private file size (shared file for DWOM)
  uint64_t warmup_ns = 10_ms;
  uint64_t measure_ns = 60_ms;
  uint64_t seed = 42;
  size_t device_bytes = 1_GB;
  int machine_cores = 36;
  // Overrides applied to the testbed (media model etc.).
  pmem::MediaParams media = pmem::MediaParams::TwoNode();
  core::ChannelManager::Options cm_options;
  core::EasyIoFs::EasyOptions easy_options;
  // DMA fault plan forwarded to the testbed; empty = injection off.
  dma::FaultPlan faults;
};

struct RunResult {
  uint64_t ops = 0;
  double mops = 0;             // measured throughput, million ops/s
  double gib_per_sec = 0;      // data throughput
  Histogram latency;           // per-op end-to-end
  double avg_cpu_ns = 0;       // mean CPU time per op
  double avg_latency_ns = 0;
  uint64_t p99_ns = 0;
};

// Runs one configuration to completion (builds its own Testbed).
RunResult Run(const RunConfig& config);

// Sweeps worker core counts and returns the minimum that reaches
// `fraction` (e.g. 0.95) of the peak throughput seen across the sweep —
// the paper's "cores at peak" tables in Fig 9.
//
// Each sweep point is an independent Simulation, so the sweep fans out
// across `jobs` host threads (harness::ScenarioRunner); results come back
// in core_counts order and are byte-identical for any jobs value.
struct CoreSweepPoint {
  int cores;
  RunResult result;
};
std::vector<CoreSweepPoint> SweepCores(RunConfig config,
                                       const std::vector<int>& core_counts,
                                       int jobs = 1);
int CoresAtPeak(const std::vector<CoreSweepPoint>& sweep, double fraction);

}  // namespace easyio::fxmark

#endif  // EASYIO_FXMARK_FXMARK_H_
