#include "src/fxmark/fxmark.h"

#include <algorithm>
#include <cassert>

#include "src/common/rng.h"
#include "src/harness/scenario_runner.h"

namespace easyio::fxmark {

namespace {

struct SharedState {
  bool measuring = false;
  bool stop = false;
};

}  // namespace

RunResult Run(const RunConfig& config) {
  harness::TestbedConfig tb_cfg;
  tb_cfg.fs = config.fs;
  tb_cfg.machine_cores = config.machine_cores;
  tb_cfg.device_bytes = config.device_bytes;
  tb_cfg.media = config.media;
  tb_cfg.cm_options = config.cm_options;
  tb_cfg.easy_options = config.easy_options;
  tb_cfg.faults = config.faults;
  harness::Testbed tb(tb_cfg);
  sim::Simulation& sim = tb.sim();

  const bool is_easy = config.fs == harness::FsKind::kEasy ||
                       config.fs == harness::FsKind::kEasyNaive;
  const int uthreads_per_core = is_easy ? config.uthreads_per_core : 1;
  const int workers = config.cores * uthreads_per_core;
  const bool shared_file = config.workload == Workload::kDWOM;
  const int files = shared_file ? 1 : workers;

  // ---- setup phase: preallocate files with one streaming writer ----
  std::vector<int> fds(static_cast<size_t>(workers));
  sim.Spawn(0, [&] {
    std::vector<std::byte> block(1_MB, std::byte{0x5a});
    for (int f = 0; f < files; ++f) {
      const std::string path = "/fx" + std::to_string(f);
      int fd = *tb.fs().Create(path);
      for (uint64_t off = 0; off < config.file_bytes; off += block.size()) {
        const size_t n =
            std::min<uint64_t>(block.size(), config.file_bytes - off);
        EASYIO_CHECK_OK(
            tb.fs().Write(fd, off, std::span(block).subspan(0, n)).status());
      }
      if (shared_file) {
        for (int w = 0; w < workers; ++w) {
          fds[static_cast<size_t>(w)] = fd;
        }
      } else {
        fds[static_cast<size_t>(f)] = fd;
      }
    }
  });
  sim.Run();

  // ---- measured phase ----
  auto* sched = tb.MakeScheduler(config.cores, /*work_stealing=*/is_easy);
  SharedState state;
  std::vector<Histogram> lat(static_cast<size_t>(workers));
  std::vector<uint64_t> cpu_sum(static_cast<size_t>(workers), 0);
  std::vector<uint64_t> ops(static_cast<size_t>(workers), 0);
  std::vector<uint64_t> bytes(static_cast<size_t>(workers), 0);

  const sim::SimTime t_start = sim.now();
  sim.ScheduleAt(t_start + config.warmup_ns,
                 [&state] { state.measuring = true; });
  sim.ScheduleAt(t_start + config.warmup_ns + config.measure_ns,
                 [&state] { state.stop = true; });

  const uint64_t blocks_per_file =
      std::max<uint64_t>(1, config.file_bytes / config.io_size);

  for (int w = 0; w < workers; ++w) {
    const int core = w % config.cores;
    sched->SpawnOn(core, [&, w] {
      Rng rng(config.seed * 7919 + static_cast<uint64_t>(w));
      std::vector<std::byte> buf(config.io_size);
      for (auto& b : buf) {
        b = static_cast<std::byte>(rng.Next());
      }
      const int fd = fds[static_cast<size_t>(w)];
      uint64_t seq_block = 0;
      while (!state.stop) {
        uint64_t off = 0;
        switch (config.workload) {
          case Workload::kDWAL:
            off = (seq_block++ % blocks_per_file) * config.io_size;
            break;
          case Workload::kDRBL:
          case Workload::kDWOM:
            off = rng.Below(blocks_per_file) * config.io_size;
            break;
        }
        fs::OpStats st;
        if (config.workload == Workload::kDRBL) {
          EASYIO_CHECK_OK(tb.fs().Read(fd, off, buf, &st).status());
        } else {
          EASYIO_CHECK_OK(tb.fs().Write(fd, off, buf, &st).status());
        }
        if (state.measuring && !state.stop) {
          lat[static_cast<size_t>(w)].Record(st.total_ns);
          cpu_sum[static_cast<size_t>(w)] += st.cpu_ns;
          ops[static_cast<size_t>(w)]++;
          bytes[static_cast<size_t>(w)] += config.io_size;
        }
      }
    });
  }
  sim.Run();

  RunResult result;
  uint64_t total_cpu = 0;
  uint64_t total_bytes = 0;
  for (int w = 0; w < workers; ++w) {
    result.ops += ops[static_cast<size_t>(w)];
    total_cpu += cpu_sum[static_cast<size_t>(w)];
    total_bytes += bytes[static_cast<size_t>(w)];
    result.latency.Merge(lat[static_cast<size_t>(w)]);
  }
  result.mops = static_cast<double>(result.ops) /
                (static_cast<double>(config.measure_ns) / 1e9) / 1e6;
  result.gib_per_sec = GibPerSec(total_bytes, config.measure_ns);
  result.avg_cpu_ns =
      result.ops == 0 ? 0
                      : static_cast<double>(total_cpu) /
                            static_cast<double>(result.ops);
  result.avg_latency_ns = result.latency.Mean();
  result.p99_ns = result.latency.P99();
  return result;
}

std::vector<CoreSweepPoint> SweepCores(RunConfig config,
                                       const std::vector<int>& core_counts,
                                       int jobs) {
  return harness::RunIndexed(jobs, core_counts.size(), [&](size_t i) {
    RunConfig point_cfg = config;
    point_cfg.cores = core_counts[i];
    return CoreSweepPoint{core_counts[i], Run(point_cfg)};
  });
}

int CoresAtPeak(const std::vector<CoreSweepPoint>& sweep, double fraction) {
  double peak = 0;
  for (const auto& point : sweep) {
    peak = std::max(peak, point.result.mops);
  }
  for (const auto& point : sweep) {
    if (point.result.mops >= fraction * peak) {
      return point.cores;
    }
  }
  return sweep.empty() ? 0 : sweep.back().cores;
}

}  // namespace easyio::fxmark
