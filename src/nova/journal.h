// Lightweight per-core redo journal for multi-inode atomicity (NOVA §3.5
// style): create/unlink/link/rename must update a directory log tail and one
// or two inode fields together. The record is persisted, committed with a
// state flag, applied, then cleared; mount-time recovery replays committed
// records, making the group of 8-byte writes atomic across crashes.

#ifndef EASYIO_NOVA_JOURNAL_H_
#define EASYIO_NOVA_JOURNAL_H_

#include <cstdint>
#include <span>

#include "src/nova/layout.h"
#include "src/pmem/slow_memory.h"

namespace easyio::nova {

class Journal {
 public:
  Journal(pmem::SlowMemory* mem, uint64_t region_off, uint64_t slots)
      : mem_(mem), region_off_(region_off), slots_(slots) {}

  // Atomically applies up to JournalRecord::kMaxWrites 8-byte pmem writes.
  // `slot_hint` selects the per-core journal slot (any value accepted).
  void CommitAndApply(std::span<const JournalRecord::JWrite> writes,
                      int slot_hint);

  // Replays committed-but-uncleared records found in a mounted image.
  // Returns the number of records replayed.
  static int Recover(pmem::SlowMemory* mem, uint64_t region_off,
                     uint64_t slots);

 private:
  uint64_t SlotOff(int slot_hint) const {
    const uint64_t idx =
        static_cast<uint64_t>(slot_hint) % slots_;
    return region_off_ + idx * kBlockSize;
  }

  pmem::SlowMemory* mem_;
  uint64_t region_off_;
  uint64_t slots_;
};

}  // namespace easyio::nova

#endif  // EASYIO_NOVA_JOURNAL_H_
