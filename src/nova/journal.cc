#include "src/nova/journal.h"

#include <cassert>
#include <cstring>

namespace easyio::nova {

void Journal::CommitAndApply(std::span<const JournalRecord::JWrite> writes,
                             int slot_hint) {
  assert(writes.size() <= JournalRecord::kMaxWrites);
  const uint64_t off = SlotOff(slot_hint);
  auto* rec = mem_->As<JournalRecord>(off);
  assert(rec->state == 0 && "journal slot busy");

  // 1. Persist the record body (uncommitted).
  JournalRecord body{};
  body.state = 0;
  body.count = writes.size();
  for (size_t i = 0; i < writes.size(); ++i) {
    body.writes[i] = writes[i];
  }
  body.csum = body.ComputeCsum();
  mem_->MetaWrite(off, &body, sizeof(body));

  // 2. Commit.
  const uint64_t committed = 1;
  mem_->MetaWrite(off + offsetof(JournalRecord, state), &committed,
                  sizeof(committed));

  // 3. Apply the redo writes.
  for (const auto& w : writes) {
    mem_->MetaWrite(w.off, &w.value, sizeof(w.value));
  }

  // 4. Clear.
  const uint64_t free_state = 0;
  mem_->MetaWrite(off + offsetof(JournalRecord, state), &free_state,
                  sizeof(free_state));
}

int Journal::Recover(pmem::SlowMemory* mem, uint64_t region_off,
                     uint64_t slots) {
  int replayed = 0;
  for (uint64_t s = 0; s < slots; ++s) {
    const uint64_t off = region_off + s * kBlockSize;
    auto* rec = mem->As<JournalRecord>(off);
    if (rec->state != 1) {
      continue;
    }
    if (rec->csum != rec->ComputeCsum() ||
        rec->count > JournalRecord::kMaxWrites) {
      // Torn record that never fully committed; a crash between steps 1 and
      // 2 cannot produce this (state is only set after the body persists),
      // so treat as corruption-safe: discard.
      const uint64_t free_state = 0;
      mem->MetaWrite(off + offsetof(JournalRecord, state), &free_state,
                     sizeof(free_state));
      continue;
    }
    for (uint64_t i = 0; i < rec->count; ++i) {
      const auto w = rec->writes[i];
      mem->MetaWrite(w.off, &w.value, sizeof(w.value));
    }
    const uint64_t free_state = 0;
    mem->MetaWrite(off + offsetof(JournalRecord, state), &free_state,
                   sizeof(free_state));
    replayed++;
  }
  return replayed;
}

}  // namespace easyio::nova
