#include "src/nova/nova_fs.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>

#include "src/common/units.h"
#include "src/dma/channel.h"
#include "src/obs/trace.h"

namespace easyio::nova {

namespace {

constexpr int kFirstFd = 3;

}  // namespace

NovaFs::NovaFs(pmem::SlowMemory* mem, const Options& options)
    : mem_(mem),
      sim_(mem->simulation()),
      options_(options),
      namespace_lock_(mem->simulation()) {
  layout_ = Layout::Compute(mem->size(), options.inode_count,
                            options.journal_slots, options.comp_channels);
  allocator_ = std::make_unique<BlockAllocator>(
      layout_.block_area_off, layout_.block_count, options.alloc_shards);
  journal_ = std::make_unique<Journal>(mem, layout_.journal_off,
                                       layout_.journal_slots);
}

NovaFs::~NovaFs() = default;

// ---------------------------------------------------------------- format ----

Status NovaFs::Format() {
  if (layout_.block_count < 16) {
    return InvalidArgument("device too small");
  }
  // Zero the metadata regions (fresh media may carry stale state).
  std::memset(mem_->raw() + layout_.comp_region_off, 0,
              layout_.inode_table_off + layout_.inode_count * kPInodeSize -
                  layout_.comp_region_off);

  Superblock sb{};
  sb.magic = kMagic;
  sb.device_size = mem_->size();
  sb.comp_region_off = layout_.comp_region_off;
  sb.comp_channels = layout_.comp_channels;
  sb.journal_off = layout_.journal_off;
  sb.journal_slots = layout_.journal_slots;
  sb.inode_table_off = layout_.inode_table_off;
  sb.inode_count = layout_.inode_count;
  sb.block_area_off = layout_.block_area_off;
  sb.block_count = layout_.block_count;
  sb.csum = sb.ComputeCsum();
  mem_->MetaWrite(0, &sb, sizeof(sb));

  // Root directory at slot 0.
  PInode root{};
  root.ino = kRootIno;
  root.flags = PInode::kFlagValid | PInode::kFlagDir;
  root.nlink = 1;
  root.mtime_ns = sim_->now();
  mem_->MetaWrite(PInodeOff(0), &root, sizeof(root));

  auto in = std::make_unique<Inode>(sim_, kRootIno, 0);
  in->is_dir = true;
  in->mtime_ns = root.mtime_ns;
  inodes_.emplace(kRootIno, std::move(in));

  free_slots_.clear();
  for (uint64_t slot = layout_.inode_count; slot-- > 1;) {
    free_slots_.push_back(slot);
  }
  return OkStatus();
}

// ----------------------------------------------------------------- mount ----

uint64_t NovaFs::CompletedSeqOf(uint8_t channel) const {
  // The channel index comes from on-media log entries, so it must be
  // validated against the layout before indexing the record region: a
  // corrupted or stale entry naming a channel we never had would otherwise
  // read whatever bytes follow the region as a "completion record". Zero
  // (nothing ever completed) makes recovery discard the entry — the safe
  // direction.
  if (channel >= layout_.comp_channels) {
    return 0;
  }
  return mem_
      ->As<dma::CompletionRecord>(layout_.comp_region_off +
                                  channel * sizeof(dma::CompletionRecord))
      ->CompletedSeq();
}

Status NovaFs::Mount() {
  const auto* sb = mem_->As<Superblock>(0);
  if (sb->magic != kMagic) {
    return Corruption("bad superblock magic");
  }
  if (sb->csum != sb->ComputeCsum()) {
    return Corruption("superblock checksum mismatch");
  }
  if (sb->device_size != mem_->size() ||
      sb->inode_count != layout_.inode_count ||
      sb->journal_slots != layout_.journal_slots ||
      sb->comp_channels != layout_.comp_channels) {
    return Corruption("superblock layout mismatch");
  }

  recovery_replayed_journals_ = static_cast<uint64_t>(Journal::Recover(
      mem_, layout_.journal_off, layout_.journal_slots));
  recovery_discarded_entries_ = 0;

  inodes_.clear();
  free_slots_.clear();
  fd_table_.clear();
  free_fds_.clear();
  allocator_->BeginRecovery();

  for (uint64_t slot = 0; slot < layout_.inode_count; ++slot) {
    const auto* pi = mem_->As<PInode>(PInodeOff(slot));
    if (!pi->valid() || pi->nlink == 0) {
      if (slot != 0) {
        free_slots_.push_back(slot);
      }
      continue;
    }
    EASYIO_RETURN_IF_ERROR(RecoverInode(slot));
  }
  std::reverse(free_slots_.begin(), free_slots_.end());

  if (!inodes_.contains(kRootIno)) {
    allocator_->FinishRecovery();
    return Corruption("root inode missing");
  }
  allocator_->FinishRecovery();

  // Verify directory references.
  for (auto& [ino, in] : inodes_) {
    if (!in->is_dir) {
      continue;
    }
    for (auto& [name, child] : in->dentries) {
      if (!inodes_.contains(child)) {
        return Corruption("dangling dentry " + name);
      }
    }
  }
  return OkStatus();
}

Status NovaFs::RecoverInode(uint64_t slot) {
  const auto* pi = mem_->As<PInode>(PInodeOff(slot));
  auto in = std::make_unique<Inode>(sim_, pi->ino, slot);
  in->is_dir = pi->is_dir();
  in->nlink = pi->nlink;
  in->mtime_ns = pi->mtime_ns;
  in->log_head = pi->log_head;
  in->log_tail = pi->log_tail;

  if (in->log_tail == 0 && in->log_head != 0) {
    // Crash between first-page allocation and the first commit: reset.
    const uint64_t zero = 0;
    mem_->MetaWrite(PInodeOff(slot) + offsetof(PInode, log_head), &zero,
                    sizeof(zero));
    in->log_head = 0;
  }
  in->log_next = in->log_tail;

  std::vector<Extent> replay_displaced;
  uint64_t page = in->log_head;
  bool done = in->log_tail == 0;
  while (!done && page != 0) {
    allocator_->MarkUsed(page, 1);
    in->log_pages++;
    for (uint64_t s = 1; s <= kEntriesPerLogPage && !done; ++s) {
      const uint64_t off = page + s * kLogEntrySize;
      if (off == in->log_tail) {
        done = true;
        break;
      }
      const auto type = static_cast<EntryType>(*mem_->As<uint8_t>(off));
      switch (type) {
        case EntryType::kWrite: {
          const auto* e = mem_->As<WriteEntry>(off);
          if (e->csum != e->ComputeCsum()) {
            return Corruption("write entry checksum");
          }
          const dma::Sn sn = dma::Sn::Unpack(e->sn_packed);
          const bool complete =
              sn.none() || CompletedSeqOf(sn.channel) >= sn.seq;
          if (!complete) {
            // Committed metadata whose DMA never finished: discard (§4.2).
            recovery_discarded_entries_++;
            break;
          }
          // Displaced blocks become free simply by not being marked used.
          replay_displaced.clear();
          in->pages.Insert(e->pgoff, e->num_pages, e->block_off, 0,
                           &replay_displaced);
          in->size = std::max(in->size, e->new_size);
          in->mtime_ns = std::max(in->mtime_ns, e->mtime_ns);
          break;
        }
        case EntryType::kDentryAdd: {
          const auto* e = mem_->As<DentryEntry>(off);
          if (e->csum != e->ComputeCsum()) {
            return Corruption("dentry entry checksum");
          }
          in->dentries[std::string(e->name,
                                   std::min<size_t>(e->name_len,
                                                    kMaxNameLen))] =
              e->child_ino;
          in->mtime_ns = std::max(in->mtime_ns, e->mtime_ns);
          break;
        }
        case EntryType::kDentryRemove: {
          const auto* e = mem_->As<DentryEntry>(off);
          if (e->csum != e->ComputeCsum()) {
            return Corruption("dentry entry checksum");
          }
          in->dentries.erase(std::string(
              e->name, std::min<size_t>(e->name_len, kMaxNameLen)));
          in->mtime_ns = std::max(in->mtime_ns, e->mtime_ns);
          break;
        }
        case EntryType::kInvalid:
        default:
          return Corruption("invalid log entry type");
      }
    }
    if (!done) {
      if (page + kBlockSize == in->log_tail) {
        done = true;
        break;
      }
      const uint64_t next = mem_->As<LogPageHeader>(page)->next_page;
      if (next == 0) {
        return Corruption("log chain ends before tail");
      }
      page = next;
    }
  }

  // Mark live data blocks.
  in->pages.ForEachSegment(0, UINT64_MAX / kBlockSize,
                           [this](const PageMap::Segment& seg) {
                             if (!seg.hole) {
                               allocator_->MarkUsed(seg.block_off, seg.pages);
                             }
                           });
  inodes_.emplace(in->ino, std::move(in));
  return OkStatus();
}

// ------------------------------------------------------------- accounting ---

void NovaFs::Charge(fs::OpStats* stats, uint64_t fs::OpStats::*cat,
                    uint64_t ns) {
  if (ns == 0) {
    return;
  }
  sim_->Advance(ns);
  if (stats != nullptr) {
    stats->*cat += ns;
  }
}

// ------------------------------------------------------------ log append ----

Status NovaFs::AppendLogEntry(Inode& in, const void* entry,
                              fs::OpStats* stats) {
  // Chain a new log page if needed.
  const bool page_full =
      in.log_next != 0 && in.log_next % kBlockSize == 0;
  if (in.log_next == 0 || page_full) {
    auto page = allocator_->Alloc(1, sim_->current() != nullptr
                                         ? sim_->current()->core()
                                         : 0);
    if (!page.ok()) {
      return page.status();
    }
    Charge(stats, &fs::OpStats::meta_ns, params().alloc_per_page_ns);
    LogPageHeader hdr{};
    Timed(stats, &fs::OpStats::meta_ns, [&] {
      mem_->MetaWrite(page->block_off, &hdr, sizeof(hdr));
    });
    in.log_pages++;
    if (in.log_next == 0) {
      // First page: publish via log_head (atomic 8-byte store; harmless if a
      // crash strikes before the first commit — Mount resets it).
      Timed(stats, &fs::OpStats::meta_ns, [&] {
        mem_->MetaWrite(PInodeOff(in.slot) + offsetof(PInode, log_head),
                        &page->block_off, sizeof(uint64_t));
      });
      in.log_head = page->block_off;
    } else {
      const uint64_t prev_page = in.log_next - kBlockSize;
      Timed(stats, &fs::OpStats::meta_ns, [&] {
        mem_->MetaWrite(prev_page + offsetof(LogPageHeader, next_page),
                        &page->block_off, sizeof(uint64_t));
      });
    }
    in.log_next = page->block_off + sizeof(LogPageHeader);
  }

  Timed(stats, &fs::OpStats::meta_ns, [&] {
    mem_->MetaWrite(in.log_next, entry, kLogEntrySize);
  });
  in.log_next += kLogEntrySize;
  return OkStatus();
}

void NovaFs::CommitLogTail(Inode& in, fs::OpStats* stats) {
  Timed(stats, &fs::OpStats::meta_ns, [&] {
    mem_->MetaWrite(PInodeOff(in.slot) + offsetof(PInode, log_tail),
                    &in.log_next, sizeof(uint64_t));
  });
  in.log_tail = in.log_next;
}

// ----------------------------------------------------------- write helpers --

Status NovaFs::AllocBlocks(uint64_t pages, fs::OpStats* stats,
                           std::vector<Extent>* out) {
  const int hint = sim_->current() != nullptr ? sim_->current()->core() : 0;
  const Status st = allocator_->AllocMultiInto(pages, hint, out);
  if (st.ok()) {
    // Per-write fixed bookkeeping (inode update, VFS write path) plus the
    // per-page allocator cost.
    Charge(stats, &fs::OpStats::meta_ns,
           params().meta_write_fixed_ns + params().alloc_per_page_ns * pages);
  }
  return st;
}

void NovaFs::FillWriteEdges(Inode& in, uint64_t off, size_t n,
                            const std::vector<Extent>& extents,
                            fs::OpStats* stats) {
  const uint64_t first_pg = off / kBlockSize;
  const uint64_t head_bytes = off % kBlockSize;
  const uint64_t end = off + n;
  const uint64_t last_pg = (end - 1) / kBlockSize;
  const uint64_t tail_keep =
      end % kBlockSize == 0 ? 0
                            : std::min<uint64_t>(kBlockSize - end % kBlockSize,
                                                 in.size > end ? in.size - end
                                                               : 0);

  auto block_of = [&](uint64_t pg) -> uint64_t {
    // Locate pg within the new extents (which cover [first_pg, last_pg]).
    uint64_t idx = pg - first_pg;
    for (const Extent& e : extents) {
      if (idx < e.pages) {
        return e.block_off + idx * kBlockSize;
      }
      idx -= e.pages;
    }
    assert(false && "page outside write extents");
    return 0;
  };

  auto copy_old = [&](uint64_t pg, uint64_t in_page_off, uint64_t bytes) {
    if (bytes == 0) {
      return;
    }
    // A single page resolves to exactly one segment: mapped or hole.
    uint64_t src_block = 0;
    bool mapped = false;
    in.pages.ForEachSegment(pg, 1, [&](const PageMap::Segment& seg) {
      if (!seg.hole) {
        mapped = true;
        src_block = seg.block_off;
      }
    });
    const uint64_t dst = block_of(pg) + in_page_off;
    if (mapped) {
      // pmem-to-pmem preserve copy; charged as CPU data movement.
      std::memcpy(mem_->raw() + dst, mem_->raw() + src_block + in_page_off,
                  bytes);
      Charge(stats, &fs::OpStats::data_ns,
             TransferNs(bytes, params().cpu_read_cap.at_4k));
    } else {
      std::memset(mem_->raw() + dst, 0, bytes);
    }
  };

  if (head_bytes > 0) {
    copy_old(first_pg, 0, head_bytes);
  }
  if (tail_keep > 0) {
    copy_old(last_pg, end % kBlockSize, tail_keep);
  }
  // Zero the unwritten remainder of the last block (beyond both the write
  // and any preserved old data), preserving the invariant that mapped bytes
  // past the file size read as zero after a later size extension.
  if (end % kBlockSize != 0) {
    const uint64_t zero_from = end % kBlockSize + tail_keep;
    if (zero_from < kBlockSize) {
      std::memset(mem_->raw() + block_of(last_pg) + zero_from, 0,
                  kBlockSize - zero_from);
    }
  }
}

Status NovaFs::CommitWrite(Inode& in, uint64_t off, size_t n,
                           const std::vector<Extent>& extents,
                           const std::vector<dma::Sn>& sns,
                           fs::OpStats* stats) {
  assert(extents.size() == sns.size());
  const uint64_t trace_id = stats != nullptr ? stats->trace_op_id : 0;
  const sim::SimTime commit_t0 = sim_->now();
  const uint64_t new_size = std::max<uint64_t>(in.size, off + n);
  const uint64_t mtime = sim_->now();
  uint64_t pg = off / kBlockSize;
  for (size_t i = 0; i < extents.size(); ++i) {
    WriteEntry e{};
    e.type = static_cast<uint8_t>(EntryType::kWrite);
    e.pgoff = pg;
    e.num_pages = extents[i].pages;
    e.block_off = extents[i].block_off;
    e.new_size = new_size;
    e.mtime_ns = mtime;
    e.sn_packed = sns[i].Pack();
    e.csum = e.ComputeCsum();
    EASYIO_RETURN_IF_ERROR(AppendLogEntry(in, &e, stats));
    pg += extents[i].pages;
  }
  CommitLogTail(in, stats);

  // DRAM state.
  ScratchLease scratch(this);
  pg = off / kBlockSize;
  for (size_t i = 0; i < extents.size(); ++i) {
    in.pages.Insert(pg, extents[i].pages, extents[i].block_off,
                    sns[i].Pack(), &scratch->displaced);
    pg += extents[i].pages;
  }
  in.size = new_size;
  in.mtime_ns = mtime;
  ReleaseBlocks(in, scratch->displaced);
  if (trace_id != 0) {
    if (auto* t = obs::Get())
      t->AsyncSpan(trace_id, "commit", commit_t0, sim_->now(),
                   {{"entries", extents.size()}});
  }
  return OkStatus();
}

uint64_t NovaFs::WaitPendingWrite(Inode& in) {
  if (in.pending_channel == nullptr && in.pending_stripes.empty()) {
    return 0;
  }
  if (in.pending_stripes.empty() && in.pending_channel != nullptr &&
      in.pending_channel->IsComplete(in.pending_sn)) {
    in.pending_channel = nullptr;
    in.pending_sn = dma::Sn::None();
    return 0;
  }
  const sim::SimTime t0 = sim_->now();
  if (in.pending_channel != nullptr) {
    // Wait before clearing: a concurrent level-2 waiter that finds the
    // fields set must also wait, so the fields stay published until the SN
    // is actually covered.
    dma::Channel* ch = in.pending_channel;
    const dma::Sn sn = in.pending_sn;
    ch->WaitSnRecover(sn, recover_policy_);
    in.pending_channel = nullptr;
    in.pending_sn = dma::Sn::None();
  }
  while (!in.pending_stripes.empty()) {
    // Same publish-until-covered discipline; the wait can yield, so another
    // waiter may drain entries concurrently — only remove the entry we
    // waited on if it is still there.
    const auto entry = in.pending_stripes.back();
    entry.first->WaitSnRecover(entry.second, recover_policy_);
    if (!in.pending_stripes.empty() && in.pending_stripes.back() == entry) {
      in.pending_stripes.pop_back();
    }
  }
  return sim_->now() - t0;
}

void NovaFs::MaybeCompactLog(Inode& in, fs::OpStats* stats) {
  // NOVA §3.6-style thorough GC: triggered once the chain is 4x larger than
  // its live entries need. Only at op boundaries (tail == next) and with no
  // outstanding orderless write (callers run WaitPendingWrite first).
  assert(in.log_tail == in.log_next);
  if (in.log_pages < options_.gc_min_pages) {
    return;
  }
  const uint64_t live =
      in.pages.extent_count() + (in.is_dir ? in.dentries.size() : 0);
  const uint64_t needed_pages =
      std::max<uint64_t>(1, (live + kEntriesPerLogPage - 1) /
                                kEntriesPerLogPage);
  if (in.log_pages < 4 * needed_pages) {
    return;
  }

  // Build the replacement chain (best effort: bail out on allocation
  // pressure; the old log stays valid).
  const sim::SimTime gc_t0 = sim_->now();
  const uint64_t gc_old_pages = in.log_pages;
  auto new_pages = allocator_->AllocMulti(needed_pages, 0);
  if (!new_pages.ok()) {
    return;
  }
  std::vector<uint64_t> pages;
  for (const Extent& e : *new_pages) {
    for (uint64_t i = 0; i < e.pages; ++i) {
      pages.push_back(e.block_off + i * kBlockSize);
    }
  }
  // Link headers.
  for (size_t i = 0; i < pages.size(); ++i) {
    LogPageHeader hdr{};
    hdr.next_page = i + 1 < pages.size() ? pages[i + 1] : 0;
    Timed(stats, &fs::OpStats::meta_ns,
          [&] { mem_->MetaWrite(pages[i], &hdr, sizeof(hdr)); });
  }
  // Write the live entries.
  uint64_t write_off = pages[0] + sizeof(LogPageHeader);
  size_t page_idx = 0;
  uint64_t slots_used = 0;
  auto emit = [&](const void* entry) {
    if (slots_used == kEntriesPerLogPage) {
      page_idx++;
      write_off = pages[page_idx] + sizeof(LogPageHeader);
      slots_used = 0;
    }
    Timed(stats, &fs::OpStats::meta_ns,
          [&] { mem_->MetaWrite(write_off, entry, kLogEntrySize); });
    write_off += kLogEntrySize;
    slots_used++;
  };
  if (in.is_dir) {
    for (const auto& [name, child] : in.dentries) {
      DentryEntry e{};
      e.type = static_cast<uint8_t>(EntryType::kDentryAdd);
      e.name_len = static_cast<uint8_t>(name.size());
      e.child_ino = child;
      e.mtime_ns = in.mtime_ns;
      std::memcpy(e.name, name.data(), name.size());
      e.csum = e.ComputeCsum();
      emit(&e);
    }
  } else {
    in.pages.ForEachExtent([&](uint64_t pgoff, uint64_t n_pages,
                               uint64_t block_off) {
      WriteEntry e{};
      e.type = static_cast<uint8_t>(EntryType::kWrite);
      e.pgoff = pgoff;
      e.num_pages = n_pages;
      e.block_off = block_off;
      e.new_size = in.size;
      e.mtime_ns = in.mtime_ns;
      e.sn_packed = dma::Sn::None().Pack();  // all data already durable
      e.csum = e.ComputeCsum();
      emit(&e);
    });
  }

  // Atomic switch: head and tail move together or not at all.
  const uint64_t old_head = in.log_head;
  const uint64_t old_tail = in.log_tail;
  const JournalRecord::JWrite writes[] = {
      {PInodeOff(in.slot) + offsetof(PInode, log_head), pages[0]},
      {PInodeOff(in.slot) + offsetof(PInode, log_tail), write_off},
  };
  Timed(stats, &fs::OpStats::meta_ns, [&] {
    journal_->CommitAndApply(writes,
                             sim_->current() ? sim_->current()->core() : 0);
  });
  in.log_head = pages[0];
  in.log_tail = write_off;
  in.log_next = write_off;
  in.log_pages = pages.size();
  log_compactions_++;

  // Release the superseded chain.
  uint64_t page = old_head;
  while (page != 0) {
    const uint64_t next = mem_->As<LogPageHeader>(page)->next_page;
    allocator_->Free(Extent{page, 1});
    if (old_tail > page && old_tail <= page + kBlockSize) {
      break;
    }
    page = next;
  }

  // GC is rare, control-plane activity: always recorded when tracing is on.
  if (auto* t = obs::Get()) {
    t->AsyncSpan(t->NextOpId(), "log_gc", gc_t0, sim_->now(),
                 {{"old_pages", gc_old_pages}, {"new_pages", pages.size()}});
  }
}

void NovaFs::ReleaseBlocks(Inode& in, const std::vector<Extent>& displaced) {
  if (in.pending_reads > 0) {
    in.deferred_free.insert(in.deferred_free.end(), displaced.begin(),
                            displaced.end());
    return;
  }
  for (const Extent& e : displaced) {
    allocator_->Free(e);
  }
}

void NovaFs::OnReadDone(Inode& in) {
  assert(in.pending_reads > 0);
  in.pending_reads--;
  if (in.pending_reads == 0 && !in.deferred_free.empty()) {
    for (const Extent& e : in.deferred_free) {
      allocator_->Free(e);
    }
    in.deferred_free.clear();
  }
}

void NovaFs::FillZero(std::byte* dst, size_t n, fs::OpStats* stats) {
  std::memset(dst, 0, n);
  Charge(stats, &fs::OpStats::data_ns, TransferNs(n, 12.0));  // DRAM memset
}

void NovaFs::SegmentsToByteRanges(const std::vector<PageMap::Segment>& segs,
                                  uint64_t off, size_t n,
                                  std::vector<ByteRange>* out) {
  const uint64_t end = off + n;
  for (const auto& seg : segs) {
    const uint64_t seg_begin = seg.pgoff * kBlockSize;
    const uint64_t seg_end = seg_begin + seg.pages * kBlockSize;
    const uint64_t lo = std::max(off, seg_begin);
    const uint64_t hi = std::min(end, seg_end);
    if (hi <= lo) {
      continue;
    }
    ByteRange r;
    r.buf_off = lo - off;
    r.bytes = hi - lo;
    r.hole = seg.hole;
    r.pmem_off = seg.hole ? 0 : seg.block_off + (lo - seg_begin);
    out->push_back(r);
  }
}

NovaFs::OpScratch* NovaFs::AcquireScratch() {
  if (scratch_pool_.empty()) {
    return new OpScratch();
  }
  OpScratch* s = scratch_pool_.back().release();
  scratch_pool_.pop_back();
  s->segs.clear();
  s->ranges.clear();
  s->extents.clear();
  s->displaced.clear();
  s->sns.clear();
  s->batch.clear();
  return s;
}

void NovaFs::ReleaseScratch(OpScratch* s) {
  scratch_pool_.emplace_back(s);
}

// ------------------------------------------------------------- data paths ---

void NovaFs::MoveToPmem(uint64_t pmem_off, const std::byte* src, size_t bytes,
                        fs::OpStats* stats) {
  AddCpuBytes(bytes);
  Timed(stats, &fs::OpStats::data_ns,
        [&] { mem_->CpuWrite(pmem_off, src, bytes); });
}

void NovaFs::MoveFromPmem(std::byte* dst, uint64_t pmem_off, size_t bytes,
                          fs::OpStats* stats) {
  AddCpuBytes(bytes);
  Timed(stats, &fs::OpStats::data_ns,
        [&] { mem_->CpuRead(dst, pmem_off, bytes); });
}

StatusOr<size_t> NovaFs::WriteInternal(Inode& in, uint64_t off,
                                       std::span<const std::byte> buf,
                                       bool append, fs::OpStats* stats) {
  in.lock.WriteLock();
  MaybeCompactLog(in, stats);
  if (append) {
    off = in.size;
  }
  const size_t n = buf.size();
  const uint64_t first_pg = off / kBlockSize;
  const uint64_t pages = (off + n - 1) / kBlockSize - first_pg + 1;

  Charge(stats, &fs::OpStats::index_ns,
         params().index_base_ns + params().index_per_page_ns * pages);

  ScratchLease scratch(this);
  const Status alloc_st = AllocBlocks(pages, stats, &scratch->extents);
  if (!alloc_st.ok()) {
    in.lock.WriteUnlock();
    Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
    return alloc_st;
  }
  FillWriteEdges(in, off, n, scratch->extents, stats);

  // NOVA order: data first (synchronously, via the mover hook)...
  size_t copied = 0;
  const uint64_t head = off % kBlockSize;
  for (const Extent& e : scratch->extents) {
    const uint64_t ext_bytes = e.pages * kBlockSize;
    const uint64_t skip = copied == 0 ? head : 0;
    const size_t chunk =
        std::min<uint64_t>(n - copied, ext_bytes - skip);
    MoveToPmem(e.block_off + skip, buf.data() + copied, chunk, stats);
    copied += chunk;
  }
  assert(copied == n);

  // ...then strictly ordered metadata commit.
  scratch->sns.assign(scratch->extents.size(), dma::Sn::None());
  const Status st =
      CommitWrite(in, off, n, scratch->extents, scratch->sns, stats);
  in.lock.WriteUnlock();
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
  if (!st.ok()) {
    return st;
  }
  return n;
}

StatusOr<size_t> NovaFs::ReadInternal(Inode& in, uint64_t off,
                                      std::span<std::byte> buf,
                                      fs::OpStats* stats) {
  in.lock.ReadLock();
  if (off >= in.size) {
    in.lock.ReadUnlock();
    Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
    return size_t{0};
  }
  const size_t n = std::min<uint64_t>(buf.size(), in.size - off);
  const uint64_t first_pg = off / kBlockSize;
  const uint64_t pages = (off + n - 1) / kBlockSize - first_pg + 1;

  Charge(stats, &fs::OpStats::index_ns,
         params().index_base_ns + params().index_per_page_ns * pages);
  ScratchLease scratch(this);
  in.pages.LookupInto(first_pg, pages, &scratch->segs);
  in.pending_reads++;

  SegmentsToByteRanges(scratch->segs, off, n, &scratch->ranges);
  for (const ByteRange& r : scratch->ranges) {
    if (r.hole) {
      FillZero(buf.data() + r.buf_off, r.bytes, stats);
    } else {
      MoveFromPmem(buf.data() + r.buf_off, r.pmem_off, r.bytes, stats);
    }
  }
  OnReadDone(in);
  in.lock.ReadUnlock();
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_exit_ns);
  return n;
}

Status NovaFs::FsyncInternal(Inode& in) {
  // Synchronous modes are durable at return; nothing to do.
  return OkStatus();
}

// ----------------------------------------------------------- fd plumbing ----

NovaFs::Inode* NovaFs::ResolveFd(int fd) {
  const size_t idx = static_cast<size_t>(fd - kFirstFd);
  if (fd < kFirstFd || idx >= fd_table_.size() || fd_table_[idx] == 0) {
    return nullptr;
  }
  auto it = inodes_.find(fd_table_[idx]);
  return it == inodes_.end() ? nullptr : it->second.get();
}

StatusOr<int> NovaFs::AllocFd(Inode* in) {
  in->open_count++;
  if (!free_fds_.empty()) {
    const int fd = free_fds_.back();
    free_fds_.pop_back();
    fd_table_[static_cast<size_t>(fd - kFirstFd)] = in->ino;
    return fd;
  }
  fd_table_.push_back(in->ino);
  return kFirstFd + static_cast<int>(fd_table_.size()) - 1;
}

// ------------------------------------------------------------- data entry ---

StatusOr<size_t> NovaFs::Write(int fd, uint64_t off,
                               std::span<const std::byte> buf,
                               fs::OpStats* stats) {
  fs::OpStats local;
  if (stats == nullptr) {
    stats = &local;
  }
  stats->Clear();
  const sim::SimTime t0 = sim_->now();
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_enter_ns);
  Inode* in = ResolveFd(fd);
  if (in == nullptr) {
    return BadFd();
  }
  if (in->is_dir) {
    return Status(ErrorCode::kIsDir);
  }
  if (buf.empty()) {
    return size_t{0};
  }
  if (auto* t = obs::Get(); t != nullptr && t->Sample()) {
    stats->trace_op_id = t->NextOpId();
  }
  auto r = WriteInternal(*in, off, buf, /*append=*/false, stats);
  stats->total_ns = sim_->now() - t0;
  stats->cpu_ns = stats->total_ns - stats->blocked_ns;
  counters_.ops_write++;
  if (r.ok()) counters_.bytes_written += *r;
  if (stats->trace_op_id != 0) {
    if (auto* t = obs::Get())
      t->AsyncSpan(stats->trace_op_id, "write", t0, sim_->now(),
                   {{"off", off},
                    {"bytes", r.ok() ? static_cast<uint64_t>(*r) : 0}});
  }
  return r;
}

StatusOr<size_t> NovaFs::Append(int fd, std::span<const std::byte> buf,
                                fs::OpStats* stats) {
  fs::OpStats local;
  if (stats == nullptr) {
    stats = &local;
  }
  stats->Clear();
  const sim::SimTime t0 = sim_->now();
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_enter_ns);
  Inode* in = ResolveFd(fd);
  if (in == nullptr) {
    return BadFd();
  }
  if (in->is_dir) {
    return Status(ErrorCode::kIsDir);
  }
  if (buf.empty()) {
    return size_t{0};
  }
  if (auto* t = obs::Get(); t != nullptr && t->Sample()) {
    stats->trace_op_id = t->NextOpId();
  }
  auto r = WriteInternal(*in, 0, buf, /*append=*/true, stats);
  stats->total_ns = sim_->now() - t0;
  stats->cpu_ns = stats->total_ns - stats->blocked_ns;
  counters_.ops_write++;
  if (r.ok()) counters_.bytes_written += *r;
  if (stats->trace_op_id != 0) {
    if (auto* t = obs::Get())
      t->AsyncSpan(stats->trace_op_id, "append", t0, sim_->now(),
                   {{"bytes", r.ok() ? static_cast<uint64_t>(*r) : 0}});
  }
  return r;
}

StatusOr<size_t> NovaFs::Read(int fd, uint64_t off, std::span<std::byte> buf,
                              fs::OpStats* stats) {
  fs::OpStats local;
  if (stats == nullptr) {
    stats = &local;
  }
  stats->Clear();
  const sim::SimTime t0 = sim_->now();
  Charge(stats, &fs::OpStats::syscall_ns, params().syscall_enter_ns);
  Inode* in = ResolveFd(fd);
  if (in == nullptr) {
    return BadFd();
  }
  if (in->is_dir) {
    return Status(ErrorCode::kIsDir);
  }
  if (buf.empty()) {
    return size_t{0};
  }
  if (auto* t = obs::Get(); t != nullptr && t->Sample()) {
    stats->trace_op_id = t->NextOpId();
  }
  auto r = ReadInternal(*in, off, buf, stats);
  stats->total_ns = sim_->now() - t0;
  stats->cpu_ns = stats->total_ns - stats->blocked_ns;
  counters_.ops_read++;
  if (r.ok()) counters_.bytes_read += *r;
  if (stats->trace_op_id != 0) {
    if (auto* t = obs::Get())
      t->AsyncSpan(stats->trace_op_id, "read", t0, sim_->now(),
                   {{"off", off},
                    {"bytes", r.ok() ? static_cast<uint64_t>(*r) : 0}});
  }
  return r;
}

Status NovaFs::Fsync(int fd) {
  Inode* in = ResolveFd(fd);
  if (in == nullptr) {
    return BadFd();
  }
  sim_->Advance(params().syscall_enter_ns + params().syscall_exit_ns);
  return FsyncInternal(*in);
}

// -------------------------------------------------------- namespace ops -----

StatusOr<NovaFs::Inode*> NovaFs::ResolvePath(
    const std::vector<std::string>& parts) {
  Inode* cur = inodes_.at(kRootIno).get();
  for (const auto& part : parts) {
    if (!cur->is_dir) {
      return Status(ErrorCode::kNotDir);
    }
    sim_->Advance(params().index_base_ns);  // dcache lookup per component
    auto it = cur->dentries.find(part);
    if (it == cur->dentries.end()) {
      return NotFound(part);
    }
    cur = inodes_.at(it->second).get();
  }
  return cur;
}

StatusOr<NovaFs::Inode*> NovaFs::ResolveParent(const std::string& path,
                                               std::string* leaf) {
  std::vector<std::string> parent;
  EASYIO_RETURN_IF_ERROR(fs::SplitParent(path, &parent, leaf));
  if (leaf->size() > kMaxNameLen) {
    return Status(ErrorCode::kNameTooLong, *leaf);
  }
  EASYIO_ASSIGN_OR_RETURN(Inode * dir, ResolvePath(parent));
  if (!dir->is_dir) {
    return Status(ErrorCode::kNotDir);
  }
  return dir;
}

StatusOr<NovaFs::Inode*> NovaFs::AllocInode(bool is_dir) {
  if (free_slots_.empty()) {
    return NoSpace("inode table full");
  }
  const uint64_t slot = free_slots_.back();
  free_slots_.pop_back();
  const uint64_t ino = slot + 1;

  // Persist the inode body with the valid bit clear; the journal commit of
  // the namespace operation flips it together with the dentry.
  PInode pi{};
  pi.ino = ino;
  pi.flags = is_dir ? PInode::kFlagDir : 0;
  pi.nlink = 1;
  pi.mtime_ns = sim_->now();
  mem_->MetaWrite(PInodeOff(slot), &pi, sizeof(pi));

  auto in = std::make_unique<Inode>(sim_, ino, slot);
  in->is_dir = is_dir;
  in->mtime_ns = pi.mtime_ns;
  Inode* raw = in.get();
  inodes_.emplace(ino, std::move(in));
  return raw;
}

Status NovaFs::AppendDentry(Inode& dir, EntryType type,
                            const std::string& name, uint64_t child_ino,
                            fs::OpStats* stats) {
  DentryEntry e{};
  e.type = static_cast<uint8_t>(type);
  e.name_len = static_cast<uint8_t>(name.size());
  e.child_ino = child_ino;
  e.mtime_ns = sim_->now();
  std::memcpy(e.name, name.data(), name.size());
  e.csum = e.ComputeCsum();
  return AppendLogEntry(dir, &e, stats);
}

StatusOr<int> NovaFs::Create(const std::string& path) {
  sim_->Advance(params().syscall_enter_ns);
  uthread::MutexLock ns(&namespace_lock_);
  std::string leaf;
  EASYIO_ASSIGN_OR_RETURN(Inode * dir, ResolveParent(path, &leaf));
  if (dir->dentries.contains(leaf)) {
    return AlreadyExists(path);
  }
  MaybeCompactLog(*dir, nullptr);
  EASYIO_ASSIGN_OR_RETURN(Inode * child, AllocInode(/*is_dir=*/false));
  EASYIO_RETURN_IF_ERROR(
      AppendDentry(*dir, EntryType::kDentryAdd, leaf, child->ino, nullptr));

  const JournalRecord::JWrite writes[] = {
      {PInodeOff(dir->slot) + offsetof(PInode, log_tail), dir->log_next},
      {PInodeOff(child->slot) + offsetof(PInode, flags), PInode::kFlagValid},
  };
  journal_->CommitAndApply(writes,
                           sim_->current() ? sim_->current()->core() : 0);
  dir->log_tail = dir->log_next;
  dir->dentries[leaf] = child->ino;
  dir->mtime_ns = sim_->now();

  auto fd = AllocFd(child);
  sim_->Advance(params().syscall_exit_ns);
  return fd;
}

Status NovaFs::Mkdir(const std::string& path) {
  sim_->Advance(params().syscall_enter_ns);
  uthread::MutexLock ns(&namespace_lock_);
  std::string leaf;
  EASYIO_ASSIGN_OR_RETURN(Inode * dir, ResolveParent(path, &leaf));
  if (dir->dentries.contains(leaf)) {
    return AlreadyExists(path);
  }
  MaybeCompactLog(*dir, nullptr);
  EASYIO_ASSIGN_OR_RETURN(Inode * child, AllocInode(/*is_dir=*/true));
  EASYIO_RETURN_IF_ERROR(
      AppendDentry(*dir, EntryType::kDentryAdd, leaf, child->ino, nullptr));
  const JournalRecord::JWrite writes[] = {
      {PInodeOff(dir->slot) + offsetof(PInode, log_tail), dir->log_next},
      {PInodeOff(child->slot) + offsetof(PInode, flags),
       PInode::kFlagValid | PInode::kFlagDir},
  };
  journal_->CommitAndApply(writes,
                           sim_->current() ? sim_->current()->core() : 0);
  dir->log_tail = dir->log_next;
  dir->dentries[leaf] = child->ino;
  dir->mtime_ns = sim_->now();
  sim_->Advance(params().syscall_exit_ns);
  return OkStatus();
}

StatusOr<int> NovaFs::Open(const std::string& path) {
  sim_->Advance(params().syscall_enter_ns);
  uthread::MutexLock ns(&namespace_lock_);
  EASYIO_ASSIGN_OR_RETURN(auto parts, fs::SplitPath(path));
  EASYIO_ASSIGN_OR_RETURN(Inode * in, ResolvePath(parts));
  auto fd = AllocFd(in);
  sim_->Advance(params().syscall_exit_ns);
  return fd;
}

Status NovaFs::Close(int fd) {
  Inode* in = ResolveFd(fd);
  if (in == nullptr) {
    return BadFd();
  }
  fd_table_[static_cast<size_t>(fd - kFirstFd)] = 0;
  free_fds_.push_back(fd);
  in->open_count--;
  if (in->open_count == 0 && in->unlinked) {
    DestroyInode(in);
  }
  return OkStatus();
}

void NovaFs::FreeInodeResources(Inode& in) {
  // Wait out any in-flight orderless write, then free data + log pages.
  WaitPendingWrite(in);
  std::vector<Extent> extents;
  in.pages.Clear(&extents);
  extents.insert(extents.end(), in.deferred_free.begin(),
                 in.deferred_free.end());
  in.deferred_free.clear();
  for (const Extent& e : extents) {
    allocator_->Free(e);
  }
  uint64_t page = in.log_head;
  while (page != 0) {
    const uint64_t next = mem_->As<LogPageHeader>(page)->next_page;
    allocator_->Free(Extent{page, 1});
    if (in.log_tail > page && in.log_tail <= page + kBlockSize) {
      break;  // reached the tail page
    }
    page = next;
  }
  in.log_head = 0;
  in.log_tail = 0;
  in.log_next = 0;
  in.log_pages = 0;
}

void NovaFs::DestroyInode(Inode* in) {
  FreeInodeResources(*in);
  free_slots_.push_back(in->slot);
  inodes_.erase(in->ino);
}

Status NovaFs::Unlink(const std::string& path) {
  sim_->Advance(params().syscall_enter_ns);
  uthread::MutexLock ns(&namespace_lock_);
  std::string leaf;
  EASYIO_ASSIGN_OR_RETURN(Inode * dir, ResolveParent(path, &leaf));
  auto it = dir->dentries.find(leaf);
  if (it == dir->dentries.end()) {
    return NotFound(path);
  }
  Inode* child = inodes_.at(it->second).get();
  if (child->is_dir && !child->dentries.empty()) {
    return Status(ErrorCode::kNotEmpty, path);
  }
  MaybeCompactLog(*dir, nullptr);
  EASYIO_RETURN_IF_ERROR(
      AppendDentry(*dir, EntryType::kDentryRemove, leaf, child->ino, nullptr));

  const uint64_t new_nlink = child->nlink - 1;
  const uint64_t new_flags = new_nlink == 0 ? 0 : PInode::kFlagValid;
  const JournalRecord::JWrite writes[] = {
      {PInodeOff(dir->slot) + offsetof(PInode, log_tail), dir->log_next},
      {PInodeOff(child->slot) + offsetof(PInode, nlink), new_nlink},
      {PInodeOff(child->slot) + offsetof(PInode, flags), new_flags},
  };
  journal_->CommitAndApply(writes,
                           sim_->current() ? sim_->current()->core() : 0);
  dir->log_tail = dir->log_next;
  dir->dentries.erase(it);
  dir->mtime_ns = sim_->now();
  child->nlink = new_nlink;
  if (new_nlink == 0) {
    if (child->open_count > 0) {
      child->unlinked = true;
    } else {
      DestroyInode(child);
    }
  }
  sim_->Advance(params().syscall_exit_ns);
  return OkStatus();
}

Status NovaFs::Link(const std::string& existing,
                    const std::string& link_path) {
  sim_->Advance(params().syscall_enter_ns);
  uthread::MutexLock ns(&namespace_lock_);
  EASYIO_ASSIGN_OR_RETURN(auto parts, fs::SplitPath(existing));
  EASYIO_ASSIGN_OR_RETURN(Inode * target, ResolvePath(parts));
  if (target->is_dir) {
    return Status(ErrorCode::kIsDir, existing);
  }
  std::string leaf;
  EASYIO_ASSIGN_OR_RETURN(Inode * dir, ResolveParent(link_path, &leaf));
  if (dir->dentries.contains(leaf)) {
    return AlreadyExists(link_path);
  }
  EASYIO_RETURN_IF_ERROR(
      AppendDentry(*dir, EntryType::kDentryAdd, leaf, target->ino, nullptr));
  const JournalRecord::JWrite writes[] = {
      {PInodeOff(dir->slot) + offsetof(PInode, log_tail), dir->log_next},
      {PInodeOff(target->slot) + offsetof(PInode, nlink), target->nlink + 1},
  };
  journal_->CommitAndApply(writes,
                           sim_->current() ? sim_->current()->core() : 0);
  dir->log_tail = dir->log_next;
  dir->dentries[leaf] = target->ino;
  dir->mtime_ns = sim_->now();
  target->nlink++;
  sim_->Advance(params().syscall_exit_ns);
  return OkStatus();
}

Status NovaFs::Rename(const std::string& from, const std::string& to) {
  sim_->Advance(params().syscall_enter_ns);
  uthread::MutexLock ns(&namespace_lock_);
  std::string from_leaf;
  EASYIO_ASSIGN_OR_RETURN(Inode * from_dir, ResolveParent(from, &from_leaf));
  auto from_it = from_dir->dentries.find(from_leaf);
  if (from_it == from_dir->dentries.end()) {
    return NotFound(from);
  }
  Inode* moving = inodes_.at(from_it->second).get();

  std::string to_leaf;
  EASYIO_ASSIGN_OR_RETURN(Inode * to_dir, ResolveParent(to, &to_leaf));

  Inode* displaced = nullptr;
  auto to_it = to_dir->dentries.find(to_leaf);
  if (to_it != to_dir->dentries.end()) {
    displaced = inodes_.at(to_it->second).get();
    if (displaced == moving) {
      sim_->Advance(params().syscall_exit_ns);
      return OkStatus();
    }
    if (displaced->is_dir && !displaced->dentries.empty()) {
      return Status(ErrorCode::kNotEmpty, to);
    }
  }

  EASYIO_RETURN_IF_ERROR(AppendDentry(*from_dir, EntryType::kDentryRemove,
                                      from_leaf, moving->ino, nullptr));
  EASYIO_RETURN_IF_ERROR(AppendDentry(*to_dir, EntryType::kDentryAdd, to_leaf,
                                      moving->ino, nullptr));

  std::vector<JournalRecord::JWrite> writes;
  writes.push_back(
      {PInodeOff(from_dir->slot) + offsetof(PInode, log_tail),
       from_dir->log_next});
  if (to_dir != from_dir) {
    writes.push_back({PInodeOff(to_dir->slot) + offsetof(PInode, log_tail),
                      to_dir->log_next});
  }
  uint64_t displaced_nlink = 0;
  if (displaced != nullptr) {
    displaced_nlink = displaced->nlink - 1;
    writes.push_back({PInodeOff(displaced->slot) + offsetof(PInode, nlink),
                      displaced_nlink});
    if (displaced_nlink == 0) {
      writes.push_back(
          {PInodeOff(displaced->slot) + offsetof(PInode, flags), 0});
    }
  }
  journal_->CommitAndApply(writes,
                           sim_->current() ? sim_->current()->core() : 0);

  from_dir->log_tail = from_dir->log_next;
  to_dir->log_tail = to_dir->log_next;
  from_dir->dentries.erase(from_it);
  to_dir->dentries[to_leaf] = moving->ino;
  from_dir->mtime_ns = to_dir->mtime_ns = sim_->now();
  if (displaced != nullptr) {
    displaced->nlink = displaced_nlink;
    if (displaced_nlink == 0) {
      if (displaced->open_count > 0) {
        displaced->unlinked = true;
      } else {
        DestroyInode(displaced);
      }
    }
  }
  sim_->Advance(params().syscall_exit_ns);
  return OkStatus();
}

fs::FileStat NovaFs::StatOf(const Inode& in) const {
  fs::FileStat st;
  st.ino = in.ino;
  st.size = in.size;
  st.nlink = in.nlink;
  st.mtime_ns = in.mtime_ns;
  st.is_dir = in.is_dir;
  return st;
}

StatusOr<fs::FileStat> NovaFs::StatPath(const std::string& path) {
  sim_->Advance(params().syscall_enter_ns);
  uthread::MutexLock ns(&namespace_lock_);
  EASYIO_ASSIGN_OR_RETURN(auto parts, fs::SplitPath(path));
  EASYIO_ASSIGN_OR_RETURN(Inode * in, ResolvePath(parts));
  sim_->Advance(params().syscall_exit_ns);
  return StatOf(*in);
}

StatusOr<fs::FileStat> NovaFs::StatFd(int fd) {
  Inode* in = ResolveFd(fd);
  if (in == nullptr) {
    return BadFd();
  }
  sim_->Advance(params().syscall_enter_ns + params().syscall_exit_ns);
  return StatOf(*in);
}

}  // namespace easyio::nova
