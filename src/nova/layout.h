// On-media layout of the NOVA-style log-structured PM filesystem (paper §5,
// following NOVA [FAST'16]):
//
//   [ superblock | DMA completion records | journals | inode table | blocks ]
//
// Per-inode metadata lives in a chain of 4KB log pages holding fixed-size
// 64-byte entries; the persistent PInode.log_tail is the commit point. File
// data is written copy-on-write into 4KB blocks. Multi-inode namespace
// operations are made atomic with small per-core redo journals.
//
// EasyIO's only format change (paper §5: "less than 50 lines") is the
// `sn_packed` field in the write entry, recording the DMA descriptor that
// carries the entry's data.

#ifndef EASYIO_NOVA_LAYOUT_H_
#define EASYIO_NOVA_LAYOUT_H_

#include <cstddef>
#include <cstdint>

#include "src/common/crc32.h"

namespace easyio::nova {

inline constexpr uint64_t kMagic = 0x45415359494f4653ull;  // "EASYIOFS"
inline constexpr uint64_t kBlockSize = 4096;
inline constexpr uint64_t kPInodeSize = 64;
inline constexpr uint32_t kMaxNameLen = 39;  // NUL-terminated in 40 bytes
inline constexpr uint64_t kRootIno = 1;

struct Superblock {
  uint64_t magic;
  uint64_t device_size;
  uint64_t comp_region_off;   // DMA completion records (§4.2)
  uint64_t comp_channels;
  uint64_t journal_off;
  uint64_t journal_slots;
  uint64_t inode_table_off;
  uint64_t inode_count;
  uint64_t block_area_off;    // first data block
  uint64_t block_count;
  uint32_t csum;              // over all fields above
  uint32_t pad;

  uint32_t ComputeCsum() const {
    return Crc32c(this, offsetof(Superblock, csum));
  }
};
static_assert(sizeof(Superblock) <= kBlockSize);

// Persistent inode. Individual fields are updated with atomic 8-byte stores
// (log_tail is the commit pointer); multi-field updates that must be atomic
// with other inodes go through the journal.
struct PInode {
  static constexpr uint64_t kFlagValid = 1ull << 0;
  static constexpr uint64_t kFlagDir = 1ull << 1;

  uint64_t ino;
  uint64_t flags;
  uint64_t nlink;
  uint64_t mtime_ns;
  uint64_t log_head;  // pmem offset of first log page; 0 = none
  uint64_t log_tail;  // pmem offset of the next free entry slot; 0 = empty
  uint64_t reserved[2];

  bool valid() const { return (flags & kFlagValid) != 0; }
  bool is_dir() const { return (flags & kFlagDir) != 0; }
};
static_assert(sizeof(PInode) == kPInodeSize);

// ---- Log pages ----

struct LogPageHeader {
  uint64_t next_page;  // pmem offset of next log page; 0 = last
  uint64_t reserved[7];
};
static_assert(sizeof(LogPageHeader) == 64);

inline constexpr uint64_t kLogEntrySize = 64;
inline constexpr uint64_t kEntriesPerLogPage =
    (kBlockSize - sizeof(LogPageHeader)) / kLogEntrySize;  // 63

enum class EntryType : uint8_t {
  kInvalid = 0,
  kWrite = 1,
  kDentryAdd = 2,
  kDentryRemove = 3,
};

// File-data write: `num_pages` CoW blocks starting at `block_off` now back
// file pages [pgoff, pgoff+num_pages). `sn_packed` identifies the DMA
// descriptor whose completion makes the data durable (Sn::None for memcpy
// writes). `new_size`/`mtime_ns` carry the post-write attributes.
struct WriteEntry {
  uint8_t type;
  uint8_t pad[3];
  uint32_t csum;
  uint64_t pgoff;
  uint64_t num_pages;
  uint64_t block_off;
  uint64_t new_size;
  uint64_t mtime_ns;
  uint64_t sn_packed;
  uint64_t reserved;

  uint32_t ComputeCsum() const {
    WriteEntry copy = *this;
    copy.csum = 0;
    return Crc32c(&copy, sizeof(copy));
  }
};
static_assert(sizeof(WriteEntry) == kLogEntrySize);

// Directory entry add/remove, appended to the directory inode's log.
struct DentryEntry {
  uint8_t type;
  uint8_t name_len;
  uint8_t pad[2];
  uint32_t csum;
  uint64_t child_ino;
  uint64_t mtime_ns;
  char name[kMaxNameLen + 1];

  uint32_t ComputeCsum() const {
    DentryEntry copy = *this;
    copy.csum = 0;
    return Crc32c(&copy, sizeof(copy));
  }
};
static_assert(sizeof(DentryEntry) == kLogEntrySize);

// ---- Journal ----

// Redo record: up to four 8-byte pmem writes applied atomically (commit flag
// + checksum; recovery replays committed records). One 4KB slot per core.
struct JournalRecord {
  static constexpr int kMaxWrites = 4;

  uint64_t state;  // 0 = free, 1 = committed
  uint64_t count;
  struct JWrite {
    uint64_t off;
    uint64_t value;
  } writes[kMaxWrites];
  uint32_t csum;  // over count + writes
  uint32_t pad;

  uint32_t ComputeCsum() const {
    return Crc32c(&count, sizeof(count) + sizeof(writes));
  }
};
static_assert(sizeof(JournalRecord) <= kBlockSize);

// ---- Layout computation ----

struct Layout {
  uint64_t comp_region_off;
  uint64_t comp_channels;
  uint64_t journal_off;
  uint64_t journal_slots;
  uint64_t inode_table_off;
  uint64_t inode_count;
  uint64_t block_area_off;
  uint64_t block_count;

  static Layout Compute(uint64_t device_size, uint64_t inode_count,
                        uint64_t journal_slots, uint64_t comp_channels) {
    auto round_up = [](uint64_t v) {
      return (v + kBlockSize - 1) / kBlockSize * kBlockSize;
    };
    Layout l{};
    uint64_t off = kBlockSize;  // superblock
    l.comp_region_off = off;
    l.comp_channels = comp_channels;
    off += round_up(comp_channels * 16);
    l.journal_off = off;
    l.journal_slots = journal_slots;
    off += journal_slots * kBlockSize;
    l.inode_table_off = off;
    l.inode_count = inode_count;
    off += round_up(inode_count * kPInodeSize);
    l.block_area_off = off;
    l.block_count = (device_size - off) / kBlockSize;
    return l;
  }
};

}  // namespace easyio::nova

#endif  // EASYIO_NOVA_LAYOUT_H_
