// In-DRAM block mapping of one inode: file page index -> CoW block extent.
//
// NOVA rebuilds this index from the inode's log at mount time; at runtime
// every committed write entry is applied here. Insert() returns the displaced
// block ranges so the caller can free them (immediately, or deferred while
// asynchronous reads are still in flight — EasyIO's early lock release makes
// that window real, see NovaFs::ReleaseBlocks).

#ifndef EASYIO_NOVA_PAGE_MAP_H_
#define EASYIO_NOVA_PAGE_MAP_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/nova/allocator.h"

namespace easyio::nova {

class PageMap {
 public:
  struct Segment {
    uint64_t pgoff = 0;
    uint64_t pages = 0;
    uint64_t block_off = 0;  // meaningless when hole
    bool hole = false;

    bool operator==(const Segment&) const = default;
  };

  // Maps file pages [pgoff, pgoff+pages) to the contiguous blocks starting at
  // block_off; returns the displaced (overwritten) block sub-extents.
  std::vector<Extent> Insert(uint64_t pgoff, uint64_t pages,
                             uint64_t block_off, uint64_t sn_packed);

  // Resolves [pgoff, pgoff+pages) into contiguous segments (holes included),
  // in ascending page order.
  std::vector<Segment> Lookup(uint64_t pgoff, uint64_t pages) const;

  // Removes every mapping, appending the freed extents to `freed`.
  void Clear(std::vector<Extent>* freed);

  size_t extent_count() const { return map_.size(); }
  uint64_t mapped_pages() const;
  bool empty() const { return map_.empty(); }

  // Iterates extents in ascending page order (for log compaction).
  template <typename Fn>  // Fn(pgoff, pages, block_off)
  void ForEachExtent(Fn&& fn) const {
    for (const auto& [start, node] : map_) {
      fn(start, node.pages, node.block_off);
    }
  }

 private:
  struct Node {
    uint64_t pages;
    uint64_t block_off;
    uint64_t sn_packed;
  };

  std::map<uint64_t, Node> map_;  // start page -> extent
};

}  // namespace easyio::nova

#endif  // EASYIO_NOVA_PAGE_MAP_H_
