// In-DRAM block mapping of one inode: file page index -> CoW block extent.
//
// NOVA rebuilds this index from the inode's log at mount time; at runtime
// every committed write entry is applied here. Insert() reports the displaced
// block ranges so the caller can free them (immediately, or deferred while
// asynchronous reads are still in flight — EasyIO's early lock release makes
// that window real, see NovaFs::ReleaseBlocks).
//
// Layout: a sorted flat vector of non-overlapping extents. The simulator
// calls into this structure on every read and write, so the hot paths are
// allocation-free in steady state: Insert() appends displaced ranges into a
// caller-supplied vector and splices the extent array in place (no node
// allocations), and ForEachSegment() streams the resolved segments through a
// callback instead of materializing them. The vector-returning Insert/Lookup
// overloads remain for cold paths (recovery, tests).

#ifndef EASYIO_NOVA_PAGE_MAP_H_
#define EASYIO_NOVA_PAGE_MAP_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/nova/allocator.h"
#include "src/nova/layout.h"

namespace easyio::nova {

class PageMap {
 public:
  struct Segment {
    uint64_t pgoff = 0;
    uint64_t pages = 0;
    uint64_t block_off = 0;  // meaningless when hole
    bool hole = false;

    bool operator==(const Segment&) const = default;
  };

  // Maps file pages [pgoff, pgoff+pages) to the contiguous blocks starting
  // at block_off; appends the displaced (overwritten) block sub-extents to
  // *displaced (which is not cleared).
  void Insert(uint64_t pgoff, uint64_t pages, uint64_t block_off,
              uint64_t sn_packed, std::vector<Extent>* displaced);

  // Convenience wrapper that materializes the displaced extents.
  std::vector<Extent> Insert(uint64_t pgoff, uint64_t pages,
                             uint64_t block_off, uint64_t sn_packed) {
    std::vector<Extent> displaced;
    Insert(pgoff, pages, block_off, sn_packed, &displaced);
    return displaced;
  }

  // Streams the resolution of [pgoff, pgoff+pages) as contiguous segments
  // (holes included, adjacent missing pages coalesced into one hole), in
  // ascending page order: fn(const Segment&). Performs no allocation.
  template <typename Fn>
  void ForEachSegment(uint64_t pgoff, uint64_t pages, Fn&& fn) const {
    if (pages == 0) {
      return;
    }
    const uint64_t end = pgoff + pages;
    uint64_t pos = pgoff;
    size_t i = LowerBound(pgoff);
    // A predecessor may cover the start of the range.
    if (i > 0 && exts_[i - 1].pgoff + exts_[i - 1].pages > pgoff) {
      i--;
    }
    for (; i < exts_.size() && exts_[i].pgoff < end; ++i) {
      const Ext& e = exts_[i];
      const uint64_t node_end = e.pgoff + e.pages;
      const uint64_t seg_start = std::max(e.pgoff, pos);
      const uint64_t seg_end = std::min(node_end, end);
      if (seg_end <= pos) {
        continue;
      }
      if (seg_start > pos) {
        fn(Segment{pos, seg_start - pos, 0, /*hole=*/true});
      }
      fn(Segment{seg_start, seg_end - seg_start,
                 e.block_off + (seg_start - e.pgoff) * kBlockSize,
                 /*hole=*/false});
      pos = seg_end;
    }
    if (pos < end) {
      fn(Segment{pos, end - pos, 0, /*hole=*/true});
    }
  }

  // Appends the resolved segments to *out (which is not cleared).
  void LookupInto(uint64_t pgoff, uint64_t pages,
                  std::vector<Segment>* out) const {
    ForEachSegment(pgoff, pages, [out](const Segment& s) {
      out->push_back(s);
    });
  }

  // Convenience wrapper that materializes the segments.
  std::vector<Segment> Lookup(uint64_t pgoff, uint64_t pages) const {
    std::vector<Segment> out;
    LookupInto(pgoff, pages, &out);
    return out;
  }

  // Removes every mapping, appending the freed extents to `freed`.
  void Clear(std::vector<Extent>* freed);

  // Pre-sizes the extent array (steady-state paths then never reallocate).
  void Reserve(size_t extents) { exts_.reserve(extents); }

  size_t extent_count() const { return exts_.size(); }
  uint64_t mapped_pages() const;
  bool empty() const { return exts_.empty(); }

  // Iterates extents in ascending page order (for log compaction).
  template <typename Fn>  // Fn(pgoff, pages, block_off)
  void ForEachExtent(Fn&& fn) const {
    for (const Ext& e : exts_) {
      fn(e.pgoff, e.pages, e.block_off);
    }
  }

 private:
  struct Ext {
    uint64_t pgoff;
    uint64_t pages;
    uint64_t block_off;
    uint64_t sn_packed;
  };

  // Index of the first extent with ext.pgoff >= pgoff.
  size_t LowerBound(uint64_t pgoff) const {
    return static_cast<size_t>(
        std::lower_bound(exts_.begin(), exts_.end(), pgoff,
                         [](const Ext& e, uint64_t v) { return e.pgoff < v; }) -
        exts_.begin());
  }

  std::vector<Ext> exts_;  // sorted by pgoff, non-overlapping
};

}  // namespace easyio::nova

#endif  // EASYIO_NOVA_PAGE_MAP_H_
