// Sharded extent allocator for the 4KB block area.
//
// NOVA keeps per-CPU free lists to scale allocation; we shard the block area
// the same way. Each shard keeps its free runs in a sorted flat vector with
// coalescing on free; allocation prefers the caller's shard and falls back to
// the others, so a single hot shard cannot fail while space remains
// elsewhere.
//
// Hot-path discipline: first-fit allocation shrinks the chosen run in place
// (no erase in the common case), shards that provably cannot satisfy a
// request are skipped via a cached largest-run upper bound, and AllocMulti
// appends into a caller-supplied vector so steady-state writes perform no
// heap allocation. All of this preserves the exact first-fit-by-offset
// placement of the original std::map implementation — the simulated
// behavior (which block every write lands on) is unchanged.

#ifndef EASYIO_NOVA_ALLOCATOR_H_
#define EASYIO_NOVA_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace easyio::nova {

struct Extent {
  uint64_t block_off = 0;  // pmem byte offset of the first block
  uint64_t pages = 0;

  bool operator==(const Extent&) const = default;
};

class BlockAllocator {
 public:
  BlockAllocator(uint64_t area_off, uint64_t num_blocks, int shards);

  // Allocates a contiguous extent of at most `pages` pages (at least 1).
  // Smaller-than-requested extents are returned when fragmentation demands
  // it; callers loop (and emit one log entry / DMA descriptor per extent,
  // exactly as NOVA issues one memcpy per contiguous range).
  StatusOr<Extent> Alloc(uint64_t pages, int shard_hint);

  // Allocates extents covering exactly `pages` pages, appending them to
  // *out (which is not cleared). On failure nothing is appended and any
  // partial progress is rolled back.
  Status AllocMultiInto(uint64_t pages, int shard_hint,
                        std::vector<Extent>* out);

  // Convenience wrapper that materializes the extents.
  StatusOr<std::vector<Extent>> AllocMulti(uint64_t pages, int shard_hint);

  void Free(const Extent& e);

  // Recovery interface: empty the allocator, mark referenced ranges used,
  // then release everything unmarked in one pass.
  void BeginRecovery();                      // all blocks provisionally free
  void MarkUsed(uint64_t block_off, uint64_t pages);
  void FinishRecovery();

  uint64_t free_pages() const { return free_pages_; }
  uint64_t total_pages() const { return total_pages_; }
  uint64_t area_off() const { return area_off_; }

 private:
  struct Run {
    uint64_t off;    // pmem byte offset
    uint64_t pages;
  };
  struct Shard {
    std::vector<Run> runs;  // sorted by off, coalesced
    // Upper bound on the largest run in this shard. Never underestimates:
    // raised on free, tightened to the exact maximum whenever a first-fit
    // scan fails. Lets Alloc skip shards that cannot satisfy a request
    // without changing which extent a successful allocation returns.
    uint64_t max_run = 0;
  };

  int ShardOf(uint64_t block_off) const;
  void FreeIntoShard(Shard& shard, uint64_t off, uint64_t pages);

  uint64_t area_off_;
  uint64_t total_pages_;
  uint64_t free_pages_ = 0;
  uint64_t shard_span_;  // bytes of block area per shard
  std::vector<Shard> shards_;
  std::vector<bool> used_bitmap_;  // recovery only
  bool in_recovery_ = false;
};

}  // namespace easyio::nova

#endif  // EASYIO_NOVA_ALLOCATOR_H_
