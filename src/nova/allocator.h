// Sharded extent allocator for the 4KB block area.
//
// NOVA keeps per-CPU free lists to scale allocation; we shard the block area
// the same way. Each shard is an ordered free map with coalescing on free;
// allocation prefers the caller's shard and falls back to the others, so a
// single hot shard cannot fail while space remains elsewhere.

#ifndef EASYIO_NOVA_ALLOCATOR_H_
#define EASYIO_NOVA_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/status.h"

namespace easyio::nova {

struct Extent {
  uint64_t block_off = 0;  // pmem byte offset of the first block
  uint64_t pages = 0;

  bool operator==(const Extent&) const = default;
};

class BlockAllocator {
 public:
  BlockAllocator(uint64_t area_off, uint64_t num_blocks, int shards);

  // Allocates a contiguous extent of at most `pages` pages (at least 1).
  // Smaller-than-requested extents are returned when fragmentation demands
  // it; callers loop (and emit one log entry / DMA descriptor per extent,
  // exactly as NOVA issues one memcpy per contiguous range).
  StatusOr<Extent> Alloc(uint64_t pages, int shard_hint);

  // Allocates extents covering exactly `pages` pages.
  StatusOr<std::vector<Extent>> AllocMulti(uint64_t pages, int shard_hint);

  void Free(const Extent& e);

  // Recovery interface: empty the allocator, mark referenced ranges used,
  // then release everything unmarked in one pass.
  void BeginRecovery();                      // all blocks provisionally free
  void MarkUsed(uint64_t block_off, uint64_t pages);
  void FinishRecovery();

  uint64_t free_pages() const { return free_pages_; }
  uint64_t total_pages() const { return total_pages_; }
  uint64_t area_off() const { return area_off_; }

 private:
  int ShardOf(uint64_t block_off) const;
  void FreeIntoShard(std::map<uint64_t, uint64_t>& shard, uint64_t off,
                     uint64_t pages);

  uint64_t area_off_;
  uint64_t total_pages_;
  uint64_t free_pages_ = 0;
  uint64_t shard_span_;  // bytes of block area per shard
  std::vector<std::map<uint64_t, uint64_t>> shards_;  // off -> pages
  std::vector<bool> used_bitmap_;  // recovery only
  bool in_recovery_ = false;
};

}  // namespace easyio::nova

#endif  // EASYIO_NOVA_ALLOCATOR_H_
