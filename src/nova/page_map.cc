#include "src/nova/page_map.h"

#include <algorithm>
#include <cassert>

#include "src/nova/layout.h"

namespace easyio::nova {

std::vector<Extent> PageMap::Insert(uint64_t pgoff, uint64_t pages,
                                    uint64_t block_off, uint64_t sn_packed) {
  assert(pages > 0);
  const uint64_t end = pgoff + pages;
  std::vector<Extent> displaced;

  // Trim a predecessor extent overlapping the front of the range.
  auto it = map_.lower_bound(pgoff);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    const uint64_t prev_end = prev->first + prev->second.pages;
    if (prev_end > pgoff) {
      Node old = prev->second;
      const uint64_t left = pgoff - prev->first;  // pages kept on the left
      const uint64_t overlap = std::min(prev_end, end) - pgoff;
      // Keep the left part.
      prev->second.pages = left;
      // Displace the overlapped middle.
      displaced.push_back(
          Extent{old.block_off + left * kBlockSize, overlap});
      // Re-insert the surviving right part, if any.
      if (prev_end > end) {
        map_.emplace(end, Node{prev_end - end,
                               old.block_off + (left + overlap) * kBlockSize,
                               old.sn_packed});
      }
      if (left == 0) {
        map_.erase(prev);
      }
    }
  }

  // Consume extents starting inside the range.
  it = map_.lower_bound(pgoff);
  while (it != map_.end() && it->first < end) {
    const uint64_t node_end = it->first + it->second.pages;
    if (node_end <= end) {
      // Fully covered.
      displaced.push_back(Extent{it->second.block_off, it->second.pages});
      it = map_.erase(it);
    } else {
      // Tail survives.
      const uint64_t overlap = end - it->first;
      displaced.push_back(Extent{it->second.block_off, overlap});
      Node tail{node_end - end,
                it->second.block_off + overlap * kBlockSize,
                it->second.sn_packed};
      map_.erase(it);
      map_.emplace(end, tail);
      break;
    }
  }

  map_.emplace(pgoff, Node{pages, block_off, sn_packed});
  return displaced;
}

std::vector<PageMap::Segment> PageMap::Lookup(uint64_t pgoff,
                                              uint64_t pages) const {
  std::vector<Segment> out;
  if (pages == 0) {
    return out;
  }
  const uint64_t end = pgoff + pages;
  uint64_t pos = pgoff;

  auto emit_hole = [&out](uint64_t at, uint64_t n) {
    if (n > 0) {
      out.push_back(Segment{at, n, 0, /*hole=*/true});
    }
  };

  auto it = map_.lower_bound(pgoff);
  // A predecessor may cover the start of the range.
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.pages > pgoff) {
      it = prev;
    }
  }
  for (; it != map_.end() && it->first < end; ++it) {
    const uint64_t node_start = it->first;
    const uint64_t node_end = node_start + it->second.pages;
    const uint64_t seg_start = std::max(node_start, pos);
    const uint64_t seg_end = std::min(node_end, end);
    if (seg_end <= pos) {
      continue;
    }
    emit_hole(pos, seg_start - pos);
    out.push_back(Segment{
        seg_start, seg_end - seg_start,
        it->second.block_off + (seg_start - node_start) * kBlockSize,
        /*hole=*/false});
    pos = seg_end;
  }
  emit_hole(pos, end - pos);
  return out;
}

void PageMap::Clear(std::vector<Extent>* freed) {
  for (const auto& [start, node] : map_) {
    freed->push_back(Extent{node.block_off, node.pages});
  }
  map_.clear();
}

uint64_t PageMap::mapped_pages() const {
  uint64_t total = 0;
  for (const auto& [start, node] : map_) {
    total += node.pages;
  }
  return total;
}

}  // namespace easyio::nova
