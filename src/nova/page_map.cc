#include "src/nova/page_map.h"

#include <cassert>

namespace easyio::nova {

void PageMap::Insert(uint64_t pgoff, uint64_t pages, uint64_t block_off,
                     uint64_t sn_packed, std::vector<Extent>* displaced) {
  assert(pages > 0);
  const uint64_t end = pgoff + pages;

  size_t i = LowerBound(pgoff);

  // Trim a predecessor extent overlapping the front of the range. Its pgoff
  // is strictly below ours, so a left remnant always survives in place; a
  // right remnant (when the old extent extends past our end) is re-inserted
  // below together with the new extent.
  bool have_prev_tail = false;
  Ext prev_tail{};
  if (i > 0) {
    Ext& prev = exts_[i - 1];
    const uint64_t prev_end = prev.pgoff + prev.pages;
    if (prev_end > pgoff) {
      const uint64_t left = pgoff - prev.pgoff;  // pages kept on the left
      const uint64_t overlap = std::min(prev_end, end) - pgoff;
      displaced->push_back(Extent{prev.block_off + left * kBlockSize, overlap});
      prev.pages = left;
      if (prev_end > end) {
        have_prev_tail = true;
        prev_tail = Ext{end, prev_end - end,
                        prev.block_off + (left + overlap) * kBlockSize,
                        prev.sn_packed};
      }
    }
  }

  // Consume extents starting inside the range: [i, j) are fully covered; a
  // partially covered last extent is trimmed in place to its surviving tail.
  size_t j = i;
  while (j < exts_.size() && exts_[j].pgoff < end) {
    Ext& e = exts_[j];
    const uint64_t node_end = e.pgoff + e.pages;
    if (node_end <= end) {
      displaced->push_back(Extent{e.block_off, e.pages});
      j++;
    } else {
      const uint64_t overlap = end - e.pgoff;
      displaced->push_back(Extent{e.block_off, overlap});
      e = Ext{end, node_end - end, e.block_off + overlap * kBlockSize,
              e.sn_packed};
      break;
    }
  }

  // Replace the fully covered run [i, j) with the new extent (and the
  // predecessor's surviving tail, which starts exactly at `end`). Overwrite
  // in place where possible so steady-state overwrites do not shift the
  // whole suffix twice.
  const size_t need = 1 + (have_prev_tail ? 1 : 0);
  const size_t have = j - i;
  if (have >= need) {
    exts_[i] = Ext{pgoff, pages, block_off, sn_packed};
    if (have_prev_tail) {
      exts_[i + 1] = prev_tail;
    }
    exts_.erase(exts_.begin() + static_cast<ptrdiff_t>(i + need),
                exts_.begin() + static_cast<ptrdiff_t>(j));
  } else {
    // have < need (0 or 1 slots available for 1 or 2 elements).
    if (have == 1) {
      exts_[i] = Ext{pgoff, pages, block_off, sn_packed};
      if (have_prev_tail) {
        exts_.insert(exts_.begin() + static_cast<ptrdiff_t>(i + 1), prev_tail);
      }
    } else {
      Ext fresh{pgoff, pages, block_off, sn_packed};
      if (have_prev_tail) {
        const Ext both[2] = {fresh, prev_tail};
        exts_.insert(exts_.begin() + static_cast<ptrdiff_t>(i), both,
                     both + 2);
      } else {
        exts_.insert(exts_.begin() + static_cast<ptrdiff_t>(i), fresh);
      }
    }
  }
}

void PageMap::Clear(std::vector<Extent>* freed) {
  for (const Ext& e : exts_) {
    freed->push_back(Extent{e.block_off, e.pages});
  }
  exts_.clear();
}

uint64_t PageMap::mapped_pages() const {
  uint64_t total = 0;
  for (const Ext& e : exts_) {
    total += e.pages;
  }
  return total;
}

}  // namespace easyio::nova
