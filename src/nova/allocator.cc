#include "src/nova/allocator.h"

#include <algorithm>
#include <cassert>

#include "src/nova/layout.h"

namespace easyio::nova {

BlockAllocator::BlockAllocator(uint64_t area_off, uint64_t num_blocks,
                               int shards)
    : area_off_(area_off), total_pages_(num_blocks) {
  assert(shards >= 1);
  shards_.resize(static_cast<size_t>(shards));
  const uint64_t pages_per_shard =
      std::max<uint64_t>(1, (num_blocks + shards - 1) / shards);
  shard_span_ = pages_per_shard * kBlockSize;
  // Seed each shard with its stripe of the block area.
  uint64_t off = area_off;
  uint64_t remaining = num_blocks;
  for (auto& shard : shards_) {
    if (remaining == 0) {
      break;
    }
    const uint64_t pages = std::min(remaining, pages_per_shard);
    shard.runs.push_back(Run{off, pages});
    shard.max_run = pages;
    off += pages * kBlockSize;
    remaining -= pages;
  }
  free_pages_ = num_blocks;
}

int BlockAllocator::ShardOf(uint64_t block_off) const {
  const uint64_t idx = (block_off - area_off_) / shard_span_;
  return static_cast<int>(
      std::min<uint64_t>(idx, shards_.size() - 1));
}

StatusOr<Extent> BlockAllocator::Alloc(uint64_t pages, int shard_hint) {
  assert(pages >= 1);
  assert(!in_recovery_);
  const int n = static_cast<int>(shards_.size());
  int start = ((shard_hint % n) + n) % n;
  // First pass: first fit (lowest offset) in the hint shard, then the
  // others. Shards whose cached largest-run bound rules them out are
  // skipped — the scan would have failed there anyway.
  for (int probe = 0; probe < n; ++probe) {
    Shard& shard = shards_[static_cast<size_t>((start + probe) % n)];
    if (shard.max_run < pages) {
      continue;
    }
    uint64_t seen_max = 0;
    bool found = false;
    for (Run& run : shard.runs) {
      if (run.pages >= pages) {
        found = true;
        const Extent e{run.off, pages};
        run.off += pages * kBlockSize;
        run.pages -= pages;
        if (run.pages == 0) {
          shard.runs.erase(shard.runs.begin() + (&run - shard.runs.data()));
        }
        free_pages_ -= pages;
        return e;
      }
      seen_max = std::max(seen_max, run.pages);
    }
    if (!found) {
      shard.max_run = seen_max;  // tighten the bound for future requests
    }
  }
  // Second pass: take the largest available extent (fragmented device).
  Shard* best_shard = nullptr;
  size_t best_idx = 0;
  uint64_t best_pages = 0;
  for (Shard& shard : shards_) {
    uint64_t shard_max = 0;
    for (size_t i = 0; i < shard.runs.size(); ++i) {
      shard_max = std::max(shard_max, shard.runs[i].pages);
      if (shard.runs[i].pages > best_pages) {
        best_pages = shard.runs[i].pages;
        best_idx = i;
        best_shard = &shard;
      }
    }
    shard.max_run = shard_max;  // exact, we just scanned everything
  }
  if (best_shard == nullptr) {
    return NoSpace("block allocator exhausted");
  }
  const Extent e{best_shard->runs[best_idx].off, best_pages};
  best_shard->runs.erase(best_shard->runs.begin() +
                         static_cast<ptrdiff_t>(best_idx));
  free_pages_ -= best_pages;
  return e;
}

Status BlockAllocator::AllocMultiInto(uint64_t pages, int shard_hint,
                                      std::vector<Extent>* out) {
  const size_t first = out->size();
  uint64_t remaining = pages;
  while (remaining > 0) {
    auto e = Alloc(remaining, shard_hint);
    if (!e.ok()) {
      for (size_t i = first; i < out->size(); ++i) {
        Free((*out)[i]);
      }
      out->resize(first);
      return e.status();
    }
    remaining -= e->pages;
    out->push_back(*e);
  }
  return OkStatus();
}

StatusOr<std::vector<Extent>> BlockAllocator::AllocMulti(uint64_t pages,
                                                         int shard_hint) {
  std::vector<Extent> extents;
  EASYIO_RETURN_IF_ERROR(AllocMultiInto(pages, shard_hint, &extents));
  return extents;
}

void BlockAllocator::FreeIntoShard(Shard& shard, uint64_t off,
                                   uint64_t pages) {
  auto& runs = shard.runs;
  auto next = std::lower_bound(
      runs.begin(), runs.end(), off,
      [](const Run& r, uint64_t v) { return r.off < v; });
  bool merged_prev = false;
  if (next != runs.begin()) {
    auto prev = std::prev(next);
    assert(prev->off + prev->pages * kBlockSize <= off && "double free");
    if (prev->off + prev->pages * kBlockSize == off) {
      prev->pages += pages;
      off = prev->off;
      pages = prev->pages;
      merged_prev = true;
      next = prev + 1;
    }
  }
  if (next != runs.end()) {
    assert(off + pages * kBlockSize <= next->off && "double free");
    if (off + pages * kBlockSize == next->off) {
      if (merged_prev) {
        // prev absorbed the freed range; absorb next into prev too.
        std::prev(next)->pages += next->pages;
        pages += next->pages;
        runs.erase(next);
      } else {
        next->off = off;
        next->pages += pages;
        pages = next->pages;
        merged_prev = true;
      }
    }
  }
  if (!merged_prev) {
    runs.insert(next, Run{off, pages});
  }
  shard.max_run = std::max(shard.max_run, pages);
}

void BlockAllocator::Free(const Extent& e) {
  assert(!in_recovery_);
  assert(e.pages > 0);
  // An extent allocated near a shard boundary may span two stripes; keep the
  // free map consistent by splitting on the home shard only (extents are
  // always freed exactly as allocated or as split by the page map, so
  // shard-of-first-block is stable enough for bookkeeping).
  FreeIntoShard(shards_[static_cast<size_t>(ShardOf(e.block_off))],
                e.block_off, e.pages);
  free_pages_ += e.pages;
}

void BlockAllocator::BeginRecovery() {
  in_recovery_ = true;
  for (auto& shard : shards_) {
    shard.runs.clear();
    shard.max_run = 0;
  }
  free_pages_ = 0;
  used_bitmap_.assign(total_pages_, false);
}

void BlockAllocator::MarkUsed(uint64_t block_off, uint64_t pages) {
  assert(in_recovery_);
  const uint64_t first = (block_off - area_off_) / kBlockSize;
  for (uint64_t i = 0; i < pages; ++i) {
    assert(first + i < total_pages_);
    assert(!used_bitmap_[first + i] && "block referenced twice");
    used_bitmap_[first + i] = true;
  }
}

void BlockAllocator::FinishRecovery() {
  assert(in_recovery_);
  // Sweep free runs back into their shards.
  uint64_t run_start = 0;
  uint64_t run_len = 0;
  auto flush = [&] {
    if (run_len == 0) {
      return;
    }
    uint64_t off = area_off_ + run_start * kBlockSize;
    uint64_t pages = run_len;
    // Split runs on shard boundaries so stripes stay balanced.
    while (pages > 0) {
      const int shard = ShardOf(off);
      const uint64_t shard_end =
          area_off_ + (static_cast<uint64_t>(shard) + 1) * shard_span_;
      const uint64_t fit =
          std::min(pages, (shard_end - off) / kBlockSize);
      FreeIntoShard(shards_[static_cast<size_t>(shard)], off,
                    fit == 0 ? pages : fit);
      const uint64_t took = fit == 0 ? pages : fit;
      off += took * kBlockSize;
      pages -= took;
    }
    free_pages_ += run_len;
    run_len = 0;
  };
  for (uint64_t i = 0; i < total_pages_; ++i) {
    if (used_bitmap_[i]) {
      flush();
    } else {
      if (run_len == 0) {
        run_start = i;
      }
      run_len++;
    }
  }
  flush();
  used_bitmap_.clear();
  in_recovery_ = false;
}

}  // namespace easyio::nova
