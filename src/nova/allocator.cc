#include "src/nova/allocator.h"

#include <algorithm>
#include <cassert>

#include "src/nova/layout.h"

namespace easyio::nova {

BlockAllocator::BlockAllocator(uint64_t area_off, uint64_t num_blocks,
                               int shards)
    : area_off_(area_off), total_pages_(num_blocks) {
  assert(shards >= 1);
  shards_.resize(static_cast<size_t>(shards));
  const uint64_t pages_per_shard =
      std::max<uint64_t>(1, (num_blocks + shards - 1) / shards);
  shard_span_ = pages_per_shard * kBlockSize;
  // Seed each shard with its stripe of the block area.
  uint64_t off = area_off;
  uint64_t remaining = num_blocks;
  for (auto& shard : shards_) {
    if (remaining == 0) {
      break;
    }
    const uint64_t pages = std::min(remaining, pages_per_shard);
    shard.emplace(off, pages);
    off += pages * kBlockSize;
    remaining -= pages;
  }
  free_pages_ = num_blocks;
}

int BlockAllocator::ShardOf(uint64_t block_off) const {
  const uint64_t idx = (block_off - area_off_) / shard_span_;
  return static_cast<int>(
      std::min<uint64_t>(idx, shards_.size() - 1));
}

StatusOr<Extent> BlockAllocator::Alloc(uint64_t pages, int shard_hint) {
  assert(pages >= 1);
  assert(!in_recovery_);
  const int n = static_cast<int>(shards_.size());
  int start = ((shard_hint % n) + n) % n;
  // First pass: an extent large enough anywhere, preferring the hint shard.
  for (int probe = 0; probe < n; ++probe) {
    auto& shard = shards_[static_cast<size_t>((start + probe) % n)];
    for (auto it = shard.begin(); it != shard.end(); ++it) {
      if (it->second >= pages) {
        Extent e{it->first, pages};
        const uint64_t rest = it->second - pages;
        const uint64_t rest_off = it->first + pages * kBlockSize;
        shard.erase(it);
        if (rest > 0) {
          shard.emplace(rest_off, rest);
        }
        free_pages_ -= pages;
        return e;
      }
    }
  }
  // Second pass: take the largest available extent (fragmented device).
  std::map<uint64_t, uint64_t>* best_shard = nullptr;
  std::map<uint64_t, uint64_t>::iterator best;
  uint64_t best_pages = 0;
  for (auto& shard : shards_) {
    for (auto it = shard.begin(); it != shard.end(); ++it) {
      if (it->second > best_pages) {
        best_pages = it->second;
        best = it;
        best_shard = &shard;
      }
    }
  }
  if (best_shard == nullptr) {
    return NoSpace("block allocator exhausted");
  }
  Extent e{best->first, best_pages};
  best_shard->erase(best);
  free_pages_ -= best_pages;
  return e;
}

StatusOr<std::vector<Extent>> BlockAllocator::AllocMulti(uint64_t pages,
                                                         int shard_hint) {
  std::vector<Extent> extents;
  uint64_t remaining = pages;
  while (remaining > 0) {
    auto e = Alloc(remaining, shard_hint);
    if (!e.ok()) {
      for (const Extent& got : extents) {
        Free(got);
      }
      return e.status();
    }
    remaining -= e->pages;
    extents.push_back(*e);
  }
  return extents;
}

void BlockAllocator::FreeIntoShard(std::map<uint64_t, uint64_t>& shard,
                                   uint64_t off, uint64_t pages) {
  auto next = shard.lower_bound(off);
  // Coalesce with predecessor.
  if (next != shard.begin()) {
    auto prev = std::prev(next);
    assert(prev->first + prev->second * kBlockSize <= off && "double free");
    if (prev->first + prev->second * kBlockSize == off) {
      off = prev->first;
      pages += prev->second;
      shard.erase(prev);
    }
  }
  // Coalesce with successor.
  if (next != shard.end()) {
    assert(off + pages * kBlockSize <= next->first && "double free");
    if (off + pages * kBlockSize == next->first) {
      pages += next->second;
      shard.erase(next);
    }
  }
  shard.emplace(off, pages);
}

void BlockAllocator::Free(const Extent& e) {
  assert(!in_recovery_);
  assert(e.pages > 0);
  // An extent allocated near a shard boundary may span two stripes; keep the
  // free map consistent by splitting on the home shard only (extents are
  // always freed exactly as allocated or as split by the page map, so
  // shard-of-first-block is stable enough for bookkeeping).
  FreeIntoShard(shards_[static_cast<size_t>(ShardOf(e.block_off))],
                e.block_off, e.pages);
  free_pages_ += e.pages;
}

void BlockAllocator::BeginRecovery() {
  in_recovery_ = true;
  for (auto& shard : shards_) {
    shard.clear();
  }
  free_pages_ = 0;
  used_bitmap_.assign(total_pages_, false);
}

void BlockAllocator::MarkUsed(uint64_t block_off, uint64_t pages) {
  assert(in_recovery_);
  const uint64_t first = (block_off - area_off_) / kBlockSize;
  for (uint64_t i = 0; i < pages; ++i) {
    assert(first + i < total_pages_);
    assert(!used_bitmap_[first + i] && "block referenced twice");
    used_bitmap_[first + i] = true;
  }
}

void BlockAllocator::FinishRecovery() {
  assert(in_recovery_);
  // Sweep free runs back into their shards.
  uint64_t run_start = 0;
  uint64_t run_len = 0;
  auto flush = [&] {
    if (run_len == 0) {
      return;
    }
    uint64_t off = area_off_ + run_start * kBlockSize;
    uint64_t pages = run_len;
    // Split runs on shard boundaries so stripes stay balanced.
    while (pages > 0) {
      const int shard = ShardOf(off);
      const uint64_t shard_end =
          area_off_ + (static_cast<uint64_t>(shard) + 1) * shard_span_;
      const uint64_t fit =
          std::min(pages, (shard_end - off) / kBlockSize);
      FreeIntoShard(shards_[static_cast<size_t>(shard)], off,
                    fit == 0 ? pages : fit);
      const uint64_t took = fit == 0 ? pages : fit;
      off += took * kBlockSize;
      pages -= took;
    }
    free_pages_ += run_len;
    run_len = 0;
  };
  for (uint64_t i = 0; i < total_pages_; ++i) {
    if (used_bitmap_[i]) {
      flush();
    } else {
      if (run_len == 0) {
        run_start = i;
      }
      run_len++;
    }
  }
  flush();
  used_bitmap_.clear();
  in_recovery_ = false;
}

}  // namespace easyio::nova
