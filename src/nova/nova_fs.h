// NovaFs: a NOVA-style log-structured slow-memory filesystem (paper §5).
//
// This class is the complete synchronous baseline ("NOVA" in the paper's
// evaluation): per-inode metadata logs with a persistent tail as the commit
// point, CoW data blocks, journaled multi-inode namespace operations, and a
// mount-time recovery scan. Data movement goes through two virtual hooks
// (MoveToPmem / MoveFromPmem) that the NOVA-DMA and OdinFS baselines
// override, while EasyIO overrides the whole read/write structure
// (WriteInternal / ReadInternal) to implement orderless commit and two-level
// locking on top of the same layout, allocator, log and recovery machinery —
// mirroring how the real EasyIO patches NOVA with <50 lines.
//
// All operations must be called from inside a sim::Task; they charge modeled
// syscall/index/metadata/data time per MediaParams.

#ifndef EASYIO_NOVA_NOVA_FS_H_
#define EASYIO_NOVA_NOVA_FS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/dma/channel.h"
#include "src/dma/sn.h"
#include "src/fs/file_system.h"
#include "src/nova/allocator.h"
#include "src/nova/journal.h"
#include "src/nova/layout.h"
#include "src/nova/page_map.h"
#include "src/pmem/slow_memory.h"
#include "src/uthread/scheduler.h"

namespace easyio::nova {

class NovaFs : public fs::FileSystem {
 public:
  struct Options {
    uint64_t inode_count = 16384;
    uint64_t journal_slots = 64;
    uint64_t comp_channels = 16;  // completion-record region in the layout
    int alloc_shards = 16;
    // Log-GC trigger: compact once the chain exceeds this many pages AND is
    // 4x what its live entries need. Tests lower it to exercise compaction
    // cheaply.
    uint64_t gc_min_pages = 16;
  };

  NovaFs(pmem::SlowMemory* mem, const Options& options);
  ~NovaFs() override;

  // Initializes a fresh filesystem on the device.
  Status Format();
  // Mounts an existing image: replays journals, scans inode logs, validates
  // write entries against the completion records (§4.2), rebuilds the
  // allocator. Must run before any DmaEngine is constructed on the device
  // (engine construction starts a fresh completion era).
  Status Mount();

  const Layout& layout() const { return layout_; }
  pmem::SlowMemory* memory() const { return mem_; }

  // ---- fs::FileSystem ----
  std::string_view name() const override { return "NOVA"; }
  StatusOr<int> Create(const std::string& path) override;
  StatusOr<int> Open(const std::string& path) override;
  Status Close(int fd) override;
  Status Mkdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Link(const std::string& existing,
              const std::string& link_path) override;
  StatusOr<fs::FileStat> StatPath(const std::string& path) override;
  StatusOr<fs::FileStat> StatFd(int fd) override;
  StatusOr<size_t> Read(int fd, uint64_t off, std::span<std::byte> buf,
                        fs::OpStats* stats) override;
  StatusOr<size_t> Write(int fd, uint64_t off, std::span<const std::byte> buf,
                         fs::OpStats* stats) override;
  StatusOr<size_t> Append(int fd, std::span<const std::byte> buf,
                          fs::OpStats* stats) override;
  Status Fsync(int fd) override;
  using fs::FileSystem::Append;
  using fs::FileSystem::Read;
  using fs::FileSystem::Write;

  // ---- introspection (tests, EXPERIMENTS.md) ----
  uint64_t recovery_discarded_entries() const {
    return recovery_discarded_entries_;
  }
  uint64_t recovery_replayed_journals() const {
    return recovery_replayed_journals_;
  }
  uint64_t free_pages() const { return allocator_->free_pages(); }
  uint64_t log_compactions() const { return log_compactions_; }

  // Cumulative data-path counters (obs::FsStats source). `bytes_cpu` counts
  // data moved by CPU copy paths, `bytes_dma` by DMA offload; subclasses
  // report their own movement via AddCpuBytes/AddDmaBytes.
  struct Counters {
    uint64_t ops_read = 0;
    uint64_t ops_write = 0;  // Write + Append entry points
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    uint64_t bytes_cpu = 0;
    uint64_t bytes_dma = 0;
  };
  const Counters& counters() const { return counters_; }

 protected:
  // In-DRAM inode state, rebuilt from the log at mount.
  struct Inode {
    Inode(sim::Simulation* sim, uint64_t ino, uint64_t slot)
        : ino(ino), slot(slot), lock(sim) {}

    uint64_t ino;
    uint64_t slot;
    bool is_dir = false;
    uint64_t nlink = 1;
    uint64_t size = 0;
    uint64_t mtime_ns = 0;
    uint64_t log_head = 0;   // mirrors PInode
    uint64_t log_tail = 0;   // committed tail (mirrors PInode)
    uint64_t log_next = 0;   // next free slot (>= log_tail; uncommitted)
    uint64_t log_pages = 0;  // pages in the chain (GC trigger)
    PageMap pages;
    std::map<std::string, uint64_t> dentries;  // directories only
    uthread::RwLock lock;  // level-1 file lock

    // EasyIO state: the (single) outstanding orderless write (§4.3 ensures
    // at most one per file) and in-flight-read accounting for deferred free.
    // A striped write spreads its descriptors over several channels;
    // pending_channel/pending_sn hold the primary channel's last SN and
    // pending_stripes the other channels' last SNs — durability requires
    // every channel's record to cover its own SN (per-channel monotonicity
    // says nothing across channels).
    dma::Channel* pending_channel = nullptr;
    dma::Sn pending_sn = dma::Sn::None();
    std::vector<std::pair<dma::Channel*, dma::Sn>> pending_stripes;
    int pending_reads = 0;
    std::vector<Extent> deferred_free;

    int open_count = 0;
    bool unlinked = false;  // free resources on last close
  };

  // ---- mode hooks ----
  // Synchronous data movement, overridden by NOVA-DMA (sync DMA wait) and
  // OdinFS (delegation). Both charge into stats->data_ns.
  virtual void MoveToPmem(uint64_t pmem_off, const std::byte* src,
                          size_t bytes, fs::OpStats* stats);
  virtual void MoveFromPmem(std::byte* dst, uint64_t pmem_off, size_t bytes,
                            fs::OpStats* stats);
  // Whole-path hooks; the base implementations are NOVA's strictly ordered
  // synchronous paths. They are entered after fd resolution with the syscall
  // entry cost already charged, and must charge the exit cost themselves.
  virtual StatusOr<size_t> WriteInternal(Inode& in, uint64_t off,
                                         std::span<const std::byte> buf,
                                         bool append, fs::OpStats* stats);
  virtual StatusOr<size_t> ReadInternal(Inode& in, uint64_t off,
                                        std::span<std::byte> buf,
                                        fs::OpStats* stats);
  virtual Status FsyncInternal(Inode& in);

  // ---- shared machinery for subclasses ----
  sim::Simulation* sim() const { return sim_; }
  const pmem::MediaParams& params() const { return mem_->params(); }

  Inode* ResolveFd(int fd);
  uint64_t PInodeOff(uint64_t slot) const {
    return layout_.inode_table_off + slot * kPInodeSize;
  }

  // Charges `ns` of CPU time and attributes it to a breakdown category.
  void Charge(fs::OpStats* stats, uint64_t fs::OpStats::*cat, uint64_t ns);
  // Runs `fn` and attributes the elapsed virtual time to `cat`.
  template <typename Fn>
  void Timed(fs::OpStats* stats, uint64_t fs::OpStats::*cat, Fn&& fn) {
    const sim::SimTime t0 = sim_->now();
    fn();
    if (stats != nullptr) {
      stats->*cat += sim_->now() - t0;
    }
  }

  // Appends a 64-byte entry to the inode's log (allocating/chaining pages as
  // needed); does not commit. Returns OK or allocation failure.
  Status AppendLogEntry(Inode& in, const void* entry, fs::OpStats* stats);
  // Commits in.log_next as the new persistent tail.
  void CommitLogTail(Inode& in, fs::OpStats* stats);

  // Allocates CoW extents for `pages` into *out (appended, not cleared),
  // charging allocator cost.
  Status AllocBlocks(uint64_t pages, fs::OpStats* stats,
                     std::vector<Extent>* out);
  // Copies the preserved head/tail bytes of a partially overwritten edge
  // page from the old mapping into the new blocks.
  void FillWriteEdges(Inode& in, uint64_t off, size_t n,
                      const std::vector<Extent>& extents, fs::OpStats* stats);
  // Builds and appends the write entries for `extents` (one per extent) and
  // commits; updates DRAM size/mtime/page map and releases displaced blocks.
  // `sns` gives the DMA SN for each extent (Sn::None for memcpy).
  Status CommitWrite(Inode& in, uint64_t off, size_t n,
                     const std::vector<Extent>& extents,
                     const std::vector<dma::Sn>& sns, fs::OpStats* stats);

  // Level-2 wait (§4.3): blocks until the inode's outstanding orderless
  // write completes. Returns the blocked time (0 when none pending).
  // Recovery-aware: a channel halted on a transfer error is driven through
  // retry/fallback per recover_policy_, so the wait always ends with the
  // data durable.
  uint64_t WaitPendingWrite(Inode& in);

  // Retry/fallback policy for every SN wait issued on behalf of this
  // filesystem (level-2 waits and subclass write paths). Subclasses may
  // override the defaults at construction.
  dma::RetryPolicy recover_policy_{};

  // NOVA-style log garbage collection (NOVA §3.6): when an inode's log has
  // grown well past what its live entries need, rewrite the live state into
  // a fresh log chain and atomically switch head+tail via the journal.
  // Must be called at an operation boundary (no uncommitted appends) with
  // the file lock / namespace lock held and no pending orderless write.
  void MaybeCompactLog(Inode& in, fs::OpStats* stats);

  // Deferred free: displaced blocks are freed immediately when no reads are
  // in flight, else parked until the last one drains.
  void ReleaseBlocks(Inode& in, const std::vector<Extent>& displaced);
  void OnReadDone(Inode& in);

  // Zero-fill for holes (DRAM-side memset, charged at DRAM speed).
  void FillZero(std::byte* dst, size_t n, fs::OpStats* stats);

  // Byte range of `seg` intersected with [off, off+n), as (dst_offset within
  // the user buffer, pmem_off, bytes).
  struct ByteRange {
    size_t buf_off;
    uint64_t pmem_off;  // valid when !hole
    size_t bytes;
    bool hole;
  };
  // Appends the intersected ranges to *out (which is not cleared).
  static void SegmentsToByteRanges(const std::vector<PageMap::Segment>& segs,
                                   uint64_t off, size_t n,
                                   std::vector<ByteRange>* out);

  // ---- per-operation scratch buffers ----
  // The read/write hot paths materialize small vectors (segments, byte
  // ranges, extents, SNs, DMA descriptors). Allocating them per operation
  // dominates the simulator's real-time cost, so operations lease a scratch
  // set from a free list instead: capacity persists across operations, and
  // after warmup the steady-state data paths perform no heap allocation.
  // One lease per in-flight operation — a leased set is never shared, so
  // scratch contents survive the task switches inside a modeled operation.
  struct OpScratch {
    std::vector<PageMap::Segment> segs;
    std::vector<ByteRange> ranges;
    std::vector<Extent> extents;
    std::vector<Extent> displaced;
    std::vector<dma::Sn> sns;
    std::vector<dma::Descriptor> batch;
  };
  class ScratchLease {
   public:
    explicit ScratchLease(NovaFs* fs) : fs_(fs), s_(fs->AcquireScratch()) {}
    ~ScratchLease() { fs_->ReleaseScratch(s_); }
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;
    OpScratch* operator->() const { return s_; }
    OpScratch& operator*() const { return *s_; }

   private:
    NovaFs* fs_;
    OpScratch* s_;
  };
  OpScratch* AcquireScratch();
  void ReleaseScratch(OpScratch* s);

  void AddCpuBytes(uint64_t n) { counters_.bytes_cpu += n; }
  void AddDmaBytes(uint64_t n) { counters_.bytes_dma += n; }

  pmem::SlowMemory* mem_;
  sim::Simulation* sim_;
  Options options_;
  Layout layout_{};
  std::unique_ptr<BlockAllocator> allocator_;
  std::unique_ptr<Journal> journal_;

 private:
  // Namespace helpers (all under namespace_lock_).
  StatusOr<Inode*> ResolvePath(const std::vector<std::string>& parts);
  StatusOr<Inode*> ResolveParent(const std::string& path, std::string* leaf);
  StatusOr<Inode*> AllocInode(bool is_dir);
  Status AppendDentry(Inode& dir, EntryType type, const std::string& name,
                      uint64_t child_ino, fs::OpStats* stats);
  void FreeInodeResources(Inode& in);  // blocks + log pages
  void DestroyInode(Inode* in);
  StatusOr<int> AllocFd(Inode* in);
  fs::FileStat StatOf(const Inode& in) const;
  uint64_t CompletedSeqOf(uint8_t channel) const;  // from completion records
  Status RecoverInode(uint64_t slot);

  uthread::Mutex namespace_lock_;
  std::vector<std::unique_ptr<OpScratch>> scratch_pool_;  // free list
  std::unordered_map<uint64_t, std::unique_ptr<Inode>> inodes_;
  std::vector<uint64_t> free_slots_;
  std::vector<uint64_t> fd_table_;  // fd -> ino (0 = free)
  std::vector<int> free_fds_;
  uint64_t recovery_discarded_entries_ = 0;
  uint64_t recovery_replayed_journals_ = 0;
  uint64_t log_compactions_ = 0;
  Counters counters_;
};

}  // namespace easyio::nova

#endif  // EASYIO_NOVA_NOVA_FS_H_
