// FlowResource: fluid-flow bandwidth sharing for the slow-memory media.
//
// Every in-flight transfer (a CPU memcpy stream or one DMA channel's current
// descriptor) is a *flow*. Active flows share the device with max-min
// fairness, subject to three kinds of limits taken from the paper's
// measurements (§2.1-2.2):
//
//   * a per-flow cap (a single CPU core or a single DMA channel can only
//     drive so much bandwidth, dependent on I/O size for DMA),
//   * per-type aggregate caps that depend on how many flows of that type are
//     active (CPU writes to Optane *lose* total bandwidth as writers are
//     added; DMA write bandwidth shrinks as channels are added for large
//     I/Os),
//   * a total device ceiling.
//
// Whenever the flow set changes, rates are recomputed and the earliest
// completion is (re)scheduled. Completion callbacks fire at exact virtual
// times, so queueing effects (head-of-line blocking in a channel, latency
// spikes when a bulk flow joins) emerge from the model rather than being
// scripted.

#ifndef EASYIO_SIM_FLOW_RESOURCE_H_
#define EASYIO_SIM_FLOW_RESOURCE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace easyio::sim {

enum class FlowType { kCpu, kDma };

// Aggregate capacity model for one transfer direction (read or write).
struct CapacityModel {
  // Aggregate GiB/s available to all CPU flows when `n` of them are active.
  std::function<double(int n)> cpu_aggregate;
  // Aggregate GiB/s available to all DMA flows when `n` channels are active.
  std::function<double(int n)> dma_aggregate;
  // Hard device ceiling in GiB/s across both types.
  double total = 1e9;
};

class FlowResource {
 public:
  using FlowId = uint64_t;
  using DoneFn = std::function<void()>;

  FlowResource(Simulation* sim, std::string name, CapacityModel model);

  FlowResource(const FlowResource&) = delete;
  FlowResource& operator=(const FlowResource&) = delete;

  // Starts a transfer of `bytes` limited to `per_flow_cap_gbps`; `done` fires
  // (as a simulation event) when the last byte has moved.
  FlowId StartFlow(uint64_t bytes, double per_flow_cap_gbps, FlowType type,
                   DoneFn done);

  // Fraction of the flow's bytes already transferred, in [0, 1].
  // Returns 1.0 for unknown (already completed) flows.
  double Progress(FlowId id) const;

  // Aborts the flow (used by channel suspension with restart semantics and by
  // the crash injector). Returns the fraction completed at abort time.
  double CancelFlow(FlowId id);

  bool HasFlow(FlowId id) const;
  int active_flows(FlowType type) const {
    return type == FlowType::kCpu ? cpu_flows_ : dma_flows_;
  }
  const std::string& name() const { return name_; }

  // Total bytes completed since construction (for bandwidth accounting).
  uint64_t bytes_completed() const { return bytes_completed_; }

  // Sum of all active flows' current rates (bytes/s). Used for cross-
  // direction interference modeling.
  double total_rate_bps() const { return total_rate_bps_; }

  // Fires (synchronously, after each rate recomputation) whenever the
  // aggregate rate changes; used to poke a coupled resource.
  void set_rates_changed_hook(std::function<void()> hook) {
    rates_changed_hook_ = std::move(hook);
  }

  // Re-settles and recomputes rates; for externally-driven capacity changes
  // (e.g. the other direction's utilization moved).
  void Poke() {
    Settle();
    Recompute();
  }

  // Defers rate recomputation across a run of StartFlow/CancelFlow calls
  // that happen at one virtual instant: each mutation would otherwise
  // cancel and reschedule the completion event and re-run the water-fill,
  // only for the next mutation to redo it all. The scope must be strictly
  // synchronous (no Advance/Yield/RunUntil inside). Eliding the
  // intermediate recomputes is determinism-safe: the elided completion
  // events could never have fired (they would have been cancelled within
  // the same instant), and dropping their sequence numbers is an
  // order-preserving renumbering of every surviving event.
  class BatchScope {
   public:
    explicit BatchScope(FlowResource* r) : r_(r) { r_->BeginBatch(); }
    ~BatchScope() { r_->EndBatch(); }
    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;

   private:
    FlowResource* r_;
  };

 private:
  struct Flow {
    FlowId id;
    FlowType type;
    double bytes_total;
    double bytes_left;
    double cap_gbps;       // per-flow cap
    double rate_bps = 0;   // current rate, bytes per second
    DoneFn done;
  };

  void Settle();       // account transferred bytes up to now
  void Recompute();    // recompute rates + (re)schedule next completion
  void BeginBatch() { batch_depth_++; }
  void EndBatch();
  // Water-fills one type's flows, walking its pre-sorted (cap, id) order.
  void MaxMin(const std::vector<std::pair<double, FlowId>>& order,
              double aggregate_gbps, double* sum_rate_bps);
  std::vector<std::pair<double, FlowId>>& OrderFor(FlowType type) {
    return type == FlowType::kCpu ? cpu_order_ : dma_order_;
  }
  // Binary search by id; flows_.end() if absent.
  std::vector<Flow>::iterator FindFlow(FlowId id);
  std::vector<Flow>::const_iterator FindFlow(FlowId id) const;

  Simulation* sim_;
  std::string name_;
  CapacityModel model_;
  // Settle/Recompute walk every flow on each flow-set change, so the
  // container is the hot path. Ids are handed out monotonically, so
  // push_back keeps the vector sorted by id and iteration order matches the
  // std::map this replaced (ascending id => deterministic); lookups are
  // binary searches, erases shift the tail and preserve order.
  std::vector<Flow> flows_;
  // Per-type water-filling order, kept sorted by (per-flow cap, id)
  // incrementally on start/finish/cancel. Replaces the per-Recompute
  // group-gather + stable_sort: caps never change after StartFlow, so the
  // sort is paid once per flow instead of once per recomputation — and the
  // hot path stops allocating. Ties on cap fall back to id, which is
  // insertion order, matching what the stable sort produced.
  std::vector<std::pair<double, FlowId>> cpu_order_;
  std::vector<std::pair<double, FlowId>> dma_order_;
  int cpu_flows_ = 0;
  int dma_flows_ = 0;
  FlowId next_id_ = 1;
  SimTime last_settle_ = 0;
  EventId pending_event_ = 0;
  bool in_recompute_ = false;
  int batch_depth_ = 0;
  bool recompute_deferred_ = false;
  uint64_t bytes_completed_ = 0;
  double total_rate_bps_ = 0;
  std::function<void()> rates_changed_hook_;
  std::vector<DoneFn> done_scratch_;  // completion-callback buffer, reused
};

}  // namespace easyio::sim

#endif  // EASYIO_SIM_FLOW_RESOURCE_H_
