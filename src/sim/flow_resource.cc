#include "src/sim/flow_resource.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/units.h"

namespace easyio::sim {

namespace {
constexpr double kDoneEpsilonBytes = 0.5;

double GbpsToBps(double gbps) { return gbps * kGiB; }
}  // namespace

FlowResource::FlowResource(Simulation* sim, std::string name,
                           CapacityModel model)
    : sim_(sim), name_(std::move(name)), model_(std::move(model)),
      last_settle_(sim->now()) {}

std::vector<FlowResource::Flow>::iterator FlowResource::FindFlow(FlowId id) {
  auto it = std::lower_bound(
      flows_.begin(), flows_.end(), id,
      [](const Flow& f, FlowId value) { return f.id < value; });
  return it != flows_.end() && it->id == id ? it : flows_.end();
}

std::vector<FlowResource::Flow>::const_iterator FlowResource::FindFlow(
    FlowId id) const {
  auto it = std::lower_bound(
      flows_.begin(), flows_.end(), id,
      [](const Flow& f, FlowId value) { return f.id < value; });
  return it != flows_.end() && it->id == id ? it : flows_.end();
}

bool FlowResource::HasFlow(FlowId id) const {
  return FindFlow(id) != flows_.end();
}

FlowResource::FlowId FlowResource::StartFlow(uint64_t bytes,
                                             double per_flow_cap_gbps,
                                             FlowType type, DoneFn done) {
  Settle();
  const FlowId id = next_id_++;
  Flow flow;
  flow.id = id;
  flow.type = type;
  flow.bytes_total = static_cast<double>(bytes);
  flow.bytes_left = static_cast<double>(bytes);
  flow.cap_gbps = per_flow_cap_gbps;
  flow.done = std::move(done);
  flows_.push_back(std::move(flow));  // ids are monotonic: stays sorted
  (type == FlowType::kCpu ? cpu_flows_ : dma_flows_)++;
  auto& order = OrderFor(type);
  const auto entry = std::make_pair(per_flow_cap_gbps, id);
  order.insert(std::upper_bound(order.begin(), order.end(), entry), entry);
  Recompute();
  return id;
}

double FlowResource::Progress(FlowId id) const {
  auto it = FindFlow(id);
  if (it == flows_.end()) {
    return 1.0;
  }
  const Flow& f = *it;
  if (f.bytes_total <= 0) {
    return 1.0;
  }
  const double elapsed_s =
      static_cast<double>(sim_->now() - last_settle_) / 1e9;
  const double left = std::max(0.0, f.bytes_left - f.rate_bps * elapsed_s);
  return std::clamp(1.0 - left / f.bytes_total, 0.0, 1.0);
}

double FlowResource::CancelFlow(FlowId id) {
  Settle();
  auto it = FindFlow(id);
  if (it == flows_.end()) {
    return 1.0;
  }
  const Flow& f = *it;
  const double progress =
      f.bytes_total <= 0
          ? 1.0
          : std::clamp(1.0 - f.bytes_left / f.bytes_total, 0.0, 1.0);
  bytes_completed_ +=
      static_cast<uint64_t>(f.bytes_total - std::max(0.0, f.bytes_left));
  (f.type == FlowType::kCpu ? cpu_flows_ : dma_flows_)--;
  auto& order = OrderFor(f.type);
  const auto entry = std::make_pair(f.cap_gbps, id);
  const auto oit = std::lower_bound(order.begin(), order.end(), entry);
  assert(oit != order.end() && *oit == entry);
  order.erase(oit);
  flows_.erase(it);  // shifts the tail; ascending-id order is preserved
  Recompute();
  return progress;
}

void FlowResource::Settle() {
  const SimTime now = sim_->now();
  if (now == last_settle_) {
    return;
  }
  const double elapsed_s = static_cast<double>(now - last_settle_) / 1e9;
  for (Flow& flow : flows_) {
    flow.bytes_left = std::max(0.0, flow.bytes_left - flow.rate_bps * elapsed_s);
  }
  last_settle_ = now;
}

void FlowResource::MaxMin(
    const std::vector<std::pair<double, FlowId>>& order,
    double aggregate_gbps, double* sum_rate_bps) {
  // Water-filling in ascending per-flow-cap order (pre-sorted, maintained
  // incrementally by StartFlow/CancelFlow/completion).
  *sum_rate_bps = 0;
  if (order.empty()) {
    return;
  }
  double remaining = GbpsToBps(std::max(0.0, aggregate_gbps));
  size_t left = order.size();
  for (const auto& [cap_gbps, id] : order) {
    auto it = FindFlow(id);
    assert(it != flows_.end());
    const double share = remaining / static_cast<double>(left);
    const double rate = std::min(GbpsToBps(cap_gbps), share);
    it->rate_bps = rate;
    remaining -= rate;
    left--;
    *sum_rate_bps += rate;
  }
}

void FlowResource::EndBatch() {
  assert(batch_depth_ > 0);
  if (--batch_depth_ == 0 && recompute_deferred_) {
    recompute_deferred_ = false;
    Recompute();
  }
}

void FlowResource::Recompute() {
  if (in_recompute_) {
    return;  // a completion callback re-entered; the outer call finishes up
  }
  if (batch_depth_ > 0) {
    // A BatchScope is open: one recomputation at scope exit covers every
    // mutation made at this instant. The still-armed completion event cannot
    // fire meanwhile (no events run inside the synchronous scope).
    recompute_deferred_ = true;
    return;
  }
  if (pending_event_ != 0) {
    sim_->Cancel(pending_event_);
    pending_event_ = 0;
  }
  if (flows_.empty()) {
    if (total_rate_bps_ != 0) {
      total_rate_bps_ = 0;
      if (rates_changed_hook_) {
        rates_changed_hook_();
      }
    }
    return;
  }

  double cpu_sum = 0;
  double dma_sum = 0;
  MaxMin(cpu_order_,
         model_.cpu_aggregate ? model_.cpu_aggregate(cpu_flows_) : model_.total,
         &cpu_sum);
  MaxMin(dma_order_,
         model_.dma_aggregate ? model_.dma_aggregate(dma_flows_) : model_.total,
         &dma_sum);
  const double total_bps = GbpsToBps(model_.total);
  double rate_sum = cpu_sum + dma_sum;
  if (rate_sum > total_bps && rate_sum > 0) {
    const double scale = total_bps / rate_sum;
    for (Flow& flow : flows_) {
      flow.rate_bps *= scale;
    }
    rate_sum = total_bps;
  }
  if (rate_sum != total_rate_bps_) {
    total_rate_bps_ = rate_sum;
    if (rates_changed_hook_) {
      rates_changed_hook_();
    }
  }

  // Schedule the earliest completion.
  double min_dt_ns = -1;
  for (const Flow& flow : flows_) {
    if (flow.bytes_left <= kDoneEpsilonBytes) {
      min_dt_ns = 0;
      break;
    }
    if (flow.rate_bps <= 0) {
      continue;  // throttled to zero; no progress until rates change
    }
    const double dt_ns = flow.bytes_left / flow.rate_bps * 1e9;
    if (min_dt_ns < 0 || dt_ns < min_dt_ns) {
      min_dt_ns = dt_ns;
    }
  }
  if (min_dt_ns < 0) {
    return;  // everything stalled
  }
  const uint64_t delay =
      std::max<uint64_t>(min_dt_ns <= 0 ? 0 : 1,
                         static_cast<uint64_t>(std::ceil(min_dt_ns)));
  pending_event_ = sim_->ScheduleAfter(delay, [this] {
    pending_event_ = 0;
    Settle();
    // Collect and remove all flows that just finished, then recompute before
    // running callbacks (callbacks may start new flows). The in-place
    // compaction keeps surviving flows in ascending-id order. The callback
    // buffer is recycled across completions (swap out / swap back).
    std::vector<DoneFn> done;
    done.swap(done_scratch_);
    size_t keep = 0;
    for (size_t i = 0; i < flows_.size(); ++i) {
      Flow& flow = flows_[i];
      if (flow.bytes_left <= kDoneEpsilonBytes) {
        bytes_completed_ += static_cast<uint64_t>(flow.bytes_total);
        (flow.type == FlowType::kCpu ? cpu_flows_ : dma_flows_)--;
        auto& order = OrderFor(flow.type);
        const auto entry = std::make_pair(flow.cap_gbps, flow.id);
        const auto oit = std::lower_bound(order.begin(), order.end(), entry);
        assert(oit != order.end() && *oit == entry);
        order.erase(oit);
        done.push_back(std::move(flow.done));
      } else {
        if (keep != i) {
          flows_[keep] = std::move(flow);
        }
        keep++;
      }
    }
    flows_.resize(keep);
    Recompute();
    {
      // Callbacks often start follow-up flows synchronously (a DMA channel
      // launching its next descriptor); batch their recomputations so N
      // same-instant completions trigger one water-fill, not N.
      BatchScope batch(this);
      for (DoneFn& fn : done) {
        if (fn) {
          fn();
        }
      }
    }
    done.clear();
    done_scratch_.swap(done);
  });
}

}  // namespace easyio::sim
