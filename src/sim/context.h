// Minimal stackful-coroutine context switching.
//
// The simulator multiplexes every simulated core's uthreads onto the single
// host thread, so a context is just a saved stack pointer plus the
// callee-saved registers spilled onto that stack (boost::fcontext style) —
// no syscall anywhere on the path, unlike glibc swapcontext, which enters
// the kernel for sigprocmask on every switch. Fast paths exist for x86-64
// System V (~20ns per switch) and aarch64 AAPCS64; a portable ucontext
// fallback is selectable with -DEASYIO_UCONTEXT_FALLBACK=ON and is forced
// automatically on other architectures.
//
// Only the simulation kernel touches this API; everything above it uses
// sim::Task.

#ifndef EASYIO_SIM_CONTEXT_H_
#define EASYIO_SIM_CONTEXT_H_

#include <cstddef>
#include <cstdint>

#if defined(EASYIO_UCONTEXT)
#include <ucontext.h>
#endif

namespace easyio::sim {

// ThreadSanitizer cannot follow a raw stack switch: without annotations it
// sees one host thread's shadow stack teleport, and reports bogus races (or
// crashes) the first time a coroutine runs. When the build is sanitized we
// register every context as a TSan "fiber" and announce each switch.
#if defined(__SANITIZE_THREAD__)
#define EASYIO_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define EASYIO_TSAN_FIBERS 1
#endif
#endif

#if defined(EASYIO_UCONTEXT)

struct Context {
  ucontext_t uc;
  // makecontext only forwards int arguments portably, so the (entry, arg)
  // pair lives here and the trampoline receives this Context* split across
  // two ints. A context must therefore stay at a stable address between
  // MakeContext and its first switch-in (Task objects are heap-allocated and
  // never move, so the kernel satisfies this for free).
  void (*entry)(void*) = nullptr;
  void* arg = nullptr;
#if defined(EASYIO_TSAN_FIBERS)
  void* tsan_fiber = nullptr;
  bool tsan_fiber_owned = false;  // created by MakeContext (vs adopted)
#endif
};

#else

struct Context {
  void* sp = nullptr;  // saved stack pointer; register area lives on the stack
#if defined(EASYIO_TSAN_FIBERS)
  void* tsan_fiber = nullptr;
  bool tsan_fiber_owned = false;  // created by MakeContext (vs adopted)
#endif
};

#endif

using ContextEntry = void (*)(void* arg);

// Prepares `ctx` so the first SwapContext into it calls entry(arg) on the
// given stack. The stack grows down; `stack_base` is the lowest address.
void MakeContext(Context* ctx, void* stack_base, size_t stack_size,
                 ContextEntry entry, void* arg);

// Saves the current context into `from` and resumes `to`.
void SwapContext(Context* from, Context* to);

// Frees any sanitizer bookkeeping attached to a context whose coroutine has
// finished (or was never started). Must not be called on the context that is
// currently executing. No-op in unsanitized builds.
void ReleaseContext(Context* ctx);

}  // namespace easyio::sim

#endif  // EASYIO_SIM_CONTEXT_H_
