// Minimal stackful-coroutine context switching.
//
// The simulator multiplexes every simulated core's uthreads onto the single
// host thread, so a context is just a saved stack pointer plus the
// callee-saved registers spilled onto that stack (boost::fcontext style). The
// x86-64 System V fast path is ~20ns per switch; a portable ucontext fallback
// is selectable with -DEASYIO_USE_UCONTEXT for other architectures.
//
// Only the simulation kernel touches this API; everything above it uses
// sim::Task.

#ifndef EASYIO_SIM_CONTEXT_H_
#define EASYIO_SIM_CONTEXT_H_

#include <cstddef>
#include <cstdint>

#if defined(EASYIO_UCONTEXT)
#include <ucontext.h>
#endif

namespace easyio::sim {

#if defined(EASYIO_UCONTEXT)

struct Context {
  ucontext_t uc;
};

#else

struct Context {
  void* sp = nullptr;  // saved stack pointer; register area lives on the stack
};

#endif

using ContextEntry = void (*)(void* arg);

// Prepares `ctx` so the first SwapContext into it calls entry(arg) on the
// given stack. The stack grows down; `stack_base` is the lowest address.
void MakeContext(Context* ctx, void* stack_base, size_t stack_size,
                 ContextEntry entry, void* arg);

// Saves the current context into `from` and resumes `to`.
void SwapContext(Context* from, Context* to);

}  // namespace easyio::sim

#endif  // EASYIO_SIM_CONTEXT_H_
