// RAII glue between the obs tracer and the simulation's virtual clock.
//
// A TraceSession installs a global obs::Tracer whose clock reads
// Simulation::Get()->now() — i.e. whatever simulation is live when an event
// is recorded — and, at scope exit, uninstalls it and writes the collected
// events to a Chrome/Perfetto trace-event JSON file. Benches use it behind
// their --trace=<path> flag:
//
//   std::optional<sim::TraceSession> trace;
//   if (!trace_path.empty()) trace.emplace(trace_path, sample_every);
//   ... run the workload ...
//   // destruction writes the file and prints a one-line summary to stderr
//
// Because the clock goes through Simulation::Get(), the session may be
// created before the Simulation is constructed; it only requires a live
// simulation at the moment an event is actually recorded (which is always
// true — instrumentation sites run inside the simulation).
//
// Thread binding: both the tracer installation and Simulation::Get() are
// per-host-thread (thread_local), so a TraceSession instruments exactly the
// simulations run on the thread that constructed it. Under
// harness::ScenarioRunner this means a session created *inside* a scenario
// job traces that job alone, wherever the pool schedules it; a session
// created on the submitting thread does not follow jobs onto workers.
// Construct, run, and destroy a session on one thread.

#ifndef EASYIO_SIM_OBS_SESSION_H_
#define EASYIO_SIM_OBS_SESSION_H_

#include <cstdio>
#include <string>
#include <utility>

#include "src/obs/trace.h"
#include "src/sim/simulation.h"

namespace easyio::sim {

class TraceSession {
 public:
  explicit TraceSession(std::string path, uint32_t sample_every = 1)
      : path_(std::move(path)),
        tracer_(obs::Tracer::Options{
            .clock = [] { return Simulation::Get()->now(); },
            .sample_every = sample_every}) {
    obs::Install(&tracer_);
  }

  ~TraceSession() {
    obs::Uninstall(&tracer_);
    if (tracer_.WriteJsonFile(path_)) {
      std::fprintf(stderr, "trace: wrote %zu events (%llu dropped) to %s\n",
                   tracer_.event_count(),
                   static_cast<unsigned long long>(tracer_.dropped_events()),
                   path_.c_str());
    } else {
      std::fprintf(stderr, "trace: FAILED to write %s\n", path_.c_str());
    }
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  obs::Tracer& tracer() { return tracer_; }

 private:
  std::string path_;
  obs::Tracer tracer_;
};

}  // namespace easyio::sim

#endif  // EASYIO_SIM_OBS_SESSION_H_
