// StackAllocator: pooled task stacks with optional guard pages and debug
// poisoning.
//
// Every Spawn needs a stack and every task exit returns one; the pool keeps
// retired stacks hot so a spawn/exit churn loop performs zero heap
// allocations in steady state (tests/sim_stack_test.cc). Two hardening
// options, both off on the perf path:
//
//   guard_pages  - stacks come from mmap with a PROT_NONE page below the
//                  usable range, so a stack overflow faults immediately
//                  instead of corrupting the neighboring pool entry.
//   poison       - the usable range is filled with kPoisonByte on *every*
//                  Acquire (fresh and recycled), so a task reading stack
//                  memory it never wrote sees a recognizable pattern and a
//                  recycled stack never leaks the previous task's frames.
//                  Defaults on when the library is built with
//                  -DEASYIO_STACK_POISON (the Debug configuration).

#ifndef EASYIO_SIM_STACK_ALLOCATOR_H_
#define EASYIO_SIM_STACK_ALLOCATOR_H_

#include <cstddef>
#include <vector>

namespace easyio::sim {

class StackAllocator {
 public:
#if defined(EASYIO_STACK_POISON)
  static constexpr bool kPoisonDefault = true;
#else
  static constexpr bool kPoisonDefault = false;
#endif
  static constexpr std::byte kPoisonByte{0xEB};

  struct Options {
    size_t stack_size = 256 * 1024;
    bool guard_pages = false;
    bool poison = kPoisonDefault;
  };

  explicit StackAllocator(const Options& options);
  ~StackAllocator();

  StackAllocator(const StackAllocator&) = delete;
  StackAllocator& operator=(const StackAllocator&) = delete;

  // Returns the lowest usable address of a stack_size()-byte stack.
  std::byte* Acquire();
  // Returns a stack to the pool. The memory stays mapped until destruction.
  void Release(std::byte* stack);

  size_t stack_size() const { return options_.stack_size; }
  bool poison() const { return options_.poison; }

  // True iff every byte of [stack, stack + stack_size) still holds
  // kPoisonByte. Test hook for the re-poison-on-recycle contract.
  bool FullyPoisoned(const std::byte* stack) const;

  // Stacks ever created (pool hits do not count). Test hook.
  size_t stacks_created() const { return created_.size(); }

 private:
  std::byte* CreateStack();

  Options options_;
  std::vector<std::byte*> pool_;     // usable-base pointers, ready for reuse
  std::vector<std::byte*> created_;  // usable-base of every mapping/allocation
};

}  // namespace easyio::sim

#endif  // EASYIO_SIM_STACK_ALLOCATOR_H_
