// The discrete-event simulation kernel.
//
// One host thread multiplexes N simulated cores. Each core runs at most one
// Task at a time; a Task gives up the host thread whenever it performs a
// modeled operation:
//
//   Advance(ns)  - the core is busy for `ns` of virtual time (CPU work,
//                  memcpy to slow memory, syscall overhead, ...). Other
//                  actors' events (DMA completions, timers) interleave at
//                  their exact virtual times.
//   Yield()      - cooperative reschedule: go to the back of the core's run
//                  queue (EasyIO's thread_yield on async-I/O return).
//   Block()      - park until another actor calls Wake(). Used by locks,
//                  SN waits and flow completions.
//   BlockHoldingCore() - park while *keeping the core busy*: models a
//                  synchronous CPU copy whose duration is decided by the
//                  bandwidth arbiter. No other uthread can use the core,
//                  which is exactly the CPU waste the paper measures.
//
// Plain events (ScheduleAt/ScheduleAfter) run on the host context and model
// hardware: DMA channel progress, epoch timers, flow-rate recomputation.
//
// Determinism: events fire in (time, sequence) order; no wall-clock time or
// host threading is involved anywhere.
//
// Thread compatibility: a Simulation is single-threaded — every method,
// including construction and destruction, must be called from the host
// thread that created it (tasks always run on that thread, so task-side
// calls trivially comply). *Distinct* instances are independent and may run
// concurrently on distinct host threads: the only cross-instance state, the
// live-simulation stack behind Simulation::Get(), is thread_local, so Get()
// resolves to the innermost simulation constructed on the calling thread.
// harness::ScenarioRunner exploits this to fan independent scenarios across
// a worker pool while each scenario stays byte-identical to a serial run.

#ifndef EASYIO_SIM_SIMULATION_H_
#define EASYIO_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/sim/context.h"
#include "src/sim/ring_queue.h"
#include "src/sim/small_fn.h"
#include "src/sim/stack_allocator.h"
#include "src/sim/task.h"
#include "src/sim/time.h"
#include "src/sim/timer_wheel.h"

namespace easyio::sim {

// Contract: virtual time is single-threaded and deterministic — given the
// same sequence of Spawn/Schedule calls, every run interleaves identically,
// which is what lets EXPERIMENTS.md quote exact numbers and the crash tests
// replay exact failure points. Events with equal timestamps fire in issue
// order; a task observes time only through now() and the blocking
// primitives. This kernel is the substitute for the paper's real hardware
// (§5 testbed): it knows nothing about storage — cores, DMA engines and the
// media model are built on top of it — and the asynchrony the paper measures
// (uthreads harvesting DMA wait time, §4.1) appears here as Block()ed tasks
// yielding their core to the run queue.
//
// EventFn is a SmallFn, not a std::function: move-only, one indirect call to
// dispatch, and every capture the simulator's own hot paths use ([this],
// [this, core], [this, t]) stays in the inline buffer. Arbitrary larger
// captures still work via a heap fallback.
using EventFn = SmallFn<void()>;
// Opaque handle for Cancel(): slot index + generation. Never 0, so callers
// can keep 0 as a "no event pending" sentinel.
using EventId = uint64_t;

class Simulation {
 public:
  struct Options {
    int num_cores = 1;
    size_t stack_size = 256 * 1024;
    // Map task stacks with a PROT_NONE guard page below the usable range so
    // overflows fault instead of corrupting a pooled neighbor.
    bool stack_guard_pages = false;
    // Fill stacks with StackAllocator::kPoisonByte on every (re)use.
    // Defaults on in builds compiled with -DEASYIO_STACK_POISON (Debug).
    bool poison_stacks = StackAllocator::kPoisonDefault;
  };

  explicit Simulation(const Options& options);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // The most recently constructed, still-alive simulation *on the calling
  // host thread*. Convenience for deeply nested code (modeled primitives)
  // that would otherwise thread the pointer everywhere; per-thread so
  // concurrent scenario workers never observe each other's instances.
  static Simulation* Get();

  SimTime now() const { return now_; }
  int num_cores() const { return static_cast<int>(cores_.size()); }

  // ---- Event scheduling (callable from anywhere) ----
  EventId ScheduleAt(SimTime t, EventFn fn);
  EventId ScheduleAfter(uint64_t delay_ns, EventFn fn);
  void Cancel(EventId id);

  // ---- Task management ----
  // Spawns a task on `core`, runnable at the current time. The returned
  // pointer stays valid until the simulation is destroyed (or, for detached
  // tasks, until the task finishes — the Task object and its stack are then
  // recycled into the next spawn).
  Task* Spawn(int core, std::function<void()> fn);
  Task* SpawnDetached(int core, std::function<void()> fn);

  // Moves a Blocked task to the runnable state (on `core` if given, else its
  // home core) and kicks the core.
  void Wake(Task* t);
  void WakeOn(Task* t, int core);

  // ---- Run loop (host side; must not be called from inside a task) ----
  void Run();                    // until the event queue drains
  void RunUntil(SimTime t);      // process events with time <= t
  void RunFor(uint64_t dur_ns) { RunUntil(now_ + dur_ns); }
  void RequestStop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  // ---- Task-side primitives (must be called from inside a task) ----
  Task* current() const { return current_; }
  bool in_task() const { return current_ != nullptr; }
  void Advance(uint64_t ns);
  void Yield();
  void Block();
  void BlockHoldingCore();
  void Join(Task* t);
  // Sleeps the current task for `ns` without occupying the core.
  void SleepFor(uint64_t ns);

  // ---- Scheduler-layer hooks (per core, so multiple runtimes can own
  // disjoint core sets, as Caladan does across colocated applications) ----
  // Hooks live in flat per-core arrays sized at construction: the dispatch
  // path indexes and tests a SmallFn instead of probing a hash map.
  // The poll hook runs every time a core is about to pick its next task (the
  // uthread runtime polls DMA completion buffers here). The steal hook is
  // consulted when the run queue is empty; it may return a task stolen from
  // another core.
  void SetPollHook(int core, SmallFn<void(int)> hook) {
    core_poll_hooks_[static_cast<size_t>(core)] = std::move(hook);
  }
  void SetStealHook(int core, SmallFn<Task*(int)> hook) {
    core_steal_hooks_[static_cast<size_t>(core)] = std::move(hook);
  }

  // The enqueue hook fires when a task is queued on `core` while the core is
  // already busy — the work-stealing runtime uses it to kick idle siblings.
  void SetEnqueueHook(int core, SmallFn<void(int)> hook) {
    core_enqueue_hooks_[static_cast<size_t>(core)] = std::move(hook);
  }

  // Removes and returns the task at the back of `victim`'s run queue (oldest
  // waiter is at the front; stealing from the back mirrors Caladan), or
  // nullptr if the queue is empty. The caller re-homes the task.
  Task* TryStealFrom(int victim);

  // Schedules a dispatch attempt on `core` (it will consult the poll and
  // steal hooks). Public so scheduling layers can prod idle cores.
  void Kick(int core) { KickCore(core); }

  // ---- Introspection ----
  size_t run_queue_depth(int core) const {
    return cores_[core].run_queue.size();
  }
  bool core_busy(int core) const {
    return cores_[core].running != nullptr;
  }
  SimTime core_busy_ns(int core) const;
  uint64_t tasks_spawned() const { return next_task_id_; }
  uint64_t context_switches() const { return context_switches_; }
  // Distinct stacks ever mapped; spawn churn should hold this steady.
  size_t stacks_created() const { return stacks_.stacks_created(); }

 private:
  // Events live in a slab of recycled slots: the timing wheel stores only
  // plain {time, seq, slot, gen} records and the callback sits in the slot,
  // so a ScheduleAt/fire cycle performs no per-event heap allocation once
  // the slab and the wheel's slot vectors have warmed up (SmallFn keeps the
  // hot capture shapes — two or three words — inline). The generation tag
  // makes Cancel() safe against stale ids: a slot is recycled the moment its
  // event fires or is cancelled, and any other EventId naming it is detected
  // by a generation mismatch.
  struct EventSlot {
    EventFn fn;
    uint32_t gen = 1;
    bool armed = false;
  };

  static EventId MakeEventId(uint32_t slot, uint32_t gen) {
    return (static_cast<uint64_t>(slot + 1) << 32) | gen;
  }

  uint32_t AcquireEventSlot();
  void ReleaseEventSlot(uint32_t slot);

  struct Core {
    RingQueue<Task*> run_queue;
    Task* running = nullptr;
    bool kick_pending = false;
    SimTime busy_ns = 0;
    SimTime busy_since = 0;
  };

  enum class Directive { kNone, kAdvance, kYield, kBlock, kBlockHoldingCore, kFinish };

  static void TaskEntry(void* arg);

  void KickCore(int core);
  void NotifyEnqueue(int core);
  void DispatchTask(Task* t);      // switch into t, then act on its directive
  void HandleDirective(Task* t);
  void FinishCurrent();            // task side; never returns
  void MarkCoreBusy(Core& core, Task* t);
  void MarkCoreIdle(Core& core);
  Task* CreateTask(int core, std::function<void()> fn, bool detached);
  void SwitchOut(Directive d);     // task side: record directive, swap to host

  SimTime now_ = 0;
  uint64_t next_event_seq_ = 1;
  uint64_t next_task_id_ = 1;
  uint64_t context_switches_ = 0;
  bool stop_requested_ = false;
  bool running_loop_ = false;

  TimerWheel events_;
  std::vector<EventSlot> event_slots_;
  std::vector<uint32_t> free_event_slots_;

  std::vector<Core> cores_;
  Context host_ctx_{};
  Task* current_ = nullptr;
  Directive directive_ = Directive::kNone;
  uint64_t advance_ns_ = 0;

  StackAllocator stacks_;
  // Task objects are recycled: tasks_ owns every Task ever constructed, and
  // a detached task that finishes parks its pointer in free_tasks_ for the
  // next spawn, so detached spawn/exit churn allocates nothing in steady
  // state. Joinable tasks are never recycled — their pointers stay valid
  // until the simulation dies, as the Spawn contract promises.
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<Task*> free_tasks_;

  std::vector<SmallFn<void(int)>> core_poll_hooks_;
  std::vector<SmallFn<Task*(int)>> core_steal_hooks_;
  std::vector<SmallFn<void(int)>> core_enqueue_hooks_;
};

}  // namespace easyio::sim

#endif  // EASYIO_SIM_SIMULATION_H_
