// RingQueue: a flat circular deque for the per-core run queues.
//
// std::deque allocates and frees its backing blocks as the head/tail cross
// chunk boundaries, so a steady spawn/finish churn still touches the heap
// every few dozen operations. The run queue needs exactly four operations
// (push_back, pop_front for FIFO dispatch, back/pop_back for work stealing),
// all O(1) here, and the power-of-two backing vector is only ever grown —
// after warmup a core's queue performs zero allocations, which the
// spawn/exit churn test in tests/sim_stack_test.cc pins down.

#ifndef EASYIO_SIM_RING_QUEUE_H_
#define EASYIO_SIM_RING_QUEUE_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace easyio::sim {

template <typename T>
class RingQueue {
 public:
  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }

  void push_back(T value) {
    if (count_ == buf_.size()) {
      Grow();
    }
    buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(value);
    count_++;
  }

  T& front() {
    assert(count_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    assert(count_ > 0);
    head_ = (head_ + 1) & (buf_.size() - 1);
    count_--;
  }

  T& back() {
    assert(count_ > 0);
    return buf_[(head_ + count_ - 1) & (buf_.size() - 1)];
  }

  void pop_back() {
    assert(count_ > 0);
    count_--;
  }

 private:
  void Grow() {
    const size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_.swap(next);
    head_ = 0;
  }

  std::vector<T> buf_;  // capacity is always a power of two (or empty)
  size_t head_ = 0;
  size_t count_ = 0;
};

}  // namespace easyio::sim

#endif  // EASYIO_SIM_RING_QUEUE_H_
