// Virtual time for the discrete-event simulation.
//
// All "hardware" in this repository (simulated cores, the DMA engine, the
// slow-memory media) advances a single virtual clock measured in nanoseconds.
// Wall-clock time never leaks into measurements, which is what makes the
// paper's 1-16 core sweeps reproducible on a single-core build host.

#ifndef EASYIO_SIM_TIME_H_
#define EASYIO_SIM_TIME_H_

#include <cstdint>

namespace easyio::sim {

using SimTime = uint64_t;  // nanoseconds since simulation start

inline constexpr SimTime kSimTimeMax = UINT64_MAX;

}  // namespace easyio::sim

#endif  // EASYIO_SIM_TIME_H_
