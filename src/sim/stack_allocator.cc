#include "src/sim/stack_allocator.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace easyio::sim {

namespace {
size_t PageSize() {
  static const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return page;
}

size_t RoundUpToPage(size_t n) {
  const size_t page = PageSize();
  return (n + page - 1) & ~(page - 1);
}
}  // namespace

StackAllocator::StackAllocator(const Options& options) : options_(options) {
  if (options_.guard_pages) {
    options_.stack_size = RoundUpToPage(options_.stack_size);
  }
}

StackAllocator::~StackAllocator() {
  for (std::byte* stack : created_) {
    if (options_.guard_pages) {
      munmap(stack - PageSize(), PageSize() + options_.stack_size);
    } else {
      delete[] stack;
    }
  }
}

std::byte* StackAllocator::CreateStack() {
  if (!options_.guard_pages) {
    return new std::byte[options_.stack_size];
  }
  const size_t page = PageSize();
  void* map = mmap(nullptr, page + options_.stack_size,
                   PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (map == MAP_FAILED) {
    std::perror("easyio: mmap task stack");
    std::abort();
  }
  // Stacks grow down: the guard sits below the usable range so an overflow
  // hits PROT_NONE before it can touch another stack.
  if (mprotect(map, page, PROT_NONE) != 0) {
    std::perror("easyio: mprotect stack guard");
    std::abort();
  }
  return static_cast<std::byte*>(map) + page;
}

std::byte* StackAllocator::Acquire() {
  std::byte* stack;
  if (!pool_.empty()) {
    stack = pool_.back();
    pool_.pop_back();
  } else {
    stack = CreateStack();
    created_.push_back(stack);
  }
  if (options_.poison) {
    std::memset(stack, static_cast<int>(kPoisonByte), options_.stack_size);
  }
  return stack;
}

void StackAllocator::Release(std::byte* stack) { pool_.push_back(stack); }

bool StackAllocator::FullyPoisoned(const std::byte* stack) const {
  for (size_t i = 0; i < options_.stack_size; ++i) {
    if (stack[i] != kPoisonByte) {
      return false;
    }
  }
  return true;
}

}  // namespace easyio::sim
