// Task: a stackful coroutine scheduled on a simulated core.
//
// Tasks are the unit of execution for everything above the simulation kernel:
// the Caladan-style uthreads of EasyIO, the one-thread-per-core workers of the
// synchronous baselines, and OdinFS's delegation threads are all Tasks.

#ifndef EASYIO_SIM_TASK_H_
#define EASYIO_SIM_TASK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/context.h"
#include "src/sim/time.h"

namespace easyio::sim {

class Simulation;

class Task {
 public:
  enum class State {
    kRunnable,  // in a core's run queue
    kRunning,   // owns a core (executing or mid-Advance)
    kBlocked,   // parked, waiting for Wake
    kFinished,
  };

  uint64_t id() const { return id_; }
  int core() const { return core_; }
  State state() const { return state_; }
  bool finished() const { return state_ == State::kFinished; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Opaque slot for the scheduling layer (uthread runtime) to attach per-task
  // bookkeeping without the kernel knowing about it.
  void* user_data() const { return user_data_; }
  void set_user_data(void* p) { user_data_ = p; }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

 private:
  friend class Simulation;

  Task(uint64_t id, int core, std::function<void()> fn)
      : id_(id), core_(core), fn_(std::move(fn)) {}

  uint64_t id_;
  int core_;  // home core; may change via work stealing (WakeOn)
  Simulation* owner_ = nullptr;
  std::function<void()> fn_;
  Context ctx_{};
  std::byte* stack_ = nullptr;  // owned by the simulation's stack pool
  State state_ = State::kRunnable;
  bool detached_ = false;
  bool holds_core_ = false;  // blocked but still occupying the core (sync I/O)
  std::vector<Task*> joiners_;
  void* user_data_ = nullptr;
  std::string name_;
};

}  // namespace easyio::sim

#endif  // EASYIO_SIM_TASK_H_
