// TimerWheel: the event loop's pending-event store — a hierarchical timing
// wheel with a binary-heap fallback for far-future events.
//
// The simulator schedules and fires one event per modeled delay, so the
// std::priority_queue this replaces paid an O(log n) sift on both ends of
// every Advance/Wake/Kick. The wheel makes the common case O(1): four
// levels of 64 slots each, level l covering a 64^(l+1) ns window around the
// wheel's base time (64 ns, 4 µs, 262 µs, 16.7 ms — virtually every modeled
// delay in this codebase is under the level-3 horizon). An event beyond the
// level-3 window falls back to the heap, which needs no migration: by the
// time a far event is due it is the global minimum and fires straight from
// the heap.
//
// Determinism contract (the whole point): PopNext returns entries in exactly
// ascending (time, seq) order, bit-for-bit the order the pure heap produced.
// tests/timer_wheel_test.cc drives randomized schedule/pop sequences against
// a reference heap to pin this down. The load-bearing facts:
//
//  * A level-0 slot holds entries of exactly one nanosecond (slot index is
//    the low 6 bits of the absolute time, and all level-0 entries share the
//    remaining bits with base), so firing a slot means sorting its entries
//    by seq — and cascades from higher levels are the only reason the list
//    can be out of seq order at all.
//  * Heap-vs-wheel ties at one time always fire the heap first: an entry is
//    heap-resident only if it was scheduled before base entered its 16.7 ms
//    window, i.e. strictly earlier than any wheel entry at the same time, so
//    its seq is strictly smaller.
//  * base only advances to the time of the minimum remaining entry (it never
//    runs ahead of virtual now), so inserts behind base cannot happen and
//    cascading only ever moves entries downward.
//
// Cancellation stays in the caller (Simulation's generation tags): the wheel
// returns every inserted entry and the caller drops stale ones, exactly like
// the lazy-cancel heap did.

#ifndef EASYIO_SIM_TIMER_WHEEL_H_
#define EASYIO_SIM_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace easyio::sim {

class TimerWheel {
 public:
  struct Entry {
    SimTime time;
    uint64_t seq;   // FIFO tie-break among same-time entries
    uint32_t slot;  // caller payload (Simulation's event-slab slot)
    uint32_t gen;   // caller payload (slab generation tag)
    bool operator>(const Entry& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  TimerWheel();

  // Requires e.time >= the time of every entry already popped and seq
  // strictly greater than every seq ever inserted (Simulation's monotonic
  // event counter provides both).
  void Insert(const Entry& e);

  // Pops the earliest (time, seq) entry into *out if its time is <= limit.
  // Returns false (leaving the store untouched) otherwise.
  bool PopNext(SimTime limit, Entry* out);

  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr uint64_t kSlotsPerLevel = 64;
  static constexpr uint64_t kSlotMask = kSlotsPerLevel - 1;

  // Exact time of the earliest wheel-resident (non-heap) entry, or
  // kSimTimeMax. Clears a fully drained staging buffer as a side effect.
  SimTime WheelNextTime();
  // Moves base_ forward to t (the minimum remaining time), cascading the
  // slot that now shares a longer digit prefix with base at each level.
  void AdvanceTo(SimTime t);
  // Stages the level-0 slot for time t (== base_) into due_, seq-sorted.
  void Stage(SimTime t);
  void InsertSlotted(const Entry& e);

  std::vector<Entry> slots_[kLevels][kSlotsPerLevel];
  uint64_t bitmap_[kLevels] = {};  // bit s set <=> slots_[l][s] non-empty
  SimTime base_ = 0;
  size_t slotted_count_ = 0;  // entries in slots_ (excludes due_ and far_)
  size_t count_ = 0;          // all entries

  // The slot currently being fired: entries at time base_, sorted by seq,
  // consumed front to back. Same-time inserts while staged append here
  // (their seqs are larger than everything staged, so order is preserved).
  std::vector<Entry> due_;
  size_t due_pos_ = 0;
  bool staged_ = false;

  std::vector<Entry> scratch_;  // cascade staging buffer, capacity reused

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> far_;
};

}  // namespace easyio::sim

#endif  // EASYIO_SIM_TIMER_WHEEL_H_
