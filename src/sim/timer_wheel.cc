#include "src/sim/timer_wheel.h"

#include <algorithm>
#include <cassert>

namespace easyio::sim {

namespace {
// Bits of absolute time above position kBits*level that a resident of
// `level` must share with base (the level's enclosing window).
constexpr uint64_t Prefix(SimTime t, int level) {
  return t >> (6 * (level + 1));
}
constexpr uint64_t Digit(SimTime t, int level) {
  return (t >> (6 * level)) & 63;
}
}  // namespace

TimerWheel::TimerWheel() {
  // Slot buffers, due_ and scratch_ trade storage via swap, so pre-reserving
  // every member of the family keeps the steady state allocation-free: as
  // virtual time crosses slot boundaries, a first touch of a fresh slot
  // would otherwise allocate mid-run (the hot-loop allocation tests fail on
  // exactly that).
  constexpr size_t kInitialSlotCapacity = 8;
  for (auto& level : slots_) {
    for (auto& slot : level) {
      slot.reserve(kInitialSlotCapacity);
    }
  }
  due_.reserve(kInitialSlotCapacity);
  scratch_.reserve(kInitialSlotCapacity);
}

void TimerWheel::Insert(const Entry& e) {
  assert(e.time >= base_);
  count_++;
  if (staged_ && e.time == base_) {
    // The slot for base_ is mid-fire. The new entry's seq exceeds every seq
    // already in due_, so appending keeps the buffer seq-sorted.
    due_.push_back(e);
    return;
  }
  if (Prefix(e.time, kLevels - 1) == Prefix(base_, kLevels - 1)) {
    InsertSlotted(e);
  } else {
    far_.push(e);
  }
}

void TimerWheel::InsertSlotted(const Entry& e) {
  for (int l = 0; l < kLevels; ++l) {
    if (Prefix(e.time, l) == Prefix(base_, l)) {
      const uint64_t s = Digit(e.time, l);
      slots_[l][s].push_back(e);
      bitmap_[l] |= uint64_t{1} << s;
      slotted_count_++;
      return;
    }
  }
  assert(false && "InsertSlotted outside the level-3 window");
}

SimTime TimerWheel::WheelNextTime() {
  if (staged_) {
    if (due_pos_ < due_.size()) {
      return base_;
    }
    due_.clear();
    due_pos_ = 0;
    staged_ = false;
  }
  if (slotted_count_ == 0) {
    return kSimTimeMax;
  }
  // Every level-l resident's time exceeds every level-(l-1) resident's (its
  // level-(l-1) digit differs from base's, a lower level's matches), so the
  // first non-empty level holds the wheel minimum; within it, the lowest
  // occupied slot.
  for (int l = 0; l < kLevels; ++l) {
    if (bitmap_[l] == 0) {
      continue;
    }
    const uint64_t s =
        static_cast<uint64_t>(__builtin_ctzll(bitmap_[l]));
    if (l == 0) {
      // A level-0 slot holds exactly one time value.
      return (base_ & ~kSlotMask) | s;
    }
    SimTime min_time = kSimTimeMax;
    for (const Entry& e : slots_[l][s]) {
      min_time = std::min(min_time, e.time);
    }
    return min_time;
  }
  assert(false && "slotted_count_ != 0 but all bitmaps empty");
  return kSimTimeMax;
}

void TimerWheel::AdvanceTo(SimTime t) {
  assert(t >= base_);
  if (t == base_) {
    return;
  }
  assert(!staged_ && "cannot advance past a slot that is mid-fire");
  base_ = t;
  // t is the minimum remaining time, so every resident still satisfies its
  // level's window relative to the new base; only slot Digit(t, l) can hold
  // entries that now qualify for a lower level. Top-down order matters:
  // level 3 may re-home an entry into level 2's cascade slot, which the
  // level-2 iteration then picks up.
  for (int l = kLevels - 1; l >= 1; --l) {
    const uint64_t s = Digit(t, l);
    if ((bitmap_[l] & (uint64_t{1} << s)) == 0) {
      continue;
    }
    scratch_.clear();
    scratch_.swap(slots_[l][s]);
    bitmap_[l] &= ~(uint64_t{1} << s);
    slotted_count_ -= scratch_.size();
    for (const Entry& e : scratch_) {
      InsertSlotted(e);
    }
  }
}

void TimerWheel::Stage(SimTime t) {
  assert(t == base_);
  assert(!staged_);
  const uint64_t s = t & kSlotMask;
  assert((bitmap_[0] & (uint64_t{1} << s)) != 0);
  assert(due_.empty());
  due_.swap(slots_[0][s]);  // buffers ping-pong; no steady-state allocation
  bitmap_[0] &= ~(uint64_t{1} << s);
  slotted_count_ -= due_.size();
  // Entries are seq-ordered already unless a cascade interleaved them.
  std::sort(due_.begin(), due_.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  due_pos_ = 0;
  staged_ = true;
}

bool TimerWheel::PopNext(SimTime limit, Entry* out) {
  if (count_ == 0) {
    return false;
  }
  const SimTime wheel_next = WheelNextTime();
  const SimTime far_next = far_.empty() ? kSimTimeMax : far_.top().time;
  if (far_next <= wheel_next) {
    // On a time tie the heap entry fires first: it was scheduled before base
    // entered its level-3 window, i.e. at a strictly earlier virtual time
    // than any same-time wheel entry, so its seq is strictly smaller.
    if (far_next > limit) {
      return false;
    }
    *out = far_.top();
    far_.pop();
    count_--;
    // Drag the wheel window along so future near-term inserts stay O(1)
    // instead of piling into the heap.
    AdvanceTo(far_next);
    return true;
  }
  if (wheel_next > limit) {
    return false;
  }
  if (!staged_) {
    AdvanceTo(wheel_next);
    Stage(wheel_next);
  }
  *out = due_[due_pos_++];
  count_--;
  return true;
}

}  // namespace easyio::sim
