// SmallFn: a move-only callable wrapper tuned for the simulation kernel's
// event dispatch path.
//
// The hot event shapes — `[this, core]`, `[this, t]`, `[this, gen]` — are two
// or three words. std::function stores those inline too, but its dispatch
// goes through a manager function designed for copyability and RTTI
// (target_type) that this kernel never uses. SmallFn keeps exactly two
// raw function pointers (invoke, manage) next to a fixed inline buffer:
// construction is a placement-new, a call is one indirect call, and a
// move is a memcpy-sized move-construct. Callables larger than the buffer
// fall back to a single heap cell so the public Schedule* API keeps
// accepting arbitrary captures; every capture in the simulator itself fits
// inline (static buffer of kSmallFnInline bytes, see static_assert use in
// simulation.cc).
//
// Not thread-safe, like everything else in sim:: — a SmallFn belongs to the
// simulation that created it.

#ifndef EASYIO_SIM_SMALL_FN_H_
#define EASYIO_SIM_SMALL_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace easyio::sim {

inline constexpr size_t kSmallFnInline = 48;

template <typename Sig, size_t kInline = kSmallFnInline>
class SmallFn;

template <typename R, typename... Args, size_t kInline>
class SmallFn<R(Args...), kInline> {
 public:
  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT: implicit, mirrors std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT: implicit, mirrors std::function
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInline && alignof(D) <= alignof(Storage) &&
                  std::is_nothrow_move_constructible_v<D>) {
      new (buf_) D(std::forward<F>(f));
      invoke_ = &InlineInvoke<D>;
      manage_ = &InlineManage<D>;
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      invoke_ = &HeapInvoke<D>;
      manage_ = &HeapManage<D>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { MoveFrom(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn& operator=(F&& f) {
    SmallFn tmp(std::forward<F>(f));
    Reset();
    MoveFrom(tmp);
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { Reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) const {
    return invoke_(const_cast<unsigned char*>(buf_),
                   std::forward<Args>(args)...);
  }

 private:
  struct alignas(std::max_align_t) Storage {
    unsigned char bytes[kInline];
  };
  using InvokeFn = R (*)(void*, Args&&...);
  // src != nullptr: move-construct dst's payload from src's (src is left
  // destructible). src == nullptr: destroy dst's payload.
  using ManageFn = void (*)(void* dst, void* src);

  template <typename D>
  static R InlineInvoke(void* p, Args&&... args) {
    return (*std::launder(reinterpret_cast<D*>(p)))(
        std::forward<Args>(args)...);
  }
  template <typename D>
  static void InlineManage(void* dst, void* src) {
    if (src != nullptr) {
      new (dst) D(std::move(*std::launder(reinterpret_cast<D*>(src))));
    } else {
      std::launder(reinterpret_cast<D*>(dst))->~D();
    }
  }

  template <typename D>
  static R HeapInvoke(void* p, Args&&... args) {
    return (**reinterpret_cast<D**>(p))(std::forward<Args>(args)...);
  }
  template <typename D>
  static void HeapManage(void* dst, void* src) {
    if (src != nullptr) {
      *reinterpret_cast<D**>(dst) =
          std::exchange(*reinterpret_cast<D**>(src), nullptr);
    } else {
      delete *reinterpret_cast<D**>(dst);
    }
  }

  void MoveFrom(SmallFn& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) {
      manage_(buf_, other.buf_);
      other.manage_(other.buf_, nullptr);
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void Reset() {
    if (manage_ != nullptr) {
      manage_(buf_, nullptr);
    }
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  alignas(Storage) unsigned char buf_[kInline];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace easyio::sim

#endif  // EASYIO_SIM_SMALL_FN_H_
