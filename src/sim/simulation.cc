#include "src/sim/simulation.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "src/obs/trace.h"

namespace easyio::sim {

namespace {
// Stack of live simulations; supports nested simulations in tests.
// thread_local so distinct Simulation instances can run on distinct host
// threads (harness::ScenarioRunner): each thread sees only the simulations
// constructed on it, and Simulation::Get() resolves per thread.
thread_local std::vector<Simulation*> g_sim_stack;
}  // namespace

Simulation::Simulation(const Options& options)
    : cores_(static_cast<size_t>(options.num_cores)),
      stacks_(StackAllocator::Options{options.stack_size,
                                      options.stack_guard_pages,
                                      options.poison_stacks}),
      core_poll_hooks_(static_cast<size_t>(options.num_cores)),
      core_steal_hooks_(static_cast<size_t>(options.num_cores)),
      core_enqueue_hooks_(static_cast<size_t>(options.num_cores)) {
  assert(options.num_cores >= 1);
  g_sim_stack.push_back(this);
}

Simulation::~Simulation() {
  // Stack memory is owned by stacks_ (freed on member destruction); contexts
  // of never-finished tasks may still hold sanitizer fiber state.
  for (auto& task : tasks_) {
    ReleaseContext(&task->ctx_);
  }
  std::erase(g_sim_stack, this);
}

Simulation* Simulation::Get() {
  assert(!g_sim_stack.empty() && "no live Simulation");
  return g_sim_stack.back();
}

// ---------------------------------------------------------------- events ----

uint32_t Simulation::AcquireEventSlot() {
  if (!free_event_slots_.empty()) {
    const uint32_t slot = free_event_slots_.back();
    free_event_slots_.pop_back();
    return slot;
  }
  event_slots_.emplace_back();
  return static_cast<uint32_t>(event_slots_.size() - 1);
}

void Simulation::ReleaseEventSlot(uint32_t slot) {
  EventSlot& s = event_slots_[slot];
  s.armed = false;
  s.fn = nullptr;  // release captured state
  if (++s.gen == 0) {
    s.gen = 1;  // keep ids nonzero and distinguishable after wraparound
  }
  free_event_slots_.push_back(slot);
}

EventId Simulation::ScheduleAt(SimTime t, EventFn fn) {
  assert(t >= now_);
  const uint32_t slot = AcquireEventSlot();
  EventSlot& s = event_slots_[slot];
  s.fn = std::move(fn);
  s.armed = true;
  events_.Insert(TimerWheel::Entry{t, next_event_seq_++, slot, s.gen});
  return MakeEventId(slot, s.gen);
}

EventId Simulation::ScheduleAfter(uint64_t delay_ns, EventFn fn) {
  return ScheduleAt(now_ + delay_ns, std::move(fn));
}

void Simulation::Cancel(EventId id) {
  const uint32_t raw = static_cast<uint32_t>(id >> 32);
  if (raw == 0 || raw > event_slots_.size()) {
    return;  // never issued (e.g. the 0 sentinel)
  }
  const uint32_t slot = raw - 1;
  const uint32_t gen = static_cast<uint32_t>(id);
  EventSlot& s = event_slots_[slot];
  if (s.gen != gen || !s.armed) {
    return;  // already fired, cancelled, or recycled
  }
  ReleaseEventSlot(slot);  // the stale wheel entry is skipped on pop
}

void Simulation::RunUntil(SimTime limit) {
  assert(!in_task() && "RunUntil called from inside a task");
  running_loop_ = true;
  TimerWheel::Entry ev;
  while (!stop_requested_ && events_.PopNext(limit, &ev)) {
    EventSlot& s = event_slots_[ev.slot];
    if (s.gen != ev.gen || !s.armed) {
      continue;  // cancelled (slot already recycled)
    }
    EventFn fn = std::move(s.fn);
    ReleaseEventSlot(ev.slot);
    assert(ev.time >= now_);
    now_ = ev.time;
    fn();
  }
  if (now_ < limit && limit != kSimTimeMax) {
    now_ = limit;
  }
  running_loop_ = false;
}

void Simulation::Run() { RunUntil(kSimTimeMax); }

// ----------------------------------------------------------------- tasks ----

Task* Simulation::CreateTask(int core, std::function<void()> fn,
                             bool detached) {
  assert(core >= 0 && core < num_cores());
  Task* raw;
  if (!free_tasks_.empty()) {
    raw = free_tasks_.back();
    free_tasks_.pop_back();
    assert(raw->state_ == Task::State::kFinished && raw->joiners_.empty());
    raw->id_ = next_task_id_++;
    raw->core_ = core;
    raw->fn_ = std::move(fn);
    raw->state_ = Task::State::kRunnable;
    raw->detached_ = detached;
    raw->holds_core_ = false;
    raw->user_data_ = nullptr;
    raw->name_.clear();
  } else {
    tasks_.push_back(std::unique_ptr<Task>(
        new Task(next_task_id_++, core, std::move(fn))));
    raw = tasks_.back().get();
    raw->owner_ = this;
    raw->detached_ = detached;
  }
  raw->stack_ = stacks_.Acquire();
  MakeContext(&raw->ctx_, raw->stack_, stacks_.stack_size(),
              &Simulation::TaskEntry, raw);
  cores_[core].run_queue.push_back(raw);
  OBS_COUNTER_SAMPLED(obs::Track(obs::kProcCores, core), "runq",
                      cores_[core].run_queue.size());
  KickCore(core);
  NotifyEnqueue(core);
  return raw;
}

void Simulation::NotifyEnqueue(int core) {
  if (cores_[core].running == nullptr) {
    return;  // the core itself will pick the task up
  }
  if (const auto& hook = core_enqueue_hooks_[static_cast<size_t>(core)]) {
    hook(core);
  }
}

Task* Simulation::Spawn(int core, std::function<void()> fn) {
  return CreateTask(core, std::move(fn), /*detached=*/false);
}

Task* Simulation::SpawnDetached(int core, std::function<void()> fn) {
  return CreateTask(core, std::move(fn), /*detached=*/true);
}

void Simulation::TaskEntry(void* arg) {
  Task* t = static_cast<Task*>(arg);
  t->fn_();
  t->owner_->FinishCurrent();
  // Unreachable: FinishCurrent switches away permanently.
}

void Simulation::MarkCoreBusy(Core& core, Task* t) {
  if (core.running == nullptr) {
    core.busy_since = now_;
  }
  core.running = t;
}

void Simulation::MarkCoreIdle(Core& core) {
  if (core.running != nullptr) {
    core.busy_ns += now_ - core.busy_since;
    if (auto* t = obs::Get(); t != nullptr && t->Sample()) {
      const auto core_idx = static_cast<uint32_t>(&core - cores_.data());
      t->CompleteSpan(obs::Track(obs::kProcCores, core_idx), "run",
                      core.busy_since, now_,
                      {{"task", core.running->id()}});
    }
    core.running = nullptr;
  }
}

SimTime Simulation::core_busy_ns(int core) const {
  const Core& c = cores_[core];
  SimTime busy = c.busy_ns;
  if (c.running != nullptr) {
    busy += now_ - c.busy_since;
  }
  return busy;
}

void Simulation::KickCore(int core) {
  Core& c = cores_[core];
  if (c.running != nullptr || c.kick_pending) {
    return;
  }
  c.kick_pending = true;
  ScheduleAt(now_, [this, core] {
    Core& c = cores_[core];
    c.kick_pending = false;
    if (c.running != nullptr) {
      return;
    }
    if (const auto& poll = core_poll_hooks_[static_cast<size_t>(core)]) {
      poll(core);
    }
    if (c.running != nullptr) {
      return;  // poll hook resumed a core-holding task
    }
    Task* next = nullptr;
    if (!c.run_queue.empty()) {
      next = c.run_queue.front();
      c.run_queue.pop_front();
      OBS_COUNTER_SAMPLED(obs::Track(obs::kProcCores, core), "runq",
                          c.run_queue.size());
    } else if (const auto& steal =
                   core_steal_hooks_[static_cast<size_t>(core)]) {
      next = steal(core);
      if (next != nullptr) {
        next->core_ = core;
      }
    }
    if (next != nullptr) {
      DispatchTask(next);
      // Work is still queued behind a now-busy core: let the scheduling
      // layer prod idle siblings to steal it.
      if (!c.run_queue.empty()) {
        NotifyEnqueue(core);
      }
    }
  });
}

Task* Simulation::TryStealFrom(int victim) {
  Core& c = cores_[victim];
  if (c.run_queue.empty()) {
    return nullptr;
  }
  Task* t = c.run_queue.back();
  c.run_queue.pop_back();
  return t;
}

void Simulation::DispatchTask(Task* t) {
  assert(t->state_ == Task::State::kRunnable ||
         t->state_ == Task::State::kRunning);
  Core& core = cores_[t->core_];
  assert(core.running == nullptr || core.running == t);
  t->state_ = Task::State::kRunning;
  t->holds_core_ = false;
  MarkCoreBusy(core, t);
  current_ = t;
  context_switches_++;
  SwapContext(&host_ctx_, &t->ctx_);
  current_ = nullptr;
  HandleDirective(t);
}

void Simulation::HandleDirective(Task* t) {
  const Directive d = directive_;
  directive_ = Directive::kNone;
  Core& core = cores_[t->core_];
  switch (d) {
    case Directive::kAdvance: {
      // Core stays busy; resume the same task after the delay.
      ScheduleAfter(advance_ns_, [this, t] {
        assert(t->state_ == Task::State::kRunning);
        DispatchTask(t);
      });
      break;
    }
    case Directive::kYield: {
      t->state_ = Task::State::kRunnable;
      core.run_queue.push_back(t);
      OBS_COUNTER_SAMPLED(obs::Track(obs::kProcCores, t->core_), "runq",
                          core.run_queue.size());
      MarkCoreIdle(core);
      KickCore(t->core_);
      break;
    }
    case Directive::kBlock: {
      t->state_ = Task::State::kBlocked;
      OBS_EVENT_SAMPLED(obs::Track(obs::kProcCores, t->core_), "park",
                        {"task", t->id()});
      MarkCoreIdle(core);
      KickCore(t->core_);
      break;
    }
    case Directive::kBlockHoldingCore: {
      t->state_ = Task::State::kBlocked;
      t->holds_core_ = true;
      // core.running stays == t: the core is busy-waiting on hardware.
      break;
    }
    case Directive::kFinish: {
      t->state_ = Task::State::kFinished;
      for (Task* joiner : t->joiners_) {
        Wake(joiner);
      }
      t->joiners_.clear();
      t->fn_ = nullptr;  // release any captured workload state
      stacks_.Release(t->stack_);
      t->stack_ = nullptr;
      ReleaseContext(&t->ctx_);  // sanitizer fiber bookkeeping, if any
      MarkCoreIdle(core);
      KickCore(t->core_);
      if (t->detached_) {
        // Nobody may reference a detached task after it finishes; park the
        // object for the next spawn instead of freeing it.
        free_tasks_.push_back(t);
      }
      break;
    }
    case Directive::kNone:
      assert(false && "task switched out without a directive");
      break;
  }
}

void Simulation::SwitchOut(Directive d) {
  assert(in_task());
  directive_ = d;
  Task* t = current_;
  SwapContext(&t->ctx_, &host_ctx_);
}

void Simulation::Advance(uint64_t ns) {
  if (ns == 0) {
    return;
  }
  advance_ns_ = ns;
  SwitchOut(Directive::kAdvance);
}

void Simulation::Yield() { SwitchOut(Directive::kYield); }

void Simulation::Block() { SwitchOut(Directive::kBlock); }

void Simulation::BlockHoldingCore() {
  SwitchOut(Directive::kBlockHoldingCore);
}

void Simulation::Wake(Task* t) { WakeOn(t, t->core_); }

void Simulation::WakeOn(Task* t, int core) {
  assert(t->state_ == Task::State::kBlocked);
  if (t->holds_core_) {
    // The task still owns its core (synchronous hardware wait): resume it
    // directly; it cannot migrate.
    assert(core == t->core_);
    ScheduleAt(now_, [this, t] {
      assert(t->holds_core_ && cores_[t->core_].running == t);
      t->state_ = Task::State::kRunnable;
      DispatchTask(t);
    });
    return;
  }
  t->state_ = Task::State::kRunnable;
  t->core_ = core;
  cores_[core].run_queue.push_back(t);
  OBS_COUNTER_SAMPLED(obs::Track(obs::kProcCores, core), "runq",
                      cores_[core].run_queue.size());
  KickCore(core);
  NotifyEnqueue(core);
}

void Simulation::Join(Task* t) {
  assert(in_task());
  assert(!t->detached_ && "cannot join a detached task");
  if (t->finished()) {
    return;
  }
  t->joiners_.push_back(current_);
  Block();
}

void Simulation::SleepFor(uint64_t ns) {
  assert(in_task());
  Task* t = current_;
  ScheduleAfter(ns, [this, t] { Wake(t); });
  Block();
}

void Simulation::FinishCurrent() {
  SwitchOut(Directive::kFinish);
  // A finished task is never resumed.
  std::fprintf(stderr, "easyio: finished task resumed\n");
  std::abort();
}

}  // namespace easyio::sim
