#include "src/sim/context.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace easyio::sim {

#if defined(EASYIO_TSAN_FIBERS)

// Not provided by a public header on every toolchain; the symbols live in
// the TSan runtime that -fsanitize=thread links in.
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}

namespace {
// Tells TSan we are about to move this host thread onto `to`'s stack. The
// saved-into context lazily adopts the thread's current fiber the first time
// it is swapped out of (that covers Simulation's host context, which is
// never MakeContext'd); adopted fibers belong to the thread, so
// ReleaseContext leaves them alone.
inline void TsanBeforeSwap(Context* from, Context* to) {
  if (from->tsan_fiber == nullptr) {
    from->tsan_fiber = __tsan_get_current_fiber();
  }
  __tsan_switch_to_fiber(to->tsan_fiber, 0);
}
}  // namespace

void ReleaseContext(Context* ctx) {
  if (ctx->tsan_fiber != nullptr && ctx->tsan_fiber_owned) {
    __tsan_destroy_fiber(ctx->tsan_fiber);
  }
  ctx->tsan_fiber = nullptr;
  ctx->tsan_fiber_owned = false;
}

#else

void ReleaseContext(Context* ctx) { (void)ctx; }

#endif  // EASYIO_TSAN_FIBERS

#if defined(EASYIO_UCONTEXT)

namespace {
// ucontext's makecontext only forwards int arguments portably; stash the
// (entry, arg) pair and fetch it from the trampoline. A simulation is
// single-threaded so one slot per host thread is sufficient (MakeContext and
// the first switch never interleave); thread_local keeps concurrent
// scenario workers from clobbering each other's slot.
thread_local ContextEntry g_pending_entry;
thread_local void* g_pending_arg;

void UcontextTrampoline() {
  ContextEntry entry = g_pending_entry;
  void* arg = g_pending_arg;
  entry(arg);
  std::fprintf(stderr, "easyio: context entry function returned\n");
  std::abort();
}
}  // namespace

void MakeContext(Context* ctx, void* stack_base, size_t stack_size,
                 ContextEntry entry, void* arg) {
  getcontext(&ctx->uc);
  ctx->uc.uc_stack.ss_sp = stack_base;
  ctx->uc.uc_stack.ss_size = stack_size;
  ctx->uc.uc_link = nullptr;
  g_pending_entry = entry;
  g_pending_arg = arg;
  makecontext(&ctx->uc, UcontextTrampoline, 0);
#if defined(EASYIO_TSAN_FIBERS)
  ReleaseContext(ctx);
  ctx->tsan_fiber = __tsan_create_fiber(0);
  ctx->tsan_fiber_owned = true;
#endif
}

void SwapContext(Context* from, Context* to) {
#if defined(EASYIO_TSAN_FIBERS)
  TsanBeforeSwap(from, to);
#endif
  swapcontext(&from->uc, &to->uc);
}

#elif defined(__x86_64__)

// Register layout pushed onto the coroutine stack by easyio_ctx_swap, from
// low to high address: r15 r14 r13 r12 rbx rbp rip.
//
// easyio_ctx_swap(from, to):
//   pushes callee-saved registers, stores rsp into from->sp, loads to->sp,
//   pops the registers back and returns into the target context.
//
// easyio_ctx_entry is the first "return address" of a fresh context. At that
// point r12 holds the user argument and r13 holds the entry function (both
// planted by MakeContext); rsp is 16-byte aligned so the subsequent call
// leaves the callee with the ABI-required rsp%16==8 at entry.
asm(R"(
  .text
  .globl easyio_ctx_swap
  .type easyio_ctx_swap, @function
  .align 16
easyio_ctx_swap:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq %rsp, (%rdi)
  movq (%rsi), %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  retq
  .size easyio_ctx_swap, .-easyio_ctx_swap

  .globl easyio_ctx_entry
  .type easyio_ctx_entry, @function
  .align 16
easyio_ctx_entry:
  movq %r12, %rdi
  callq *%r13
  callq easyio_ctx_abort
  .size easyio_ctx_entry, .-easyio_ctx_entry

  .section .note.GNU-stack,"",@progbits
  .text
)");

extern "C" void easyio_ctx_swap(Context* from, Context* to);

extern "C" void easyio_ctx_abort() {
  std::fprintf(stderr, "easyio: context entry function returned\n");
  std::abort();
}

void MakeContext(Context* ctx, void* stack_base, size_t stack_size,
                 ContextEntry entry, void* arg) {
  // Highest usable address, 16-byte aligned.
  auto top = reinterpret_cast<uintptr_t>(stack_base) + stack_size;
  top &= ~uintptr_t{15};

  // Frame (top-down): [entry rip] then the six register slots popped by
  // easyio_ctx_swap. Seven 8-byte slots => after the pops and ret, rsp == top,
  // which keeps the 16-byte alignment easyio_ctx_entry relies on.
  auto* frame = reinterpret_cast<uint64_t*>(top) - 7;
  frame[0] = 0;  // r15
  frame[1] = 0;  // r14
  frame[2] = reinterpret_cast<uint64_t>(entry);  // r13
  frame[3] = reinterpret_cast<uint64_t>(arg);    // r12
  frame[4] = 0;  // rbx
  frame[5] = 0;  // rbp
  frame[6] = reinterpret_cast<uint64_t>(
      reinterpret_cast<void*>(+[]() {}));  // placeholder, overwritten below

  // The "return address" the first swap's retq jumps to.
  extern void easyio_ctx_entry_decl() asm("easyio_ctx_entry");
  frame[6] = reinterpret_cast<uint64_t>(&easyio_ctx_entry_decl);

  ctx->sp = frame;
#if defined(EASYIO_TSAN_FIBERS)
  ReleaseContext(ctx);
  ctx->tsan_fiber = __tsan_create_fiber(0);
  ctx->tsan_fiber_owned = true;
#endif
}

void SwapContext(Context* from, Context* to) {
#if defined(EASYIO_TSAN_FIBERS)
  TsanBeforeSwap(from, to);
#endif
  easyio_ctx_swap(from, to);
}

#else
#error "Unsupported architecture: build with -DEASYIO_USE_UCONTEXT=ON"
#endif

}  // namespace easyio::sim
