#include "src/sim/context.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace easyio::sim {

#if defined(EASYIO_TSAN_FIBERS)

// Not provided by a public header on every toolchain; the symbols live in
// the TSan runtime that -fsanitize=thread links in.
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}

namespace {
// Tells TSan we are about to move this host thread onto `to`'s stack. The
// saved-into context lazily adopts the thread's current fiber the first time
// it is swapped out of (that covers Simulation's host context, which is
// never MakeContext'd); adopted fibers belong to the thread, so
// ReleaseContext leaves them alone.
inline void TsanBeforeSwap(Context* from, Context* to) {
  if (from->tsan_fiber == nullptr) {
    from->tsan_fiber = __tsan_get_current_fiber();
  }
  __tsan_switch_to_fiber(to->tsan_fiber, 0);
}
}  // namespace

void ReleaseContext(Context* ctx) {
  if (ctx->tsan_fiber != nullptr && ctx->tsan_fiber_owned) {
    __tsan_destroy_fiber(ctx->tsan_fiber);
  }
  ctx->tsan_fiber = nullptr;
  ctx->tsan_fiber_owned = false;
}

#else

void ReleaseContext(Context* ctx) { (void)ctx; }

#endif  // EASYIO_TSAN_FIBERS

#if defined(EASYIO_UCONTEXT)

namespace {
// ucontext's makecontext only forwards int arguments portably; the (entry,
// arg) pair lives in the Context and the Context* rides in as two halves.
// (A per-thread pending slot does NOT work: several tasks are routinely
// MakeContext'd before the first one is switched into, and each stash would
// overwrite the last.)
void UcontextTrampoline(unsigned hi, unsigned lo) {
  auto* ctx = reinterpret_cast<Context*>(
      (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo));
  ctx->entry(ctx->arg);
  std::fprintf(stderr, "easyio: context entry function returned\n");
  std::abort();
}
}  // namespace

void MakeContext(Context* ctx, void* stack_base, size_t stack_size,
                 ContextEntry entry, void* arg) {
  getcontext(&ctx->uc);
  ctx->uc.uc_stack.ss_sp = stack_base;
  ctx->uc.uc_stack.ss_size = stack_size;
  ctx->uc.uc_link = nullptr;
  ctx->entry = entry;
  ctx->arg = arg;
  const auto p = reinterpret_cast<uintptr_t>(ctx);
  makecontext(&ctx->uc, reinterpret_cast<void (*)()>(UcontextTrampoline), 2,
              static_cast<unsigned>(p >> 32),
              static_cast<unsigned>(p & 0xffffffffu));
#if defined(EASYIO_TSAN_FIBERS)
  ReleaseContext(ctx);
  ctx->tsan_fiber = __tsan_create_fiber(0);
  ctx->tsan_fiber_owned = true;
#endif
}

void SwapContext(Context* from, Context* to) {
#if defined(EASYIO_TSAN_FIBERS)
  TsanBeforeSwap(from, to);
#endif
  swapcontext(&from->uc, &to->uc);
}

#elif defined(__x86_64__)

// Register layout pushed onto the coroutine stack by easyio_ctx_swap, from
// low to high address: r15 r14 r13 r12 rbx rbp rip.
//
// easyio_ctx_swap(from, to):
//   pushes callee-saved registers, stores rsp into from->sp, loads to->sp,
//   pops the registers back and returns into the target context.
//
// easyio_ctx_entry is the first "return address" of a fresh context. At that
// point r12 holds the user argument and r13 holds the entry function (both
// planted by MakeContext); rsp is 16-byte aligned so the subsequent call
// leaves the callee with the ABI-required rsp%16==8 at entry.
asm(R"(
  .text
  .globl easyio_ctx_swap
  .type easyio_ctx_swap, @function
  .align 16
easyio_ctx_swap:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq %rsp, (%rdi)
  movq (%rsi), %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  retq
  .size easyio_ctx_swap, .-easyio_ctx_swap

  .globl easyio_ctx_entry
  .type easyio_ctx_entry, @function
  .align 16
easyio_ctx_entry:
  movq %r12, %rdi
  callq *%r13
  callq easyio_ctx_abort
  .size easyio_ctx_entry, .-easyio_ctx_entry

  .section .note.GNU-stack,"",@progbits
  .text
)");

extern "C" void easyio_ctx_swap(Context* from, Context* to);

extern "C" void easyio_ctx_abort() {
  std::fprintf(stderr, "easyio: context entry function returned\n");
  std::abort();
}

void MakeContext(Context* ctx, void* stack_base, size_t stack_size,
                 ContextEntry entry, void* arg) {
  // Highest usable address, 16-byte aligned.
  auto top = reinterpret_cast<uintptr_t>(stack_base) + stack_size;
  top &= ~uintptr_t{15};

  // Frame (top-down): [entry rip] then the six register slots popped by
  // easyio_ctx_swap. Seven 8-byte slots => after the pops and ret, rsp == top,
  // which keeps the 16-byte alignment easyio_ctx_entry relies on.
  auto* frame = reinterpret_cast<uint64_t*>(top) - 7;
  frame[0] = 0;  // r15
  frame[1] = 0;  // r14
  frame[2] = reinterpret_cast<uint64_t>(entry);  // r13
  frame[3] = reinterpret_cast<uint64_t>(arg);    // r12
  frame[4] = 0;  // rbx
  frame[5] = 0;  // rbp
  frame[6] = reinterpret_cast<uint64_t>(
      reinterpret_cast<void*>(+[]() {}));  // placeholder, overwritten below

  // The "return address" the first swap's retq jumps to.
  extern void easyio_ctx_entry_decl() asm("easyio_ctx_entry");
  frame[6] = reinterpret_cast<uint64_t>(&easyio_ctx_entry_decl);

  ctx->sp = frame;
#if defined(EASYIO_TSAN_FIBERS)
  ReleaseContext(ctx);
  ctx->tsan_fiber = __tsan_create_fiber(0);
  ctx->tsan_fiber_owned = true;
#endif
}

void SwapContext(Context* from, Context* to) {
#if defined(EASYIO_TSAN_FIBERS)
  TsanBeforeSwap(from, to);
#endif
  easyio_ctx_swap(from, to);
}

#elif defined(__aarch64__)

// Register layout stored on the coroutine stack by easyio_ctx_swap, from low
// to high address (20 slots, 160 bytes, keeps sp 16-byte aligned):
//   x19 x20 x21 x22 x23 x24 x25 x26 x27 x28 x29 x30 d8..d15
//
// easyio_ctx_entry is the first "return address" (x30 slot) of a fresh
// context. At that point x19 holds the entry function and x20 the user
// argument, both planted by MakeContext and callee-saved across the swap.
asm(R"(
  .text
  .globl easyio_ctx_swap
  .type easyio_ctx_swap, %function
  .align 4
easyio_ctx_swap:
  sub sp, sp, #160
  stp x19, x20, [sp, #0]
  stp x21, x22, [sp, #16]
  stp x23, x24, [sp, #32]
  stp x25, x26, [sp, #48]
  stp x27, x28, [sp, #64]
  stp x29, x30, [sp, #80]
  stp d8, d9, [sp, #96]
  stp d10, d11, [sp, #112]
  stp d12, d13, [sp, #128]
  stp d14, d15, [sp, #144]
  mov x9, sp
  str x9, [x0]
  ldr x9, [x1]
  mov sp, x9
  ldp x19, x20, [sp, #0]
  ldp x21, x22, [sp, #16]
  ldp x23, x24, [sp, #32]
  ldp x25, x26, [sp, #48]
  ldp x27, x28, [sp, #64]
  ldp x29, x30, [sp, #80]
  ldp d8, d9, [sp, #96]
  ldp d10, d11, [sp, #112]
  ldp d12, d13, [sp, #128]
  ldp d14, d15, [sp, #144]
  add sp, sp, #160
  ret
  .size easyio_ctx_swap, .-easyio_ctx_swap

  .globl easyio_ctx_entry
  .type easyio_ctx_entry, %function
  .align 4
easyio_ctx_entry:
  mov x0, x20
  blr x19
  bl easyio_ctx_abort
  .size easyio_ctx_entry, .-easyio_ctx_entry

  .section .note.GNU-stack,"",%progbits
  .text
)");

extern "C" void easyio_ctx_swap(Context* from, Context* to);

extern "C" void easyio_ctx_abort() {
  std::fprintf(stderr, "easyio: context entry function returned\n");
  std::abort();
}

void MakeContext(Context* ctx, void* stack_base, size_t stack_size,
                 ContextEntry entry, void* arg) {
  // Highest usable address, 16-byte aligned (AAPCS64 requires sp%16==0).
  auto top = reinterpret_cast<uintptr_t>(stack_base) + stack_size;
  top &= ~uintptr_t{15};

  auto* frame = reinterpret_cast<uint64_t*>(top) - 20;
  std::memset(frame, 0, 20 * sizeof(uint64_t));
  frame[0] = reinterpret_cast<uint64_t>(entry);  // x19
  frame[1] = reinterpret_cast<uint64_t>(arg);    // x20
  extern void easyio_ctx_entry_decl() asm("easyio_ctx_entry");
  frame[11] = reinterpret_cast<uint64_t>(&easyio_ctx_entry_decl);  // x30

  ctx->sp = frame;
#if defined(EASYIO_TSAN_FIBERS)
  ReleaseContext(ctx);
  ctx->tsan_fiber = __tsan_create_fiber(0);
  ctx->tsan_fiber_owned = true;
#endif
}

void SwapContext(Context* from, Context* to) {
#if defined(EASYIO_TSAN_FIBERS)
  TsanBeforeSwap(from, to);
#endif
  easyio_ctx_swap(from, to);
}

#else
#error "No fast context switch for this architecture: build with -DEASYIO_UCONTEXT_FALLBACK=ON"
#endif

}  // namespace easyio::sim
