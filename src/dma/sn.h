// Sequence numbers (SN) — the heart of EasyIO's orderless file operation
// (paper §4.2).
//
// Each DMA channel owns a *completion record* in a predefined persistent
// region: the hardware completion buffer (ADDR: the ring slot of the most
// recently finished descriptor) plus a software-maintained wraparound counter
// (CNT, incremented per ring wrap). CNT, the channel ID and ADDR together
// form an SN that increases monotonically as the channel completes work, so
//
//   "is the write whose log entry carries SN s durable?"
//     <=>  completed_sn(channel(s)) >= s
//
// holds across crashes, which is what lets metadata commit in parallel with
// the data DMA and still recover correctly.

#ifndef EASYIO_DMA_SN_H_
#define EASYIO_DMA_SN_H_

#include <cassert>
#include <cstdint>

namespace easyio::dma {

// Ring slots are 1-based so that ADDR == 0 means "nothing completed in this
// CNT era"; see Channel for the wraparound rule.
inline constexpr uint64_t kRingSlots = 4096;

struct Sn {
  // 0 == "no DMA attached" (pure-memcpy writes); always considered complete.
  static constexpr uint64_t kNoneSeq = 0;
  // The packed on-log representation keeps the channel in the top byte, so a
  // seq only round-trips through Pack/Unpack if it fits in 56 bits. At 4096
  // ring slots that is ~2^44 ring wraps — unreachable in practice, but a
  // sequence beyond it must fail loudly, not wrap (see Pack).
  static constexpr uint64_t kMaxSeq = (1ull << 56) - 1;

  uint8_t channel = 0;
  uint64_t seq = kNoneSeq;  // cnt * (kRingSlots + 1) + slot

  bool none() const { return seq == kNoneSeq; }

  static Sn None() { return Sn{}; }

  static Sn Make(uint8_t channel, uint64_t cnt, uint64_t slot) {
    assert(cnt <= (kMaxSeq - slot) / (kRingSlots + 1));
    return Sn{channel, cnt * (kRingSlots + 1) + slot};
  }

  // Packed on-log representation: channel in the top byte. A seq wider than
  // 56 bits cannot round-trip; silently masking it (the old behaviour) would
  // wrap it to a *smaller* value that recovery would wrongly treat as already
  // durable. Assert in debug builds; in release, saturate to kMaxSeq, which
  // compares greater than any genuine completion record, so recovery treats
  // the entry as not-yet-durable and discards it — the safe direction.
  uint64_t Pack() const {
    assert(seq <= kMaxSeq);
    const uint64_t s = seq > kMaxSeq ? kMaxSeq : seq;
    return (static_cast<uint64_t>(channel) << 56) | s;
  }
  static Sn Unpack(uint64_t packed) {
    return Sn{static_cast<uint8_t>(packed >> 56), packed & kMaxSeq};
  }

  bool operator==(const Sn&) const = default;
};

// The persistent completion record of one channel. `addr` is the paper's
// 64-bit completion buffer; `cnt` is the paper's extra wraparound counter
// placed alongside it (§4.2: "we add an extra 64-bit counter alongside each
// completion buffer").
struct CompletionRecord {
  // Ring slots are <= kRingSlots, so the high bits of `addr` are free for
  // status — mirroring real DSA completion records, which carry a status
  // byte alongside the progress field. Bit 63 marks "channel halted with a
  // transfer error"; it never appears unless fault injection raises it, and
  // CompletedSeq() masks it out so the durability watermark is unaffected.
  static constexpr uint64_t kErrorBit = 1ull << 63;

  uint64_t addr;  // last finished ring slot (1-based; 0 = none this era)
  uint64_t cnt;   // ring wraparound count

  bool error() const { return (addr & kErrorBit) != 0; }
  uint64_t CompletedSeq() const {
    return cnt * (kRingSlots + 1) + (addr & ~kErrorBit);
  }
};
static_assert(sizeof(CompletionRecord) == 16);

// Tri-state completion status of an SN on its channel. kError means the
// channel has halted on a failed descriptor and `sn` is queued at or behind
// it: no forward progress will happen without software recovery (retry or
// fallback — see Channel::WaitSnRecover).
enum class SnState { kPending, kComplete, kError };

// Outcome of a wait on an SN. kError is only possible when a fault injector
// is attached (hardware never fails otherwise).
enum class DmaResult { kOk, kError };

}  // namespace easyio::dma

#endif  // EASYIO_DMA_SN_H_
