// Sequence numbers (SN) — the heart of EasyIO's orderless file operation
// (paper §4.2).
//
// Each DMA channel owns a *completion record* in a predefined persistent
// region: the hardware completion buffer (ADDR: the ring slot of the most
// recently finished descriptor) plus a software-maintained wraparound counter
// (CNT, incremented per ring wrap). CNT, the channel ID and ADDR together
// form an SN that increases monotonically as the channel completes work, so
//
//   "is the write whose log entry carries SN s durable?"
//     <=>  completed_sn(channel(s)) >= s
//
// holds across crashes, which is what lets metadata commit in parallel with
// the data DMA and still recover correctly.

#ifndef EASYIO_DMA_SN_H_
#define EASYIO_DMA_SN_H_

#include <cstdint>

namespace easyio::dma {

// Ring slots are 1-based so that ADDR == 0 means "nothing completed in this
// CNT era"; see Channel for the wraparound rule.
inline constexpr uint64_t kRingSlots = 4096;

struct Sn {
  // 0 == "no DMA attached" (pure-memcpy writes); always considered complete.
  static constexpr uint64_t kNoneSeq = 0;

  uint8_t channel = 0;
  uint64_t seq = kNoneSeq;  // cnt * (kRingSlots + 1) + slot

  bool none() const { return seq == kNoneSeq; }

  static Sn None() { return Sn{}; }

  static Sn Make(uint8_t channel, uint64_t cnt, uint64_t slot) {
    return Sn{channel, cnt * (kRingSlots + 1) + slot};
  }

  // Packed on-log representation: channel in the top byte.
  uint64_t Pack() const {
    return (static_cast<uint64_t>(channel) << 56) | (seq & ((1ull << 56) - 1));
  }
  static Sn Unpack(uint64_t packed) {
    return Sn{static_cast<uint8_t>(packed >> 56), packed & ((1ull << 56) - 1)};
  }

  bool operator==(const Sn&) const = default;
};

// The persistent completion record of one channel. `addr` is the paper's
// 64-bit completion buffer; `cnt` is the paper's extra wraparound counter
// placed alongside it (§4.2: "we add an extra 64-bit counter alongside each
// completion buffer").
struct CompletionRecord {
  uint64_t addr;  // last finished ring slot (1-based; 0 = none this era)
  uint64_t cnt;   // ring wraparound count

  uint64_t CompletedSeq() const { return cnt * (kRingSlots + 1) + addr; }
};
static_assert(sizeof(CompletionRecord) == 16);

}  // namespace easyio::dma

#endif  // EASYIO_DMA_SN_H_
