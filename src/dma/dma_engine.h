// DmaEngine: the machine's set of on-chip DMA channels.
//
// Channels 0..channels_per_engine-1 belong to socket 0's engine, the next
// group to socket 1, and so on; the per-engine aggregate bandwidth caps are
// applied by the SlowMemory flow model. Completion records for all channels
// live in one contiguous persistent region whose offset the filesystem
// layout reserves (§4.2: "we place these completion buffers in a persistent
// region with their starting addresses recorded in advance").

#ifndef EASYIO_DMA_DMA_ENGINE_H_
#define EASYIO_DMA_DMA_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/dma/channel.h"
#include "src/dma/fault_plan.h"
#include "src/dma/sn.h"
#include "src/pmem/slow_memory.h"

namespace easyio::dma {

class DmaEngine {
 public:
  // Creates channels backed by completion records at `record_region_off`.
  // Existing record contents (e.g. from a crash image) are honoured; see
  // Channel's constructor.
  DmaEngine(pmem::SlowMemory* mem, uint64_t record_region_off,
            int num_channels);

  static size_t RecordRegionSize(int num_channels) {
    return static_cast<size_t>(num_channels) * sizeof(CompletionRecord);
  }

  int num_channels() const { return static_cast<int>(channels_.size()); }
  Channel& channel(int i) { return *channels_[i]; }
  const Channel& channel(int i) const { return *channels_[i]; }

  // Checked SN-to-channel routing: the only safe way to resolve an SN whose
  // channel index comes from data (a log entry, a remapped inode field)
  // rather than from the submitting code path. Hard-fails on an index this
  // engine never issued, in every build mode — comparing against another
  // channel's record would silently return a wrong durability answer.
  Channel& ChannelFor(Sn sn);
  const Channel& ChannelFor(Sn sn) const;
  bool IsComplete(Sn sn) const {
    return sn.none() || ChannelFor(sn).IsComplete(sn);
  }

  // Arms fault injection on every channel. `injector` must outlive the
  // engine; pass nullptr to detach. With no injector the engine models
  // infallible hardware, bit-for-bit identical to a build without this call.
  void AttachFaultInjector(FaultInjector* injector);

  // Completed sequence for a channel read directly from a raw device image —
  // what mount-time recovery uses before any engine object exists.
  static uint64_t CompletedSeqInImage(std::span<const std::byte> image,
                                      uint64_t record_region_off, int channel);

 private:
  std::vector<std::unique_ptr<Channel>> channels_;
};

}  // namespace easyio::dma

#endif  // EASYIO_DMA_DMA_ENGINE_H_
