#include "src/dma/fault_plan.h"

#include "src/common/rng.h"

namespace easyio::dma {

FaultPlan FaultPlan::Random(uint64_t seed, int num_channels, int n_errors,
                            int n_stalls, int n_torn, uint64_t ordinal_range,
                            uint64_t stall_ns) {
  Rng rng(seed);
  FaultPlan plan;
  plan.errors.reserve(static_cast<size_t>(n_errors));
  for (int i = 0; i < n_errors; ++i) {
    plan.errors.push_back(
        {static_cast<uint8_t>(rng.Below(static_cast<uint64_t>(num_channels))),
         rng.Below(ordinal_range), 1});
  }
  plan.stalls.reserve(static_cast<size_t>(n_stalls));
  for (int i = 0; i < n_stalls; ++i) {
    plan.stalls.push_back(
        {static_cast<uint8_t>(rng.Below(static_cast<uint64_t>(num_channels))),
         rng.Below(ordinal_range), stall_ns});
  }
  plan.torn.reserve(static_cast<size_t>(n_torn));
  for (int i = 0; i < n_torn; ++i) {
    plan.torn.push_back(
        {static_cast<uint8_t>(rng.Below(static_cast<uint64_t>(num_channels))),
         rng.Below(ordinal_range)});
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const auto& e : plan_.errors) {
    errors_[{e.channel, e.ordinal}] += e.count;
  }
  for (const auto& s : plan_.stalls) {
    stalls_[{s.channel, s.ordinal}] += s.stall_ns;
  }
  for (const auto& t : plan_.torn) {
    torn_[{t.channel, t.ordinal}] = true;
  }
}

int FaultInjector::TakeTransferError(uint8_t channel, uint64_t ordinal) {
  const auto it = errors_.find({channel, ordinal});
  if (it == errors_.end()) {
    return 0;
  }
  const int count = it->second;
  errors_.erase(it);
  errors_armed_++;
  return count;
}

uint64_t FaultInjector::TakeStall(uint8_t channel, uint64_t ordinal) {
  const auto it = stalls_.find({channel, ordinal});
  if (it == stalls_.end()) {
    return 0;
  }
  const uint64_t ns = it->second;
  stalls_.erase(it);
  stalls_armed_++;
  return ns;
}

bool FaultInjector::TakeTornRecord(uint8_t channel, uint64_t ordinal) {
  const auto it = torn_.find({channel, ordinal});
  if (it == torn_.end()) {
    return false;
  }
  torn_.erase(it);
  torn_armed_++;
  return true;
}

}  // namespace easyio::dma
