// A single DMA channel of the on-chip engine (I/OAT abstraction).
//
// Descriptors submitted to a channel are processed strictly in FIFO order by
// the (simulated) hardware: per-descriptor startup gap, then a bandwidth
// flow through the slow-memory arbiter. Head-of-line blocking, the paper's
// Fig 4 latency spikes and the multi-channel bandwidth shapes of Fig 3 all
// emerge from this structure plus the MediaParams calibration.
//
// The channel's CompletionRecord lives in the persistent region of the
// SlowMemory device and is updated by the "hardware" at completion time —
// this is the object EasyIO's orderless commit and two-level locking read.
//
// Contract (paper §2.2, §4.2, §4.4): Submit/SubmitBatch charge the caller
// the CPU-side doorbell cost and return an Sn that is strictly monotonic in
// this channel's completion order; IsComplete(sn) becomes true exactly when
// the persistent CompletionRecord covers sn and never reverts (even across
// a crash, because a new incarnation opens a fresh CNT era above every
// pre-crash SN). WaitSn parks the calling uthread (asynchronous consumption,
// EasyIO) while WaitSnBusy spins holding the core (synchronous consumption,
// NOVA-DMA/Fastmove). Suspend/Resume model CHANCMD (74ns each, §4.4): while
// suspended no new descriptor starts, and an in-flight one either drains or
// restarts per MediaParams::suspend_restart_threshold.

#ifndef EASYIO_DMA_CHANNEL_H_
#define EASYIO_DMA_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "src/dma/fault_plan.h"
#include "src/dma/sn.h"
#include "src/pmem/slow_memory.h"
#include "src/sim/simulation.h"

namespace easyio::dma {

// How WaitSnRecover reacts to a halted channel: re-submit the failed
// descriptor up to `max_attempts` times, sleeping backoff_ns before the
// first retry and doubling it per attempt; once attempts are exhausted (or
// immediately, with max_attempts = 0 — the quarantined-channel case) the
// waiting task moves the data itself with a synchronous CPU copy.
struct RetryPolicy {
  int max_attempts = 3;
  uint64_t backoff_ns = 2'000;
  // Spin holding the core while waiting/backing off (synchronous consumers:
  // NOVA-DMA/Fastmove) instead of parking the uthread (EasyIO).
  bool busy = false;
};

struct Descriptor {
  enum class Dir { kWrite, kRead };  // write: DRAM -> pmem; read: pmem -> DRAM

  Dir dir = Dir::kWrite;
  uint64_t pmem_off = 0;
  void* dram = nullptr;  // source for writes, destination for reads
  uint32_t size = 0;
  // Optional notification fired (as a simulation event) right after the
  // completion record is updated.
  std::function<void()> on_complete;
};

class Channel {
 public:
  // `record_off` is the pmem offset of this channel's CompletionRecord.
  // An existing record (from a previous incarnation / crash image) is
  // honoured: the new era starts at cnt = old_cnt + 1 so every SN issued
  // before the crash compares as completed (they were either validated or
  // discarded by recovery).
  Channel(pmem::SlowMemory* mem, uint8_t id, uint64_t record_off);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  uint8_t id() const { return id_; }

  // Submits one descriptor; charges the CPU-side submission cost to the
  // calling task. Returns the SN identifying its completion.
  Sn Submit(Descriptor desc);
  // Batch submission: one doorbell, amortized per-descriptor cost
  // (§2.2: both I/OAT and DSA support batch submission). The span form
  // consumes the descriptors in place and appends the SNs to *sns (not
  // cleared), so a caller can reuse its own buffers across operations.
  void SubmitBatch(std::span<Descriptor> descs, std::vector<Sn>* sns);
  std::vector<Sn> SubmitBatch(std::vector<Descriptor> descs);

  // True once the channel's completion record covers `sn`. Hard-fails (in
  // every build mode) on an SN belonging to a different channel: comparing a
  // foreign SN against this channel's record would silently return a wrong
  // durability answer. Route cross-channel SNs through DmaEngine::ChannelFor.
  bool IsComplete(Sn sn) const;
  // Tri-state variant: kError while the channel is halted on a failed
  // descriptor and `sn` is not yet covered.
  SnState StateOf(Sn sn) const;
  uint64_t CompletedSeq() const { return record().CompletedSeq(); }

  // Parks the calling task until `sn` completes. Returns immediately if it
  // already has. Returns kError (instead of blocking forever) if the channel
  // halts on a transfer error while the caller waits.
  DmaResult WaitSn(Sn sn);
  // Busy-polling variant: the calling task keeps its core occupied while
  // waiting (how a synchronous filesystem like Fastmove/NOVA-DMA consumes
  // DMA completions).
  DmaResult WaitSnBusy(Sn sn);
  // Recovery-driving wait: like WaitSn/WaitSnBusy, but when the channel
  // halts on a failed descriptor the calling task re-submits it (bounded
  // attempts, exponential backoff) and finally falls back to a synchronous
  // CPU copy, so this call always returns kOk with `sn` durable. With no
  // fault injector attached it behaves exactly like the plain waits.
  DmaResult WaitSnRecover(Sn sn, const RetryPolicy& policy = {});

  // Outstanding descriptors (queued + in flight). Listing 2's admission
  // control reads this as `q_deps`.
  size_t queue_depth() const { return queue_.size(); }
  bool idle() const { return queue_.empty(); }

  // CHANCMD suspend/resume (paper §4.4). Suspension cost (74ns) is charged
  // to the calling task if any. An in-flight descriptor either runs to
  // completion or is restarted on resume, depending on how far it has
  // progressed (MediaParams::suspend_restart_threshold).
  void Suspend();
  void Resume();
  bool suspended() const { return suspended_; }

  // Bandwidth-accounting for the channel manager's epoch loop.
  uint64_t TakeEpochBytes();
  uint64_t bytes_completed() const { return bytes_completed_; }
  uint64_t descriptors_completed() const { return descriptors_completed_; }

  // ---- Fault injection (see fault_plan.h). Null = infallible hardware. ----
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  // True while the channel sits halted on a failed head descriptor.
  bool halted() const { return halted_; }
  // Fault/recovery counters (all zero with no injector attached).
  uint64_t transfer_errors() const { return transfer_errors_; }
  uint64_t retries() const { return retries_; }
  uint64_t software_completions() const { return software_completions_; }
  uint64_t stalls_injected() const { return stalls_injected_; }
  uint64_t torn_records() const { return torn_records_; }
  uint64_t record_repairs() const { return record_repairs_; }

 private:
  struct Pending {
    Descriptor desc;
    uint64_t slot = 0;
    uint64_t cnt = 0;
    uint64_t inflight_token = 0;  // crash tracking (writes only)
    bool started = false;
    sim::FlowResource::FlowId flow = 0;
    sim::SimTime transfer_start = 0;
    sim::SimTime enqueue_time = 0;  // for the trace's queued_ns attribution
    // Fault-injection state, resolved once at enqueue time from the
    // injector's plan by this descriptor's per-channel ordinal.
    int planned_errors = 0;    // remaining injected failures for this desc
    uint64_t stall_ns = 0;     // engine stall before this desc starts
    bool torn = false;         // lose this desc's completion-record update
    int attempts = 0;          // software retries issued so far
    std::vector<std::byte> undo;  // pre-write snapshot for error rollback
  };

  const CompletionRecord& record() const {
    return *mem_->As<CompletionRecord>(record_off_);
  }
  void PersistRecord(uint64_t addr, uint64_t cnt);
  // Persist a fresh completion value: clears torn-record shadow state and
  // cancels any scheduled repair before writing.
  void CommitRecord(uint64_t addr, uint64_t cnt);
  void WakeCovered();        // wake waiters covered by the persistent record
  Sn Enqueue(Descriptor desc);
  void MaybeStart();         // engine side: begin head-of-queue descriptor
  void OnTransferDone();     // engine side: head descriptor finished
  void FailHead();           // engine side: head raised a transfer error
  void RetryHead();          // software side: re-submit the failed head
  void CompleteHeadBySoftware();  // software side: CPU-copy fallback
  void RepairRecord();       // driver scrub: rewrite a torn record
  void ChargeSubmit(size_t batch_size);

  pmem::SlowMemory* mem_;
  sim::Simulation* sim_;
  uint8_t id_;
  uint64_t record_off_;
  uint64_t next_slot_ = 1;  // 1-based; wraps to 1 after kRingSlots
  uint64_t cnt_;
  std::deque<Pending> queue_;
  bool engine_busy_ = false;   // startup gap or flow in progress
  bool suspended_ = false;
  sim::SimTime suspend_start_ = 0;  // trace: open CHANCMD suspension window
  uint64_t epoch_bytes_ = 0;
  uint64_t bytes_completed_ = 0;
  uint64_t descriptors_completed_ = 0;
  std::multimap<uint64_t, sim::Task*> waiters_;  // seq -> parked task

  // ---- Fault-injection state (inert with injector_ == nullptr) ----
  FaultInjector* injector_ = nullptr;
  uint64_t next_ordinal_ = 0;  // per-channel descriptor ordinal (plan key)
  bool halted_ = false;        // head failed; awaiting software recovery
  // Torn-record shadow: the true completion value the hardware reached while
  // the persistent record stayed stale. Durability queries and waiter wakes
  // use only the persistent record (the shadow must never be trusted for
  // crash consistency); the next completion or the scheduled scrub
  // re-persists it.
  bool record_stale_ = false;
  uint64_t shadow_addr_ = 0;
  uint64_t shadow_cnt_ = 0;
  sim::EventId repair_event_ = 0;
  uint64_t transfer_errors_ = 0;
  uint64_t retries_ = 0;
  uint64_t software_completions_ = 0;
  uint64_t stalls_injected_ = 0;
  uint64_t torn_records_ = 0;
  uint64_t record_repairs_ = 0;
};

}  // namespace easyio::dma

#endif  // EASYIO_DMA_CHANNEL_H_
