// A single DMA channel of the on-chip engine (I/OAT abstraction).
//
// Descriptors submitted to a channel are processed strictly in FIFO order by
// the (simulated) hardware: per-descriptor startup gap, then a bandwidth
// flow through the slow-memory arbiter. Head-of-line blocking, the paper's
// Fig 4 latency spikes and the multi-channel bandwidth shapes of Fig 3 all
// emerge from this structure plus the MediaParams calibration.
//
// The channel's CompletionRecord lives in the persistent region of the
// SlowMemory device and is updated by the "hardware" at completion time —
// this is the object EasyIO's orderless commit and two-level locking read.
//
// Contract (paper §2.2, §4.2, §4.4): Submit/SubmitBatch charge the caller
// the CPU-side doorbell cost and return an Sn that is strictly monotonic in
// this channel's completion order; IsComplete(sn) becomes true exactly when
// the persistent CompletionRecord covers sn and never reverts (even across
// a crash, because a new incarnation opens a fresh CNT era above every
// pre-crash SN). WaitSn parks the calling uthread (asynchronous consumption,
// EasyIO) while WaitSnBusy spins holding the core (synchronous consumption,
// NOVA-DMA/Fastmove). Suspend/Resume model CHANCMD (74ns each, §4.4): while
// suspended no new descriptor starts, and an in-flight one either drains or
// restarts per MediaParams::suspend_restart_threshold.

#ifndef EASYIO_DMA_CHANNEL_H_
#define EASYIO_DMA_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "src/dma/sn.h"
#include "src/pmem/slow_memory.h"
#include "src/sim/simulation.h"

namespace easyio::dma {

struct Descriptor {
  enum class Dir { kWrite, kRead };  // write: DRAM -> pmem; read: pmem -> DRAM

  Dir dir = Dir::kWrite;
  uint64_t pmem_off = 0;
  void* dram = nullptr;  // source for writes, destination for reads
  uint32_t size = 0;
  // Optional notification fired (as a simulation event) right after the
  // completion record is updated.
  std::function<void()> on_complete;
};

class Channel {
 public:
  // `record_off` is the pmem offset of this channel's CompletionRecord.
  // An existing record (from a previous incarnation / crash image) is
  // honoured: the new era starts at cnt = old_cnt + 1 so every SN issued
  // before the crash compares as completed (they were either validated or
  // discarded by recovery).
  Channel(pmem::SlowMemory* mem, uint8_t id, uint64_t record_off);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  uint8_t id() const { return id_; }

  // Submits one descriptor; charges the CPU-side submission cost to the
  // calling task. Returns the SN identifying its completion.
  Sn Submit(Descriptor desc);
  // Batch submission: one doorbell, amortized per-descriptor cost
  // (§2.2: both I/OAT and DSA support batch submission). The span form
  // consumes the descriptors in place and appends the SNs to *sns (not
  // cleared), so a caller can reuse its own buffers across operations.
  void SubmitBatch(std::span<Descriptor> descs, std::vector<Sn>* sns);
  std::vector<Sn> SubmitBatch(std::vector<Descriptor> descs);

  // True once the channel's completion record covers `sn`.
  bool IsComplete(Sn sn) const;
  uint64_t CompletedSeq() const { return record().CompletedSeq(); }

  // Parks the calling task until `sn` completes. Returns immediately if it
  // already has.
  void WaitSn(Sn sn);
  // Busy-polling variant: the calling task keeps its core occupied while
  // waiting (how a synchronous filesystem like Fastmove/NOVA-DMA consumes
  // DMA completions).
  void WaitSnBusy(Sn sn);

  // Outstanding descriptors (queued + in flight). Listing 2's admission
  // control reads this as `q_deps`.
  size_t queue_depth() const { return queue_.size(); }
  bool idle() const { return queue_.empty(); }

  // CHANCMD suspend/resume (paper §4.4). Suspension cost (74ns) is charged
  // to the calling task if any. An in-flight descriptor either runs to
  // completion or is restarted on resume, depending on how far it has
  // progressed (MediaParams::suspend_restart_threshold).
  void Suspend();
  void Resume();
  bool suspended() const { return suspended_; }

  // Bandwidth-accounting for the channel manager's epoch loop.
  uint64_t TakeEpochBytes();
  uint64_t bytes_completed() const { return bytes_completed_; }
  uint64_t descriptors_completed() const { return descriptors_completed_; }

 private:
  struct Pending {
    Descriptor desc;
    uint64_t slot = 0;
    uint64_t cnt = 0;
    uint64_t inflight_token = 0;  // crash tracking (writes only)
    bool started = false;
    sim::FlowResource::FlowId flow = 0;
    sim::SimTime transfer_start = 0;
    sim::SimTime enqueue_time = 0;  // for the trace's queued_ns attribution
  };

  const CompletionRecord& record() const {
    return *mem_->As<CompletionRecord>(record_off_);
  }
  void PersistRecord(uint64_t addr, uint64_t cnt);
  Sn Enqueue(Descriptor desc);
  void MaybeStart();         // engine side: begin head-of-queue descriptor
  void OnTransferDone();     // engine side: head descriptor finished
  void ChargeSubmit(size_t batch_size);

  pmem::SlowMemory* mem_;
  sim::Simulation* sim_;
  uint8_t id_;
  uint64_t record_off_;
  uint64_t next_slot_ = 1;  // 1-based; wraps to 1 after kRingSlots
  uint64_t cnt_;
  std::deque<Pending> queue_;
  bool engine_busy_ = false;   // startup gap or flow in progress
  bool suspended_ = false;
  sim::SimTime suspend_start_ = 0;  // trace: open CHANCMD suspension window
  uint64_t epoch_bytes_ = 0;
  uint64_t bytes_completed_ = 0;
  uint64_t descriptors_completed_ = 0;
  std::multimap<uint64_t, sim::Task*> waiters_;  // seq -> parked task
};

}  // namespace easyio::dma

#endif  // EASYIO_DMA_CHANNEL_H_
