#include "src/dma/channel.h"

#include <cassert>
#include <cstring>

#include "src/obs/trace.h"

namespace easyio::dma {

Channel::Channel(pmem::SlowMemory* mem, uint8_t id, uint64_t record_off)
    : mem_(mem), sim_(mem->simulation()), id_(id), record_off_(record_off) {
  // Start a fresh CNT era above anything a previous incarnation issued, so
  // every pre-crash SN compares as completed (recovery has already decided
  // their fate by the time new I/O is admitted).
  const CompletionRecord old = record();
  cnt_ = old.cnt + 1;
  PersistRecord(/*addr=*/0, cnt_);
}

void Channel::PersistRecord(uint64_t addr, uint64_t cnt) {
  // Hardware-side update: no CPU cost, but it is a persistence event (the
  // completion buffers live in a persistent region, §4.2).
  CompletionRecord rec{addr, cnt};
  std::memcpy(mem_->As<CompletionRecord>(record_off_), &rec, sizeof(rec));
  mem_->PersistBarrier();
}

void Channel::ChargeSubmit(size_t batch_size) {
  if (!sim_->in_task() || batch_size == 0) {
    return;
  }
  const auto& p = mem_->params();
  sim_->Advance(p.dma_submit_ns + (batch_size - 1) * p.dma_batch_extra_ns);
}

Sn Channel::Enqueue(Descriptor desc) {
  assert(desc.size > 0);
  Pending pending;
  pending.slot = next_slot_;
  pending.cnt = cnt_;
  if (++next_slot_ > kRingSlots) {
    next_slot_ = 1;
    cnt_++;
  }
  if (desc.dir == Descriptor::Dir::kWrite) {
    // Snapshot-then-copy: the payload lands eagerly (the issuing uthread's
    // buffer is guaranteed stable until completion by the runtime), and the
    // undo snapshot lets the crash injector roll back the un-transferred
    // suffix.
    pending.inflight_token =
        mem_->RegisterInflightWrite(desc.pmem_off, desc.size);
    std::memcpy(mem_->raw() + desc.pmem_off, desc.dram, desc.size);
  }
  const Sn sn = Sn::Make(id_, pending.cnt, pending.slot);
  pending.desc = std::move(desc);
  pending.enqueue_time = sim_->now();
  queue_.push_back(std::move(pending));
  OBS_EVENT_SAMPLED(obs::Track(obs::kProcDma, id_), "submit",
                    {"bytes", queue_.back().desc.size},
                    {"qdepth", queue_.size()});
  return sn;
}

Sn Channel::Submit(Descriptor desc) {
  ChargeSubmit(1);
  const Sn sn = Enqueue(std::move(desc));
  MaybeStart();
  return sn;
}

void Channel::SubmitBatch(std::span<Descriptor> descs, std::vector<Sn>* sns) {
  ChargeSubmit(descs.size());
  sns->reserve(sns->size() + descs.size());
  for (auto& d : descs) {
    sns->push_back(Enqueue(std::move(d)));
  }
  MaybeStart();
}

std::vector<Sn> Channel::SubmitBatch(std::vector<Descriptor> descs) {
  std::vector<Sn> sns;
  SubmitBatch(std::span<Descriptor>(descs), &sns);
  return sns;
}

bool Channel::IsComplete(Sn sn) const {
  if (sn.none()) {
    return true;
  }
  assert(sn.channel == id_);
  return record().CompletedSeq() >= sn.seq;
}

void Channel::WaitSn(Sn sn) {
  if (IsComplete(sn)) {
    return;
  }
  waiters_.emplace(sn.seq, sim_->current());
  sim_->Block();
}

void Channel::WaitSnBusy(Sn sn) {
  if (IsComplete(sn)) {
    return;
  }
  waiters_.emplace(sn.seq, sim_->current());
  sim_->BlockHoldingCore();
}

void Channel::MaybeStart() {
  if (engine_busy_ || suspended_ || queue_.empty()) {
    return;
  }
  engine_busy_ = true;
  // Engine-side fetch/launch gap, then the bandwidth flow.
  sim_->ScheduleAfter(mem_->params().dma_startup_ns, [this] {
    if (suspended_) {
      engine_busy_ = false;  // Resume() will restart us
      return;
    }
    assert(!queue_.empty());
    Pending& head = queue_.front();
    head.started = true;
    head.transfer_start = sim_->now();
    const auto& p = mem_->params();
    const bool is_write = head.desc.dir == Descriptor::Dir::kWrite;
    if (!is_write) {
      // Reads materialize into the destination buffer at transfer start;
      // CoW + deferred free guarantee the source blocks stay immutable.
      std::memcpy(head.desc.dram, mem_->raw() + head.desc.pmem_off,
                  head.desc.size);
    }
    auto& flows = is_write ? mem_->write_flows() : mem_->read_flows();
    const double cap = is_write ? p.dma_write_chan_cap.Lookup(head.desc.size)
                                : p.dma_read_chan_cap.Lookup(head.desc.size);
    head.flow = flows.StartFlow(head.desc.size, cap, sim::FlowType::kDma,
                                [this] { OnTransferDone(); });
    if (is_write) {
      mem_->SetInflightFlow(head.inflight_token, &flows, head.flow);
    }
  });
}

void Channel::OnTransferDone() {
  assert(!queue_.empty());
  Pending done = std::move(queue_.front());
  queue_.pop_front();

  if (auto* t = obs::Get(); t != nullptr && t->Sample()) {
    const bool is_write = done.desc.dir == Descriptor::Dir::kWrite;
    t->CompleteSpan(obs::Track(obs::kProcDma, id_),
                    is_write ? "xfer_write" : "xfer_read",
                    done.transfer_start, sim_->now(),
                    {{"bytes", done.desc.size},
                     {"queued_ns", done.transfer_start - done.enqueue_time},
                     {"qdepth", queue_.size()}});
    t->Counter(obs::Track(obs::kProcDma, id_), "qdepth", sim_->now(),
               queue_.size());
  }

  // Post-descriptor housekeeping keeps the channel busy for a
  // direction-dependent fraction of the transfer time (see MediaParams);
  // the requester already observes completion now.
  const auto& p = mem_->params();
  const double factor = done.desc.dir == Descriptor::Dir::kRead
                            ? p.dma_read_cooldown_factor
                            : p.dma_write_cooldown_factor;
  const uint64_t cooldown = static_cast<uint64_t>(
      static_cast<double>(sim_->now() - done.transfer_start) * factor);
  if (cooldown > 0) {
    sim_->ScheduleAfter(cooldown, [this] {
      engine_busy_ = false;
      MaybeStart();
    });
  } else {
    engine_busy_ = false;
  }

  PersistRecord(done.slot, done.cnt);
  epoch_bytes_ += done.desc.size;
  bytes_completed_ += done.desc.size;
  descriptors_completed_++;
  if (done.desc.dir == Descriptor::Dir::kWrite) {
    mem_->CompleteInflightWrite(done.inflight_token);
  }

  // Wake SN waiters now covered by the completion record.
  const uint64_t completed = record().CompletedSeq();
  while (!waiters_.empty() && waiters_.begin()->first <= completed) {
    sim::Task* t = waiters_.begin()->second;
    waiters_.erase(waiters_.begin());
    sim_->Wake(t);
  }
  if (done.desc.on_complete) {
    done.desc.on_complete();
  }
  MaybeStart();
}

void Channel::Suspend() {
  if (suspended_) {
    return;
  }
  suspended_ = true;
  suspend_start_ = sim_->now();
  if (sim_->in_task()) {
    sim_->Advance(mem_->params().chancmd_ns);
  }
  if (!queue_.empty() && queue_.front().started) {
    Pending& head = queue_.front();
    const bool is_write = head.desc.dir == Descriptor::Dir::kWrite;
    auto& flows = is_write ? mem_->write_flows() : mem_->read_flows();
    const double progress = flows.Progress(head.flow);
    if (progress < mem_->params().suspend_restart_threshold) {
      // Restart semantics: abort the transfer; it re-runs from scratch on
      // resume. A crash in between rolls the destination back fully.
      flows.CancelFlow(head.flow);
      head.started = false;
      head.flow = 0;
      if (is_write) {
        mem_->SetInflightFlow(head.inflight_token, nullptr, 0);
      }
      engine_busy_ = false;
      OBS_EVENT(obs::Track(obs::kProcDmaState, id_), "xfer_restart",
                {"bytes", head.desc.size});
    }
    // Otherwise the in-flight transfer runs to completion; no new descriptor
    // starts while suspended.
  }
}

void Channel::Resume() {
  if (!suspended_) {
    return;
  }
  suspended_ = false;
  if (sim_->in_task()) {
    sim_->Advance(mem_->params().chancmd_ns);
  }
  // The CHANCMD suspension window is control-plane activity (one per epoch
  // at most), so it is always recorded, never sampled.
  if (auto* t = obs::Get()) {
    t->CompleteSpan(obs::Track(obs::kProcDmaState, id_), "suspended",
                    suspend_start_, sim_->now());
  }
  MaybeStart();
}

uint64_t Channel::TakeEpochBytes() {
  const uint64_t bytes = epoch_bytes_;
  epoch_bytes_ = 0;
  return bytes;
}

}  // namespace easyio::dma
