#include "src/dma/channel.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/obs/trace.h"

namespace easyio::dma {

Channel::Channel(pmem::SlowMemory* mem, uint8_t id, uint64_t record_off)
    : mem_(mem), sim_(mem->simulation()), id_(id), record_off_(record_off) {
  // Start a fresh CNT era above anything a previous incarnation issued, so
  // every pre-crash SN compares as completed (recovery has already decided
  // their fate by the time new I/O is admitted).
  const CompletionRecord old = record();
  cnt_ = old.cnt + 1;
  PersistRecord(/*addr=*/0, cnt_);
}

void Channel::PersistRecord(uint64_t addr, uint64_t cnt) {
  // Hardware-side update: no CPU cost, but it is a persistence event (the
  // completion buffers live in a persistent region, §4.2).
  CompletionRecord rec{addr, cnt};
  std::memcpy(mem_->As<CompletionRecord>(record_off_), &rec, sizeof(rec));
  mem_->PersistBarrier();
}

void Channel::CommitRecord(uint64_t addr, uint64_t cnt) {
  record_stale_ = false;
  if (repair_event_ != 0) {
    sim_->Cancel(repair_event_);
    repair_event_ = 0;
  }
  PersistRecord(addr, cnt);
}

void Channel::WakeCovered() {
  const uint64_t completed = record().CompletedSeq();
  while (!waiters_.empty() && waiters_.begin()->first <= completed) {
    sim::Task* t = waiters_.begin()->second;
    waiters_.erase(waiters_.begin());
    sim_->Wake(t);
  }
}

void Channel::ChargeSubmit(size_t batch_size) {
  if (!sim_->in_task() || batch_size == 0) {
    return;
  }
  const auto& p = mem_->params();
  sim_->Advance(p.dma_submit_ns + (batch_size - 1) * p.dma_batch_extra_ns);
}

Sn Channel::Enqueue(Descriptor desc) {
  assert(desc.size > 0);
  Pending pending;
  pending.slot = next_slot_;
  pending.cnt = cnt_;
  if (++next_slot_ > kRingSlots) {
    next_slot_ = 1;
    cnt_++;
  }
  if (injector_ != nullptr) {
    const uint64_t ordinal = next_ordinal_++;
    pending.planned_errors = injector_->TakeTransferError(id_, ordinal);
    pending.stall_ns = injector_->TakeStall(id_, ordinal);
    pending.torn = injector_->TakeTornRecord(id_, ordinal);
    if (pending.planned_errors > 0 &&
        desc.dir == Descriptor::Dir::kWrite) {
      // The eager payload copy below must be revertible when the transfer
      // aborts: an errored descriptor leaves nothing durable. SlowMemory's
      // inflight undo only exists with crash tracking on, so keep our own.
      const std::byte* dst = mem_->raw() + desc.pmem_off;
      pending.undo.assign(dst, dst + desc.size);
    }
  }
  if (desc.dir == Descriptor::Dir::kWrite) {
    // Snapshot-then-copy: the payload lands eagerly (the issuing uthread's
    // buffer is guaranteed stable until completion by the runtime), and the
    // undo snapshot lets the crash injector roll back the un-transferred
    // suffix.
    pending.inflight_token =
        mem_->RegisterInflightWrite(desc.pmem_off, desc.size);
    std::memcpy(mem_->raw() + desc.pmem_off, desc.dram, desc.size);
  }
  const Sn sn = Sn::Make(id_, pending.cnt, pending.slot);
  pending.desc = std::move(desc);
  pending.enqueue_time = sim_->now();
  queue_.push_back(std::move(pending));
  OBS_EVENT_SAMPLED(obs::Track(obs::kProcDma, id_), "submit",
                    {"bytes", queue_.back().desc.size},
                    {"qdepth", queue_.size()});
  return sn;
}

Sn Channel::Submit(Descriptor desc) {
  ChargeSubmit(1);
  const Sn sn = Enqueue(std::move(desc));
  MaybeStart();
  return sn;
}

void Channel::SubmitBatch(std::span<Descriptor> descs, std::vector<Sn>* sns) {
  ChargeSubmit(descs.size());
  sns->reserve(sns->size() + descs.size());
  for (auto& d : descs) {
    sns->push_back(Enqueue(std::move(d)));
  }
  MaybeStart();
}

std::vector<Sn> Channel::SubmitBatch(std::vector<Descriptor> descs) {
  std::vector<Sn> sns;
  SubmitBatch(std::span<Descriptor>(descs), &sns);
  return sns;
}

bool Channel::IsComplete(Sn sn) const {
  return StateOf(sn) == SnState::kComplete;
}

SnState Channel::StateOf(Sn sn) const {
  if (sn.none()) {
    return SnState::kComplete;
  }
  if (sn.channel != id_) {
    // Comparing a foreign SN against this channel's record would return a
    // wrong durability answer silently (e.g. a log entry consulted after
    // channel remapping). This is unconditionally fatal — release builds
    // included — because the caller would otherwise act on garbage.
    std::fprintf(stderr,
                 "dma: Sn{channel=%u, seq=%llu} checked against channel %u\n",
                 sn.channel, static_cast<unsigned long long>(sn.seq), id_);
    std::abort();
  }
  if (record().CompletedSeq() >= sn.seq) {
    return SnState::kComplete;
  }
  // A halted channel makes no progress without software recovery, so every
  // uncovered SN behind the failed head is in the error state.
  return halted_ ? SnState::kError : SnState::kPending;
}

DmaResult Channel::WaitSn(Sn sn) {
  while (true) {
    const SnState s = StateOf(sn);
    if (s == SnState::kComplete) {
      return DmaResult::kOk;
    }
    if (s == SnState::kError) {
      return DmaResult::kError;
    }
    waiters_.emplace(sn.seq, sim_->current());
    sim_->Block();
  }
}

DmaResult Channel::WaitSnBusy(Sn sn) {
  while (true) {
    const SnState s = StateOf(sn);
    if (s == SnState::kComplete) {
      return DmaResult::kOk;
    }
    if (s == SnState::kError) {
      return DmaResult::kError;
    }
    waiters_.emplace(sn.seq, sim_->current());
    sim_->BlockHoldingCore();
  }
}

DmaResult Channel::WaitSnRecover(Sn sn, const RetryPolicy& policy) {
  while (true) {
    const SnState s = StateOf(sn);
    if (s == SnState::kComplete) {
      return DmaResult::kOk;
    }
    if (s == SnState::kError) {
      // This task drives recovery of the failed head (which may not be the
      // descriptor `sn` names — FIFO order means nothing behind the head
      // completes until the head is dealt with). Several waiters can race
      // here; the backoff re-checks halted_ so only one retry is issued.
      const int attempts = queue_.front().attempts;
      if (attempts >= policy.max_attempts) {
        CompleteHeadBySoftware();
        continue;
      }
      const uint64_t backoff = policy.backoff_ns << attempts;
      if (backoff > 0) {
        if (policy.busy) {
          sim_->Advance(backoff);
        } else {
          sim_->SleepFor(backoff);
        }
      }
      if (halted_) {
        RetryHead();
      }
      continue;
    }
    waiters_.emplace(sn.seq, sim_->current());
    if (policy.busy) {
      sim_->BlockHoldingCore();
    } else {
      sim_->Block();
    }
  }
}

void Channel::MaybeStart() {
  if (engine_busy_ || suspended_ || halted_ || queue_.empty()) {
    return;
  }
  engine_busy_ = true;
  uint64_t launch_delay = mem_->params().dma_startup_ns;
  if (Pending& head = queue_.front(); head.stall_ns > 0) {
    // Injected engine stall: the channel stops fetching for a while before
    // this descriptor starts. No error is raised; the queue just sits.
    stalls_injected_++;
    OBS_EVENT(obs::Track(obs::kProcDmaState, id_), "fault_stall",
              {"stall_ns", head.stall_ns}, {"qdepth", queue_.size()});
    launch_delay += head.stall_ns;
    head.stall_ns = 0;
  }
  // Engine-side fetch/launch gap, then the bandwidth flow.
  sim_->ScheduleAfter(launch_delay, [this] {
    if (suspended_) {
      engine_busy_ = false;  // Resume() will restart us
      return;
    }
    assert(!queue_.empty());
    Pending& head = queue_.front();
    head.started = true;
    head.transfer_start = sim_->now();
    const auto& p = mem_->params();
    const bool is_write = head.desc.dir == Descriptor::Dir::kWrite;
    if (!is_write) {
      // Reads materialize into the destination buffer at transfer start;
      // CoW + deferred free guarantee the source blocks stay immutable.
      std::memcpy(head.desc.dram, mem_->raw() + head.desc.pmem_off,
                  head.desc.size);
    }
    auto& flows = is_write ? mem_->write_flows() : mem_->read_flows();
    const double cap = is_write ? p.dma_write_chan_cap.Lookup(head.desc.size)
                                : p.dma_read_chan_cap.Lookup(head.desc.size);
    head.flow = flows.StartFlow(head.desc.size, cap, sim::FlowType::kDma,
                                [this] { OnTransferDone(); });
    if (is_write) {
      mem_->SetInflightFlow(head.inflight_token, &flows, head.flow);
    }
  });
}

void Channel::OnTransferDone() {
  assert(!queue_.empty());
  if (queue_.front().planned_errors > 0) {
    FailHead();
    return;
  }
  Pending done = std::move(queue_.front());
  queue_.pop_front();

  if (auto* t = obs::Get(); t != nullptr && t->Sample()) {
    const bool is_write = done.desc.dir == Descriptor::Dir::kWrite;
    t->CompleteSpan(obs::Track(obs::kProcDma, id_),
                    is_write ? "xfer_write" : "xfer_read",
                    done.transfer_start, sim_->now(),
                    {{"bytes", done.desc.size},
                     {"queued_ns", done.transfer_start - done.enqueue_time},
                     {"qdepth", queue_.size()}});
    t->Counter(obs::Track(obs::kProcDma, id_), "qdepth", sim_->now(),
               queue_.size());
  }

  // Post-descriptor housekeeping keeps the channel busy for a
  // direction-dependent fraction of the transfer time (see MediaParams);
  // the requester already observes completion now.
  const auto& p = mem_->params();
  const double factor = done.desc.dir == Descriptor::Dir::kRead
                            ? p.dma_read_cooldown_factor
                            : p.dma_write_cooldown_factor;
  const uint64_t cooldown = static_cast<uint64_t>(
      static_cast<double>(sim_->now() - done.transfer_start) * factor);
  if (cooldown > 0) {
    sim_->ScheduleAfter(cooldown, [this] {
      engine_busy_ = false;
      MaybeStart();
    });
  } else {
    engine_busy_ = false;
  }

  if (done.torn) {
    // Injected torn record: the transfer finished (the completion interrupt
    // below still fires) but the completion-buffer update was not durable.
    // Keep the true value as an in-DRAM shadow only — waiters stay parked,
    // because waking them would claim durability the record cannot back.
    // The next completion re-covers it; a driver scrub handles the tail.
    record_stale_ = true;
    shadow_addr_ = done.slot;
    shadow_cnt_ = done.cnt;
    torn_records_++;
    OBS_EVENT(obs::Track(obs::kProcDmaState, id_), "torn_record",
              {"slot", done.slot}, {"cnt", done.cnt});
    if (repair_event_ != 0) {
      sim_->Cancel(repair_event_);
    }
    repair_event_ = sim_->ScheduleAfter(
        injector_ != nullptr ? injector_->plan().torn_repair_ns : 50'000,
        [this] { RepairRecord(); });
  } else {
    CommitRecord(done.slot, done.cnt);
  }
  epoch_bytes_ += done.desc.size;
  bytes_completed_ += done.desc.size;
  descriptors_completed_++;
  if (done.desc.dir == Descriptor::Dir::kWrite) {
    mem_->CompleteInflightWrite(done.inflight_token);
  }

  // Wake SN waiters now covered by the completion record.
  WakeCovered();
  if (done.desc.on_complete) {
    done.desc.on_complete();
  }
  MaybeStart();
}

void Channel::FailHead() {
  Pending& head = queue_.front();
  head.planned_errors--;
  transfer_errors_++;
  const bool is_write = head.desc.dir == Descriptor::Dir::kWrite;
  if (auto* t = obs::Get()) {
    t->CompleteSpan(obs::Track(obs::kProcDma, id_), "xfer_error",
                    head.transfer_start, sim_->now(),
                    {{"bytes", head.desc.size},
                     {"attempt", static_cast<uint64_t>(head.attempts)}});
  }
  OBS_EVENT(obs::Track(obs::kProcDmaState, id_), "xfer_error",
            {"bytes", head.desc.size}, {"qdepth", queue_.size()});
  // An aborted transfer leaves nothing durable: roll the destination back
  // to its pre-write contents and retire the inflight-tracking entry (the
  // rolled-back range is stable again).
  if (is_write) {
    if (!head.undo.empty()) {
      std::memcpy(mem_->raw() + head.desc.pmem_off, head.undo.data(),
                  head.desc.size);
    }
    mem_->CompleteInflightWrite(head.inflight_token);
    head.inflight_token = 0;
  }
  head.started = false;
  head.flow = 0;
  halted_ = true;
  engine_busy_ = false;
  // The hardware reports the failure in the completion record's status bits
  // (persistent, like the rest of the record).
  const CompletionRecord cur = record();
  PersistRecord(cur.addr | CompletionRecord::kErrorBit, cur.cnt);
  // Every waiter is queued behind the failed head; wake them all so one can
  // drive recovery (WaitSnRecover) or observe the error (plain waits).
  while (!waiters_.empty()) {
    sim::Task* t = waiters_.begin()->second;
    waiters_.erase(waiters_.begin());
    sim_->Wake(t);
  }
}

void Channel::RetryHead() {
  assert(halted_ && !queue_.empty());
  Pending& head = queue_.front();
  halted_ = false;
  head.attempts++;
  retries_++;
  if (head.desc.dir == Descriptor::Dir::kWrite) {
    // Re-stage the payload (the error rollback restored the old contents;
    // the submitter's buffer is stable until completion by contract).
    head.inflight_token =
        mem_->RegisterInflightWrite(head.desc.pmem_off, head.desc.size);
    std::memcpy(mem_->raw() + head.desc.pmem_off, head.desc.dram,
                head.desc.size);
  }
  // Software restart: doorbell cost for the re-submission, and the record's
  // error status is acknowledged/cleared.
  ChargeSubmit(1);
  const CompletionRecord cur = record();
  PersistRecord(cur.addr & ~CompletionRecord::kErrorBit, cur.cnt);
  OBS_EVENT(obs::Track(obs::kProcDmaState, id_), "retry",
            {"attempt", static_cast<uint64_t>(head.attempts)},
            {"bytes", head.desc.size});
  MaybeStart();
}

void Channel::CompleteHeadBySoftware() {
  if (!halted_ || queue_.empty()) {
    return;
  }
  assert(sim_->in_task());
  Pending done = std::move(queue_.front());
  queue_.pop_front();
  halted_ = false;
  software_completions_++;
  OBS_EVENT(obs::Track(obs::kProcDmaState, id_), "sw_complete",
            {"bytes", done.desc.size},
            {"attempts", static_cast<uint64_t>(done.attempts)});
  // Graceful degradation: the waiting task moves the bytes itself through
  // the CPU path (synchronous, core held, persist barrier at the end).
  if (done.desc.dir == Descriptor::Dir::kWrite) {
    mem_->CpuWrite(done.desc.pmem_off, done.desc.dram, done.desc.size);
  } else {
    mem_->CpuRead(done.desc.dram, done.desc.pmem_off, done.desc.size);
  }
  // Only now — with the data durable — may the record advance over its SN;
  // the watermark must never cover bytes that could still be lost.
  CommitRecord(done.slot, done.cnt);
  bytes_completed_ += done.desc.size;
  descriptors_completed_++;
  WakeCovered();
  if (done.desc.on_complete) {
    done.desc.on_complete();
  }
  MaybeStart();
}

void Channel::RepairRecord() {
  repair_event_ = 0;
  if (!record_stale_) {
    return;
  }
  // Driver completion-timeout scrub: the hardware reached (shadow_addr_,
  // shadow_cnt_) but the persistent record missed the update; rewrite it,
  // preserving a pending error status.
  record_stale_ = false;
  record_repairs_++;
  uint64_t addr = shadow_addr_;
  if (halted_) {
    addr |= CompletionRecord::kErrorBit;
  }
  PersistRecord(addr, shadow_cnt_);
  OBS_EVENT(obs::Track(obs::kProcDmaState, id_), "record_repair",
            {"slot", shadow_addr_}, {"cnt", shadow_cnt_});
  WakeCovered();
}

void Channel::Suspend() {
  if (suspended_) {
    return;
  }
  suspended_ = true;
  suspend_start_ = sim_->now();
  if (sim_->in_task()) {
    sim_->Advance(mem_->params().chancmd_ns);
  }
  if (!queue_.empty() && queue_.front().started) {
    Pending& head = queue_.front();
    const bool is_write = head.desc.dir == Descriptor::Dir::kWrite;
    auto& flows = is_write ? mem_->write_flows() : mem_->read_flows();
    const double progress = flows.Progress(head.flow);
    if (progress < mem_->params().suspend_restart_threshold) {
      // Restart semantics: abort the transfer; it re-runs from scratch on
      // resume. A crash in between rolls the destination back fully.
      flows.CancelFlow(head.flow);
      head.started = false;
      head.flow = 0;
      if (is_write) {
        mem_->SetInflightFlow(head.inflight_token, nullptr, 0);
      }
      engine_busy_ = false;
      OBS_EVENT(obs::Track(obs::kProcDmaState, id_), "xfer_restart",
                {"bytes", head.desc.size});
    }
    // Otherwise the in-flight transfer runs to completion; no new descriptor
    // starts while suspended.
  }
}

void Channel::Resume() {
  if (!suspended_) {
    return;
  }
  suspended_ = false;
  if (sim_->in_task()) {
    sim_->Advance(mem_->params().chancmd_ns);
  }
  // The CHANCMD suspension window is control-plane activity (one per epoch
  // at most), so it is always recorded, never sampled.
  if (auto* t = obs::Get()) {
    t->CompleteSpan(obs::Track(obs::kProcDmaState, id_), "suspended",
                    suspend_start_, sim_->now());
  }
  MaybeStart();
}

uint64_t Channel::TakeEpochBytes() {
  const uint64_t bytes = epoch_bytes_;
  epoch_bytes_ = 0;
  return bytes;
}

}  // namespace easyio::dma
