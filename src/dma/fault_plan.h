// Deterministic DMA fault injection.
//
// Real I/OAT / DSA deployments see hardware misbehave in three ways the
// completion-record protocol (§4.2) must survive:
//
//   * transfer errors  - a descriptor aborts partway; the channel halts with
//     an error status and nothing it was moving is durable. Software reads
//     the error, fixes the cause and restarts the channel (re-executing the
//     failed descriptor), or gives up and moves the bytes itself.
//   * channel stalls   - the engine stops fetching descriptors for a while
//     (firmware hiccup, PCIe backpressure). No error is raised; the queue
//     simply does not drain.
//   * torn completion-record updates - the hardware finished a transfer but
//     its completion-buffer write was not durable at the crash point, so a
//     crash image shows a *stale* record. The watermark self-heals at the
//     next completion; a driver-side scrub repairs the tail case.
//
// A FaultPlan is a fully deterministic schedule of such faults keyed by
// (channel, per-channel descriptor ordinal): the Nth descriptor ever
// enqueued on channel C. Seeded plans (Random) and hand-written plans replay
// identically run over run, which is what lets the crash harness sample
// barriers *inside* an error/retry window and still compare against the
// model. A FaultInjector is the runtime consumption state for one engine;
// with no injector attached the DMA layer behaves exactly as before, to the
// byte, so figure outputs are unchanged when injection is off.

#ifndef EASYIO_DMA_FAULT_PLAN_H_
#define EASYIO_DMA_FAULT_PLAN_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace easyio::dma {

struct FaultPlan {
  // The descriptor at `ordinal` on `channel` raises a transfer error `count`
  // times: the first `count` executions (initial + retries) abort with the
  // destination rolled back; execution count+1 succeeds.
  struct TransferError {
    uint8_t channel = 0;
    uint64_t ordinal = 0;
    int count = 1;
  };
  // The engine stops fetching for `stall_ns` right before starting the
  // descriptor at `ordinal` on `channel`.
  struct Stall {
    uint8_t channel = 0;
    uint64_t ordinal = 0;
    uint64_t stall_ns = 0;
  };
  // The completion-record update for the descriptor at `ordinal` on
  // `channel` is lost (torn at the persistence boundary): the persistent
  // record keeps its stale value until the next completion or the scheduled
  // driver scrub (torn_repair_ns later) rewrites it.
  struct TornRecord {
    uint8_t channel = 0;
    uint64_t ordinal = 0;
  };

  std::vector<TransferError> errors;
  std::vector<Stall> stalls;
  std::vector<TornRecord> torn;
  // Driver completion-timeout scrub: how long a torn record stays stale
  // before the channel's self-repair event rewrites it.
  uint64_t torn_repair_ns = 50'000;

  bool empty() const {
    return errors.empty() && stalls.empty() && torn.empty();
  }

  // Seeded random plan: n_errors/n_stalls/n_torn faults spread uniformly
  // over channels [0, num_channels) and ordinals [0, ordinal_range).
  // Deterministic in (seed, shape) — the same arguments always produce the
  // same plan.
  static FaultPlan Random(uint64_t seed, int num_channels, int n_errors,
                          int n_stalls, int n_torn, uint64_t ordinal_range,
                          uint64_t stall_ns = 100'000);
};

// Runtime consumption state of one FaultPlan for one DmaEngine. Channels ask
// it, per descriptor ordinal, whether a fault is scheduled; each scheduled
// fault fires exactly once. Single-simulation object, not thread-safe (the
// sim kernel is single-threaded).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  // Number of times the descriptor at (channel, ordinal) should raise a
  // transfer error (0 = none). Consumed: later calls return 0.
  int TakeTransferError(uint8_t channel, uint64_t ordinal);
  // Stall duration scheduled before (channel, ordinal) starts (0 = none).
  // Consumed.
  uint64_t TakeStall(uint8_t channel, uint64_t ordinal);
  // True if the completion-record update of (channel, ordinal) is torn.
  // Consumed.
  bool TakeTornRecord(uint8_t channel, uint64_t ordinal);

  // How many scheduled faults have been consumed so far (fired or armed).
  uint64_t errors_armed() const { return errors_armed_; }
  uint64_t stalls_armed() const { return stalls_armed_; }
  uint64_t torn_armed() const { return torn_armed_; }

 private:
  using Key = std::pair<uint8_t, uint64_t>;  // (channel, ordinal)

  FaultPlan plan_;
  std::map<Key, int> errors_;
  std::map<Key, uint64_t> stalls_;
  std::map<Key, bool> torn_;
  uint64_t errors_armed_ = 0;
  uint64_t stalls_armed_ = 0;
  uint64_t torn_armed_ = 0;
};

}  // namespace easyio::dma

#endif  // EASYIO_DMA_FAULT_PLAN_H_
