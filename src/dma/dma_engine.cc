#include "src/dma/dma_engine.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace easyio::dma {

DmaEngine::DmaEngine(pmem::SlowMemory* mem, uint64_t record_region_off,
                     int num_channels) {
  assert(num_channels > 0 && num_channels <= 256);
  assert(record_region_off + RecordRegionSize(num_channels) <= mem->size());
  channels_.reserve(static_cast<size_t>(num_channels));
  for (int i = 0; i < num_channels; ++i) {
    channels_.push_back(std::make_unique<Channel>(
        mem, static_cast<uint8_t>(i),
        record_region_off + static_cast<uint64_t>(i) *
                                sizeof(CompletionRecord)));
  }
}

Channel& DmaEngine::ChannelFor(Sn sn) {
  if (sn.channel >= channels_.size()) {
    std::fprintf(stderr,
                 "dma: Sn{channel=%u, seq=%llu} names a channel outside this "
                 "engine (%zu channels)\n",
                 sn.channel, static_cast<unsigned long long>(sn.seq),
                 channels_.size());
    std::abort();
  }
  return *channels_[sn.channel];
}

const Channel& DmaEngine::ChannelFor(Sn sn) const {
  return const_cast<DmaEngine*>(this)->ChannelFor(sn);
}

void DmaEngine::AttachFaultInjector(FaultInjector* injector) {
  for (auto& ch : channels_) {
    ch->set_fault_injector(injector);
  }
}

uint64_t DmaEngine::CompletedSeqInImage(std::span<const std::byte> image,
                                        uint64_t record_region_off,
                                        int channel) {
  CompletionRecord rec;
  std::memcpy(&rec,
              image.data() + record_region_off +
                  static_cast<uint64_t>(channel) * sizeof(CompletionRecord),
              sizeof(rec));
  return rec.CompletedSeq();
}

}  // namespace easyio::dma
