// Calibration tables for the simulated slow-memory device (Optane DCPMM) and
// the on-chip DMA engine (I/OAT), encoding the measured curves of the paper's
// §2.1-2.2 (Figs 1-4) and §6.1 (peak bandwidths).
//
// All of the paper's conclusions are *shape* statements (who wins, where the
// crossover falls); the parameters below are the single place where those
// shapes are encoded, so EXPERIMENTS.md can trace every reproduced curve back
// to a line here.

#ifndef EASYIO_PMEM_MEDIA_PARAMS_H_
#define EASYIO_PMEM_MEDIA_PARAMS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace easyio::pmem {

// Piecewise log2(size)-linear curve over {4K, 8K, 16K, 32K, 64K}; clamped
// outside the range. Used for per-stream bandwidth caps that depend on I/O
// size (small I/Os cannot reach streaming bandwidth).
struct SizeCurve {
  double at_4k;
  double at_8k;
  double at_16k;
  double at_32k;
  double at_64k;

  double Lookup(size_t io_size) const {
    const double pts[5] = {at_4k, at_8k, at_16k, at_32k, at_64k};
    if (io_size <= 4096) {
      return at_4k;
    }
    if (io_size >= 65536) {
      return at_64k;
    }
    const double idx = std::log2(static_cast<double>(io_size)) - 12.0;
    const int lo = std::clamp(static_cast<int>(idx), 0, 3);
    const double frac = idx - lo;
    return pts[lo] + (pts[lo + 1] - pts[lo]) * frac;
  }
};

struct MediaParams {
  // ---- Device ceilings (GiB/s) ----
  double read_total_gbps = 37.6;   // §6.1: all 6 DIMMs, both sockets
  double write_total_gbps = 13.2;

  // ---- CPU (load/store) path ----
  // Per-stream (single core) caps by I/O size.
  SizeCurve cpu_read_cap{2.6, 3.1, 3.6, 4.1, 4.6};
  SizeCurve cpu_write_cap{2.6, 3.4, 4.2, 4.8, 5.2};
  // Optane's CPU-write behaviour has two regimes (Fig 2 + Fig 9):
  //  * concave ramp-up — the XPBuffer limits aggregate CPU-write bandwidth
  //    at low concurrency, so aggregate(n) = total * n / (n + concavity)
  //    (a single stream sees ~total/ (1+concavity); full bandwidth needs
  //    many writers — why NOVA's 16K writes peak only at 16 cores);
  //  * collapse — beyond `degrade_start` writers the total *declines*
  //    toward `degrade_floor` (why NOVA's throughput drops at high core
  //    counts).
  double cpu_write_concavity = 2.14;
  int cpu_write_degrade_start = 18;
  double cpu_write_degrade_per_stream = 0.05;
  double cpu_write_degrade_floor = 0.45;

  // ---- DMA engine ----
  int dma_engines = 2;            // one per socket
  int channels_per_engine = 8;    // I/OAT channels per socket
  // Per-channel caps by I/O size (GiB/s). Reads are the weak side of I/OAT
  // (§2.2 takeaway 2): a single channel reads at ~3 GiB/s max.
  SizeCurve dma_write_chan_cap{2.4, 3.9, 6.0, 6.5, 6.8};
  SizeCurve dma_read_chan_cap{2.2, 3.4, 4.6, 5.6, 6.5};
  // After each descriptor the channel stays busy for an extra
  // `elapsed * cooldown_factor` before fetching the next one. Reads pay a
  // full extra transfer time (I/OAT's read path round-trips), which is what
  // makes single-shot DMA reads fast (Fig 8) while sustained one-channel
  // read bandwidth stays ~3 GiB/s (Figs 2-3).
  double dma_read_cooldown_factor = 1.0;
  double dma_write_cooldown_factor = 0.0;

  // Cross-direction interference on the media (Fig 4: bulk writes more than
  // double foreground read latency): the fraction of read capacity lost at
  // full write utilization, and vice versa.
  double read_loss_at_full_write = 0.55;
  double write_loss_at_full_read = 0.15;
  // Aggregate DMA caps per engine given n active channels on that engine.
  // Writes *shrink* as channels are added (Fig 3 left): base - slope*(n-1).
  double dma_write_agg_base = 6.8;
  double dma_write_agg_slope = 0.45;
  double dma_write_agg_floor = 2.5;
  // Reads never decline and plateau at ~6 GiB/s per engine (Fig 3 right).
  double dma_read_agg = 6.0;

  // Descriptor costs. `submit` is CPU-side (prepare + MMIO doorbell);
  // batching pays `submit` once plus `batch_extra` per additional
  // descriptor. `startup` is the engine-side gap between descriptors in a
  // channel (fetch + launch), which is what makes small DMA I/Os lose to
  // memcpy (§2.2 takeaway 3).
  uint64_t dma_submit_ns = 600;
  uint64_t dma_batch_extra_ns = 150;
  uint64_t dma_startup_ns = 500;
  // CHANCMD suspend/resume cost (§4.4: 74 ns).
  uint64_t chancmd_ns = 74;
  // A suspended in-flight descriptor restarts from scratch on resume if it
  // was less than this fraction complete (§4.4 restart semantics).
  double suspend_restart_threshold = 0.5;

  // ---- Software path costs (Fig 1 breakdown) ----
  uint64_t syscall_enter_ns = 700;  // syscall & VFS, charged on entry...
  uint64_t syscall_exit_ns = 500;   // ...and on exit
  uint64_t index_base_ns = 300;     // in-DRAM radix lookup
  uint64_t index_per_page_ns = 40;
  uint64_t meta_write_base_ns = 180;   // one persisted store + fence
  uint64_t meta_write_per_cl_ns = 60;  // per 64B cacheline
  uint64_t meta_write_fixed_ns = 800;  // per-write inode/VFS bookkeeping
  uint64_t alloc_per_page_ns = 140;    // allocator bookkeeping per 4K page
  uint64_t uthread_switch_ns = 120;    // userspace context switch (§2.3)

  // ---- Derived helpers ----
  double CpuWriteAggregate(int n_streams) const {
    if (n_streams <= 0) {
      return 0;
    }
    const double n = static_cast<double>(n_streams);
    const double ramp = n / (n + cpu_write_concavity);
    double degrade = 1.0;
    if (n_streams > cpu_write_degrade_start) {
      degrade -= cpu_write_degrade_per_stream *
                 (n_streams - cpu_write_degrade_start);
    }
    degrade = std::max(degrade, cpu_write_degrade_floor);
    return write_total_gbps * ramp * degrade;
  }

  double CpuReadAggregate(int n_streams) const {
    return n_streams <= 0 ? 0 : read_total_gbps;
  }

  // Aggregate DMA capacity with n channels active machine-wide, assuming the
  // channel manager spreads them across engines.
  double DmaWriteAggregate(int n_channels) const {
    if (n_channels <= 0) {
      return 0;
    }
    const int engines = std::min(dma_engines, n_channels);
    const int per_engine = (n_channels + engines - 1) / engines;
    const double per = std::max(
        dma_write_agg_floor,
        dma_write_agg_base - dma_write_agg_slope * (per_engine - 1));
    return per * engines;
  }

  double DmaReadAggregate(int n_channels) const {
    if (n_channels <= 0) {
      return 0;
    }
    return dma_read_agg * std::min(dma_engines, n_channels);
  }

  int total_channels() const { return dma_engines * channels_per_engine; }

  // The testbed of §2.2: a single NUMA node with 3 of the 6 DCPMMs.
  static MediaParams OneNode() {
    MediaParams p;
    p.read_total_gbps = 15.5;
    p.write_total_gbps = 6.2;
    p.cpu_read_cap = SizeCurve{2.2, 2.7, 3.2, 3.7, 4.2};
    p.cpu_write_cap = SizeCurve{2.0, 2.5, 3.0, 3.3, 3.6};
    p.cpu_write_concavity = 0.72;  // agg(1) ~= the 64K per-stream cap
    p.cpu_write_degrade_start = 5;
    p.dma_engines = 1;
    return p;
  }

  // The full evaluation testbed of §6.1 (both sockets, 6 DCPMMs).
  static MediaParams TwoNode() { return MediaParams{}; }

  // A DSA-flavoured preset for the paper's §5 discussion: faster small-I/O
  // handling and stronger reads than I/OAT.
  static MediaParams Dsa() {
    MediaParams p;
    p.dma_submit_ns = 250;  // SVM: no pinning, direct virtual addresses
    p.dma_batch_extra_ns = 60;
    p.dma_startup_ns = 200;
    p.dma_write_chan_cap = SizeCurve{4.0, 5.5, 7.0, 7.6, 8.0};
    p.dma_read_chan_cap = SizeCurve{3.0, 4.2, 5.4, 6.2, 6.6};
    p.dma_read_agg = 12.0;
    p.dma_write_agg_base = 8.2;
    return p;
  }
};

}  // namespace easyio::pmem

#endif  // EASYIO_PMEM_MEDIA_PARAMS_H_
