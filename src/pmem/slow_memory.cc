#include "src/pmem/slow_memory.h"

#include <sys/mman.h>

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/common/units.h"

namespace easyio::pmem {

ZeroMappedBytes::ZeroMappedBytes(size_t size) : size_(size) {
  if (size == 0) {
    return;
  }
  void* p = mmap(nullptr, size, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    std::perror("easyio: mmap of device backing store failed");
    std::abort();
  }
  data_ = static_cast<std::byte*>(p);
}

ZeroMappedBytes::~ZeroMappedBytes() {
  if (data_ != nullptr) {
    munmap(data_, size_);
  }
}

SlowMemory::SlowMemory(sim::Simulation* sim, const MediaParams& params,
                       size_t size)
    : sim_(sim), params_(params), data_(size) {
  // Cross-direction interference (Fig 4): each direction's capacities are
  // derated by the other direction's current utilization.
  sim::CapacityModel read_model;
  read_model.cpu_aggregate = [this](int n) {
    return params_.CpuReadAggregate(n) * ReadDerate();
  };
  read_model.dma_aggregate = [this](int n) {
    return params_.DmaReadAggregate(n) * ReadDerate();
  };
  read_model.total = params_.read_total_gbps;
  read_flows_ = std::make_unique<sim::FlowResource>(sim, "pmem-read",
                                                    std::move(read_model));

  sim::CapacityModel write_model;
  write_model.cpu_aggregate = [this](int n) {
    return params_.CpuWriteAggregate(n) * WriteDerate();
  };
  write_model.dma_aggregate = [this](int n) {
    return params_.DmaWriteAggregate(n) * WriteDerate();
  };
  write_model.total = params_.write_total_gbps;
  write_flows_ = std::make_unique<sim::FlowResource>(sim, "pmem-write",
                                                     std::move(write_model));

  // When one direction's aggregate rate moves materially, re-derive the
  // other's rates (damped + coalesced to avoid ping-pong).
  write_flows_->set_rates_changed_hook([this] { CrossPoke(read_flows_.get(),
                                                          &read_poke_util_,
                                                          write_flows_.get(),
                                                          params_.write_total_gbps); });
  read_flows_->set_rates_changed_hook([this] { CrossPoke(write_flows_.get(),
                                                         &write_poke_util_,
                                                         read_flows_.get(),
                                                         params_.read_total_gbps); });
}

double SlowMemory::ReadDerate() const {
  const double write_util =
      write_flows_ == nullptr
          ? 0.0
          : write_flows_->total_rate_bps() /
                (params_.write_total_gbps * kGiB);
  return 1.0 - params_.read_loss_at_full_write *
                   std::min(1.0, std::max(0.0, write_util));
}

double SlowMemory::WriteDerate() const {
  const double read_util =
      read_flows_ == nullptr
          ? 0.0
          : read_flows_->total_rate_bps() / (params_.read_total_gbps * kGiB);
  return 1.0 - params_.write_loss_at_full_read *
                   std::min(1.0, std::max(0.0, read_util));
}

void SlowMemory::CrossPoke(sim::FlowResource* target, double* last_util,
                           sim::FlowResource* source, double source_total) {
  const double util = source->total_rate_bps() / (source_total * kGiB);
  if (std::abs(util - *last_util) < 0.02 || poke_pending_) {
    return;
  }
  *last_util = util;
  poke_pending_ = true;
  sim_->ScheduleAt(sim_->now(), [this, target] {
    poke_pending_ = false;
    target->Poke();
  });
}

void SlowMemory::CpuWrite(uint64_t dst_off, const void* src, size_t n) {
  assert(dst_off + n <= data_.size());
  assert(sim_->in_task());
  const uint64_t token = RegisterInflightWrite(dst_off, n);  // undo snapshot
  std::memcpy(data_.data() + dst_off, src, n);  // eager; durable at completion
  sim::Task* task = sim_->current();
  const auto flow = write_flows_->StartFlow(
      n, params_.cpu_write_cap.Lookup(n), sim::FlowType::kCpu,
      [this, token, task] {
        CompleteInflightWrite(token);
        sim_->Wake(task);
      });
  SetInflightFlow(token, write_flows_.get(), flow);
  sim_->BlockHoldingCore();
  PersistBarrier();
}

void SlowMemory::CpuRead(void* dst, uint64_t src_off, size_t n) {
  assert(src_off + n <= data_.size());
  assert(sim_->in_task());
  std::memcpy(dst, data_.data() + src_off, n);
  sim::Task* task = sim_->current();
  read_flows_->StartFlow(n, params_.cpu_read_cap.Lookup(n),
                         sim::FlowType::kCpu, [this, task] {
                           sim_->Wake(task);
                         });
  sim_->BlockHoldingCore();
}

uint64_t SlowMemory::MetaCostNs(size_t n) const {
  const uint64_t cachelines = (n + 63) / 64;
  return params_.meta_write_base_ns + cachelines * params_.meta_write_per_cl_ns;
}

void SlowMemory::MetaWrite(uint64_t dst_off, const void* src, size_t n) {
  assert(dst_off + n <= data_.size());
  std::memcpy(data_.data() + dst_off, src, n);
  if (sim_->in_task()) {
    sim_->Advance(MetaCostNs(n));
  }
  PersistBarrier();
}

void SlowMemory::MetaPersist(uint64_t dst_off, size_t n) {
  assert(dst_off + n <= data_.size());
  if (sim_->in_task()) {
    sim_->Advance(MetaCostNs(n));
  }
  PersistBarrier();
}

void SlowMemory::PersistBarrier() {
  barriers_++;
  if (barrier_hook_) {
    barrier_hook_(barriers_);
  }
}

uint64_t SlowMemory::RegisterInflightWrite(uint64_t dst_off, size_t n) {
  if (!crash_tracking_) {
    return 0;
  }
  Inflight entry;
  entry.dst_off = dst_off;
  entry.n = n;
  // Callers must register *before* performing the eager memcpy so the undo
  // snapshot preserves the pre-write contents.
  entry.undo.resize(n);
  std::memcpy(entry.undo.data(), data_.data() + dst_off, n);
  const uint64_t token = next_token_++;
  inflight_.emplace(token, std::move(entry));
  return token;
}

void SlowMemory::SetInflightFlow(uint64_t token, sim::FlowResource* res,
                                 sim::FlowResource::FlowId flow) {
  if (token == 0) {
    return;
  }
  auto it = inflight_.find(token);
  assert(it != inflight_.end());
  it->second.res = res;
  it->second.flow = flow;
}

void SlowMemory::CompleteInflightWrite(uint64_t token) {
  if (token == 0) {
    return;
  }
  inflight_.erase(token);
}

std::vector<std::byte> SlowMemory::CrashImage() const {
  std::vector<std::byte> image(data_.data(), data_.data() + data_.size());
  for (const auto& [token, entry] : inflight_) {
    double progress = 0.0;
    if (entry.res != nullptr) {
      progress = entry.res->Progress(entry.flow);
    }
    // Durable prefix in whole cachelines; the rest rolls back.
    const size_t durable =
        (static_cast<size_t>(progress * static_cast<double>(entry.n)) / 64) *
        64;
    if (durable < entry.n) {
      std::memcpy(image.data() + entry.dst_off + durable,
                  entry.undo.data() + durable, entry.n - durable);
    }
  }
  return image;
}

void SlowMemory::LoadImage(const std::vector<std::byte>& image) {
  assert(image.size() == data_.size());
  std::memcpy(data_.data(), image.data(), image.size());
}

}  // namespace easyio::pmem
