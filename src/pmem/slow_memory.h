// SlowMemory: the simulated slow-memory device (Optane DCPMM array).
//
// A flat byte array plus two FlowResources (read and write direction) that
// arbitrate bandwidth between concurrent CPU streams and DMA channels using
// the calibration in MediaParams. Data movement is real — actual bytes land
// in the array — but its *timing* is virtual, and writes are attributed
// durability at their modeled completion.
//
// Crash-consistency support: persist barriers (fence boundaries) are counted
// and exposed via a hook so the CrashMonkey-style harness can stop the
// simulation at an exact barrier; in-flight write transfers are tracked with
// undo snapshots so a crash image shows only the prefix that had durably
// landed.

#ifndef EASYIO_PMEM_SLOW_MEMORY_H_
#define EASYIO_PMEM_SLOW_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/pmem/media_params.h"
#include "src/sim/flow_resource.h"
#include "src/sim/simulation.h"

namespace easyio::pmem {

// Demand-zero backing store for the modeled device. Semantically identical
// to a value-initialized std::vector<std::byte> (every byte reads as zero
// until written) but backed by an anonymous mmap, so constructing a 512 MiB
// device costs a page-table entry, not a half-gigabyte memset — and teardown
// is one munmap. Benchmarks pay for the pages the workload actually touches,
// nothing more.
class ZeroMappedBytes {
 public:
  explicit ZeroMappedBytes(size_t size);
  ~ZeroMappedBytes();

  ZeroMappedBytes(const ZeroMappedBytes&) = delete;
  ZeroMappedBytes& operator=(const ZeroMappedBytes&) = delete;

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  std::byte* data_ = nullptr;
  size_t size_ = 0;
};

class SlowMemory {
 public:
  SlowMemory(sim::Simulation* sim, const MediaParams& params, size_t size);

  SlowMemory(const SlowMemory&) = delete;
  SlowMemory& operator=(const SlowMemory&) = delete;

  size_t size() const { return data_.size(); }
  const MediaParams& params() const { return params_; }
  sim::Simulation* simulation() const { return sim_; }

  // Raw typed access to the persistent array (zero simulated cost; callers
  // charge their own modeled costs).
  template <typename T>
  T* As(uint64_t offset) {
    return reinterpret_cast<T*>(data_.data() + offset);
  }
  template <typename T>
  const T* As(uint64_t offset) const {
    return reinterpret_cast<const T*>(data_.data() + offset);
  }
  std::byte* raw() { return data_.data(); }

  // ---- CPU data path (must be called from inside a task) ----
  // Synchronous copies through load/store: the calling task's core is held
  // busy for the whole (contention-dependent) duration.
  void CpuWrite(uint64_t dst_off, const void* src, size_t n);
  void CpuRead(void* dst, uint64_t src_off, size_t n);

  // ---- Metadata path ----
  // Small persisted store (store + clwb + fence). Performs the real copy,
  // charges the modeled latency, and marks a persist barrier.
  void MetaWrite(uint64_t dst_off, const void* src, size_t n);
  // Persist already-written bytes (for in-place structure updates).
  void MetaPersist(uint64_t dst_off, size_t n);
  uint64_t MetaCostNs(size_t n) const;

  // Marks a legal crash point (everything modeled-durable before it survives,
  // nothing after).
  void PersistBarrier();
  uint64_t barrier_count() const { return barriers_; }
  // Hook fired after each barrier with its index (1-based); the crash harness
  // uses it to stop the run at a chosen barrier.
  void set_barrier_hook(std::function<void(uint64_t)> hook) {
    barrier_hook_ = std::move(hook);
  }

  // ---- Flow plumbing (used by the DMA engine and CpuWrite/CpuRead) ----
  sim::FlowResource& read_flows() { return *read_flows_; }
  sim::FlowResource& write_flows() { return *write_flows_; }

  // ---- Crash tracking ----
  // When enabled, every write transfer snapshots the destination so a crash
  // image can be produced with only the completed prefix applied.
  void EnableCrashTracking() { crash_tracking_ = true; }
  bool crash_tracking() const { return crash_tracking_; }

  // Registers an in-flight write of `n` bytes at `dst_off` whose real memcpy
  // has already been performed eagerly. Returns a token (0 if tracking off).
  uint64_t RegisterInflightWrite(uint64_t dst_off, size_t n);
  // Associates the flow so progress can be queried at crash time.
  void SetInflightFlow(uint64_t token, sim::FlowResource* res,
                       sim::FlowResource::FlowId flow);
  void CompleteInflightWrite(uint64_t token);

  // Produces the post-crash device image: current contents with every
  // in-flight write rolled back to its completed prefix (64B granularity).
  std::vector<std::byte> CrashImage() const;

  // Overwrites the device contents (used to mount a recovered image).
  void LoadImage(const std::vector<std::byte>& image);

 private:
  double ReadDerate() const;
  double WriteDerate() const;
  void CrossPoke(sim::FlowResource* target, double* last_util,
                 sim::FlowResource* source, double source_total);

  struct Inflight {
    uint64_t dst_off;
    size_t n;
    std::vector<std::byte> undo;
    sim::FlowResource* res = nullptr;
    sim::FlowResource::FlowId flow = 0;
  };

  sim::Simulation* sim_;
  MediaParams params_;
  ZeroMappedBytes data_;
  std::unique_ptr<sim::FlowResource> read_flows_;
  std::unique_ptr<sim::FlowResource> write_flows_;
  uint64_t barriers_ = 0;
  std::function<void(uint64_t)> barrier_hook_;
  bool crash_tracking_ = false;
  uint64_t next_token_ = 1;
  std::unordered_map<uint64_t, Inflight> inflight_;
  double read_poke_util_ = 0;
  double write_poke_util_ = 0;
  bool poke_pending_ = false;
};

}  // namespace easyio::pmem

#endif  // EASYIO_PMEM_SLOW_MEMORY_H_
