// CrashMonkey-style black-box crash-consistency testing (paper §6.5,
// [OSDI'18]).
//
// A workload is a deterministic sequence of atomic filesystem operations
// plus a host-side *expected-state model* (a tiny in-memory filesystem with
// hard-link aliasing). The harness:
//
//   1. runs the workload once to count persist barriers (legal crash
//      points — every fence boundary, including DMA completion-record
//      updates);
//   2. for each sampled crash point k, re-runs the workload from scratch
//      deterministically, stops the simulation exactly at barrier k,
//      produces the crash image (in-flight DMA transfers rolled back to
//      their durable prefix), mounts a fresh EasyIO instance on it, and
//      runs recovery;
//   3. checks that the recovered state equals the model state after the
//      last *completed* operation, or after the one possibly-in-flight
//      operation — anything else is an atomicity or durability bug.
//
// The four workloads mirror the paper's Table 2: create_delete,
// generic_056 (create/write/link), generic_090 (write/append/link),
// generic_322 (create/write/rename).

#ifndef EASYIO_CRASHMONKEY_CRASH_TEST_H_
#define EASYIO_CRASHMONKEY_CRASH_TEST_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/dma/fault_plan.h"
#include "src/fs/file_system.h"
#include "src/nova/nova_fs.h"

namespace easyio::crashmonkey {

// Host-side expected state: path -> contents, with hard links sharing the
// underlying vector.
using FileContent = std::shared_ptr<std::vector<std::byte>>;
using ExpectedState = std::map<std::string, FileContent>;

struct CrashOp {
  std::string description;
  // Applies the operation to the filesystem under test (called in a task).
  std::function<void(fs::FileSystem&)> apply;
  // Applies the operation to the expected-state model.
  std::function<void(ExpectedState&)> model;
};

class WorkloadBuilder {
 public:
  WorkloadBuilder& Create(const std::string& path);
  WorkloadBuilder& Write(const std::string& path, uint64_t off,
                         std::vector<std::byte> data);
  WorkloadBuilder& Append(const std::string& path,
                          std::vector<std::byte> data);
  WorkloadBuilder& Unlink(const std::string& path);
  WorkloadBuilder& Link(const std::string& existing, const std::string& to);
  WorkloadBuilder& Rename(const std::string& from, const std::string& to);

  std::vector<CrashOp> Build() { return std::move(ops_); }

 private:
  std::vector<CrashOp> ops_;
};

struct CrashWorkload {
  std::string name;
  std::string description;
  std::vector<CrashOp> ops;
};

// The paper's Table 2 workload set.
std::vector<CrashWorkload> StandardWorkloads(uint64_t seed);

struct CrashTestResult {
  int total_points = 0;
  int passed = 0;
  std::vector<std::string> failures;  // first few diagnostics
};

// Default filesystem geometry used by the crash runs.
nova::NovaFs::Options DefaultCrashFsOptions();

// Runs up to `max_points` crash points (evenly sampled over all persist
// barriers) for the workload on EasyIO.
//
// `faults` optionally injects DMA faults into every run: each Env gets a
// fresh FaultInjector built from the same plan (the injector's consume-once
// state must not leak between runs), so the barrier-count pass and every
// replay see identical fault timing — retries and error-record updates add
// persist barriers, which then become sampled crash points like any other.
CrashTestResult RunCrashTest(const CrashWorkload& workload, int max_points,
                             const nova::NovaFs::Options& fs_options =
                                 DefaultCrashFsOptions(),
                             const dma::FaultPlan* faults = nullptr);

}  // namespace easyio::crashmonkey

#endif  // EASYIO_CRASHMONKEY_CRASH_TEST_H_
