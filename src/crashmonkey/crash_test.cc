#include "src/crashmonkey/crash_test.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/dma/dma_engine.h"
#include "src/easyio/channel_manager.h"
#include "src/easyio/easy_io_fs.h"
#include "src/pmem/slow_memory.h"
#include "src/sim/simulation.h"

namespace easyio::crashmonkey {

namespace {

std::vector<std::byte> Pattern(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) {
    b = static_cast<std::byte>(rng.Next());
  }
  return out;
}

void ModelWrite(ExpectedState& st, const std::string& path, uint64_t off,
                const std::vector<std::byte>& data) {
  auto it = st.find(path);
  assert(it != st.end() && "model: write to missing file");
  auto& content = *it->second;
  if (content.size() < off + data.size()) {
    content.resize(off + data.size(), std::byte{0});
  }
  std::copy(data.begin(), data.end(), content.begin() + off);
}

}  // namespace

WorkloadBuilder& WorkloadBuilder::Create(const std::string& path) {
  ops_.push_back(CrashOp{
      "create " + path,
      [path](fs::FileSystem& fs) {
        int fd = *fs.Create(path);
        EASYIO_CHECK_OK(fs.Close(fd));
      },
      [path](ExpectedState& st) {
        st[path] = std::make_shared<std::vector<std::byte>>();
      }});
  return *this;
}

WorkloadBuilder& WorkloadBuilder::Write(const std::string& path, uint64_t off,
                                        std::vector<std::byte> data) {
  ops_.push_back(CrashOp{
      "write " + path,
      [path, off, data](fs::FileSystem& fs) {
        int fd = *fs.Open(path);
        EASYIO_CHECK_OK(fs.Write(fd, off, data).status());
        EASYIO_CHECK_OK(fs.Close(fd));
      },
      [path, off, data](ExpectedState& st) {
        ModelWrite(st, path, off, data);
      }});
  return *this;
}

WorkloadBuilder& WorkloadBuilder::Append(const std::string& path,
                                         std::vector<std::byte> data) {
  ops_.push_back(CrashOp{
      "append " + path,
      [path, data](fs::FileSystem& fs) {
        int fd = *fs.Open(path);
        EASYIO_CHECK_OK(fs.Append(fd, data).status());
        EASYIO_CHECK_OK(fs.Close(fd));
      },
      [path, data](ExpectedState& st) {
        auto it = st.find(path);
        assert(it != st.end());
        ModelWrite(st, path, it->second->size(), data);
      }});
  return *this;
}

WorkloadBuilder& WorkloadBuilder::Unlink(const std::string& path) {
  ops_.push_back(CrashOp{
      "unlink " + path,
      [path](fs::FileSystem& fs) { EASYIO_CHECK_OK(fs.Unlink(path)); },
      [path](ExpectedState& st) { st.erase(path); }});
  return *this;
}

WorkloadBuilder& WorkloadBuilder::Link(const std::string& existing,
                                       const std::string& to) {
  ops_.push_back(CrashOp{
      "link " + existing + " -> " + to,
      [existing, to](fs::FileSystem& fs) {
        EASYIO_CHECK_OK(fs.Link(existing, to));
      },
      [existing, to](ExpectedState& st) {
        st[to] = st.at(existing);  // shares content (hard link)
      }});
  return *this;
}

WorkloadBuilder& WorkloadBuilder::Rename(const std::string& from,
                                         const std::string& to) {
  ops_.push_back(CrashOp{
      "rename " + from + " -> " + to,
      [from, to](fs::FileSystem& fs) {
        EASYIO_CHECK_OK(fs.Rename(from, to));
      },
      [from, to](ExpectedState& st) {
        st[to] = st.at(from);
        st.erase(from);
      }});
  return *this;
}

std::vector<CrashWorkload> StandardWorkloads(uint64_t seed) {
  std::vector<CrashWorkload> out;

  {
    // create_delete: create, write, remove on regular files.
    WorkloadBuilder b;
    for (int round = 0; round < 11; ++round) {
      for (int i = 0; i < 6; ++i) {
        const std::string path =
            "/cd_f" + std::to_string(round * 6 + i);
        b.Create(path);
        b.Write(path, 0,
                Pattern(3000 + static_cast<size_t>(i) * 2500,
                        seed + static_cast<uint64_t>(round * 6 + i)));
      }
      for (int i = 0; i < 6; i += 2) {
        b.Unlink("/cd_f" + std::to_string(round * 6 + i));
      }
    }
    out.push_back({"create_delete", "create, write, remove on regular files",
                   b.Build()});
  }

  {
    // generic_056: create, write, link on regular files.
    WorkloadBuilder b;
    for (int round = 0; round < 40; ++round) {
      const std::string a = "/g56_a" + std::to_string(round);
      const std::string l = "/g56_b" + std::to_string(round);
      b.Create(a);
      b.Write(a, 0, Pattern(16000, seed + 100 + static_cast<uint64_t>(round)));
      b.Link(a, l);
      // Writing through one name must show through the other.
      b.Write(a, 4096,
              Pattern(8192, seed + 200 + static_cast<uint64_t>(round)));
      if (round % 2 == 0) {
        b.Unlink(a);  // the link keeps the data alive
      }
    }
    out.push_back({"generic_056", "create, write, link on regular files",
                   b.Build()});
  }

  {
    // generic_090: write, append, link on regular files.
    WorkloadBuilder b;
    for (int round = 0; round < 34; ++round) {
      const std::string log = "/g90_log" + std::to_string(round);
      b.Create(log);
      for (int k = 0; k < 3; ++k) {
        b.Append(log, Pattern(4096, seed + 300 +
                                        static_cast<uint64_t>(round * 3 + k)));
      }
      b.Link(log, "/g90_mirror" + std::to_string(round));
      b.Append(log, Pattern(5000, seed + 400 + static_cast<uint64_t>(round)));
      b.Write(log, 1000,
              Pattern(2000, seed + 500 + static_cast<uint64_t>(round)));
    }
    out.push_back({"generic_090", "write, append, link on regular files",
                   b.Build()});
  }

  {
    // generic_322: create, write, rename on regular files.
    WorkloadBuilder b;
    for (int round = 0; round < 51; ++round) {
      const std::string tmp = "/g322_tmp" + std::to_string(round);
      const std::string final_name = "/g322_final" + std::to_string(round % 2);
      b.Create(tmp);
      b.Write(tmp, 0,
              Pattern(20000 + static_cast<size_t>(round) * 1000,
                      seed + 600 + static_cast<uint64_t>(round)));
      b.Rename(tmp, final_name);  // later rounds atomically replace
    }
    out.push_back({"generic_322", "create, write, rename on regular files",
                   b.Build()});
  }
  return out;
}

namespace {

struct Env {
  sim::Simulation sim{{.num_cores = 2}};
  pmem::SlowMemory mem;
  // Declared before the engine: channels hold a raw pointer to it.
  std::unique_ptr<dma::FaultInjector> injector;
  std::unique_ptr<core::EasyIoFs> fs;
  std::unique_ptr<dma::DmaEngine> engine;
  std::unique_ptr<core::ChannelManager> cm;

  explicit Env(const nova::NovaFs::Options& opts,
               const dma::FaultPlan* faults = nullptr)
      : mem(&sim, pmem::MediaParams::TwoNode(), 24_MB) {
    fs = std::make_unique<core::EasyIoFs>(&mem, opts,
                                          core::EasyIoFs::EasyOptions{});
    EASYIO_CHECK_OK(fs->Format());
    engine = std::make_unique<dma::DmaEngine>(
        &mem, fs->layout().comp_region_off, 16);
    if (faults != nullptr && !faults->empty()) {
      // Fresh injector per Env: Take* consumes plan entries, and every run
      // must replay the same faults.
      injector = std::make_unique<dma::FaultInjector>(*faults);
      engine->AttachFaultInjector(injector.get());
    }
    cm = std::make_unique<core::ChannelManager>(
        &sim, engine.get(), core::ChannelManager::Options{});
    fs->AttachChannelManager(cm.get());
  }
};

// Collects the union of paths any op may touch (model side).
std::set<std::string> PathUniverse(const CrashWorkload& workload) {
  ExpectedState st;
  std::set<std::string> paths;
  for (const auto& op : workload.ops) {
    op.model(st);
    for (const auto& [path, content] : st) {
      paths.insert(path);
    }
  }
  return paths;
}

ExpectedState StateAfter(const CrashWorkload& workload, int last_op) {
  ExpectedState st;
  for (int i = 0; i <= last_op && i < static_cast<int>(workload.ops.size());
       ++i) {
    workload.ops[static_cast<size_t>(i)].model(st);
  }
  return st;
}

// Compares the recovered filesystem against one candidate expected state.
bool MatchesState(fs::FileSystem& fs, sim::Simulation& sim,
                  const ExpectedState& expected,
                  const std::set<std::string>& universe) {
  bool ok = true;
  sim.Spawn(0, [&] {
    for (const std::string& path : universe) {
      auto it = expected.find(path);
      auto fd = fs.Open(path);
      if (it == expected.end()) {
        if (fd.ok()) {
          ok = false;
          EASYIO_CHECK_OK(fs.Close(*fd));
        }
        continue;
      }
      if (!fd.ok()) {
        ok = false;
        continue;
      }
      const auto& want = *it->second;
      auto st = fs.StatFd(*fd);
      if (!st.ok() || st->size != want.size()) {
        ok = false;
      } else if (!want.empty()) {
        std::vector<std::byte> got(want.size());
        auto r = fs.Read(*fd, 0, got);
        if (!r.ok() || *r != want.size() || got != want) {
          ok = false;
        }
      }
      EASYIO_CHECK_OK(fs.Close(*fd));
    }
  });
  sim.Run();
  return ok;
}

}  // namespace

nova::NovaFs::Options DefaultCrashFsOptions() {
  nova::NovaFs::Options opts;
  opts.inode_count = 512;
  opts.journal_slots = 8;
  return opts;
}

CrashTestResult RunCrashTest(const CrashWorkload& workload, int max_points,
                             const nova::NovaFs::Options& fs_options,
                             const dma::FaultPlan* faults) {
  // Pass 1: count the workload's persist barriers. Runs under the same
  // fault plan as the replays: retries and error-record updates persist, so
  // faults shift the barrier numbering.
  uint64_t total_barriers = 0;
  {
    Env env(fs_options, faults);
    const uint64_t base = env.mem.barrier_count();
    env.sim.Spawn(0, [&] {
      for (const auto& op : workload.ops) {
        op.apply(*env.fs);
      }
    });
    env.sim.Run();
    total_barriers = env.mem.barrier_count() - base;
  }

  const std::set<std::string> universe = PathUniverse(workload);
  const int points =
      static_cast<int>(std::min<uint64_t>(total_barriers,
                                          static_cast<uint64_t>(max_points)));
  CrashTestResult result;
  result.total_points = points;

  for (int p = 1; p <= points; ++p) {
    const uint64_t k =
        total_barriers * static_cast<uint64_t>(p) /
        static_cast<uint64_t>(points);

    Env env(fs_options, faults);
    env.mem.EnableCrashTracking();
    const uint64_t base = env.mem.barrier_count();
    env.mem.set_barrier_hook([&env, base, k](uint64_t count) {
      if (count == base + k) {
        env.sim.RequestStop();
      }
    });
    int completed = -1;
    env.sim.Spawn(0, [&] {
      for (size_t i = 0; i < workload.ops.size(); ++i) {
        workload.ops[i].apply(*env.fs);
        completed = static_cast<int>(i);
      }
    });
    env.sim.Run();

    const auto image = env.mem.CrashImage();

    // Mount a fresh instance on the crash image and recover.
    sim::Simulation sim2({.num_cores = 2});
    pmem::SlowMemory mem2(&sim2, pmem::MediaParams::TwoNode(), 24_MB);
    mem2.LoadImage(image);
    core::EasyIoFs fs2(&mem2, fs_options, core::EasyIoFs::EasyOptions{});
    const Status mount = fs2.Mount();
    if (!mount.ok()) {
      if (result.failures.size() < 5) {
        result.failures.push_back(workload.name + " @barrier " +
                                  std::to_string(k) +
                                  ": mount failed: " + mount.ToString());
      }
      continue;
    }
    // No ChannelManager attached: reads take the memcpy path, which is all
    // the checker needs.

    const ExpectedState s_last = StateAfter(workload, completed);
    const ExpectedState s_next = StateAfter(workload, completed + 1);
    const bool ok = MatchesState(fs2, sim2, s_last, universe) ||
                    MatchesState(fs2, sim2, s_next, universe);
    if (ok) {
      result.passed++;
    } else if (result.failures.size() < 5) {
      result.failures.push_back(
          workload.name + " @barrier " + std::to_string(k) +
          ": recovered state matches neither pre- nor post-state of op " +
          std::to_string(completed + 1));
    }
  }
  return result;
}

}  // namespace easyio::crashmonkey
