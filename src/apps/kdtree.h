// k-d tree for the paper's KNN workload [15]: workers read sample points
// from files and search for nearest neighbours in a pre-built tree.

#ifndef EASYIO_APPS_KDTREE_H_
#define EASYIO_APPS_KDTREE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace easyio::apps {

inline constexpr int kKdDims = 4;

using KdPoint = std::array<float, kKdDims>;

class KdTree {
 public:
  // Builds a balanced tree over the points (median splits).
  explicit KdTree(std::vector<KdPoint> points);

  size_t size() const { return nodes_.size(); }

  // Index (into the original point order is NOT preserved; returns the point
  // itself) of the nearest neighbour plus its squared distance.
  struct Result {
    KdPoint point;
    float dist2;
  };
  Result Nearest(const KdPoint& query) const;

  // k nearest neighbours, ascending by distance.
  std::vector<Result> KNearest(const KdPoint& query, int k) const;

 private:
  struct Node {
    KdPoint point;
    int axis;
    int left = -1;
    int right = -1;
  };

  int Build(std::vector<KdPoint>& pts, int lo, int hi, int depth);
  void Search(int node, const KdPoint& query, int k,
              std::vector<Result>* best) const;

  std::vector<Node> nodes_;
  int root_ = -1;
};

float Dist2(const KdPoint& a, const KdPoint& b);

}  // namespace easyio::apps

#endif  // EASYIO_APPS_KDTREE_H_
