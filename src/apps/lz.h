// A Snappy-style byte-oriented LZ77 compressor/decompressor (the paper's
// Snappy workload [39] decompresses pre-built files and writes the output).
//
// Format: a stream of tokens.
//   literal: 0x00 len:u16  followed by `len` raw bytes
//   match:   0x01 len:u16 dist:u16  copy `len` bytes from `dist` back
// Greedy matching via a 64K-entry hash table over 4-byte prefixes — the same
// structure real Snappy uses, minus the varint packaging.

#ifndef EASYIO_APPS_LZ_H_
#define EASYIO_APPS_LZ_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace easyio::apps {

std::vector<uint8_t> LzCompress(const uint8_t* data, size_t n);
// Returns false on malformed input.
bool LzDecompress(const uint8_t* data, size_t n, std::vector<uint8_t>* out);

}  // namespace easyio::apps

#endif  // EASYIO_APPS_LZ_H_
