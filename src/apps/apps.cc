#include "src/apps/apps.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>

#include "src/apps/aes.h"
#include "src/apps/graph.h"
#include "src/apps/grep.h"
#include "src/apps/idct.h"
#include "src/apps/kdtree.h"
#include "src/apps/lz.h"
#include "src/common/rng.h"

namespace easyio::apps {

namespace {

const char* kNeedle = "EasyIO";

// Compute phases execute their real code (outputs are checked), but the
// *virtual time charged* is analytic: work units times a per-unit cost on
// the reference core (the paper's Xeon Gold 6240M). This keeps every app's
// compute:I/O ratio — which decides how much CPU EasyIO can harvest —
// deterministic and independent of the build host's speed or codegen.
//
// Reference-core cost table (ns):
constexpr double kLzDecompressNsPerByte = 0.40;   // ~2.5 GB/s
constexpr double kIdctNsPerBlock = 900.0;         // 8x8 IDCT + RGB expand
constexpr double kAesNsPerByte = 10.0;            // plain software AES-128
constexpr double kGrepNsPerByte = 0.33;           // grep -i fold + search
constexpr double kKnnNsPerQuery = 400.0;          // ~20 node visits
constexpr double kBfsNsPerEdge = 1.2;
constexpr double kBfsNsPerVertex = 2.0;
constexpr double kDeserializeNsPerByte = 0.08;

// Runs `fn` for real, then charges `cost_ns` of virtual CPU time.
template <typename Fn>
void Compute(sim::Simulation* sim, double cost_ns, Fn&& fn) {
  fn();
  sim->Advance(static_cast<uint64_t>(std::max(cost_ns, 100.0)));
}

std::span<const std::byte> AsBytes(const std::vector<uint8_t>& v) {
  return std::span(reinterpret_cast<const std::byte*>(v.data()), v.size());
}

struct WorkerEnv {
  harness::Testbed* tb;
  int worker;
  Rng rng;
  const bool* stop;
  const bool* measuring;
  uint64_t ops = 0;
  uint64_t checksum = 0;
};

// Per-app setup (runs inside a task before measurement) and worker-iteration
// body. Setup state shared across workers lives in AppState.
struct AppState {
  std::vector<int> input_fds;       // per worker (or shared pool)
  std::vector<int> output_fds;      // per worker
  int shared_fd = -1;               // webserver log
  size_t input_bytes = 0;
  std::unique_ptr<KdTree> kdtree;   // KNN
};

void WriteWholeFile(harness::Testbed& tb, int fd,
                    std::span<const std::byte> data) {
  constexpr size_t kChunk = 1_MB;
  for (size_t off = 0; off < data.size(); off += kChunk) {
    const size_t n = std::min(kChunk, data.size() - off);
    EASYIO_CHECK_OK(tb.fs().Write(fd, off, data.subspan(off, n)).status());
  }
}

// ---- Snappy ----

void SnappySetup(harness::Testbed& tb, int workers, uint64_t seed,
                 AppState* st) {
  // ~1.9MB original with ~2:1 compressibility: compressible text
  // interleaved with incompressible noise.
  std::vector<uint8_t> original = SyntheticText(950_KB, kNeedle, 0.01, seed);
  Rng rng(seed + 1);
  original.reserve(1900_KB);
  for (size_t i = 0; i < 950_KB; ++i) {
    original.push_back(static_cast<uint8_t>(rng.Next()));
  }
  const std::vector<uint8_t> compressed =
      LzCompress(original.data(), original.size());
  st->input_bytes = compressed.size();
  for (int w = 0; w < workers; ++w) {
    int in_fd = *tb.fs().Create("/snappy_in" + std::to_string(w));
    WriteWholeFile(tb, in_fd, AsBytes(compressed));
    st->input_fds.push_back(in_fd);
    st->output_fds.push_back(
        *tb.fs().Create("/snappy_out" + std::to_string(w)));
  }
}

void SnappyIter(WorkerEnv& env, AppState& st) {
  auto& tb = *env.tb;
  std::vector<std::byte> in(st.input_bytes);
  EASYIO_CHECK_OK(
      tb.fs().Read(st.input_fds[env.worker], 0, in).status());
  std::vector<uint8_t> out;
  out.reserve(2 * in.size());
  const bool ok = LzDecompress(reinterpret_cast<const uint8_t*>(in.data()),
                               in.size(), &out);
  Compute(&tb.sim(), kLzDecompressNsPerByte * static_cast<double>(out.size()),
          [&] { env.checksum += ok ? out.size() : 0; });
  EASYIO_CHECK_OK(
      tb.fs().Write(st.output_fds[env.worker], 0, AsBytes(out)).status());
}

// ---- JPGDecoder ----

void JpgSetup(harness::Testbed& tb, int workers, uint64_t seed,
              AppState* st) {
  std::vector<uint8_t> stream;
  // The paper's images decode 343KB -> 6.3MB; we scale each image to 1/8 of
  // that (same 1:18 expansion) so one decode fits the measurement windows.
  constexpr int kBlocks = 4096;
  for (int b = 0; b < kBlocks; ++b) {
    const auto block = EncodeSyntheticBlock(seed * 977 + b + 1);
    stream.insert(stream.end(), block.begin(), block.end());
  }
  st->input_bytes = stream.size();
  for (int w = 0; w < workers; ++w) {
    int in_fd = *tb.fs().Create("/jpg_in" + std::to_string(w));
    WriteWholeFile(tb, in_fd, AsBytes(stream));
    st->input_fds.push_back(in_fd);
    st->output_fds.push_back(*tb.fs().Create("/jpg_out" + std::to_string(w)));
  }
}

void JpgIter(WorkerEnv& env, AppState& st) {
  auto& tb = *env.tb;
  std::vector<std::byte> in(st.input_bytes);
  EASYIO_CHECK_OK(tb.fs().Read(st.input_fds[env.worker], 0, in).status());
  std::vector<uint8_t> rgb;
  rgb.reserve(4096 * kBlockOutBytes);
  size_t blocks = 0;
  {
    size_t off = 0;
    while (off < in.size()) {
      if (!DecodeBlock(reinterpret_cast<const uint8_t*>(in.data()), in.size(),
                       &off, &rgb)) {
        break;
      }
      blocks++;
    }
  }
  Compute(&tb.sim(), kIdctNsPerBlock * static_cast<double>(blocks),
          [&] { env.checksum += rgb.size(); });
  // The decoded image is written out in 1MB stripes.
  WriteWholeFile(tb, st.output_fds[env.worker], AsBytes(rgb));
}

// ---- AES ----

void AesSetup(harness::Testbed& tb, int workers, uint64_t seed,
              AppState* st) {
  Rng rng(seed);
  std::vector<uint8_t> plain(64_KB);
  for (auto& b : plain) {
    b = static_cast<uint8_t>(rng.Next());
  }
  st->input_bytes = plain.size();
  for (int w = 0; w < workers; ++w) {
    int in_fd = *tb.fs().Create("/aes_in" + std::to_string(w));
    WriteWholeFile(tb, in_fd, AsBytes(plain));
    st->input_fds.push_back(in_fd);
    st->output_fds.push_back(*tb.fs().Create("/aes_out" + std::to_string(w)));
  }
}

void AesIter(WorkerEnv& env, AppState& st) {
  static const uint8_t kKey[16] = {1, 2,  3,  4,  5,  6,  7,  8,
                                   9, 10, 11, 12, 13, 14, 15, 16};
  static const Aes128 cipher(kKey);
  auto& tb = *env.tb;
  std::vector<std::byte> in(64_KB);
  EASYIO_CHECK_OK(tb.fs().Read(st.input_fds[env.worker], 0, in).status());
  std::vector<uint8_t> out(64_KB);
  Compute(&tb.sim(), kAesNsPerByte * static_cast<double>(in.size()), [&] {
    cipher.CtrCrypt(reinterpret_cast<const uint8_t*>(in.data()), out.data(),
                    in.size(), env.ops + 1);
    env.checksum += out[0];
  });
  EASYIO_CHECK_OK(
      tb.fs().Write(st.output_fds[env.worker], 0, AsBytes(out)).status());
}

// ---- Grep ----

void GrepSetup(harness::Testbed& tb, int workers, uint64_t seed,
               AppState* st) {
  for (int w = 0; w < workers; ++w) {
    const auto text =
        SyntheticText(2_MB, kNeedle, 0.02, seed + static_cast<uint64_t>(w));
    int fd = *tb.fs().Create("/grep_in" + std::to_string(w));
    WriteWholeFile(tb, fd, AsBytes(text));
    st->input_fds.push_back(fd);
  }
  st->input_bytes = 2_MB;
}

void GrepIter(WorkerEnv& env, AppState& st) {
  auto& tb = *env.tb;
  std::vector<std::byte> buf(st.input_bytes);
  EASYIO_CHECK_OK(tb.fs().Read(st.input_fds[env.worker], 0, buf).status());
  Compute(&tb.sim(), kGrepNsPerByte * static_cast<double>(buf.size()), [&] {
    // grep -i: case-insensitive match (the compute-bearing variant).
    env.checksum += CountMatchingLinesNoCase(
        std::string_view(reinterpret_cast<const char*>(buf.data()),
                         buf.size()),
        "easyio");
  });
}

// ---- KNN ----

void KnnSetup(harness::Testbed& tb, int workers, uint64_t seed,
              AppState* st) {
  Rng rng(seed);
  std::vector<KdPoint> points(200000);
  for (auto& p : points) {
    for (float& c : p) {
      c = static_cast<float>(rng.NextDouble());
    }
  }
  st->kdtree = std::make_unique<KdTree>(std::move(points));
  // 1MB of query samples per worker file.
  for (int w = 0; w < workers; ++w) {
    std::vector<uint8_t> samples(1_MB);
    Rng qrng(seed * 31 + static_cast<uint64_t>(w));
    for (size_t i = 0; i + sizeof(KdPoint) <= samples.size();
         i += sizeof(KdPoint)) {
      KdPoint p;
      for (float& c : p) {
        c = static_cast<float>(qrng.NextDouble());
      }
      std::memcpy(samples.data() + i, &p, sizeof(p));
    }
    int fd = *tb.fs().Create("/knn_in" + std::to_string(w));
    WriteWholeFile(tb, fd, AsBytes(samples));
    st->input_fds.push_back(fd);
  }
  st->input_bytes = 1_MB;
}

void KnnIter(WorkerEnv& env, AppState& st) {
  auto& tb = *env.tb;
  std::vector<std::byte> buf(st.input_bytes);
  EASYIO_CHECK_OK(tb.fs().Read(st.input_fds[env.worker], 0, buf).status());
  constexpr int kQueries = 1200;
  Compute(&tb.sim(), kKnnNsPerQuery * kQueries, [&] {
    // Search a subset of the samples (k=4), like the paper's classifier.
    size_t hits = 0;
    for (int q = 0; q < kQueries; ++q) {
      KdPoint p;
      std::memcpy(&p, buf.data() + static_cast<size_t>(q) * sizeof(KdPoint),
                  sizeof(p));
      const auto knn = st.kdtree->KNearest(p, 4);
      hits += knn.size();
    }
    env.checksum += hits;
  });
}

// ---- BFS ----

void BfsSetup(harness::Testbed& tb, int workers, uint64_t seed,
              AppState* st) {
  const auto edges = RandomEdges(/*num_vertices=*/30000,
                                 /*num_edges=*/131000, seed);
  const auto serialized = SerializeEdges(30000, edges);
  st->input_bytes = serialized.size();
  for (int w = 0; w < workers; ++w) {
    int fd = *tb.fs().Create("/bfs_in" + std::to_string(w));
    WriteWholeFile(tb, fd, AsBytes(serialized));
    st->input_fds.push_back(fd);
  }
}

void BfsIter(WorkerEnv& env, AppState& st) {
  auto& tb = *env.tb;
  std::vector<std::byte> buf(st.input_bytes);
  EASYIO_CHECK_OK(tb.fs().Read(st.input_fds[env.worker], 0, buf).status());
  CsrGraph graph;
  const bool ok = DeserializeToCsr(
      reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &graph);
  const double cost =
      kDeserializeNsPerByte * static_cast<double>(buf.size()) +
      (ok ? kBfsNsPerEdge * static_cast<double>(graph.neighbors.size()) +
                kBfsNsPerVertex * static_cast<double>(graph.num_vertices)
          : 0.0);
  Compute(&tb.sim(), cost, [&] {
    if (ok) {
      std::vector<int32_t> dist;
      env.checksum += Bfs(graph, 0, &dist);
    }
  });
}

// ---- Fileserver ----

void FileserverSetup(harness::Testbed& tb, int workers, uint64_t seed,
                     AppState* st) {
  st->input_bytes = 1_MB;
}

void FileserverIter(WorkerEnv& env, AppState& st) {
  auto& tb = *env.tb;
  const std::string path = "/fsrv_w" + std::to_string(env.worker) + "_" +
                           std::to_string(env.ops % 4);
  std::vector<std::byte> data(1_MB, std::byte{0x42});
  auto fd = tb.fs().Create(path);
  if (!fd.ok()) {
    fd = tb.fs().Open(path);
    EASYIO_CHECK_OK(tb.fs().Unlink(path));
    fd = tb.fs().Create(path);
  }
  EASYIO_CHECK_OK(tb.fs().Write(*fd, 0, data).status());
  EASYIO_CHECK_OK(
      tb.fs().Append(*fd, std::span(data).subspan(0, 64_KB)).status());
  std::vector<std::byte> back(1_MB);
  EASYIO_CHECK_OK(tb.fs().Read(*fd, 0, back).status());
  env.checksum += tb.fs().StatFd(*fd)->size;
  EASYIO_CHECK_OK(tb.fs().Close(*fd));
  EASYIO_CHECK_OK(tb.fs().Unlink(path));
}

// ---- Webserver ----

void WebserverSetup(harness::Testbed& tb, int workers, uint64_t seed,
                    AppState* st) {
  constexpr int kPages = 64;
  std::vector<std::byte> body(256_KB, std::byte{'<'});
  for (int i = 0; i < kPages; ++i) {
    int fd = *tb.fs().Create("/page" + std::to_string(i));
    WriteWholeFile(tb, fd, body);
    st->input_fds.push_back(fd);
  }
  st->shared_fd = *tb.fs().Create("/weblog");
  st->input_bytes = 256_KB;
}

void WebserverIter(WorkerEnv& env, AppState& st) {
  auto& tb = *env.tb;
  const int fd = st.input_fds[env.rng.Below(st.input_fds.size())];
  std::vector<std::byte> buf(st.input_bytes);
  EASYIO_CHECK_OK(tb.fs().Read(fd, 0, buf).status());
  env.checksum += static_cast<uint8_t>(buf[0]);
  if (env.ops % 10 == 9) {
    // Append a 16KB entry to the single shared log: the paper's
    // high-contention case.
    std::vector<std::byte> entry(16_KB, std::byte{'L'});
    // Bound the log so long runs don't exhaust the device.
    if (tb.fs().StatFd(st.shared_fd)->size > 64_MB) {
      return;
    }
    EASYIO_CHECK_OK(tb.fs().Append(st.shared_fd, entry).status());
  }
}

}  // namespace

const char* AppName(AppKind app) {
  switch (app) {
    case AppKind::kSnappy: return "Snappy";
    case AppKind::kJpgDecoder: return "JPGDecoder";
    case AppKind::kAes: return "AES";
    case AppKind::kGrep: return "Grep";
    case AppKind::kKnn: return "KNN";
    case AppKind::kBfs: return "BFS";
    case AppKind::kFileserver: return "Fileserver";
    case AppKind::kWebserver: return "Webserver";
  }
  return "?";
}

AppResult RunApp(const AppRunConfig& config) {
  harness::TestbedConfig tb_cfg;
  tb_cfg.fs = config.fs;
  tb_cfg.machine_cores = config.machine_cores;
  tb_cfg.device_bytes = config.device_bytes;
  tb_cfg.faults = config.faults;
  harness::Testbed tb(tb_cfg);

  const bool is_easy = config.fs == harness::FsKind::kEasy ||
                       config.fs == harness::FsKind::kEasyNaive;
  const int workers =
      config.cores * (is_easy ? config.uthreads_per_core : 1);

  using SetupFn = void (*)(harness::Testbed&, int, uint64_t, AppState*);
  using IterFn = void (*)(WorkerEnv&, AppState&);
  SetupFn setup = nullptr;
  IterFn iter = nullptr;
  switch (config.app) {
    case AppKind::kSnappy: setup = SnappySetup; iter = SnappyIter; break;
    case AppKind::kJpgDecoder: setup = JpgSetup; iter = JpgIter; break;
    case AppKind::kAes: setup = AesSetup; iter = AesIter; break;
    case AppKind::kGrep: setup = GrepSetup; iter = GrepIter; break;
    case AppKind::kKnn: setup = KnnSetup; iter = KnnIter; break;
    case AppKind::kBfs: setup = BfsSetup; iter = BfsIter; break;
    case AppKind::kFileserver:
      setup = FileserverSetup;
      iter = FileserverIter;
      break;
    case AppKind::kWebserver:
      setup = WebserverSetup;
      iter = WebserverIter;
      break;
  }

  AppState state;
  tb.sim().Spawn(0, [&] { setup(tb, workers, config.seed, &state); });
  tb.sim().Run();

  auto* sched = tb.MakeScheduler(config.cores, /*work_stealing=*/is_easy);
  bool stop = false;
  bool measuring = false;
  tb.sim().ScheduleAfter(config.warmup_ns, [&] { measuring = true; });
  tb.sim().ScheduleAfter(config.warmup_ns + config.measure_ns,
                         [&] { stop = true; });

  std::vector<WorkerEnv> envs;
  envs.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    envs.push_back(WorkerEnv{&tb, w,
                             Rng(config.seed * 131 + static_cast<uint64_t>(w)),
                             &stop, &measuring});
  }
  for (int w = 0; w < workers; ++w) {
    WorkerEnv& env = envs[static_cast<size_t>(w)];
    sched->SpawnOn(w % config.cores, [&env, iter, &state, &stop,
                                      &measuring] {
      uint64_t measured = 0;
      while (!stop) {
        iter(env, state);
        env.ops++;
        if (measuring && !stop) {
          measured++;
        }
      }
      env.ops = measured;  // keep only the measured-window count
    });
  }
  tb.sim().Run();

  AppResult result;
  for (const auto& env : envs) {
    result.ops += env.ops;
    result.checksum += env.checksum;
  }
  result.ops_per_sec = static_cast<double>(result.ops) /
                       (static_cast<double>(config.measure_ns) / 1e9);
  return result;
}

}  // namespace easyio::apps
