#include "src/apps/aes.h"

#include <cstring>

namespace easyio::apps {

namespace {

// S-box generated at startup from the field inverse + affine transform.
struct SBox {
  uint8_t fwd[256];

  static uint8_t GfMul(uint8_t a, uint8_t b) {
    uint8_t p = 0;
    while (b) {
      if (b & 1) {
        p ^= a;
      }
      const bool hi = a & 0x80;
      a <<= 1;
      if (hi) {
        a ^= 0x1b;
      }
      b >>= 1;
    }
    return p;
  }

  SBox() {
    // Inverse via exponentiation (a^254 in GF(2^8)).
    auto inv = [](uint8_t a) -> uint8_t {
      if (a == 0) {
        return 0;
      }
      uint8_t r = 1;
      for (int i = 0; i < 254; ++i) {
        r = GfMul(r, a);
      }
      return r;
    };
    for (int i = 0; i < 256; ++i) {
      const uint8_t x = inv(static_cast<uint8_t>(i));
      uint8_t y = x;
      uint8_t out = x;
      for (int k = 0; k < 4; ++k) {
        y = static_cast<uint8_t>((y << 1) | (y >> 7));
        out ^= y;
      }
      fwd[i] = out ^ 0x63;
    }
  }
};

const SBox& Box() {
  static const SBox box;
  return box;
}

uint8_t Xtime(uint8_t a) {
  return static_cast<uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00));
}

}  // namespace

Aes128::Aes128(const uint8_t key[16]) {
  const auto& box = Box();
  std::memcpy(round_keys_[0].data(), key, 16);
  uint8_t rcon = 1;
  for (int r = 1; r <= 10; ++r) {
    const auto& prev = round_keys_[r - 1];
    auto& rk = round_keys_[r];
    // Rotate + SubBytes + Rcon on the last word.
    uint8_t t[4] = {box.fwd[prev[13]], box.fwd[prev[14]], box.fwd[prev[15]],
                    box.fwd[prev[12]]};
    t[0] ^= rcon;
    rcon = Xtime(rcon);
    for (int i = 0; i < 4; ++i) {
      rk[i] = prev[i] ^ t[i];
    }
    for (int i = 4; i < 16; ++i) {
      rk[i] = prev[i] ^ rk[i - 4];
    }
  }
}

void Aes128::EncryptBlock(const uint8_t in[16], uint8_t out[16]) const {
  const auto& box = Box();
  uint8_t s[16];
  for (int i = 0; i < 16; ++i) {
    s[i] = in[i] ^ round_keys_[0][i];
  }
  for (int round = 1; round <= 10; ++round) {
    // SubBytes.
    for (auto& b : s) {
      b = box.fwd[b];
    }
    // ShiftRows (column-major state layout: s[c*4+r]).
    uint8_t t[16];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) {
        t[c * 4 + r] = s[((c + r) % 4) * 4 + r];
      }
    }
    std::memcpy(s, t, 16);
    // MixColumns (skipped in the final round).
    if (round < 10) {
      for (int c = 0; c < 4; ++c) {
        uint8_t* col = s + c * 4;
        const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        const uint8_t x = a0 ^ a1 ^ a2 ^ a3;
        col[0] ^= x ^ Xtime(a0 ^ a1);
        col[1] ^= x ^ Xtime(a1 ^ a2);
        col[2] ^= x ^ Xtime(a2 ^ a3);
        col[3] ^= x ^ Xtime(a3 ^ a0);
      }
    }
    // AddRoundKey.
    for (int i = 0; i < 16; ++i) {
      s[i] ^= round_keys_[static_cast<size_t>(round)][i];
    }
  }
  std::memcpy(out, s, 16);
}

void Aes128::CtrCrypt(const uint8_t* in, uint8_t* out, size_t n,
                      uint64_t nonce) const {
  uint8_t counter[16] = {0};
  uint8_t stream[16];
  std::memcpy(counter, &nonce, sizeof(nonce));
  uint64_t block = 0;
  for (size_t off = 0; off < n; off += 16) {
    std::memcpy(counter + 8, &block, sizeof(block));
    block++;
    EncryptBlock(counter, stream);
    const size_t chunk = n - off < 16 ? n - off : 16;
    for (size_t i = 0; i < chunk; ++i) {
      out[off + i] = in[off + i] ^ stream[i];
    }
  }
}

}  // namespace easyio::apps
