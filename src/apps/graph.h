// Graph utilities for the paper's BFS workload [1]: workers read serialized
// edge lists from files, build the adjacency structure in memory, and run a
// breadth-first search from a given vertex.

#ifndef EASYIO_APPS_GRAPH_H_
#define EASYIO_APPS_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace easyio::apps {

// Serialized form: u32 num_vertices, u32 num_edges, then num_edges x
// {u32 src, u32 dst}.
std::vector<uint8_t> SerializeEdges(uint32_t num_vertices,
                                    const std::vector<std::pair<uint32_t,
                                                                uint32_t>>&
                                        edges);

// CSR adjacency built from a serialized edge list.
struct CsrGraph {
  uint32_t num_vertices = 0;
  std::vector<uint32_t> row_offsets;  // size num_vertices + 1
  std::vector<uint32_t> neighbors;
};

// Returns false on malformed input.
bool DeserializeToCsr(const uint8_t* data, size_t n, CsrGraph* graph);

// BFS distances from `source` (-1 for unreachable). Returns the number of
// reached vertices.
size_t Bfs(const CsrGraph& graph, uint32_t source,
           std::vector<int32_t>* dist);

// Deterministic random graph (for input generation).
std::vector<std::pair<uint32_t, uint32_t>> RandomEdges(uint32_t num_vertices,
                                                       uint32_t num_edges,
                                                       uint64_t seed);

}  // namespace easyio::apps

#endif  // EASYIO_APPS_GRAPH_H_
