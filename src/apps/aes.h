// Software AES-128 (ECB block primitive + CTR-mode buffer encryption) for
// the paper's AES workload [5]: workers encrypt file contents and write the
// ciphertext to new files. Table-free SubBytes/MixColumns implementation —
// deliberately the plain portable cipher, since the workload's point is to
// be compute-dominated.

#ifndef EASYIO_APPS_AES_H_
#define EASYIO_APPS_AES_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace easyio::apps {

class Aes128 {
 public:
  explicit Aes128(const uint8_t key[16]);

  // Encrypts one 16-byte block (ECB).
  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  // CTR mode over an arbitrary buffer (also decrypts: CTR is symmetric).
  void CtrCrypt(const uint8_t* in, uint8_t* out, size_t n,
                uint64_t nonce) const;

 private:
  std::array<std::array<uint8_t, 16>, 11> round_keys_;
};

}  // namespace easyio::apps

#endif  // EASYIO_APPS_AES_H_
