// Line matcher for the paper's Grep workload [10]: each worker reads a chunk
// of text into a buffer and string-matches every line against a pattern.

#ifndef EASYIO_APPS_GREP_H_
#define EASYIO_APPS_GREP_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace easyio::apps {

// Number of lines in `text` containing `pattern` (memchr-accelerated
// search, like GNU grep's fast path).
size_t CountMatchingLines(std::string_view text, std::string_view pattern);

// Case-insensitive variant (grep -i): case-folds the text, then searches.
// `pattern` must already be lowercase.
size_t CountMatchingLinesNoCase(std::string_view text,
                                std::string_view pattern);

// Deterministic synthetic text (~80-char lines, some containing `needle`).
std::vector<uint8_t> SyntheticText(size_t bytes, std::string_view needle,
                                   double needle_frequency, uint64_t seed);

}  // namespace easyio::apps

#endif  // EASYIO_APPS_GREP_H_
