// The paper's eight real-world applications (§6.3, Table 1), each a
// read-compute-write loop over the filesystem under test:
//
//   Snappy      read ~910KB compressed, decompress,    write ~1.9MB   (1:1)
//   JPGDecoder  read ~343KB coefficients, IDCT-decode, write ~6.3MB   (1:1)
//   AES         read 64KB, AES-128-CTR encrypt,        write 64KB     (1:1)
//   Grep        read 2MB text, match lines             (read-only)
//   KNN         read 1MB samples, k-d tree searches    (read-only)
//   BFS         read 1MB edges, build CSR + BFS        (read-only)
//   Fileserver  create/write/append/read/stat/delete over a file set  (1:2)
//   Webserver   read 256KB pages + append 16KB to one shared log      (10:1)
//
// Compute phases run real code; their host execution time is measured and
// charged as virtual CPU time on the simulated core, so the compute:I/O
// ratio — which decides how much CPU EasyIO can harvest — is genuine.

#ifndef EASYIO_APPS_APPS_H_
#define EASYIO_APPS_APPS_H_

#include <cstdint>
#include <string>

#include "src/common/units.h"
#include "src/harness/testbed.h"

namespace easyio::apps {

enum class AppKind {
  kSnappy,
  kJpgDecoder,
  kAes,
  kGrep,
  kKnn,
  kBfs,
  kFileserver,
  kWebserver,
};

const char* AppName(AppKind app);

struct AppRunConfig {
  AppKind app = AppKind::kSnappy;
  harness::FsKind fs = harness::FsKind::kEasy;
  int cores = 1;
  int uthreads_per_core = 2;  // applied to EasyIO modes only
  uint64_t warmup_ns = 4_ms;
  uint64_t measure_ns = 25_ms;
  uint64_t seed = 7;
  int machine_cores = 36;
  size_t device_bytes = 1_GB;
  // DMA fault plan forwarded to the testbed; empty = injection off.
  dma::FaultPlan faults;
};

struct AppResult {
  uint64_t ops = 0;
  double ops_per_sec = 0;
  // Functional digest (match counts, reached vertices, output sizes...)
  // so correctness is checkable and the compute cannot be elided.
  uint64_t checksum = 0;
};

AppResult RunApp(const AppRunConfig& config);

}  // namespace easyio::apps

#endif  // EASYIO_APPS_APPS_H_
