#include "src/apps/kdtree.h"

#include <algorithm>
#include <cassert>

namespace easyio::apps {

float Dist2(const KdPoint& a, const KdPoint& b) {
  float acc = 0;
  for (int d = 0; d < kKdDims; ++d) {
    const float diff = a[d] - b[d];
    acc += diff * diff;
  }
  return acc;
}

KdTree::KdTree(std::vector<KdPoint> points) {
  nodes_.reserve(points.size());
  if (!points.empty()) {
    root_ = Build(points, 0, static_cast<int>(points.size()), 0);
  }
}

int KdTree::Build(std::vector<KdPoint>& pts, int lo, int hi, int depth) {
  if (lo >= hi) {
    return -1;
  }
  const int axis = depth % kKdDims;
  const int mid = lo + (hi - lo) / 2;
  std::nth_element(pts.begin() + lo, pts.begin() + mid, pts.begin() + hi,
                   [axis](const KdPoint& a, const KdPoint& b) {
                     return a[axis] < b[axis];
                   });
  const int idx = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{pts[static_cast<size_t>(mid)], axis, -1, -1});
  const int left = Build(pts, lo, mid, depth + 1);
  const int right = Build(pts, mid + 1, hi, depth + 1);
  nodes_[static_cast<size_t>(idx)].left = left;
  nodes_[static_cast<size_t>(idx)].right = right;
  return idx;
}

void KdTree::Search(int node, const KdPoint& query, int k,
                    std::vector<Result>* best) const {
  if (node < 0) {
    return;
  }
  const Node& n = nodes_[static_cast<size_t>(node)];
  const float d2 = Dist2(n.point, query);
  if (best->size() < static_cast<size_t>(k) || d2 < best->back().dist2) {
    Result r{n.point, d2};
    auto it = std::lower_bound(best->begin(), best->end(), r,
                               [](const Result& a, const Result& b) {
                                 return a.dist2 < b.dist2;
                               });
    best->insert(it, r);
    if (best->size() > static_cast<size_t>(k)) {
      best->pop_back();
    }
  }
  const float delta = query[n.axis] - n.point[n.axis];
  const int near = delta < 0 ? n.left : n.right;
  const int far = delta < 0 ? n.right : n.left;
  Search(near, query, k, best);
  if (best->size() < static_cast<size_t>(k) ||
      delta * delta < best->back().dist2) {
    Search(far, query, k, best);
  }
}

KdTree::Result KdTree::Nearest(const KdPoint& query) const {
  assert(root_ >= 0);
  std::vector<Result> best;
  Search(root_, query, 1, &best);
  return best.front();
}

std::vector<KdTree::Result> KdTree::KNearest(const KdPoint& query,
                                             int k) const {
  std::vector<Result> best;
  if (root_ >= 0) {
    Search(root_, query, k, &best);
  }
  return best;
}

}  // namespace easyio::apps
