#include "src/apps/grep.h"

#include <cstring>
#include <vector>

namespace easyio::apps {

namespace {

// memchr-accelerated substring search (glibc-grep style): vector-scan for
// the needle's first byte, then verify the remainder.
const char* Find(const char* hay, size_t hay_len, std::string_view needle) {
  const size_t m = needle.size();
  if (m == 0 || hay_len < m) {
    return nullptr;
  }
  const char first = needle[0];
  const char* p = hay;
  const char* end = hay + hay_len - m + 1;
  while (p < end) {
    p = static_cast<const char*>(
        std::memchr(p, first, static_cast<size_t>(end - p)));
    if (p == nullptr) {
      return nullptr;
    }
    if (std::memcmp(p + 1, needle.data() + 1, m - 1) == 0) {
      return p;
    }
    ++p;
  }
  return nullptr;
}

}  // namespace

size_t CountMatchingLines(std::string_view text, std::string_view pattern) {
  // GNU-grep style: one Boyer-Moore pass over the whole buffer; on a hit,
  // count the line and resume after its newline. This skips most bytes
  // instead of re-priming the matcher per line.
  size_t matches = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    const char* hit =
        Find(text.data() + pos, text.size() - pos, pattern);
    if (hit == nullptr) {
      break;
    }
    matches++;
    const size_t hit_off = static_cast<size_t>(hit - text.data());
    const size_t nl = text.find('\n', hit_off);
    if (nl == std::string_view::npos) {
      break;
    }
    pos = nl + 1;
  }
  return matches;
}

size_t CountMatchingLinesNoCase(std::string_view text,
                                std::string_view pattern) {
  // Fold the haystack (grep -i); the per-byte pass is the compute-heavy part
  // of case-insensitive matching. A reused scratch buffer keeps the cost at
  // the fold itself rather than allocator page faults.
  static thread_local std::vector<char> folded;
  folded.resize(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    folded[i] = (c >= 'A' && c <= 'Z') ? static_cast<char>(c + 32) : c;
  }
  return CountMatchingLines(std::string_view(folded.data(), folded.size()),
                            pattern);
}

std::vector<uint8_t> SyntheticText(size_t bytes, std::string_view needle,
                                   double needle_frequency, uint64_t seed) {
  static constexpr std::string_view kWords[] = {
      "storage", "memory",  "asynchronous", "channel", "buffer",
      "kernel",  "latency", "bandwidth",    "uthread", "commit"};
  std::vector<uint8_t> out;
  out.reserve(bytes + 128);
  auto next = [&seed] {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  while (out.size() < bytes) {
    const bool with_needle =
        (next() % 1000) < static_cast<uint64_t>(needle_frequency * 1000);
    size_t line_len = 0;
    while (line_len < 72) {
      const std::string_view w = kWords[next() % 10];
      out.insert(out.end(), w.begin(), w.end());
      out.push_back(' ');
      line_len += w.size() + 1;
    }
    if (with_needle) {
      out.insert(out.end(), needle.begin(), needle.end());
    }
    out.push_back('\n');
  }
  out.resize(bytes);
  if (!out.empty()) {
    out.back() = '\n';
  }
  return out;
}

}  // namespace easyio::apps
