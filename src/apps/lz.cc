#include "src/apps/lz.h"

#include <cstring>

namespace easyio::apps {

namespace {

constexpr size_t kHashBits = 16;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 0xffff;
constexpr size_t kMaxDist = 0xffff;

uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 0x9e3779b1u) >> (32 - kHashBits);
}

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v & 0xff));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

void EmitLiteral(std::vector<uint8_t>* out, const uint8_t* p, size_t n) {
  while (n > 0) {
    const size_t chunk = n > kMaxMatch ? kMaxMatch : n;
    out->push_back(0x00);
    PutU16(out, static_cast<uint16_t>(chunk));
    out->insert(out->end(), p, p + chunk);
    p += chunk;
    n -= chunk;
  }
}

}  // namespace

std::vector<uint8_t> LzCompress(const uint8_t* data, size_t n) {
  std::vector<uint8_t> out;
  out.reserve(n / 2 + 16);
  std::vector<uint32_t> table(kHashSize, 0);  // position+1; 0 = empty

  size_t i = 0;
  size_t literal_start = 0;
  while (i + kMinMatch <= n) {
    const uint32_t h = Hash4(data + i);
    const uint32_t candidate = table[h];
    table[h] = static_cast<uint32_t>(i + 1);
    if (candidate != 0) {
      const size_t pos = candidate - 1;
      const size_t dist = i - pos;
      if (dist > 0 && dist <= kMaxDist &&
          std::memcmp(data + pos, data + i, kMinMatch) == 0) {
        // Extend the match.
        size_t len = kMinMatch;
        while (i + len < n && len < kMaxMatch &&
               data[pos + len] == data[i + len]) {
          len++;
        }
        EmitLiteral(&out, data + literal_start, i - literal_start);
        out.push_back(0x01);
        PutU16(&out, static_cast<uint16_t>(len));
        PutU16(&out, static_cast<uint16_t>(dist));
        i += len;
        literal_start = i;
        continue;
      }
    }
    i++;
  }
  EmitLiteral(&out, data + literal_start, n - literal_start);
  return out;
}

bool LzDecompress(const uint8_t* data, size_t n, std::vector<uint8_t>* out) {
  out->clear();
  size_t i = 0;
  while (i < n) {
    const uint8_t tag = data[i];
    if (tag == 0x00) {
      if (i + 3 > n) {
        return false;
      }
      const size_t len = GetU16(data + i + 1);
      i += 3;
      if (i + len > n) {
        return false;
      }
      out->insert(out->end(), data + i, data + i + len);
      i += len;
    } else if (tag == 0x01) {
      if (i + 5 > n) {
        return false;
      }
      const size_t len = GetU16(data + i + 1);
      const size_t dist = GetU16(data + i + 3);
      i += 5;
      if (dist == 0 || dist > out->size()) {
        return false;
      }
      // Byte-wise copy: overlapping matches are legal (RLE-style).
      size_t src = out->size() - dist;
      for (size_t k = 0; k < len; ++k) {
        out->push_back((*out)[src + k]);
      }
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace easyio::apps
