#include "src/apps/idct.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace easyio::apps {

namespace {

struct CosTable {
  float c[8][8];  // c[x][u] = cos((2x+1) u pi / 16) * scale(u)
  CosTable() {
    for (int x = 0; x < 8; ++x) {
      for (int u = 0; u < 8; ++u) {
        const double scale = u == 0 ? std::sqrt(0.125) : 0.5;
        c[x][u] = static_cast<float>(
            scale * std::cos((2 * x + 1) * u * M_PI / 16.0));
      }
    }
  }
};

const CosTable& Cos() {
  static const CosTable table;
  return table;
}

// Zigzag scan order of an 8x8 block.
constexpr uint8_t kZigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

}  // namespace

void Idct8x8(const float in[64], float out[64]) {
  const auto& t = Cos();
  // Rows, then columns (separable 2-D IDCT).
  float tmp[64];
  for (int r = 0; r < 8; ++r) {
    for (int x = 0; x < 8; ++x) {
      float acc = 0;
      for (int u = 0; u < 8; ++u) {
        acc += t.c[x][u] * in[r * 8 + u];
      }
      tmp[r * 8 + x] = acc;
    }
  }
  for (int col = 0; col < 8; ++col) {
    for (int y = 0; y < 8; ++y) {
      float acc = 0;
      for (int v = 0; v < 8; ++v) {
        acc += t.c[y][v] * tmp[v * 8 + col];
      }
      out[y * 8 + col] = acc;
    }
  }
}

bool DecodeBlock(const uint8_t* stream, size_t n, size_t* offset,
                 std::vector<uint8_t>* out) {
  size_t i = *offset;
  if (i >= n) {
    return false;
  }
  const int count = stream[i++];
  if (count > kMaxCoeffsPerBlock || i + static_cast<size_t>(count) * 3 > n) {
    return false;
  }
  float coeffs[64] = {0};
  for (int k = 0; k < count; ++k) {
    const uint8_t pos = stream[i];
    int16_t value;
    std::memcpy(&value, stream + i + 1, 2);
    i += 3;
    if (pos >= 64) {
      return false;
    }
    coeffs[kZigzag[pos]] = static_cast<float>(value);
  }
  float pixels[64];
  Idct8x8(coeffs, pixels);
  for (int p = 0; p < 64; ++p) {
    const int luma =
        std::clamp(static_cast<int>(pixels[p] + 128.0f), 0, 255);
    // Grey-scale JPEG: replicate luma into RGB888.
    out->push_back(static_cast<uint8_t>(luma));
    out->push_back(static_cast<uint8_t>(luma));
    out->push_back(static_cast<uint8_t>(luma));
  }
  *offset = i;
  return true;
}

std::vector<uint8_t> EncodeSyntheticBlock(uint64_t seed) {
  std::vector<uint8_t> out;
  // Deterministic xorshift for reproducible inputs.
  auto next = [&seed] {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  const int count = 3 + static_cast<int>(next() % 5);  // 3..7 coefficients
  out.push_back(static_cast<uint8_t>(count));
  for (int k = 0; k < count; ++k) {
    out.push_back(static_cast<uint8_t>(next() % 20));  // low frequencies
    const int16_t value = static_cast<int16_t>(
        static_cast<int>(next() % 400) - 200);
    out.push_back(static_cast<uint8_t>(value & 0xff));
    out.push_back(static_cast<uint8_t>((value >> 8) & 0xff));
  }
  return out;
}

}  // namespace easyio::apps
