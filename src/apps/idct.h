// Block decoder for the paper's JPGDecoder workload [14]: the input stream
// carries sparse quantized DCT coefficients per 8x8 block; decoding runs a
// real 2-D inverse DCT and expands the luma block to RGB888 (the
// compute-heavy half of a baseline JPEG decoder, without the entropy-coding
// bookkeeping).
//
// Stream format per block: u8 count, then `count` x { u8 zigzag_pos,
// s16 value }. Output: 192 bytes (64 pixels x RGB).

#ifndef EASYIO_APPS_IDCT_H_
#define EASYIO_APPS_IDCT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace easyio::apps {

inline constexpr size_t kBlockOutBytes = 64 * 3;  // 8x8 RGB888
inline constexpr int kMaxCoeffsPerBlock = 10;

// 2-D inverse DCT of an 8x8 coefficient block into pixel values.
void Idct8x8(const float in[64], float out[64]);

// Decodes one block from `stream`; advances *offset. Returns false on
// malformed input. Appends kBlockOutBytes to `out`.
bool DecodeBlock(const uint8_t* stream, size_t n, size_t* offset,
                 std::vector<uint8_t>* out);

// Encodes a synthetic block (deterministic from `seed`) for input
// generation; returns the encoded bytes.
std::vector<uint8_t> EncodeSyntheticBlock(uint64_t seed);

}  // namespace easyio::apps

#endif  // EASYIO_APPS_IDCT_H_
