#include "src/apps/graph.h"

#include <cstring>
#include <deque>

namespace easyio::apps {

std::vector<uint8_t> SerializeEdges(
    uint32_t num_vertices,
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  std::vector<uint8_t> out(8 + edges.size() * 8);
  const uint32_t num_edges = static_cast<uint32_t>(edges.size());
  std::memcpy(out.data(), &num_vertices, 4);
  std::memcpy(out.data() + 4, &num_edges, 4);
  size_t off = 8;
  for (const auto& [src, dst] : edges) {
    std::memcpy(out.data() + off, &src, 4);
    std::memcpy(out.data() + off + 4, &dst, 4);
    off += 8;
  }
  return out;
}

bool DeserializeToCsr(const uint8_t* data, size_t n, CsrGraph* graph) {
  if (n < 8) {
    return false;
  }
  uint32_t num_vertices;
  uint32_t num_edges;
  std::memcpy(&num_vertices, data, 4);
  std::memcpy(&num_edges, data + 4, 4);
  if (n < 8 + static_cast<size_t>(num_edges) * 8) {
    return false;
  }
  graph->num_vertices = num_vertices;
  graph->row_offsets.assign(num_vertices + 1, 0);
  graph->neighbors.resize(num_edges);

  // Counting pass.
  size_t off = 8;
  for (uint32_t e = 0; e < num_edges; ++e) {
    uint32_t src;
    std::memcpy(&src, data + off, 4);
    off += 8;
    if (src >= num_vertices) {
      return false;
    }
    graph->row_offsets[src + 1]++;
  }
  for (uint32_t v = 0; v < num_vertices; ++v) {
    graph->row_offsets[v + 1] += graph->row_offsets[v];
  }
  // Fill pass.
  std::vector<uint32_t> cursor(graph->row_offsets.begin(),
                               graph->row_offsets.end() - 1);
  off = 8;
  for (uint32_t e = 0; e < num_edges; ++e) {
    uint32_t src;
    uint32_t dst;
    std::memcpy(&src, data + off, 4);
    std::memcpy(&dst, data + off + 4, 4);
    off += 8;
    if (dst >= num_vertices) {
      return false;
    }
    graph->neighbors[cursor[src]++] = dst;
  }
  return true;
}

size_t Bfs(const CsrGraph& graph, uint32_t source,
           std::vector<int32_t>* dist) {
  dist->assign(graph.num_vertices, -1);
  if (source >= graph.num_vertices) {
    return 0;
  }
  std::deque<uint32_t> queue;
  (*dist)[source] = 0;
  queue.push_back(source);
  size_t reached = 1;
  while (!queue.empty()) {
    const uint32_t v = queue.front();
    queue.pop_front();
    for (uint32_t i = graph.row_offsets[v]; i < graph.row_offsets[v + 1];
         ++i) {
      const uint32_t w = graph.neighbors[i];
      if ((*dist)[w] < 0) {
        (*dist)[w] = (*dist)[v] + 1;
        reached++;
        queue.push_back(w);
      }
    }
  }
  return reached;
}

std::vector<std::pair<uint32_t, uint32_t>> RandomEdges(uint32_t num_vertices,
                                                       uint32_t num_edges,
                                                       uint64_t seed) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(num_edges);
  auto next = [&seed] {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  // A ring (keeps the graph connected) plus random chords.
  for (uint32_t v = 0; v < num_vertices && edges.size() < num_edges; ++v) {
    edges.emplace_back(v, (v + 1) % num_vertices);
  }
  while (edges.size() < num_edges) {
    edges.emplace_back(static_cast<uint32_t>(next() % num_vertices),
                       static_cast<uint32_t>(next() % num_vertices));
  }
  return edges;
}

}  // namespace easyio::apps
