#include "src/harness/scenario_runner.h"

#include <cstdlib>
#include <cstring>
#include <utility>

namespace easyio::harness {

int ScenarioRunner::DefaultJobs() {
  if (const char* env = std::getenv("EASYIO_JOBS"); env != nullptr) {
    const int n = std::atoi(env);
    if (n >= 1) {
      return n;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

int ScenarioRunner::JobsFromArgs(int argc, char** argv) {
  int jobs = DefaultJobs();
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      const int n = std::atoi(argv[i] + 7);
      if (n >= 1) {
        jobs = n;
      }
    }
  }
  return jobs;
}

ScenarioRunner::ScenarioRunner(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {
  if (jobs_ == 1) {
    return;  // serial mode: no pool, Submit executes inline
  }
  workers_.reserve(static_cast<size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ScenarioRunner::~ScenarioRunner() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return completed_ == slots_.size(); });
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ScenarioRunner::RunSlot(Slot& slot) {
  try {
    slot.fn();
  } catch (...) {
    slot.error = std::current_exception();
  }
  slot.fn = nullptr;  // release captured state as soon as the job is done
}

size_t ScenarioRunner::Submit(std::function<void()> fn) {
  if (jobs_ == 1) {
    // No lock needed: serial mode never touches worker threads.
    const size_t index = slots_.size();
    slots_.emplace_back(Slot{std::move(fn), nullptr});
    RunSlot(slots_.back());
    completed_++;
    return index;
  }
  size_t index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    index = slots_.size();
    slots_.emplace_back(Slot{std::move(fn), nullptr});
  }
  work_cv_.notify_one();
  return index;
}

void ScenarioRunner::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return next_ < slots_.size() || shutdown_; });
    if (next_ >= slots_.size()) {
      return;  // shutdown with the queue drained
    }
    Slot& slot = slots_[next_++];  // deque: stable reference across growth
    lock.unlock();
    RunSlot(slot);
    lock.lock();
    completed_++;
    done_cv_.notify_all();
  }
}

void ScenarioRunner::Wait() {
  std::exception_ptr first;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return completed_ == slots_.size(); });
    // Consume *every* stored error (so a reused runner never resurfaces a
    // stale one) but surface only the first in submission order.
    for (Slot& slot : slots_) {
      if (slot.error != nullptr) {
        std::exception_ptr e = std::exchange(slot.error, nullptr);
        if (first == nullptr) {
          first = std::move(e);
        }
      }
    }
  }
  if (first != nullptr) {
    std::rethrow_exception(first);
  }
}

}  // namespace easyio::harness
