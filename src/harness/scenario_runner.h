// ScenarioRunner: a bounded worker pool for *independent* simulation
// scenarios.
//
// Every figure bench regenerates its panels by running dozens of
// deterministic Simulation instances that share nothing — fig09 alone sweeps
// 4 filesystems x 9 core counts x 2 I/O sizes x 2 workloads — so the wall
// time to reproduce the paper used to scale with the *sum* of scenario costs
// while almost every host core idled. The runner fans those scenarios across
// host threads the same way the surveyed PM filesystems exploit device
// parallelism: each job builds, runs and tears down its own Simulation on
// one worker thread (the sim kernel is thread-compatible, see
// src/sim/simulation.h), and its results land in a submission-ordered slot
// chosen by the caller, so the printed tables are byte-identical regardless
// of thread count or completion order.
//
// Contract:
//   * Jobs must be independent: no job may touch another job's state, a
//     Simulation constructed outside itself, or mutate shared data without
//     its own synchronization. Writing to a caller-provided per-job slot
//     (distinct element of a pre-sized vector) is the intended pattern.
//   * Jobs may print to stderr (diagnostics, trace summaries) — that
//     interleaving is not deterministic. Deterministic stdout belongs to the
//     caller, printed from the ordered results after Wait().
//   * jobs == 1 executes every job inline on the submitting thread, in
//     submission order — exactly the historical serial path, with no worker
//     threads created at all.
//   * All submitted jobs run even if an earlier one throws; Wait() then
//     rethrows the first exception in *submission* order (completion order
//     never leaks through). The pool never deadlocks on a throwing job.
//
// Worker count resolution: an explicit --jobs=N flag beats the EASYIO_JOBS
// environment variable, which beats std::thread::hardware_concurrency().

#ifndef EASYIO_HARNESS_SCENARIO_RUNNER_H_
#define EASYIO_HARNESS_SCENARIO_RUNNER_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace easyio::harness {

class ScenarioRunner {
 public:
  // EASYIO_JOBS env var if set and >= 1, else hardware_concurrency (>= 1).
  static int DefaultJobs();
  // Scans argv for --jobs=N (N >= 1); unknown arguments are ignored so
  // benches keep their own flags. Falls back to DefaultJobs().
  static int JobsFromArgs(int argc, char** argv);

  explicit ScenarioRunner(int jobs = DefaultJobs());
  // Drains outstanding jobs and joins the workers. Errors are swallowed
  // here (destructors must not throw) — call Wait() to observe them.
  ~ScenarioRunner();

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  int jobs() const { return jobs_; }

  // Enqueues a job and returns its submission index. With jobs() == 1 the
  // job runs inline before Submit returns (exceptions are still deferred to
  // Wait(), so serial and parallel failure semantics match).
  size_t Submit(std::function<void()> fn);

  // Blocks until every submitted job has finished, then rethrows the first
  // exception in submission order, if any. The runner is reusable after a
  // Wait() that returns normally or throws.
  void Wait();

 private:
  struct Slot {
    std::function<void()> fn;
    std::exception_ptr error;
  };

  void WorkerLoop();
  void RunSlot(Slot& slot);

  const int jobs_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: new job or shutdown
  std::condition_variable done_cv_;   // Wait(): a job completed
  // deque: Submit grows it while workers hold references to their slot.
  std::deque<Slot> slots_;
  size_t next_ = 0;       // first slot not yet claimed by a worker
  size_t completed_ = 0;  // slots fully executed
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

// Convenience for the dominant bench shape: run fn(0) .. fn(n-1) across
// `jobs` workers and return the results in index order. `fn` is invoked
// concurrently (when jobs > 1) and must not rely on call order; each
// invocation writes only its own result slot.
template <typename Fn>
auto RunIndexed(int jobs, size_t n, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, size_t>> {
  std::vector<std::invoke_result_t<Fn&, size_t>> out(n);
  ScenarioRunner runner(jobs);
  for (size_t i = 0; i < n; ++i) {
    runner.Submit([&out, &fn, i] { out[i] = fn(i); });
  }
  runner.Wait();
  return out;
}

}  // namespace easyio::harness

#endif  // EASYIO_HARNESS_SCENARIO_RUNNER_H_
