// Testbed: one-stop construction of the paper's evaluation machine — the
// simulated 36-core / 2-socket box with 6 Optane DCPMMs (§6.1) — with any of
// the four evaluated filesystems mounted on it.
//
// Core map (default): worker cores are [0, worker_cores); OdinFS's reserved
// delegation cores sit at the top of the machine, mirroring the paper's
// 12-cores-per-node reservation.

#ifndef EASYIO_HARNESS_TESTBED_H_
#define EASYIO_HARNESS_TESTBED_H_

#include <memory>
#include <string>

#include "src/baselines/delegation.h"
#include "src/baselines/nova_dma_fs.h"
#include "src/baselines/odin_fs.h"
#include "src/common/units.h"
#include "src/dma/dma_engine.h"
#include "src/dma/fault_plan.h"
#include "src/easyio/channel_manager.h"
#include "src/easyio/easy_io_fs.h"
#include "src/nova/nova_fs.h"
#include "src/obs/stats.h"
#include "src/pmem/slow_memory.h"
#include "src/sim/simulation.h"
#include "src/uthread/scheduler.h"

namespace easyio::harness {

enum class FsKind { kNova, kNovaDma, kOdin, kEasy, kEasyNaive };

inline const char* FsKindName(FsKind kind) {
  switch (kind) {
    case FsKind::kNova: return "NOVA";
    case FsKind::kNovaDma: return "NOVA-DMA";
    case FsKind::kOdin: return "ODINFS";
    case FsKind::kEasy: return "EasyIO";
    case FsKind::kEasyNaive: return "Naive";
  }
  return "?";
}

struct TestbedConfig {
  FsKind fs = FsKind::kEasy;
  int machine_cores = 36;
  size_t device_bytes = 1_GB;
  pmem::MediaParams media = pmem::MediaParams::TwoNode();
  nova::NovaFs::Options fs_options;
  core::ChannelManager::Options cm_options;
  core::EasyIoFs::EasyOptions easy_options;  // kEasy/kEasyNaive only
  // OdinFS reservation: 12 delegation threads per node in the paper.
  int odin_reserved_cores = 24;
  baselines::DelegationPool::Options odin_options;
  // DMA fault plan (fs kinds with an engine only). Empty = infallible
  // hardware, byte-identical behavior to a build without fault injection.
  dma::FaultPlan faults;
};

class Testbed {
 public:
  explicit Testbed(const TestbedConfig& config)
      : config_(config),
        sim_(sim::Simulation::Options{.num_cores = config.machine_cores}),
        mem_(&sim_, config.media, config.device_bytes) {
    fs::FileSystem* fsi = nullptr;
    switch (config.fs) {
      case FsKind::kNova: {
        auto fs = std::make_unique<nova::NovaFs>(&mem_, config.fs_options);
        EASYIO_CHECK_OK(fs->Format());
        nova_view_ = fs.get();
        fsi = fs.get();
        nova_ = std::move(fs);
        break;
      }
      case FsKind::kNovaDma: {
        auto fs = std::make_unique<baselines::NovaDmaFs>(&mem_,
                                                         config.fs_options);
        EASYIO_CHECK_OK(fs->Format());
        MakeEngine(fs->layout().comp_region_off);
        fs->AttachEngine(engine_.get());
        nova_view_ = fs.get();
        fsi = fs.get();
        nova_ = std::move(fs);
        break;
      }
      case FsKind::kOdin: {
        baselines::DelegationPool::Options opts = config.odin_options;
        opts.first_core = config.machine_cores - config.odin_reserved_cores;
        opts.num_threads = config.odin_reserved_cores;
        pool_ = std::make_unique<baselines::DelegationPool>(&sim_, &mem_,
                                                            opts);
        pool_->Start();
        auto fs = std::make_unique<baselines::OdinFs>(&mem_,
                                                      config.fs_options,
                                                      pool_.get());
        EASYIO_CHECK_OK(fs->Format());
        nova_view_ = fs.get();
        fsi = fs.get();
        nova_ = std::move(fs);
        break;
      }
      case FsKind::kEasy:
      case FsKind::kEasyNaive: {
        core::EasyIoFs::EasyOptions eo = config.easy_options;
        eo.ordered_naive = config.fs == FsKind::kEasyNaive;
        auto fs = std::make_unique<core::EasyIoFs>(&mem_, config.fs_options,
                                                   eo);
        EASYIO_CHECK_OK(fs->Format());
        MakeEngine(fs->layout().comp_region_off);
        cm_ = std::make_unique<core::ChannelManager>(&sim_, engine_.get(),
                                                     config.cm_options);
        fs->AttachChannelManager(cm_.get());
        nova_view_ = fs.get();
        easy_view_ = fs.get();
        fsi = fs.get();
        nova_ = std::move(fs);
        break;
      }
    }
    fs_ = fsi;
  }

  // Creates a Caladan-style runtime over the first `cores` worker cores.
  uthread::Scheduler* MakeScheduler(int cores, bool work_stealing = true) {
    uthread::Scheduler::Options opts;
    opts.first_core = 0;
    opts.num_cores = cores;
    opts.work_stealing = work_stealing;
    opts.switch_cost_ns = config_.media.uthread_switch_ns;
    scheduler_ = std::make_unique<uthread::Scheduler>(&sim_, opts);
    return scheduler_.get();
  }

  const TestbedConfig& config() const { return config_; }
  sim::Simulation& sim() { return sim_; }
  pmem::SlowMemory& mem() { return mem_; }
  fs::FileSystem& fs() { return *fs_; }
  nova::NovaFs& nova() { return *nova_view_; }
  core::EasyIoFs* easy() { return easy_view_; }  // null unless kEasy*
  dma::DmaEngine* engine() { return engine_.get(); }
  dma::FaultInjector* fault_injector() { return injector_.get(); }
  core::ChannelManager* channel_manager() { return cm_.get(); }
  baselines::DelegationPool* delegation() { return pool_.get(); }
  uthread::Scheduler* scheduler() { return scheduler_.get(); }

  // Usable worker cores for this filesystem on this machine.
  int max_worker_cores() const {
    return config_.fs == FsKind::kOdin
               ? config_.machine_cores - config_.odin_reserved_cores
               : config_.machine_cores;
  }

  // Snapshot of every actor's cumulative counters at the current virtual
  // time (schema: docs/OBSERVABILITY.md). Cheap — plain reads, no events —
  // so benches can collect one per run and Print() it behind --stats.
  obs::StatsSnapshot CollectStats() {
    obs::StatsSnapshot s;
    s.now_ns = sim_.now();
    s.context_switches = sim_.context_switches();
    for (int c = 0; c < sim_.num_cores(); ++c) {
      obs::CoreStats cs;
      cs.core = c;
      cs.busy_ns = sim_.core_busy_ns(c);
      cs.run_queue = sim_.run_queue_depth(c);
      cs.busy_fraction =
          s.now_ns == 0 ? 0.0
                        : static_cast<double>(cs.busy_ns) /
                              static_cast<double>(s.now_ns);
      s.cores.push_back(cs);
    }
    if (engine_) {
      for (int i = 0; i < engine_->num_channels(); ++i) {
        const dma::Channel& ch = engine_->channel(i);
        obs::ChannelStats xs;
        xs.id = i;
        xs.bytes_completed = ch.bytes_completed();
        xs.descriptors_completed = ch.descriptors_completed();
        xs.queue_depth = ch.queue_depth();
        xs.suspended = ch.suspended();
        xs.transfer_errors = ch.transfer_errors();
        xs.retries = ch.retries();
        xs.software_completions = ch.software_completions();
        xs.stalls_injected = ch.stalls_injected();
        xs.torn_records = ch.torn_records();
        xs.record_repairs = ch.record_repairs();
        s.channels.push_back(xs);
      }
    }
    if (nova_view_ != nullptr) {
      const nova::NovaFs::Counters& c = nova_view_->counters();
      obs::FsStats fsv;
      fsv.name = std::string(nova_view_->name());
      fsv.ops_read = c.ops_read;
      fsv.ops_write = c.ops_write;
      fsv.bytes_read = c.bytes_read;
      fsv.bytes_written = c.bytes_written;
      fsv.bytes_cpu = c.bytes_cpu;
      fsv.bytes_dma = c.bytes_dma;
      fsv.log_compactions = nova_view_->log_compactions();
      s.fs.push_back(std::move(fsv));
    }
    return s;
  }

 private:
  void MakeEngine(uint64_t comp_region_off) {
    engine_ = std::make_unique<dma::DmaEngine>(
        &mem_, comp_region_off,
        static_cast<int>(config_.fs_options.comp_channels));
    if (!config_.faults.empty()) {
      injector_ = std::make_unique<dma::FaultInjector>(config_.faults);
      engine_->AttachFaultInjector(injector_.get());
    }
  }

  TestbedConfig config_;
  sim::Simulation sim_;
  pmem::SlowMemory mem_;
  std::unique_ptr<dma::FaultInjector> injector_;
  std::unique_ptr<dma::DmaEngine> engine_;
  std::unique_ptr<core::ChannelManager> cm_;
  std::unique_ptr<baselines::DelegationPool> pool_;
  std::unique_ptr<nova::NovaFs> nova_;
  nova::NovaFs* nova_view_ = nullptr;
  core::EasyIoFs* easy_view_ = nullptr;
  fs::FileSystem* fs_ = nullptr;
  std::unique_ptr<uthread::Scheduler> scheduler_;
};

}  // namespace easyio::harness

#endif  // EASYIO_HARNESS_TESTBED_H_
